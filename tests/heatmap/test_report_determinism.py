"""End-to-end ``repro-report`` runs: determinism and artifact content.

The acceptance bar from the observability issue: a fixed Smith-Waterman
run must produce *byte-identical* HTML across invocations (no
timestamps, no unordered iteration anywhere in the pipeline), and the
terminal renderer must degrade cleanly under ``NO_COLOR``.
"""

import pytest

from repro.heatmap.ansi import render_store
from repro.heatmap.cli import main, run_report


@pytest.fixture(scope="module")
def sw_runs(tmp_path_factory):
    """Two independent Smith-Waterman report runs (footprint mode)."""
    out = []
    for name in ("run1", "run2"):
        d = tmp_path_factory.mktemp(name)
        paths = run_report("sw", "intel-pascal", d, materialize=False)
        out.append((d, paths))
    return out


class TestDeterminism:
    def test_html_is_byte_identical_across_runs(self, sw_runs):
        (d1, _), (d2, _) = sw_runs
        html1 = (d1 / "report.html").read_bytes()
        html2 = (d2 / "report.html").read_bytes()
        assert html1 == html2
        assert len(html1) > 1000

    def test_heat_csv_is_byte_identical_across_runs(self, sw_runs):
        (d1, _), (d2, _) = sw_runs
        assert (d1 / "heat.csv").read_bytes() == (d2 / "heat.csv").read_bytes()


class TestReportContent:
    def test_artifact_bundle_is_complete(self, sw_runs):
        d, paths = sw_runs[0]
        for artifact in ("report.html", "heat.csv", "heat.npz",
                         "timeline.json", "events.jsonl", "metrics.prom"):
            assert (d / artifact).exists(), artifact
        assert set(paths) >= {"report", "heat_csv", "heat_npz",
                              "timeline", "metrics", "events", "store"}

    def test_report_has_temporal_heat_and_attribution(self, sw_runs):
        d, paths = sw_runs[0]
        store = paths["store"]
        # Per-iteration diagnosis gives the report real temporal depth.
        assert len(store.epochs_closed) > 2
        html = (d / "report.html").read_text()
        assert html.count("<figure>") >= 1
        assert "top sites:" in html
        assert "smithwaterman" in html  # workload source file attributed

    def test_ansi_degrades_without_color(self, sw_runs, monkeypatch):
        _, paths = sw_runs[0]
        monkeypatch.setenv("NO_COLOR", "1")
        text = render_store(paths["store"])
        assert "\x1b" not in text
        assert "temporal heatmap" in text


class TestCli:
    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "workloads:" in out and "platforms:" in out

    def test_rejects_unknown_platform(self, tmp_path, capsys):
        assert main(["--platform", "riscv", "--out", str(tmp_path)]) == 2

    def test_requires_out(self, capsys):
        with pytest.raises(SystemExit):
            main([])

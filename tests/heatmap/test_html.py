"""HTML report: self-containment, heat cells, overlays, escaping."""

import re

import pytest

from repro.analysis.patterns import AntiPattern, Finding
from repro.heatmap.html import build_report
from repro.heatmap.store import HeatStore, SourceSite
from repro.memsim import AddressSpace, MemoryKind, Processor


class _FakeDiagnosis:
    def __init__(self, findings):
        self.findings = findings


@pytest.fixture
def store():
    space = AddressSpace()
    alloc = space.allocate(64 * 4, MemoryKind.MANAGED, label="grid")
    s = HeatStore(nbuckets=8, attribute=False)
    s.record(alloc, Processor.GPU, is_write=True, lo=0, hi=32,
             site=SourceSite("k.cu", 5))
    s.record(alloc, Processor.CPU, is_write=False, lo=0, hi=8)
    s.advance_epoch(0)
    return s


def _finding(store, pattern=AntiPattern.ALTERNATING_ACCESS):
    alloc = store.allocations()[0]
    return Finding(pattern=pattern, name=alloc.label, alloc=None,
                   metric=1.0, detail="<detail & marks>",
                   remedies=("use cudaMemAdvise",), epoch=0,
                   ranges=((0, 16),))


class TestBuildReport:
    def test_self_contained_no_external_resources(self, store):
        html = build_report(workload="w", platform="p", store=store)
        # The Perfetto link is the one allowed external *href*; no
        # scripts, images or stylesheets may be fetched.
        stripped = html.replace("https://ui.perfetto.dev", "")
        assert "http" not in stripped
        assert "<script" not in html
        assert "<img" not in html

    def test_heat_cells_and_tooltips(self, store):
        html = build_report(workload="w", platform="p", store=store)
        cells = re.findall(r'fill="var\(--h(\d+)\)"', html)
        assert cells, "no heat cells rendered"
        assert all(1 <= int(c) <= 13 for c in cells)
        assert "<title>" in html  # native tooltips
        assert "cpu r/w" in html

    def test_anti_pattern_overlay_and_groups(self, store):
        html = build_report(workload="w", platform="p", store=store,
                            diagnoses=[_FakeDiagnosis([_finding(store)])])
        # Overlay rect outlines the finding's region in the status color.
        assert 'stroke="#d03b3b"' in html
        # All three pattern groups are always listed (with counts).
        assert "alternating access" in html
        assert "low access density" in html
        assert "unnecessary transfers" in html
        assert "no findings" in html  # the two empty groups say so

    def test_finding_detail_is_escaped(self, store):
        html = build_report(workload="w", platform="p", store=store,
                            diagnoses=[_FakeDiagnosis([_finding(store)])])
        assert "<detail & marks>" not in html
        assert "&lt;detail &amp; marks&gt;" in html

    def test_attribution_and_metrics_render(self, store):
        metrics = {"xplacer_kernel_launches_total": {"": 3.0},
                   "xplacer_sim_time_seconds": {'{session="1"}': 0.5}}
        html = build_report(workload="w", platform="p", store=store,
                            metrics=metrics)
        assert "top sites:" in html
        assert "k.cu:5" in html
        assert "kernel launches" in html
        assert "xplacer_kernel_launches_total" in html

    def test_dark_mode_reverses_the_ramp(self, store):
        html = build_report(workload="w", platform="p", store=store)
        assert "prefers-color-scheme: dark" in html
        light = re.search(r"--h1: (#\w+);", html).group(1)
        # In the dark block the same variable takes the ramp's other end.
        dark_block = html.split("prefers-color-scheme: dark", 1)[1]
        dark = re.search(r"--h1: (#\w+);", dark_block).group(1)
        assert light != dark

    def test_empty_store_reports_gracefully(self):
        html = build_report(workload="w", platform="p",
                            store=HeatStore(attribute=False))
        assert "no heat recorded" in html


class TestBanners:
    def test_no_banner_by_default(self, store):
        html = build_report(workload="w", platform="p", store=store)
        assert 'class="banner' not in html

    def test_dropped_events_warning_banner(self, store):
        html = build_report(workload="w", platform="p", store=store,
                            stream={"events_dropped": 12})
        assert '<div class="banner warn">' in html
        assert "12 driver event(s) dropped" in html
        assert "repro-agg run" in html  # remediation points at streaming

    def test_streamed_run_banner_with_merge_warnings(self, store):
        html = build_report(workload="w", platform="p", store=store,
                            stream={"merged_from": ["a", "b", "c"],
                                    "events_spilled": 400,
                                    "warnings": ["skipping truncated <seg>"]})
        assert "merged from 3 shard(s)" in html
        assert "400 event(s) spilled to disk" in html
        assert "skipping truncated &lt;seg&gt;" in html  # escaped

    def test_sampling_banner(self, store):
        html = build_report(workload="w", platform="p", store=store,
                            sampling={"sample": 8, "effective_rate": 0.125,
                                      "estimated_fidelity": 0.85})
        assert "sampled tracing: 1-in-8 words" in html
        assert "effective rate 0.125" in html
        assert "estimated fidelity 0.85" in html

"""Attribution: frame walking, module skipping, path shortening."""

import sys

from repro.heatmap.attribution import SKIP_MODULES, _shorten, caller_site
from repro.heatmap.store import HeatStore, SourceSite
from repro.memsim import AddressSpace, MemoryKind, Processor


class TestShorten:
    def test_keeps_last_two_components(self):
        assert _shorten("/a/b/c/d.py") == "c/d.py"
        assert _shorten("d.py") == "d.py"
        assert _shorten("pkg\\mod.py") == "pkg/mod.py"


class TestCallerSite:
    def test_attributes_to_this_test_file(self):
        site = caller_site()
        assert site is not None
        assert site.file.endswith("test_attribution.py")
        assert site.func == "test_attributes_to_this_test_file"
        assert site.line > 0

    def test_skips_simulator_modules(self):
        # Fake a call "from inside" a runtime module by walking with a
        # skip list that excludes this test module.
        site = caller_site(skip=("tests",))
        assert site is None or not site.file.startswith("tests")

    def test_workloads_are_not_skipped(self):
        assert not any(m.startswith("repro.workloads") for m in SKIP_MODULES)


class TestStoreIntegration:
    def test_record_attributes_caller_when_no_site_given(self):
        space = AddressSpace()
        alloc = space.allocate(64, MemoryKind.MANAGED, label="x")
        store = HeatStore(nbuckets=2, attribute=True)
        store.record(alloc, Processor.CPU, is_write=True, lo=0, hi=4)
        store.advance_epoch(0)
        top = store.allocations()[0].epochs[0].top_sites()
        assert top and top[0][0].file.endswith("test_attribution.py")

    def test_attribute_false_skips_the_walk(self):
        space = AddressSpace()
        alloc = space.allocate(64, MemoryKind.MANAGED, label="x")
        store = HeatStore(nbuckets=2, attribute=False)
        store.record(alloc, Processor.CPU, is_write=True, lo=0, hi=4)
        store.advance_epoch(0)
        assert store.allocations()[0].epochs[0].sites == {}

    def test_explicit_site_wins_over_walk(self):
        space = AddressSpace()
        alloc = space.allocate(64, MemoryKind.MANAGED, label="x")
        store = HeatStore(nbuckets=2, attribute=True)
        site = SourceSite("given.cu", 3)
        store.record(alloc, Processor.CPU, is_write=True, lo=0, hi=4,
                     site=site)
        store.advance_epoch(0)
        assert store.allocations()[0].epochs[0].top_sites()[0][0] == site

"""Tracer/heat integration: both tracing paths, epochs, diagnostics."""

import io

import pytest

from repro.heatmap.store import HeatStore, SourceSite
from repro.interp import run_program
from repro.memsim import MemoryKind, Processor, intel_pascal
from repro.runtime import Tracer, trace_print
from repro.runtime.report import format_text


@pytest.fixture
def traced():
    platform = intel_pascal()
    heat = HeatStore(nbuckets=8, attribute=False)
    tracer = Tracer(heat=heat)
    alloc = platform.address_space.allocate(
        64 * 4, MemoryKind.MANAGED, label="buf")
    tracer.trc_register(alloc)
    return platform, tracer, heat, alloc


class TestDirectPath:
    def test_trace_calls_feed_heat_channels(self, traced):
        _, tracer, heat, alloc = traced
        tracer.traceR(alloc.base, 16)
        tracer.traceW(alloc.base + 32, 8)
        tracer.advance_epoch()
        e = heat.allocations()[0].epochs[0]
        assert e.channel("cpu_read").sum() == 4
        assert e.channel("cpu_write").sum() == 2

    def test_rmw_counts_both_channels(self, traced):
        _, tracer, heat, alloc = traced
        tracer.traceRW(alloc.base, 4)
        tracer.advance_epoch()
        e = heat.allocations()[0].epochs[0]
        assert e.channel("cpu_read").sum() == 1
        assert e.channel("cpu_write").sum() == 1

    def test_explicit_site_reaches_the_store(self, traced):
        platform, tracer, heat, alloc = traced
        heat.attribute = True  # even so, the explicit site must win
        site = SourceSite("prog.cu", 12)
        tracer.traceW(alloc.base, 4, site=site)
        tracer.advance_epoch()
        assert heat.allocations()[0].epochs[0].top_sites()[0][0] == site

    def test_epoch_advance_freezes_heat_with_shadow_reset(self, traced):
        _, tracer, heat, alloc = traced
        tracer.traceW(alloc.base, 4)
        tracer.advance_epoch()
        tracer.traceW(alloc.base, 4)
        tracer.advance_epoch()
        assert [e.epoch for e in heat.allocations()[0].epochs] == [0, 1]
        assert heat.epochs_closed == [0, 1]

    def test_no_heat_store_means_no_recording_cost(self):
        tracer = Tracer()
        assert tracer.heat is None  # off by default


class TestInterpPath:
    SRC = """
    int main() {
        double* a;
        trcMallocManaged((void**)&a, 64 * sizeof(double));
        for (int i = 0; i < 64; ++i)
            a[i] = i;
        trcFree(a);
        return 0;
    }
    """

    def test_instrumented_statements_attribute_by_line(self):
        heat = HeatStore(nbuckets=8)
        run_program(self.SRC, tracer=Tracer(heat=heat),
                    source_name="demo.cu")
        heat.flush_current()
        region = heat.allocations()[0].hottest_region()
        sites = [s.label for s, _ in region["sites"]]
        # The assignment statement is line 6 of the source above.
        assert sites == ["demo.cu:6"]


class TestDiagnosticsHotSites:
    def test_trace_print_reports_hot_sites(self, traced):
        _, tracer, heat, alloc = traced
        tracer.traceW(alloc.base, 16, site=SourceSite("app.py", 3))
        result = trace_print(tracer, out=None)
        report = result.named("buf")
        assert report.hot_sites == (("app.py:3", 4),)
        text = format_text(result)
        assert "hot sites: app.py:3 x4" in text

    def test_no_heat_gives_empty_hot_sites(self):
        platform = intel_pascal()
        tracer = Tracer()
        alloc = platform.address_space.allocate(
            64, MemoryKind.MANAGED, label="buf")
        tracer.trc_register(alloc)
        tracer.traceW(alloc.base, 4)
        result = trace_print(tracer, out=None)
        assert result.named("buf").hot_sites == ()
        assert "hot sites" not in format_text(result)

"""Report fidelity satellites: sampling provenance + artifact size bounds."""

import json

import numpy as np
import pytest

from repro.heatmap.cli import run_report
from repro.runtime import Tracer


@pytest.fixture(scope="module")
def lulesh_report(tmp_path_factory):
    out = tmp_path_factory.mktemp("lulesh-report")
    return run_report("lulesh", "pcie", out, why=True), out


class TestArtifactSizes:
    """Size regression guard for the bundled LULESH report.

    Bounds are ~1.5x the current artifact sizes: a change that bloats the
    inline SVG/CSS or switches the NPZ off compression trips them.
    """

    def test_report_html_stays_bundled_but_bounded(self, lulesh_report):
        paths, _ = lulesh_report
        size = paths["report"].stat().st_size
        assert size < 5_000_000, f"report.html grew to {size} bytes"
        assert size > 100_000  # still genuinely self-contained

    def test_npz_is_compressed(self, lulesh_report):
        paths, _ = lulesh_report
        npz_size = paths["heat_npz"].stat().st_size
        assert npz_size < 128_000, f"heat.npz grew to {npz_size} bytes"
        # Compression must beat the textual CSV by a wide margin.
        assert npz_size * 4 < paths["heat_csv"].stat().st_size
        with np.load(paths["heat_npz"]) as npz:
            raw = sum(npz[k].nbytes for k in npz.files)
        assert npz_size < raw  # savez_compressed, not savez

    def test_npz_round_trips_the_store(self, lulesh_report):
        paths, _ = lulesh_report
        store = paths["store"]
        with np.load(paths["heat_npz"]) as npz:
            labels = [str(x) for x in npz["labels"]]
            assert labels == [h.label for h in store.allocations()]
            total = sum(int(npz[f"a{i}_counts"].sum())
                        for i in range(len(labels)))
        assert total == store.total


class TestSamplingProvenance:
    @pytest.fixture(scope="class")
    def sampled(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("sampled")
        return run_report("pathfinder", "pcie", out, sample=4), out

    def test_sampling_record_in_jsonl(self, sampled):
        paths, out = sampled
        records = [json.loads(line) for line
                   in (out / "events.jsonl").read_text().splitlines()]
        assert records[0]["type"] == "manifest"
        assert records[0]["config"]["sample"] == 4
        sampling = [r for r in records if r["type"] == "sampling"]
        assert len(sampling) == 1
        assert sampling[0]["sample"] == 4
        assert sampling[0]["effective_rate"] == 0.25
        assert 0.5 <= sampling[0]["estimated_fidelity"] < 1.0

    def test_sampling_gauges_in_metrics(self, sampled):
        paths, _ = sampled
        prom = paths["metrics"].read_text()
        assert "xplacer_sampling_stride 4" in prom
        assert "xplacer_sampling_estimated_fidelity" in prom

    def test_report_header_banner(self, sampled):
        paths, _ = sampled
        html = paths["report"].read_text()
        assert "sampled tracing: 1-in-4 words" in html
        assert "estimated fidelity" in html

    def test_dense_run_has_no_sampling_artifacts(self, lulesh_report):
        paths, out = lulesh_report
        assert "sampled tracing" not in paths["report"].read_text()
        types = {json.loads(line)["type"] for line
                 in (out / "events.jsonl").read_text().splitlines()}
        assert "sampling" not in types

    def test_sampling_info_matches_fidelity_model(self):
        info = Tracer(sample=16).sampling_info()
        assert info["effective_rate"] == 1 / 16
        assert info["estimated_fidelity"] == round(
            max(0.5, 1 - 0.05 * np.log2(16)), 3)
        assert Tracer().sampling_info() is None

"""Heat store: bucket math, channels, epoch freeze, attribution, exports."""

import numpy as np
import pytest

from repro.heatmap.store import (
    CHANNELS,
    OTHER_SITE,
    AllocationHeat,
    HeatStore,
    SourceSite,
)
from repro.memsim import AddressSpace, MemoryKind, Processor


@pytest.fixture
def space():
    return AddressSpace()


def _alloc(space, size, label="a"):
    return space.allocate(size, MemoryKind.MANAGED, label=label)


class TestBucketGeometry:
    def test_buckets_partition_words_exactly(self, space):
        heat = AllocationHeat(_alloc(space, 1000), nbuckets=7)
        # 1000 bytes -> 250 words split into 7 fair-division buckets.
        assert heat.nwords == 250
        spans = [heat.bucket_word_range(b) for b in range(heat.nbuckets)]
        assert spans[0][0] == 0 and spans[-1][1] == 250
        for (alo, ahi), (blo, bhi) in zip(spans, spans[1:]):
            assert ahi == blo and ahi > alo

    def test_small_alloc_clamps_bucket_count(self, space):
        heat = AllocationHeat(_alloc(space, 8), nbuckets=64)
        assert heat.nwords == 2
        assert heat.nbuckets == 2

    def test_range_heat_lands_in_covering_buckets(self, space):
        heat = AllocationHeat(_alloc(space, 64 * 4), nbuckets=4)
        heat.add(0, 0, 16)  # words [0,16) == bucket 0 exactly
        heat.freeze(0)
        assert heat.epochs[0].heat.tolist() == [16, 0, 0, 0]

    def test_index_heat_counts_each_word_once(self, space):
        heat = AllocationHeat(_alloc(space, 64 * 4), nbuckets=4)
        heat.add(3, 0, 0, idx=np.array([0, 1, 16, 17, 63]))
        heat.freeze(0)
        assert heat.epochs[0].counts[3].tolist() == [2, 2, 0, 1]


class TestChannelsAndEpochs:
    def test_channel_routing(self, space):
        store = HeatStore(nbuckets=4, attribute=False)
        a = _alloc(space, 64)
        store.record(a, Processor.CPU, is_write=False, lo=0, hi=4)
        store.record(a, Processor.CPU, is_write=True, lo=0, hi=4)
        store.record(a, Processor.GPU, is_write=False, lo=0, hi=4)
        store.record(a, Processor.GPU, is_write=True, lo=0, hi=4)
        store.advance_epoch(0)
        e = store.allocations()[0].epochs[0]
        for i, name in enumerate(CHANNELS):
            assert e.channel(name).sum() == 4, name
        assert e.total == 16

    def test_epochs_freeze_and_accumulate_independently(self, space):
        store = HeatStore(nbuckets=4, attribute=False)
        a = _alloc(space, 64)
        store.record(a, Processor.GPU, is_write=True, lo=0, hi=8)
        store.advance_epoch(0)
        store.record(a, Processor.GPU, is_write=True, lo=8, hi=16)
        store.advance_epoch(1)
        heat = store.allocations()[0]
        assert [e.epoch for e in heat.epochs] == [0, 1]
        assert heat.matrix().shape == (2, 4)
        assert heat.total == 16
        assert store.epochs_closed == [0, 1]

    def test_empty_epoch_is_skipped(self, space):
        store = HeatStore(attribute=False)
        a = _alloc(space, 64)
        store.record(a, Processor.CPU, is_write=True, lo=0, hi=4)
        store.advance_epoch(0)
        store.advance_epoch(1)  # nothing recorded
        assert len(store.allocations()[0].epochs) == 1

    def test_flush_current_freezes_residual_heat(self, space):
        store = HeatStore(attribute=False)
        store.record(_alloc(space, 64), Processor.CPU, is_write=True,
                     lo=0, hi=4)
        store.flush_current()
        assert store.allocations()[0].epochs[0].epoch == 0
        store.flush_current()  # idempotent when nothing is pending
        assert len(store.allocations()[0].epochs) == 1

    def test_base_reuse_keeps_separate_histories(self, space):
        store = HeatStore(attribute=False)
        a = _alloc(space, 64, label="first")
        store.record(a, Processor.CPU, is_write=True, lo=0, hi=4)
        space.free(a.base)
        b = space.allocate(64, MemoryKind.MANAGED, label="second")
        store.record(b, Processor.GPU, is_write=True, lo=0, hi=4)
        store.flush_current()
        assert {h.label for h in store.allocations()} >= {"first"}
        assert len(store) >= 2 or a.base != b.base


class TestAttribution:
    def test_explicit_site_is_recorded(self, space):
        store = HeatStore(nbuckets=2, attribute=False)
        a = _alloc(space, 64)
        site = SourceSite("kernel.cu", 42, "main")
        store.record(a, Processor.GPU, is_write=True, lo=0, hi=16, site=site)
        store.advance_epoch(0)
        top = store.allocations()[0].epochs[0].top_sites()
        assert top == [(site, 16)]
        assert site.label == "kernel.cu:42 (main)"

    def test_site_overflow_folds_into_other(self, space):
        heat = AllocationHeat(_alloc(space, 64), nbuckets=2, max_sites=2)
        for i in range(5):
            heat.add(1, 0, 2, site=SourceSite("f.py", i))
        heat.freeze(0)
        sites = heat.epochs[0].sites
        assert OTHER_SITE in sites
        assert sum(int(v.sum()) for v in sites.values()) == 10

    def test_hottest_region_names_its_sites(self, space):
        heat = AllocationHeat(_alloc(space, 64 * 4), nbuckets=4)
        hot = SourceSite("hot.py", 1)
        cold = SourceSite("cold.py", 2)
        heat.add(1, 32, 48, site=hot)   # bucket 2, 16 words
        heat.add(1, 0, 4, site=cold)    # bucket 0, 4 words
        heat.freeze(0)
        region = heat.hottest_region()
        assert region["epoch"] == 0
        assert (region["word_lo"], region["word_hi"]) == (32, 48)
        assert region["sites"][0][0] == hot


class TestExports:
    def _store(self, space):
        store = HeatStore(nbuckets=4, attribute=False)
        a = _alloc(space, 256, label="demo")
        store.record(a, Processor.GPU, is_write=True, lo=0, hi=32,
                     site=SourceSite("k.cu", 7))
        store.advance_epoch(0)
        return store

    def test_csv_long_form(self, space):
        csv = self._store(space).to_csv()
        lines = csv.strip().split("\n")
        assert lines[0].startswith("allocation,epoch,bucket,word_lo,word_hi")
        assert any(line.startswith("demo,0,") for line in lines[1:])
        assert "k.cu:7" in csv

    def test_npz_round_trip(self, space, tmp_path):
        store = self._store(space)
        path = store.to_npz(tmp_path / "heat.npz")
        data = np.load(path, allow_pickle=False)
        assert list(data["labels"]) == ["demo"]
        assert data["a0_counts"].shape == (1, 4, 4)
        assert data["a0_counts"].sum() == 32
        assert list(data["epochs_closed"]) == [0]

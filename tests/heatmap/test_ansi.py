"""ANSI renderer: ramps, NO_COLOR degradation, epoch scrubbing."""

import numpy as np
import pytest

from repro.heatmap.ansi import (
    ASCII_RAMP,
    render_alloc,
    render_store,
    supports_color,
)
from repro.heatmap.store import HeatStore, SourceSite
from repro.memsim import AddressSpace, MemoryKind, Processor


@pytest.fixture
def store():
    space = AddressSpace()
    alloc = space.allocate(64 * 4, MemoryKind.MANAGED, label="grid")
    s = HeatStore(nbuckets=8, attribute=False)
    s.record(alloc, Processor.GPU, is_write=True, lo=0, hi=32,
             site=SourceSite("k.cu", 5))
    s.advance_epoch(0)
    s.record(alloc, Processor.GPU, is_write=True, lo=32, hi=64,
             site=SourceSite("k.cu", 9))
    s.advance_epoch(1)
    return s


class TestSupportsColor:
    def test_no_color_env_wins(self, monkeypatch):
        monkeypatch.setenv("NO_COLOR", "1")
        class Tty:
            def isatty(self):
                return True
        assert supports_color(Tty()) is False

    def test_non_tty_is_plain(self, monkeypatch):
        monkeypatch.delenv("NO_COLOR", raising=False)
        class Pipe:
            def isatty(self):
                return False
        assert supports_color(Pipe()) is False


class TestRender:
    def test_plain_output_has_no_escape_sequences(self, store):
        text = render_store(store, color=False)
        assert "\x1b[" not in text
        assert set(text) <= set(ASCII_RAMP + "0123456789"
                                "abcdefghijklmnopqrstuvwxyz"
                                "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                " .,:()[]|=x<>@#%*+-_\n")

    def test_color_output_uses_background_ramp(self, store):
        text = render_store(store, color=True)
        assert "\x1b[48;5;" in text and "\x1b[0m" in text

    def test_strips_show_the_wavefront(self, store):
        heat = store.allocations()[0]
        text = render_alloc(heat, color=False)
        lines = [l for l in text.splitlines() if l.lstrip().startswith("e")]
        assert len(lines) == 2
        # Epoch 0 heats the left half, epoch 1 the right half.
        cells0 = lines[0].split("|")[1]
        cells1 = lines[1].split("|")[1]
        assert cells0[:4].strip() and not cells0[4:].strip()
        assert cells1[4:].strip() and not cells1[:4].strip()

    def test_epoch_scrubbing_selects_one_row(self, store):
        text = render_store(store, color=False, epoch=1)
        assert "e1" in text and "e0  " not in text
        assert "[showing epoch 1]" in text

    def test_hottest_sites_are_listed(self, store):
        text = render_store(store, color=False)
        assert "k.cu:5" in text or "k.cu:9" in text

"""Tests for the Chrome trace-event timeline builder."""

import json

from repro.telemetry import (
    TRACK_GPU,
    TRACK_LINK,
    TRACK_MARKS,
    TimelineBuilder,
)


class TestEvents:
    def test_span_shape(self):
        tl = TimelineBuilder()
        tl.span("kernel_a", "kernel", 0.001, 0.0005, pid=1, tid=TRACK_GPU,
                args={"grid": 8})
        (ev,) = tl.to_dict()["traceEvents"]
        assert ev["ph"] == "X"
        assert ev["name"] == "kernel_a"
        assert ev["ts"] == 1000.0          # 1 ms -> 1000 us
        assert ev["dur"] == 500.0
        assert (ev["pid"], ev["tid"]) == (1, TRACK_GPU)
        assert ev["args"]["grid"] == 8

    def test_zero_duration_span_stays_visible(self):
        tl = TimelineBuilder()
        tl.span("blip", "memory", 0.0, 0.0)
        (ev,) = tl.to_dict()["traceEvents"]
        assert ev["dur"] > 0

    def test_instant_shape(self):
        tl = TimelineBuilder()
        tl.instant("page_fault", "memory", 0.002)
        (ev,) = tl.to_dict()["traceEvents"]
        assert ev["ph"] == "i"
        assert ev["s"] == "t"
        assert ev["ts"] == 2000.0

    def test_counter_shape(self):
        tl = TimelineBuilder()
        tl.counter("gpu_pages_in_use", 0.5, {"pages": 12})
        (ev,) = tl.to_dict()["traceEvents"]
        assert ev["ph"] == "C"
        assert ev["args"] == {"pages": 12}

    def test_epoch_marker_is_process_scoped(self):
        tl = TimelineBuilder()
        tl.epoch_marker(3, 0.1)
        (ev,) = tl.to_dict()["traceEvents"]
        assert ev["name"] == "epoch 3"
        assert ev["s"] == "p"
        assert ev["tid"] == TRACK_MARKS


class TestProcessMetadata:
    def test_declare_process_emits_names_and_sort_order(self):
        tl = TimelineBuilder()
        tl.declare_process(1, "intel-pascal session 1")
        events = tl.to_dict()["traceEvents"]
        kinds = {e["name"] for e in events}
        assert kinds == {"process_name", "thread_name", "thread_sort_index"}
        pn = next(e for e in events if e["name"] == "process_name")
        assert pn["ph"] == "M"
        assert pn["args"]["name"] == "intel-pascal session 1"
        link_name = next(e for e in events if e["name"] == "thread_name"
                         and e["tid"] == TRACK_LINK)
        assert link_name["args"]["name"] == "Interconnect"

    def test_declare_process_idempotent(self):
        tl = TimelineBuilder()
        tl.declare_process(1, "a")
        before = len(tl)
        tl.declare_process(1, "b")
        assert len(tl) == before


class TestOutput:
    def test_events_sorted_by_timestamp(self):
        tl = TimelineBuilder()
        tl.span("late", "x", 0.5, 0.1)
        tl.span("early", "x", 0.1, 0.1)
        names = [e["name"] for e in tl.to_dict()["traceEvents"]]
        assert names == ["early", "late"]

    def test_json_roundtrip_and_top_level_keys(self):
        tl = TimelineBuilder()
        tl.span("k", "kernel", 0.0, 0.001)
        doc = json.loads(tl.to_json(other_data={"workload": "sw"}))
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["workload"] == "sw"
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "ts", "pid", "tid"} <= set(ev) or ev["ph"] == "M"

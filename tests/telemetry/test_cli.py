"""End-to-end tests for the ``repro-trace`` CLI."""

import json

import pytest

from repro.telemetry import context as telemetry_context
from repro.telemetry import read_jsonl
from repro.telemetry.cli import PLATFORM_ALIASES, WORKLOADS, main, run_traced


class TestRunTraced:
    def test_emits_all_three_artifacts(self, tmp_path):
        paths = run_traced("pathfinder", "intel-pascal", tmp_path,
                           materialize=False)
        doc = json.loads(paths["timeline"].read_text())
        assert doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(ev)
            if ev["ph"] != "M":
                assert "ts" in ev

        records = read_jsonl(paths["events"])
        assert records, "events.jsonl must not be empty"
        assert records[0]["type"] == "manifest"
        assert records[0]["workload"] == "pathfinder"
        assert any(r["type"] == "kernel" for r in records)
        assert any(r["type"] == "diagnosis" for r in records)

        prom = paths["metrics"].read_text()
        for family in ("page_fault", "migrated_pages", "evicted_pages",
                       "transfer_bytes"):
            assert family in prom, f"metrics.prom missing {family} series"

    def test_managed_workload_produces_fault_series(self, tmp_path):
        paths = run_traced("lulesh", "power9-volta", tmp_path,
                           materialize=False)
        prom = paths["metrics"].read_text()
        line = next(l for l in prom.splitlines()
                    if l.startswith("xplacer_page_fault_groups_total{"))
        assert float(line.rsplit(" ", 1)[1]) > 0

    def test_context_left_clean_even_on_failure(self, tmp_path):
        with pytest.raises(KeyError):
            run_traced("no-such-workload", "intel-pascal", tmp_path)
        assert telemetry_context.current_recorder() is None


class TestMain:
    def test_cli_happy_path(self, tmp_path, capsys):
        rc = main(["--workload", "sw", "--platform", "pcie",
                   "--out", str(tmp_path), "--footprint"])
        assert rc == 0
        assert (tmp_path / "timeline.json").exists()
        assert (tmp_path / "events.jsonl").exists()
        assert (tmp_path / "metrics.prom").exists()
        out = capsys.readouterr().out
        assert "timeline.json" in out

    def test_unknown_platform_rejected(self, tmp_path, capsys):
        rc = main(["--workload", "sw", "--platform", "vax",
                   "--out", str(tmp_path)])
        assert rc == 2

    def test_list_flag(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in WORKLOADS:
            assert name in out

    def test_aliases_cover_paper_platforms(self):
        assert PLATFORM_ALIASES["pcie"] == "intel-pascal"
        assert PLATFORM_ALIASES["nvlink"] == "power9-volta"

"""Tests for the TelemetryRecorder: wiring, fan-out, and artifacts."""

import json

import numpy as np
import pytest

from repro.cudart import CudaRuntime, cudaMemcpyKind
from repro.memsim import PAGE_SIZE, intel_pascal
from repro.runtime import Tracer
from repro.telemetry import JsonlWriter, StringJsonl, TelemetryRecorder
from repro.telemetry import context as telemetry_context
from repro.workloads.base import make_session

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice


@pytest.fixture
def rig():
    rt = CudaRuntime(intel_pascal())
    rec = TelemetryRecorder(jsonl=StringJsonl())
    rec.attach(rt)
    return rt, rec


def _fault_once(rt):
    """One managed allocation CPU-written then GPU-read: faults + migration."""
    v = rt.malloc_managed(4 * PAGE_SIZE, label="v").typed(np.float32)
    v.write(0, np.zeros(len(v), np.float32))
    rt.launch(lambda ctx, d: d.read(0, len(d)), 8, 128, v, name="reader")
    return v


class TestMetricsFanout:
    def test_fault_and_migration_counters(self, rig):
        rt, rec = rig
        _fault_once(rt)
        assert rec.metrics.counter("page_fault_groups_total"
                                   ).value(proc="GPU") >= 1
        assert rec.metrics.counter("migrated_pages_total"
                                   ).value(proc="GPU") == 4
        assert rec.metrics.counter("kernel_launches_total"
                                   ).value(kernel="reader") == 1

    def test_headline_series_exist_before_any_event(self):
        rec = TelemetryRecorder()
        text = rec.metrics.to_prometheus()
        for family in ("page_fault_groups_total", "migrated_pages_total",
                       "evicted_pages_total", "transfer_bytes_total"):
            assert f"xplacer_{family} 0" in text

    def test_memcpy_counted_as_transfer_bytes(self, rig):
        rt, rec = rig
        d = rt.malloc(4 * 100)
        rt.memcpy(d, np.arange(100, dtype=np.int32), 400, H2D)
        assert rec.metrics.counter("transfer_bytes_total"
                                   ).value(direction="H2D") == 400


class TestTimelineFanout:
    def test_kernel_span_lands_on_gpu_track(self, rig):
        rt, rec = rig
        _fault_once(rt)
        events = rec.timeline.to_dict()["traceEvents"]
        spans = [e for e in events if e.get("cat") == "kernel"]
        assert any(e["name"] == "reader" and e["ph"] == "X" for e in spans)

    def test_migration_span_and_fault_instant(self, rig):
        rt, rec = rig
        _fault_once(rt)
        events = rec.timeline.to_dict()["traceEvents"]
        assert any(e["name"] == "migration" and e["ph"] == "X" for e in events)
        assert any(e["name"] == "page_fault" and e["ph"] == "i" for e in events)

    def test_event_cap_drops_instead_of_growing(self):
        rt = CudaRuntime(intel_pascal())
        rec = TelemetryRecorder(max_timeline_events=5)
        rec.attach(rt)
        baseline = len(rec.timeline)  # process/track metadata from attach
        _fault_once(rt)
        _fault_once(rt)
        assert len(rec.timeline) == baseline  # every span/instant dropped
        assert rec.dropped_timeline_events > 0


class TestJsonlFanout:
    def test_manifest_is_first_record(self, rig):
        rt, rec = rig
        _fault_once(rt)
        lines = rec.jsonl.getvalue().splitlines()
        first = json.loads(lines[0])
        assert first["type"] == "manifest"
        assert first["platform"]["name"] == "intel-pascal"
        types = {json.loads(l)["type"] for l in lines[1:]}
        assert "driver_event" in types
        assert "kernel" in types


class TestLifecycle:
    def test_detach_unwires_everything(self, rig):
        rt, rec = rig
        rec.detach()
        assert not rec.attached
        assert rec not in rt.observers
        assert rt.platform.um.metrics_hook is None
        before = rec.metrics.counter("page_fault_groups_total").value(proc="GPU")
        _fault_once(rt)
        after = rec.metrics.counter("page_fault_groups_total").value(proc="GPU")
        assert after == before

    def test_epoch_hook_follows_tracer(self):
        rt = CudaRuntime(intel_pascal())
        tracer = Tracer().attach(rt)
        rec = TelemetryRecorder()
        rec.attach(rt, tracer)
        tracer.advance_epoch()
        assert rec.metrics.counter("epochs_total").value() == 1
        rec.detach()
        assert tracer.epoch_hooks == []
        tracer.advance_epoch()
        assert rec.metrics.counter("epochs_total").value() == 1

    def test_multi_session_tracks(self):
        rec = TelemetryRecorder()
        rt1 = CudaRuntime(intel_pascal())
        rt2 = CudaRuntime(intel_pascal())
        rec.attach(rt1)
        rec.attach(rt2)
        _fault_once(rt2)
        names = [e["args"]["name"] for e in rec.timeline.to_dict()["traceEvents"]
                 if e["name"] == "process_name"]
        assert len(names) == 2
        rec.detach(rt1)
        assert rec.attached

    def test_context_auto_attaches_via_make_session(self):
        rec = TelemetryRecorder()
        telemetry_context.install(rec)
        try:
            session = make_session("intel-pascal", materialize=False)
        finally:
            telemetry_context.uninstall()
        assert rec.attached
        assert rec in session.runtime.observers
        rec.detach()
        assert telemetry_context.current_recorder() is None


class TestFlush:
    def test_flush_writes_all_artifacts(self, tmp_path):
        rt = CudaRuntime(intel_pascal())
        rec = TelemetryRecorder(jsonl=JsonlWriter(tmp_path / "events.jsonl"))
        rec.attach(rt)
        _fault_once(rt)
        rec.detach()
        paths = rec.flush(tmp_path)
        doc = json.loads(paths["timeline"].read_text())
        assert doc["traceEvents"]
        prom = paths["metrics"].read_text()
        assert "xplacer_sim_time_seconds" in prom
        assert "xplacer_link_transfer_bytes" in prom
        assert (tmp_path / "events.jsonl").stat().st_size > 0

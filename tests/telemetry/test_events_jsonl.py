"""Tests for the structured JSONL stream and its manifest protocol."""

import json

import pytest

from repro.memsim import Event, EventKind, Processor, intel_pascal
from repro.telemetry import (
    SCHEMA_VERSION,
    JsonlWriter,
    StringJsonl,
    encode_driver_event,
    read_jsonl,
    run_manifest,
)


class TestManifest:
    def test_describes_platform_and_run(self):
        m = run_manifest(intel_pascal(), workload="sw", config={"n": 160})
        assert m["type"] == "manifest"
        assert m["schema_version"] == SCHEMA_VERSION
        assert m["workload"] == "sw"
        assert m["config"] == {"n": 160}
        assert m["platform"]["name"] == "intel-pascal"
        assert m["platform"]["gpu_memory_bytes"] > 0
        assert m["platform"]["link_coherent"] is False

    def test_platform_optional(self):
        assert "platform" not in run_manifest()


class TestWriter:
    def test_manifest_must_come_first(self):
        w = StringJsonl()
        with pytest.raises(ValueError):
            w.write({"type": "kernel", "name": "k"})
        w.write(run_manifest())
        w.write({"type": "kernel", "name": "k"})
        assert w.records == 2

    def test_records_need_a_type(self):
        w = StringJsonl()
        with pytest.raises(ValueError):
            w.write({"name": "untyped"})

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlWriter(path) as w:
            w.write(run_manifest(workload="x"))
            w.write({"type": "epoch", "epoch": 1})
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["manifest", "epoch"]
        assert records[0]["workload"] == "x"

    def test_enums_encoded_by_value(self):
        w = StringJsonl()
        w.write(run_manifest())
        w.write({"type": "x", "kind": EventKind.MIGRATION})
        last = json.loads(w.getvalue().splitlines()[-1])
        assert last["kind"] == "migration"


class TestDriverEventEncoding:
    def test_flat_record(self):
        ev = Event(EventKind.PAGE_FAULT, 0.5, Processor.GPU, pages=4,
                   nbytes=0, cost=0.001, detail="x")
        rec = encode_driver_event(ev)
        assert rec == {
            "type": "driver_event", "id": -1, "kind": "page_fault", "t": 0.5,
            "proc": "GPU", "pages": 4, "bytes": 0, "cost": 0.001,
            "detail": "x",
        }

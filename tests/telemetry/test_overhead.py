"""Tests for the instrumentation-overhead harness (paper Table III shape)."""

from repro.telemetry.overhead import (
    OVERHEAD_WORKLOADS,
    format_rows,
    measure_overhead,
)


class TestMeasureOverhead:
    def test_reports_at_least_two_workloads(self):
        rows = measure_overhead(("sw", "lulesh"), repeats=1)
        assert len(rows) == 2
        for row in rows:
            assert row["workload"] in OVERHEAD_WORKLOADS
            for key in ("plain_s", "traced_s", "telemetry_s", "heat_s",
                        "detached_s"):
                assert row[key] > 0
            # Instrumented runs do strictly more work; allow generous
            # noise margins rather than asserting exact ordering.
            assert row["telemetry_x"] > 0.5
            assert row["traced_x"] > 0.5
            assert row["heat_x"] > 0.5
            # Heat recording rides the traced path; its marginal cost
            # must stay well under the 2x acceptance bar.
            assert row["heat_vs_traced_x"] < 2.0

    def test_disabled_telemetry_is_cheap(self):
        # Acceptance bound: attach+detach must leave the hot path alone
        # (<2x of a never-attached run, and that's already generous).
        (row,) = measure_overhead(("sw",), repeats=3)
        assert row["detached_x"] < 2.0

    def test_format_rows_renders_table(self):
        rows = [{
            "workload": "sw", "plain_s": 0.1, "traced_s": 0.2,
            "telemetry_s": 0.3, "heat_s": 0.25, "detached_s": 0.11,
            "traced_x": 2.0, "telemetry_x": 3.0, "heat_x": 2.5,
            "heat_vs_traced_x": 1.25, "detached_x": 1.1,
        }]
        text = format_rows(rows)
        assert "sw" in text
        assert "3.0x" in text
        assert "average telemetry overhead" in text
        assert "average heat overhead vs traced" in text
        assert "1.25x" in text

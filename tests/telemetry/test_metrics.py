"""Tests for the labeled metrics registry and its Prometheus exposition."""

import math

import pytest

from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("faults_total", "fault groups")
        c.inc()
        c.inc(2)
        assert c.value() == 3.0

    def test_labeled_series_are_independent(self):
        c = Counter("pages_total")
        c.inc(4, proc="GPU")
        c.inc(1, proc="CPU")
        assert c.value(proc="GPU") == 4.0
        assert c.value(proc="CPU") == 1.0
        assert c.value(proc="TPU") == 0.0

    def test_negative_increment_rejected(self):
        c = Counter("x_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_label_order_does_not_matter(self):
        c = Counter("x_total")
        c.inc(1, a="1", b="2")
        c.inc(1, b="2", a="1")
        assert c.value(b="2", a="1") == 2.0


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("pages_in_use")
        g.set(10)
        g.inc(-3)
        assert g.value() == 7.0


class TestHistogram:
    def test_buckets_are_cumulative_in_exposition(self):
        h = Histogram("lat_seconds", buckets=(0.001, 0.1, math.inf))
        h.observe(0.0005)
        h.observe(0.05)
        h.observe(5.0)
        text = "\n".join(h.expose())
        assert 'lat_seconds_bucket{le="0.001"} 1' in text
        assert 'lat_seconds_bucket{le="0.1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text

    def test_sum_tracks_observations(self):
        h = Histogram("s_seconds", buckets=(1.0,))
        h.observe(0.25)
        h.observe(0.5)
        assert "s_seconds_sum 0.75" in "\n".join(h.expose())

    def test_inf_bucket_always_present(self):
        h = Histogram("t_seconds", buckets=(1.0, 2.0))
        assert h.bounds[-1] == math.inf


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("faults_total")
        b = reg.counter("faults_total")
        assert a is b
        assert len(reg) == 1

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_prefix_applied(self):
        reg = MetricsRegistry("xplacer_")
        reg.counter("faults_total").inc(1)
        assert "faults_total" in reg
        assert "xplacer_faults_total 1" in reg.to_prometheus()

    def test_invalid_names_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name")
        with pytest.raises(ValueError):
            reg.counter("1bad")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(2, proc="GPU")
        reg.gauge("b").set(1.5)
        snap = reg.snapshot()
        assert snap["a_total"] == {'{proc="GPU"}': 2.0}
        assert snap["b"] == {"": 1.5}

    def test_exposition_has_help_and_type_lines(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "things").inc(1)
        reg.histogram("h_seconds").observe(0.01)
        text = reg.to_prometheus()
        assert "# HELP a_total things" in text
        assert "# TYPE a_total counter" in text
        assert "# TYPE h_seconds histogram" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("a_total").inc(1, k='say "hi"\n')
        assert r'{k="say \"hi\"\n"}' in reg.to_prometheus()

    def test_help_escaping(self):
        # Exposition format: HELP values escape backslash and newline.
        reg = MetricsRegistry()
        reg.counter("a_total", "path C:\\tmp\nsecond line").inc(1)
        text = reg.to_prometheus()
        assert r"# HELP a_total path C:\\tmp\nsecond line" in text
        # No raw newline may split the HELP line in two.
        help_lines = [l for l in text.splitlines() if l.startswith("# HELP")]
        assert help_lines == [r"# HELP a_total path C:\\tmp\nsecond line"]

    def test_histogram_help_escaping(self):
        reg = MetricsRegistry()
        reg.histogram("h_seconds", "a\\b\nc").observe(0.1)
        assert r"# HELP h_seconds a\\b\nc" in reg.to_prometheus()

"""CausalGraph: classification rules, blame rollups, critical path."""

import json

from repro.causes.graph import REPORT_VERSION, CausalGraph, CEvent


def cev(id, kind, *, cost=1e-6, pages=1, nbytes=4096, detail="",
        site="", kernel="", alloc="", parent=-1, time=0.0):
    return CEvent(id=id, kind=kind, time=time, proc="GPU", pages=pages,
                  nbytes=nbytes, cost=cost, detail=detail, site=site,
                  kernel=kernel, api="", alloc=alloc, parent=parent)


class TestClassification:
    def cat(self, *events):
        graph = CausalGraph(events)
        return graph.category(events[-1])

    def test_kind_determined_categories(self):
        assert self.cat(cev(0, "eviction")) == "capacity_pressure"
        assert self.cat(cev(0, "invalidation")) == "read_mostly_write"
        assert self.cat(cev(0, "transfer")) == "explicit_transfer"
        assert self.cat(cev(0, "duplication")) == "read_duplication"
        assert self.cat(cev(0, "remote_access")) == "remote_access"
        assert self.cat(cev(0, "populate")) == "setup"
        assert self.cat(cev(0, "map")) == "setup"

    def test_first_touch_fault(self):
        assert self.cat(cev(0, "page_fault",
                            detail="first-touch")) == "first_touch"

    def test_orphan_fault_is_demand_migration(self):
        assert self.cat(cev(0, "page_fault")) == "demand_migration"

    def test_refault_after_eviction(self):
        assert self.cat(
            cev(0, "eviction"),
            cev(1, "page_fault", parent=0),
        ) == "oversubscription_refault"

    def test_fault_after_migration_or_invalidation_is_ping_pong(self):
        assert self.cat(
            cev(0, "migration"),
            cev(1, "page_fault", parent=0),
        ) == "ping_pong"
        assert self.cat(
            cev(0, "invalidation"),
            cev(1, "page_fault", parent=0),
        ) == "ping_pong"

    def test_prefetch_migration(self):
        assert self.cat(cev(0, "migration",
                            detail="prefetch 4 pages")) == "prefetch"

    def test_migration_inherits_the_triggering_faults_category(self):
        # eviction -> refault -> migration: the migration is still part
        # of the oversubscription story, not a fresh demand migration.
        assert self.cat(
            cev(0, "eviction"),
            cev(1, "page_fault", parent=0),
            cev(2, "migration", parent=1),
        ) == "oversubscription_refault"

    def test_orphan_migration_is_demand_migration(self):
        assert self.cat(cev(0, "migration")) == "demand_migration"


class TestBlame:
    def test_moved_counts_link_crossing_bytes_only(self):
        graph = CausalGraph([
            cev(0, "migration", nbytes=4096),
            cev(1, "remote_access", nbytes=256),
            cev(2, "eviction", nbytes=8192),
            cev(3, "populate", nbytes=4096),
        ])
        totals = graph.blame()["totals"]
        assert totals["bytes"] == 4096 + 256 + 8192 + 4096
        assert totals["moved"] == 4096 + 8192

    def test_rollup_keys_and_ordering(self):
        graph = CausalGraph([
            cev(0, "migration", site="a.py:1", alloc="H", cost=1e-6),
            cev(1, "migration", site="b.py:2", alloc="P", cost=3e-6),
            cev(2, "remote_access", site="a.py:1", alloc="H", cost=2e-6,
                nbytes=256),
        ])
        blame = graph.blame()
        # Cost-descending, key as tiebreak.
        assert [r["site"] for r in blame["by_site"]] == ["a.py:1", "b.py:2"]
        assert [r["alloc"] for r in blame["by_alloc"]] == ["H", "P"]
        h = blame["by_alloc"][0]
        assert h["events"] == 2
        assert h["moved"] == 4096
        assert h["bytes"] == 4096 + 256

    def test_alloc_rows_carry_the_allocating_site(self):
        graph = CausalGraph([cev(0, "migration", alloc="H")],
                            alloc_sites={"H": "sw.py:89"})
        h = graph.blame()["by_alloc"][0]
        assert h["alloc_site"] == "sw.py:89"

    def test_unattributed_events_land_in_sentinel_buckets(self):
        blame = CausalGraph([cev(0, "migration")]).blame()
        assert blame["by_site"][0]["site"] == "<unattributed>"
        assert blame["by_alloc"][0]["alloc"] == "<anonymous>"


class TestCriticalPath:
    def test_picks_the_longest_cost_chain(self):
        # Chain 0->1->2 costs 6; lone event 3 costs 5.
        graph = CausalGraph([
            cev(0, "page_fault", cost=1e-6),
            cev(1, "migration", cost=2e-6, parent=0),
            cev(2, "page_fault", cost=3e-6, parent=1),
            cev(3, "transfer", cost=5e-6),
        ])
        path = graph.critical_path()
        assert [n["id"] for n in path["events"]] == [0, 1, 2]
        assert path["cost"] == round(6e-6, 9)
        assert path["length"] == 3
        assert path["truncated"] == 0

    def test_truncation_keeps_the_expensive_tail(self):
        events = [cev(0, "page_fault", cost=1e-6)]
        events += [cev(i, "migration", cost=1e-6, parent=i - 1)
                   for i in range(1, 10)]
        path = CausalGraph(events).critical_path(max_nodes=4)
        assert path["truncated"] == 6
        assert path["length"] == 10
        assert [n["id"] for n in path["events"]] == [6, 7, 8, 9]

    def test_empty_graph(self):
        path = CausalGraph([]).critical_path()
        assert path == {"cost": 0.0, "length": 0, "truncated": 0,
                        "events": []}


class TestReport:
    def test_report_shape_and_determinism(self):
        events = [
            cev(0, "page_fault", site="a.py:1", alloc="H"),
            cev(1, "migration", parent=0, site="a.py:1", alloc="H"),
        ]
        a = CausalGraph(events, {"H": "sw.py:89"}).report(
            workload="sw", platform="pcie")
        b = CausalGraph(events, {"H": "sw.py:89"}).report(
            workload="sw", platform="pcie")
        assert a["type"] == "causes_report"
        assert a["report_version"] == REPORT_VERSION
        assert a["workload"] == "sw"
        assert json.dumps(a) == json.dumps(b)

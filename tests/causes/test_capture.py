"""Causal capture: artifacts, schema gating, flag hygiene."""

import json

import pytest

from repro.causes.capture import (
    IncompatibleCaptureError,
    build_report,
    causal_capture,
    load_report,
)
from repro.causes.graph import REPORT_VERSION
from repro.workloads.base import make_session


class TestRunArtifacts:
    def test_capture_writes_the_full_bundle(self, sw_run):
        for name in ("events.jsonl", "timeline.json", "metrics.prom",
                     "causes.json"):
            assert (sw_run / name).exists(), name

    def test_report_attributes_real_work(self, sw_run):
        report = json.loads((sw_run / "causes.json").read_text())
        assert report["report_version"] == REPORT_VERSION
        assert report["workload"] == "sw"
        assert report["totals"]["events"] > 0
        assert report["totals"]["cost"] > 0
        assert report["critical_path"]["events"], "no critical path"
        # Site blame reaches back into workload source, not driver code.
        sites = [r["site"] for r in report["by_site"]]
        assert any("sw.py" in s for s in sites), sites

    def test_events_carry_ids_and_cause_links(self, sw_run):
        causes = 0
        with open(sw_run / "events.jsonl") as fh:
            manifest = json.loads(fh.readline())
            assert manifest["schema_version"] >= 2
            for line in fh:
                rec = json.loads(line)
                if rec.get("type") != "driver_event":
                    continue
                assert rec["id"] >= 0
                causes += "cause" in rec
        assert causes > 0, "no cause links in the stream"


class TestLoadReport:
    def test_load_prefers_the_saved_report(self, sw_run):
        assert load_report(sw_run) == json.loads(
            (sw_run / "causes.json").read_text())

    def test_rebuild_from_stream_matches_the_saved_report(self, sw_run):
        saved = json.loads((sw_run / "causes.json").read_text())
        assert build_report(sw_run) == saved

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_report(tmp_path / "nope")

    def test_v1_stream_is_rejected(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(json.dumps(
            {"type": "manifest", "schema_version": 1}) + "\n")
        with pytest.raises(IncompatibleCaptureError, match="schema_version"):
            load_report(tmp_path)

    def test_stream_without_manifest_is_rejected(self, tmp_path):
        (tmp_path / "events.jsonl").write_text(json.dumps(
            {"type": "driver_event", "kind": "migration"}) + "\n")
        with pytest.raises(IncompatibleCaptureError, match="manifest"):
            load_report(tmp_path)

    def test_future_report_version_is_rejected(self, tmp_path, sw_run):
        report = json.loads((sw_run / "causes.json").read_text())
        report["report_version"] = REPORT_VERSION + 1
        (tmp_path / "causes.json").write_text(json.dumps(report))
        with pytest.raises(IncompatibleCaptureError, match="report_version"):
            load_report(tmp_path)


class TestFlagHygiene:
    def test_tracking_is_off_by_default(self):
        session = make_session("intel-pascal", trace=True, materialize=False)
        assert session.platform.um.track_causes is False

    def test_causal_capture_restores_the_driver_flags(self):
        session = make_session("intel-pascal", trace=True, materialize=False)
        um = session.platform.um
        with causal_capture(session.platform, sites=False):
            assert um.track_causes is True
            assert um.blame_sites is False
        assert um.track_causes is False

    def test_causal_capture_restores_on_error(self):
        session = make_session("intel-pascal", trace=True, materialize=False)
        um = session.platform.um
        with pytest.raises(RuntimeError, match="boom"):
            with causal_capture(session.platform):
                raise RuntimeError("boom")
        assert um.track_causes is False

"""repro-why command line: exit codes and JSON output."""

import json

from repro.causes.cli import main


class TestRun:
    def test_json_run_succeeds_and_prints_a_report(self, tmp_path, capsys):
        rc = main(["run", "--workload", "sw", "--platform", "pcie",
                   "--out", str(tmp_path / "run"), "--footprint", "--json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["type"] == "causes_report"
        assert report["totals"]["events"] > 0

    def test_unknown_workload_exits_2(self, tmp_path, capsys):
        rc = main(["run", "--workload", "nope", "--out", str(tmp_path)])
        assert rc == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_unknown_platform_exits_2(self, tmp_path, capsys):
        rc = main(["run", "--platform", "abacus", "--out", str(tmp_path)])
        assert rc == 2
        assert "unknown platform" in capsys.readouterr().err

    def test_out_is_required(self, capsys):
        assert main(["run"]) == 2

    def test_list_exits_0(self, capsys):
        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "sw-advised" in out
        assert "pcie" in out


class TestDiff:
    def test_self_diff_exits_0(self, sw_run, sw_run_again, capsys):
        rc = main(["diff", str(sw_run), str(sw_run_again)])
        assert rc == 0
        assert "verdict" in capsys.readouterr().out

    def test_json_and_out_file(self, sw_run, sw_run_again, tmp_path, capsys):
        out = tmp_path / "diff.json"
        rc = main(["diff", str(sw_run), str(sw_run_again),
                   "--json", "--out", str(out)])
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        assert json.loads(out.read_text()) == printed

    def test_missing_run_exits_2(self, sw_run, tmp_path, capsys):
        rc = main(["diff", str(sw_run), str(tmp_path / "missing")])
        assert rc == 2
        assert "events.jsonl" in capsys.readouterr().err

    def test_fail_on_regression(self, sw_run, sw_advised_run, capsys):
        # On PCIe the advised variant trades migrations for per-iteration
        # remote accesses: moved bytes collapse but total simulated cost
        # regresses -- exactly what --fail-on-regression must catch.
        rc = main(["diff", str(sw_run), str(sw_advised_run), "--json",
                   "--fail-on-regression"])
        captured = json.loads(capsys.readouterr().out)
        if captured["summary"]["verdict"] == "regression":
            assert rc == 1
        else:
            assert rc == 0

    def test_no_subcommand_prints_help_and_exits_2(self, capsys):
        assert main([]) == 2
        assert "repro-why" in capsys.readouterr().out

"""Differential reports: flags, alignment, golden determinism."""

import json

from repro.causes.capture import load_report
from repro.causes.diff import DIFF_VERSION, METRICS, diff_reports


def report(*, cost=10.0, moved=4096, allocs=None):
    allocs = allocs if allocs is not None else [
        {"alloc": "H", "events": 2, "pages": 2, "bytes": 8192,
         "moved": moved, "cost": cost, "alloc_site": "sw.py:89"},
    ]
    return {
        "workload": "sw", "platform": "pcie",
        "totals": {"events": 2, "pages": 2, "bytes": 8192,
                   "moved": moved, "cost": cost},
        "by_alloc": allocs,
        "by_site": [], "by_category": [],
        "critical_path": {"cost": cost, "length": 2},
    }


class TestFlags:
    def test_lower_cost_is_an_improvement(self):
        diff = diff_reports(report(cost=10.0), report(cost=5.0))
        assert diff["totals"]["cost"]["flag"] == "improved"
        assert diff["summary"]["verdict"] == "improvement"

    def test_higher_cost_is_a_regression(self):
        diff = diff_reports(report(cost=10.0), report(cost=20.0))
        assert diff["totals"]["cost"]["flag"] == "regressed"
        assert diff["summary"]["verdict"] == "regression"

    def test_sub_threshold_changes_are_unchanged(self):
        diff = diff_reports(report(cost=10.0), report(cost=10.2),
                            threshold=0.05)
        assert diff["totals"]["cost"]["flag"] == "unchanged"
        assert diff["summary"]["verdict"] == "neutral"
        # Tightening the threshold flips the same delta to a regression.
        diff = diff_reports(report(cost=10.0), report(cost=10.2),
                            threshold=0.01)
        assert diff["totals"]["cost"]["flag"] == "regressed"

    def test_delta_and_pct_fields(self):
        diff = diff_reports(report(moved=4096), report(moved=0))
        moved = diff["totals"]["moved"]
        assert moved == {"a": 4096, "b": 0, "delta": -4096, "pct": -100.0,
                         "flag": "improved"}

    def test_growth_from_zero_has_no_percentage(self):
        diff = diff_reports(report(moved=0), report(moved=4096))
        assert diff["totals"]["moved"]["pct"] is None
        assert diff["totals"]["moved"]["flag"] == "regressed"


class TestAlignment:
    def test_keys_missing_on_one_side_are_kept(self):
        only_a = report()
        only_b = report(allocs=[
            {"alloc": "P", "events": 1, "pages": 1, "bytes": 4096,
             "moved": 4096, "cost": 1.0, "alloc_site": "sw.py:90"},
        ])
        diff = diff_reports(only_a, only_b)
        by_alloc = {e["alloc"]: e for e in diff["by_alloc"]}
        assert by_alloc["H"]["in_a"] and not by_alloc["H"]["in_b"]
        assert by_alloc["H"]["moved"]["b"] == 0
        assert by_alloc["H"]["moved"]["flag"] == "improved"
        assert by_alloc["P"]["in_b"] and not by_alloc["P"]["in_a"]
        assert by_alloc["P"]["moved"]["flag"] == "regressed"

    def test_alloc_sites_are_carried_from_both_sides(self):
        diff = diff_reports(report(), report())
        h = diff["by_alloc"][0]
        assert h["alloc_site_a"] == "sw.py:89"
        assert h["alloc_site_b"] == "sw.py:89"

    def test_every_metric_is_compared(self):
        diff = diff_reports(report(), report())
        assert set(METRICS) <= set(diff["by_alloc"][0])
        assert set(METRICS) <= set(diff["totals"])


class TestGoldenDeterminism:
    """Satellite: identical runs diff to zero, byte-for-byte stable."""

    def test_independent_captures_of_the_same_run_are_identical(
            self, sw_run, sw_run_again):
        assert ((sw_run / "causes.json").read_bytes()
                == (sw_run_again / "causes.json").read_bytes())

    def test_self_diff_is_all_zero(self, sw_run, sw_run_again):
        diff = diff_reports(load_report(sw_run), load_report(sw_run_again))
        assert diff["diff_version"] == DIFF_VERSION
        for metric in METRICS:
            assert diff["totals"][metric]["delta"] == 0, metric
            assert diff["totals"][metric]["flag"] == "unchanged"
        for table in ("by_alloc", "by_site", "by_category"):
            for entry in diff[table]:
                for metric in METRICS:
                    assert entry[metric]["delta"] == 0, (table, entry)
        assert diff["critical_path"]["cost"]["delta"] == 0
        assert diff["summary"] == {"improved_keys": 0, "regressed_keys": 0,
                                   "verdict": "neutral"}

    def test_diff_serialization_is_byte_stable(self, sw_run, sw_run_again):
        def render():
            diff = diff_reports(load_report(sw_run),
                                load_report(sw_run_again),
                                label_a="A", label_b="B")
            return json.dumps(diff, indent=2, sort_keys=False)

        assert render() == render()

"""Acceptance: diff attributes the advise win to the allocation's site.

The paper's Section V story, end to end: Smith-Waterman on plain managed
memory migrates H back and forth every wavefront; adding
``cudaMemAdviseSetAccessedBy`` pins host residency and turns those
migrations into zero-copy remote accesses.  ``repro-why diff`` must show
the transfer-byte reduction *and* name the allocating source line.
"""

import json

from repro.causes.capture import load_report
from repro.causes.diff import diff_reports


class TestManagedVsAdvised:
    def diff(self, sw_run, sw_advised_run):
        return diff_reports(load_report(sw_run), load_report(sw_advised_run),
                            label_a="managed", label_b="advised")

    def test_total_moved_bytes_improve(self, sw_run, sw_advised_run):
        moved = self.diff(sw_run, sw_advised_run)["totals"]["moved"]
        assert moved["flag"] == "improved", moved
        assert moved["pct"] < -50, moved

    def test_reduction_is_attributed_to_the_advised_allocation(
            self, sw_run, sw_advised_run):
        by_alloc = self.diff(sw_run, sw_advised_run)["by_alloc"]
        h = next(e for e in by_alloc if e["alloc"] == "H")
        assert h["moved"]["flag"] == "improved", h["moved"]
        assert h["moved"]["b"] < h["moved"]["a"]

    def test_the_allocating_source_site_is_named(self, sw_run,
                                                 sw_advised_run):
        by_alloc = self.diff(sw_run, sw_advised_run)["by_alloc"]
        h = next(e for e in by_alloc if e["alloc"] == "H")
        assert "sw.py" in h["alloc_site_a"], h["alloc_site_a"]

    def test_remote_access_category_appears_only_in_the_advised_run(
            self, sw_run, sw_advised_run):
        by_cat = {e["category"]: e
                  for e in self.diff(sw_run, sw_advised_run)["by_category"]}
        remote = by_cat.get("remote_access")
        assert remote is not None
        assert remote["events"]["b"] > remote["events"]["a"]

    def test_both_variants_compute_the_same_score(self, sw_run,
                                                  sw_advised_run):
        # The advice must change placement, never results: compare the
        # run manifests' recorded workload metadata.
        def manifest(run):
            with open(run / "events.jsonl") as fh:
                return json.loads(fh.readline())

        a, b = manifest(sw_run), manifest(sw_advised_run)
        assert a["schema_version"] == b["schema_version"]

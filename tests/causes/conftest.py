"""Shared captured-run fixtures for the causes test suite.

Captures are footprint-only (no numpy backing) so the whole suite stays
fast; each fixture is session-scoped because a capture is read-only once
written.
"""

import pytest

from repro.causes.capture import run_with_causes


def _capture(tmp_path_factory, workload, tag):
    out = tmp_path_factory.mktemp(tag)
    run_with_causes(workload, "intel-pascal", out, materialize=False)
    return out


@pytest.fixture(scope="session")
def sw_run(tmp_path_factory):
    """Baseline Smith-Waterman on plain managed memory."""
    return _capture(tmp_path_factory, "sw", "why-managed")


@pytest.fixture(scope="session")
def sw_run_again(tmp_path_factory):
    """A second, independent capture of the identical baseline run."""
    return _capture(tmp_path_factory, "sw", "why-managed-again")


@pytest.fixture(scope="session")
def sw_advised_run(tmp_path_factory):
    """Same workload with cudaMemAdviseSetAccessedBy on H and P."""
    return _capture(tmp_path_factory, "sw-advised", "why-advised")

"""``repro-sig`` CLI goldens: byte-determinism, matching, exit codes."""

import json

import pytest

from repro.signature.cli import main
from repro.signature.index import DEFAULT_MATCH_THRESHOLD


def _compute(tmp_path, name, *extra):
    out = tmp_path / f"{name}.json"
    rc = main(["compute", "--out", str(out), *extra])
    assert rc == 0
    return out


@pytest.fixture(scope="module")
def runs(tmp_path_factory):
    """Two identical pathfinder runs + one structurally different run."""
    base = tmp_path_factory.mktemp("sig-cli")
    a = _compute(base, "pf-a", "--workload", "pathfinder",
                 "--platform", "pcie")
    b = _compute(base, "pf-b", "--workload", "pathfinder",
                 "--platform", "pcie")
    other = _compute(base, "lud", "--workload", "lud", "--platform", "pcie")
    return a, b, other


class TestComputeGolden:
    def test_two_runs_are_byte_identical(self, runs):
        a, b, _ = runs
        assert a.read_bytes() == b.read_bytes()

    def test_document_shape(self, runs):
        a, _, _ = runs
        doc = json.loads(a.read_text())
        assert doc["type"] == "run_signature"
        assert doc["feature_version"] == 1
        assert doc["workload"] == "pathfinder"
        assert doc["allocs"] and doc["epoch_vectors"] and doc["phases"]

    def test_out_directory_form(self, tmp_path, capsys):
        rc = main(["compute", "--workload", "lud", "--platform", "pcie",
                   "--out", str(tmp_path / "d")])
        assert rc == 0
        assert (tmp_path / "d" / "signature.json").exists()
        assert "written:" in capsys.readouterr().out

    def test_compute_requires_a_source(self, tmp_path, capsys):
        rc = main(["compute", "--out", str(tmp_path / "x.json")])
        assert rc == 2
        assert "--workload or --npz" in capsys.readouterr().err


class TestCompareGolden:
    def test_same_workload_compares_to_one(self, runs, capsys):
        a, b, _ = runs
        rc = main(["compare", str(a), str(b), "--json"])
        assert rc == 0
        out = json.loads(capsys.readouterr().out)
        assert out["similarity"] == 1.0

    def test_compare_output_is_byte_deterministic(self, runs, capsys):
        a, _, other = runs
        main(["compare", str(a), str(other), "--json"])
        first = capsys.readouterr().out
        main(["compare", str(a), str(other), "--json"])
        assert capsys.readouterr().out == first

    def test_fail_below_gate(self, runs, capsys):
        a, _, other = runs
        assert main(["compare", str(a), str(other),
                     "--fail-below", "0.99"]) == 3
        assert "below" in capsys.readouterr().err

    def test_fail_above_gate_for_distinctness(self, runs, capsys):
        a, b, _ = runs
        assert main(["compare", str(a), str(b),
                     "--fail-above", "0.999"]) == 3
        assert "above" in capsys.readouterr().err

    def test_different_workloads_score_low(self, runs, capsys):
        a, _, other = runs
        main(["compare", str(a), str(other), "--json"])
        out = json.loads(capsys.readouterr().out)
        # Disjoint allocation sets: nothing pairs, similarity collapses.
        assert out["similarity"] < DEFAULT_MATCH_THRESHOLD


class TestMatchCli:
    def test_add_then_match(self, runs, tmp_path, capsys):
        a, b, other = runs
        db = tmp_path / "db"
        assert main(["match", str(a), "--index", str(db),
                     "--add", "pf-1", "--json"]) == 0
        capsys.readouterr()
        assert main(["match", str(b), "--index", str(db), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["best"]["name"] == "pf-1"
        assert report["best"]["similarity"] >= DEFAULT_MATCH_THRESHOLD
        assert main(["match", str(other), "--index", str(db),
                     "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["best"] is None

    def test_text_rendering(self, runs, tmp_path, capsys):
        a, b, _ = runs
        db = tmp_path / "db2"
        main(["match", str(a), "--index", str(db), "--add", "pf-1"])
        capsys.readouterr()
        main(["match", str(b), "--index", str(db)])
        out = capsys.readouterr().out
        assert "MATCH" in out and "best: pf-1" in out

"""Phase detection: change-points land exactly on Spatter family switches."""

import numpy as np

from repro.heatmap.store import HeatStore
from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.signature.phases import (
    DEFAULT_THRESHOLD,
    PhaseDetector,
    detect_phases,
)
from repro.signature.vector import (
    N_FEATURES,
    cosine_similarity,
    epoch_vector,
    signature_from_store,
)
from repro.workloads.spatter import indirection, mostly_stride_1, uniform_stride

SPREAD = 4096

STRIDE1 = uniform_stride(1, length=16, count=32)
MS1 = mostly_stride_1(length=16, jump=256, count=32)
INDIRECT = indirection(length=128, spread=SPREAD)


def _spatter_epoch_store(families):
    """One store whose epoch ``e`` replays Spatter family ``families[e]``.

    Each epoch drives the GPU-read channel with the family's flat index
    stream -- the gather side of the pattern, which is where the families
    actually differ.
    """
    space = AddressSpace()
    data = space.allocate(SPREAD * 4, MemoryKind.MANAGED, label="data")
    store = HeatStore(nbuckets=64, attribute=False)
    for e, spec in enumerate(families):
        store.record(data, Processor.GPU, is_write=False,
                     idx=spec.flat_indices() % SPREAD)
        store.advance_epoch(e)
    return store


class TestDetectorMechanics:
    def test_constant_stream_is_one_phase(self):
        vec = np.zeros(N_FEATURES)
        vec[0] = 1.0
        phases = detect_phases([(e, vec, 100) for e in range(5)])
        assert len(phases) == 1
        assert (phases[0].start_epoch, phases[0].end_epoch) == (0, 4)
        assert phases[0].epochs == 5 and phases[0].total == 500
        assert phases[0].distance == 0.0

    def test_zero_total_epochs_are_ignored(self):
        vec = np.ones(N_FEATURES)
        det = PhaseDetector()
        assert not det.started
        assert det.update(0, vec, 0) == (0.0, False)
        assert not det.started
        det.update(1, vec, 10)
        assert det.started
        assert det.finish()[0].epochs == 1

    def test_orthogonal_switch_opens_new_phase_at_that_epoch(self):
        a = np.zeros(N_FEATURES)
        a[0] = 1.0
        b = np.zeros(N_FEATURES)
        b[3] = 1.0
        stream = [(e, a, 10) for e in range(3)] + \
                 [(e, b, 10) for e in range(3, 6)]
        phases = detect_phases(stream)
        assert [p.index for p in phases] == [0, 1]
        assert phases[0].end_epoch == 2
        assert phases[1].start_epoch == 3
        assert phases[1].distance > DEFAULT_THRESHOLD

    def test_detector_is_deterministic(self):
        rng = np.random.default_rng(3)
        stream = [(e, rng.random(N_FEATURES), int(rng.integers(1, 100)))
                  for e in range(20)]
        a = [p.to_dict() for p in detect_phases(stream)]
        b = [p.to_dict() for p in detect_phases(stream)]
        assert a == b


class TestSpatterFamilySwitch:
    def test_stride_to_indirection_boundary(self):
        """Four stride-1 epochs then four indirection epochs: one switch."""
        sig = signature_from_store(
            _spatter_epoch_store([STRIDE1] * 4 + [INDIRECT] * 4))
        assert len(sig.phases) == 2
        assert sig.phases[0]["end_epoch"] == 3
        assert sig.phases[1]["start_epoch"] == 4
        assert sig.phases[1]["distance"] > DEFAULT_THRESHOLD

    def test_stride_to_ms1_boundary(self):
        """mostly-stride-1 is its own Spatter family: boundary detected."""
        sig = signature_from_store(
            _spatter_epoch_store([STRIDE1] * 3 + [MS1] * 3))
        assert [p["start_epoch"] for p in sig.phases] == [0, 3]

    def test_aba_program_finds_both_switches(self):
        """stride -> indirection -> stride again: two change-points."""
        sig = signature_from_store(_spatter_epoch_store(
            [STRIDE1] * 3 + [INDIRECT] * 3 + [STRIDE1] * 3))
        assert [p["start_epoch"] for p in sig.phases] == [0, 3, 6]
        assert [p["end_epoch"] for p in sig.phases] == [2, 5, 8]

    def test_intra_family_jitter_stays_one_phase(self):
        """Different seeds of one indirection family do not split phases."""
        sig = signature_from_store(_spatter_epoch_store(
            [indirection(length=128, spread=SPREAD, seed=s)
             for s in range(1, 7)]))
        assert len(sig.phases) == 1

    def test_epoch_vectors_separate_families(self):
        stride = epoch_vector(_spatter_epoch_store(
            [STRIDE1]).allocations()[0].epochs[0].counts)
        indirect = epoch_vector(_spatter_epoch_store(
            [INDIRECT]).allocations()[0].epochs[0].counts)
        assert cosine_similarity(stride, indirect) \
            < 1.0 - DEFAULT_THRESHOLD

"""Live phase tracking: markers in the event log with cause links."""

from repro.heatmap.store import HeatStore
from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.memsim.events import EventKind, EventLog
from repro.runtime import Tracer
from repro.signature.tracker import PhaseTracker

WORDS = 1024


def _run(tracker, *, epochs_a=3, epochs_b=3):
    """Drive a tracer through two access-pattern regimes."""
    space = AddressSpace()
    alloc = space.allocate(WORDS * 4, MemoryKind.MANAGED, label="m")
    tracer = tracker._tracer or Tracer()
    tracer.trc_register(alloc)
    for e in range(epochs_a + epochs_b):
        if e < epochs_a:  # regime A: dense GPU read
            tracer.on_access(Processor.GPU, alloc, 0, 4, WORDS,
                             is_write=False, indices=None, is_rmw=False)
        else:             # regime B: sparse CPU write, far end
            tracer.on_access(Processor.CPU, alloc, (WORDS - 64) * 4, 4, 64,
                             is_write=True, indices=None, is_rmw=False)
        tracer.advance_epoch()
    return tracer


def _tracked(log=None):
    tracer = Tracer()
    tracer.heat = HeatStore(nbuckets=32, attribute=False)
    tracker = PhaseTracker(log=log).attach(tracer)
    return tracker


class TestPhaseEvents:
    def test_markers_and_cause_chain(self):
        log = EventLog()
        tracker = _tracked(log)
        _run(tracker)
        tracker.finish()
        events = [e for e in log if e.kind is EventKind.PHASE]
        details = [e.detail.split()[0] for e in events]
        assert details == ["phase_begin", "phase_end", "phase_begin",
                           "phase_end"]
        begin0, end0, begin1, end1 = events
        assert "phase=0" in begin0.detail and "phase=1" in begin1.detail
        # phase_end's parent is its begin; next begin's parent is that end.
        assert end0.cause.parent == begin0.id
        assert begin1.cause.parent == end0.id
        assert end1.cause.parent == begin1.id
        assert begin0.cause.parent == -1
        assert all(e.cause.api == "phase" for e in events)

    def test_no_log_still_tracks(self):
        tracker = _tracked(log=None)
        _run(tracker)
        phases = tracker.finish()
        assert len(phases) == 2
        assert tracker.changes == 1

    def test_rollup_shape(self):
        tracker = _tracked(EventLog())
        _run(tracker)
        roll = tracker.rollup()
        assert roll == {"current": 1, "epoch": 5, "changes": 1}

    def test_finish_is_idempotent(self):
        log = EventLog()
        tracker = _tracked(log)
        _run(tracker)
        a = tracker.finish()
        n = sum(1 for e in log if e.kind is EventKind.PHASE)
        assert tracker.finish() == a
        assert sum(1 for e in log if e.kind is EventKind.PHASE) == n

    def test_detach_stops_tracking(self):
        tracker = _tracked(EventLog())
        tracer = tracker._tracer
        tracker.detach()
        assert not tracer.epoch_hooks
        assert not tracer.heat.epoch_listeners

    def test_empty_epochs_emit_nothing(self):
        log = EventLog()
        tracker = _tracked(log)
        tracker._tracer.advance_epoch()
        tracker._tracer.advance_epoch()
        tracker.finish()
        assert not [e for e in log if e.kind is EventKind.PHASE]


class TestAdaptiveSampling:
    def test_auto_mode_tightens_around_transitions(self):
        tracer = Tracer(sample="auto", auto_stride=8, auto_hot=1)
        tracer.heat = HeatStore(nbuckets=32, attribute=False)
        space = AddressSpace()
        alloc = space.allocate(WORDS * 4, MemoryKind.MANAGED, label="m")
        tracer.trc_register(alloc)
        strides = []
        for e in range(8):
            proc = Processor.GPU if e < 4 else Processor.CPU
            tracer.on_access(proc, alloc, 0, 4, WORDS,
                             is_write=e >= 4, indices=None, is_rmw=False)
            tracer.advance_epoch()
            strides.append(tracer.sample)
        # Full rate right after the first epoch and after the regime
        # switch at epoch 4; strided in steady state between them.
        assert strides[0] == 1
        assert strides[4] == 1
        assert strides[2] == 8 and strides[7] == 8
        assert tracer.auto_changes == 1

    def test_describe_counts_words(self):
        tracer = Tracer(sample=4)
        space = AddressSpace()
        alloc = space.allocate(WORDS * 4, MemoryKind.MANAGED, label="m")
        tracer.trc_register(alloc)
        tracer.on_access(Processor.GPU, alloc, 0, 4, WORDS,
                         is_write=False, indices=None, is_rmw=False)
        tracer.advance_epoch()
        desc = tracer.describe()
        assert desc["words_seen"] == WORDS
        assert desc["words_recorded"] == WORDS // 4
        assert desc["measured_rate"] == 0.25
        assert desc["mode"] == "fixed"
        assert desc["epochs"][0] == {"epoch": 0, "seen": WORDS,
                                     "recorded": WORDS // 4, "sample": 4}

    def test_sampling_info_reports_measured_rate(self):
        tracer = Tracer(sample="auto", auto_stride=4)
        tracer.heat = HeatStore(nbuckets=32, attribute=False)
        space = AddressSpace()
        alloc = space.allocate(WORDS * 4, MemoryKind.MANAGED, label="m")
        tracer.trc_register(alloc)
        for _ in range(6):
            tracer.on_access(Processor.GPU, alloc, 0, 4, WORDS,
                             is_write=False, indices=None, is_rmw=False)
            tracer.advance_epoch()
        info = tracer.sampling_info()
        assert info["mode"] == "auto"
        # Warm epochs run 1-in-1, steady state 1-in-4: measured rate
        # sits strictly between the two.
        assert 0.25 < info["measured_rate"] < 1.0
        assert info["phase_changes"] == 0

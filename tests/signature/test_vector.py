"""Access-pattern vectors: determinism, invariances, NPZ round trips."""

import numpy as np
import pytest

from repro.heatmap.store import CHANNELS, HeatStore
from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.signature.vector import (
    FEATURE_NAMES,
    N_FEATURES,
    RunSignature,
    combine_vectors,
    cosine_similarity,
    epoch_vector,
    run_similarity,
    signature_from_npz,
    signature_from_store,
)


def _store_with_pattern(seed: int = 7, *, epochs: int = 3) -> HeatStore:
    """A deterministic two-allocation store with mixed channels."""
    space = AddressSpace()
    a = space.allocate(256 * 4, MemoryKind.MANAGED, label="a")
    b = space.allocate(64 * 4, MemoryKind.MANAGED, label="b")
    store = HeatStore(nbuckets=16, attribute=False)
    rng = np.random.default_rng(seed)
    for e in range(epochs):
        store.record(a, Processor.GPU, is_write=False, lo=0, hi=128)
        store.record(a, Processor.CPU, is_write=True,
                     idx=rng.integers(0, 256, size=32))
        store.record(b, Processor.GPU, is_write=True, lo=0, hi=64)
        store.advance_epoch(e)
    return store


class TestEpochVector:
    def test_empty_matrix_signs_as_zero(self):
        vec = epoch_vector(np.zeros((4, 16), np.int64))
        assert vec.shape == (N_FEATURES,)
        assert not vec.any()

    def test_feature_names_cover_the_vector(self):
        assert len(FEATURE_NAMES) == N_FEATURES
        assert len(set(FEATURE_NAMES)) == N_FEATURES

    def test_all_features_normalized(self):
        counts = np.zeros((4, 16), np.int64)
        counts[2, :8] = 100  # gpu reads, first half
        counts[1, 3] = 50    # cpu writes, one bucket
        vec = epoch_vector(counts)
        assert (vec >= 0.0).all() and (vec <= 1.0).all()

    def test_scale_invariance(self):
        counts = np.zeros((4, 16), np.int64)
        counts[0] = np.arange(16)
        counts[3, ::2] = 9
        assert np.allclose(epoch_vector(counts), epoch_vector(counts * 1000))

    def test_channel_mix_fractions(self):
        counts = np.zeros((4, 8), np.int64)
        counts[0, 0] = 30  # cpu read
        counts[3, 4] = 10  # gpu write
        vec = epoch_vector(counts)
        assert vec[0] == pytest.approx(0.75)
        assert vec[3] == pytest.approx(0.25)

    def test_different_bucket_counts_compare(self):
        """Coarse folding makes a 64-bucket and 16-bucket view similar."""
        fine = np.zeros((4, 64), np.int64)
        fine[2, :32] = 4
        coarse = np.zeros((4, 16), np.int64)
        coarse[2, :8] = 16
        sim = cosine_similarity(epoch_vector(fine), epoch_vector(coarse))
        assert sim > 0.99


class TestCosine:
    def test_identical_vectors(self):
        v = np.linspace(0, 1, N_FEATURES)
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_zero_vector_edge_cases(self):
        z = np.zeros(N_FEATURES)
        v = np.ones(N_FEATURES)
        assert cosine_similarity(z, z) == 1.0
        assert cosine_similarity(z, v) == 0.0

    def test_combine_weights_by_total(self):
        a = np.zeros(N_FEATURES)
        a[0] = 1.0
        b = np.zeros(N_FEATURES)
        b[1] = 1.0
        vec, weight = combine_vectors([(a, 300), (b, 100)])
        assert weight == 400
        assert vec[0] == pytest.approx(0.75)
        assert vec[1] == pytest.approx(0.25)

    def test_combine_empty_is_zero(self):
        vec, weight = combine_vectors([])
        assert weight == 0 and not vec.any()


class TestSignatureDeterminism:
    def test_same_counts_sign_byte_identically(self):
        a = signature_from_store(_store_with_pattern(), workload="w",
                                 platform="p")
        b = signature_from_store(_store_with_pattern(), workload="w",
                                 platform="p")
        assert a.to_json() == b.to_json()

    def test_save_load_round_trip(self, tmp_path):
        sig = signature_from_store(_store_with_pattern(), workload="w")
        path = sig.save(tmp_path / "signature.json")
        loaded = RunSignature.load(path)
        assert loaded.to_json() == sig.to_json()
        assert run_similarity(sig, loaded)["similarity"] == 1.0

    def test_version_mismatch_rejected(self):
        doc = signature_from_store(_store_with_pattern()).to_dict()
        doc["feature_version"] = 999
        with pytest.raises(ValueError, match="feature_version"):
            RunSignature.from_dict(doc)
        with pytest.raises(ValueError, match="run_signature"):
            RunSignature.from_dict({"type": "something_else"})

    def test_self_similarity_is_one(self):
        sig = signature_from_store(_store_with_pattern())
        assert run_similarity(sig, sig)["similarity"] == 1.0

    def test_different_patterns_score_below_identical(self):
        a = signature_from_store(_store_with_pattern(seed=7))
        # Same geometry, inverted channel roles -> clearly different.
        space = AddressSpace()
        x = space.allocate(256 * 4, MemoryKind.MANAGED, label="a")
        y = space.allocate(64 * 4, MemoryKind.MANAGED, label="b")
        store = HeatStore(nbuckets=16, attribute=False)
        for e in range(3):
            store.record(x, Processor.CPU, is_write=True, lo=128, hi=256)
            store.record(y, Processor.CPU, is_write=False, lo=0, hi=16)
            store.advance_epoch(e)
        b = signature_from_store(store)
        assert run_similarity(a, b)["similarity"] < 0.9

    def test_unpaired_allocation_drags_similarity_down(self):
        sig = signature_from_store(_store_with_pattern())
        solo = RunSignature(workload="solo")
        solo.allocs["a"] = sig.allocs["a"]
        sim = run_similarity(sig, solo)
        rows = {r["alloc"]: r for r in sim["by_alloc"]}
        assert rows["b"]["in_b"] is False
        assert rows["b"]["similarity"] == 0.0
        assert sim["similarity"] < 1.0


class TestNpzRebuild:
    def test_npz_signature_matches_store_signature(self, tmp_path):
        store = _store_with_pattern()
        store.to_npz(tmp_path / "heat.npz")
        live = signature_from_store(store, workload="w", platform="p")
        rebuilt = signature_from_npz(tmp_path / "heat.npz", workload="w",
                                     platform="p")
        assert rebuilt.to_json() == live.to_json()

    def test_npz_per_channel_keys_are_stable(self, tmp_path):
        store = _store_with_pattern()
        store.to_npz(tmp_path / "heat.npz")
        with np.load(tmp_path / "heat.npz") as npz:
            for i in range(2):
                stacked = np.stack(
                    [npz[f"a{i}_{c}"] for c in CHANNELS], axis=1)
                assert (stacked == npz[f"a{i}_counts"]).all()
            assert "sizes" in npz and "bases" in npz and "serials" in npz

    def test_legacy_npz_without_channel_arrays_still_signs(self, tmp_path):
        """Pre-signature archives (a<i>_counts only) remain readable."""
        store = _store_with_pattern()
        store.to_npz(tmp_path / "heat.npz")
        with np.load(tmp_path / "heat.npz") as npz:
            kept = {k: npz[k] for k in npz.files
                    if not any(k.endswith(f"_{c}") for c in CHANNELS)
                    and k not in ("sizes", "bases", "serials")}
        np.savez_compressed(tmp_path / "legacy.npz", **kept)
        legacy = signature_from_npz(tmp_path / "legacy.npz")
        live = signature_from_store(store)
        assert run_similarity(legacy, live)["similarity"] == 1.0

"""Signature index: persistence, versioning, nearest-neighbor matching."""

import json

import pytest

from repro.signature.index import (
    DEFAULT_MATCH_THRESHOLD,
    SignatureIndex,
)
from repro.signature.vector import signature_from_store

from .test_phases import INDIRECT, MS1, STRIDE1, _spatter_epoch_store


def _sig(spec, *, epochs=3, workload=None):
    return signature_from_store(
        _spatter_epoch_store([spec] * epochs),
        workload=workload or f"spatter-{spec.name}", platform="test")


@pytest.fixture
def index(tmp_path):
    idx = SignatureIndex(tmp_path / "db")
    idx.add("stride", _sig(STRIDE1))
    idx.add("indirect", _sig(INDIRECT))
    return idx


class TestPersistence:
    def test_layout_and_reload(self, index, tmp_path):
        doc = json.loads((tmp_path / "db" / "index.json").read_text())
        assert doc["type"] == "signature_index"
        assert sorted(doc["entries"]) == ["indirect", "stride"]
        reopened = SignatureIndex(tmp_path / "db")
        assert reopened.names() == ["indirect", "stride"]
        assert len(reopened) == 2 and "stride" in reopened
        assert reopened.get("stride").to_json() == _sig(STRIDE1).to_json()

    def test_add_replaces(self, index):
        index.add("stride", _sig(STRIDE1, epochs=5))
        assert len(index) == 2
        assert len(index.get("stride").epoch_vectors) == 5

    def test_unsafe_names_are_slugged(self, index, tmp_path):
        index.add("run/with spaces!", _sig(MS1))
        assert "run/with spaces!" in index
        stored = json.loads(
            (tmp_path / "db" / "index.json").read_text())
        rel = stored["entries"]["run/with spaces!"]["file"]
        assert "/" not in rel.split("sigs/")[1]
        assert (tmp_path / "db" / rel).exists()

    def test_version_guards(self, tmp_path):
        root = tmp_path / "bad"
        root.mkdir()
        (root / "index.json").write_text(json.dumps(
            {"type": "signature_index", "version": 999,
             "feature_version": 1, "entries": {}}))
        with pytest.raises(ValueError, match="version"):
            SignatureIndex(root)
        (root / "index.json").write_text(json.dumps(
            {"type": "nope"}))
        with pytest.raises(ValueError, match="not a signature index"):
            SignatureIndex(root)


class TestMatching:
    def test_same_family_matches_above_threshold(self, index):
        report = index.match(_sig(STRIDE1, epochs=4))
        assert report["best"] is not None
        assert report["best"]["name"] == "stride"
        assert report["best"]["similarity"] >= DEFAULT_MATCH_THRESHOLD

    def test_different_family_scores_below_same_family(self, index):
        report = index.match(_sig(INDIRECT, epochs=4))
        scores = {n["name"]: n["similarity"] for n in report["neighbors"]}
        assert report["best"]["name"] == "indirect"
        assert scores["indirect"] > scores["stride"]

    def test_cross_family_reports_no_match(self, tmp_path):
        """A different Spatter family scores below the match threshold."""
        idx = SignatureIndex(tmp_path / "db2")
        idx.add("stride", _sig(STRIDE1))
        report = idx.match(_sig(INDIRECT, epochs=4))
        assert report["best"] is None
        assert report["neighbors"][0]["similarity"] \
            < DEFAULT_MATCH_THRESHOLD

    def test_no_match_when_everything_below_threshold(self, index):
        report = index.match(_sig(STRIDE1), threshold=1.1)
        assert report["best"] is None
        assert all(not n["match"] for n in report["neighbors"])

    def test_neighbors_sorted_and_limited(self, index):
        index.add("ms1", _sig(MS1))
        report = index.match(_sig(STRIDE1), k=2)
        assert len(report["neighbors"]) == 2
        sims = [n["similarity"] for n in report["neighbors"]]
        assert sims == sorted(sims, reverse=True)
        assert report["entries"] == 3

    def test_match_report_is_deterministic(self, index):
        q = _sig(MS1)
        assert json.dumps(index.match(q), sort_keys=True) \
            == json.dumps(index.match(q), sort_keys=True)

"""Signatures across the spill-and-merge pipeline: sharding-invariant."""

import json

import pytest

from repro.signature.cli import main as sig_main
from repro.signature.vector import run_similarity, signature_from_npz
from repro.stream.merge import merge_shards
from repro.stream.shard import run_streaming, split_stream


@pytest.fixture(scope="module")
def stream_runs(tmp_path_factory):
    base = tmp_path_factory.mktemp("sig-stream")
    run_streaming("pathfinder", "pcie", base / "whole", log_capacity=64)
    shards2 = split_stream(base / "whole", base / "k2", 2)
    shards4 = split_stream(base / "whole", base / "k4", 4)
    return base, shards2, shards4


class TestShardingInvariance:
    def test_merged_signature_equals_single_run(self, stream_runs):
        base, shards2, shards4 = stream_runs
        whole = merge_shards([base / "whole"]).signature()
        k2 = merge_shards(shards2).signature()
        k4 = merge_shards(shards4).signature()
        assert k2.to_json() == whole.to_json()
        assert k4.to_json() == whole.to_json()

    def test_written_bundle_contains_signature(self, stream_runs, tmp_path):
        base, _, shards4 = stream_runs
        paths = merge_shards(shards4).write(tmp_path / "out")
        assert paths["signature"].exists()
        doc = json.loads(paths["signature"].read_text())
        assert doc["type"] == "run_signature"
        html = paths["report"].read_text()
        assert "Access-pattern phases" in html

    def test_signature_from_merged_npz_matches(self, stream_runs, tmp_path):
        """repro-sig compute --npz on a merged bundle == live signature.

        NPZ archives carry counts, not source sites, so ``top_sites``
        comes back empty -- everything that feeds distance/similarity
        (vectors, totals, phases) must be identical.
        """
        base, _, shards4 = stream_runs
        merged = merge_shards(shards4)
        paths = merged.write(tmp_path / "out", report=False)
        rebuilt = signature_from_npz(paths["heat_npz"],
                                     workload=merged.workload,
                                     platform=merged.platform)
        live = merged.signature()
        a, b = live.to_dict(), rebuilt.to_dict()
        for doc in (a, b):
            for rec in doc["allocs"].values():
                rec.pop("top_sites")
        assert a == b
        assert run_similarity(live, rebuilt)["similarity"] == 1.0

    def test_cli_match_across_shard_counts(self, stream_runs, tmp_path,
                                           capsys):
        """Same workload resharded matches; the CI acceptance path."""
        base, shards2, shards4 = stream_runs
        merge_shards(shards2).write(tmp_path / "m2", report=False)
        merge_shards(shards4).write(tmp_path / "m4", report=False)
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert sig_main(["compute", "--npz", str(tmp_path / "m2/heat.npz"),
                         "--workload", "pathfinder",
                         "--out", str(a)]) == 0
        assert sig_main(["compute", "--npz", str(tmp_path / "m4/heat.npz"),
                         "--workload", "pathfinder",
                         "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert sig_main(["compare", str(a), str(b),
                         "--fail-below", "0.9"]) == 0

    def test_stream_rollup_carries_phase(self, stream_runs):
        base, _, _ = stream_runs
        manifest = json.loads((base / "whole" / "manifest.json").read_text())
        phase = manifest["rollup"]["phase"]
        assert set(phase) == {"current", "epoch", "changes"}
        assert phase["epoch"] >= 0

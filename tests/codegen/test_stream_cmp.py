"""Streamed-trace parity: spill, shard x4, merge -- per backend.

The spill-and-merge pipeline consumes the runtime event log and heat
epochs, both of which the compiled backends must reproduce exactly.  A
streamed run is the harshest consumer: every driver event, heat epoch,
and allocation record lands in segment files in order, so one byte of
drift anywhere in the launch pipeline shows up as a segment diff.
"""

import json
from types import SimpleNamespace

import numpy as np
import pytest

from repro.instrument import instrument, parse
from repro.interp.interpreter import Interpreter
from repro.memsim import PLATFORMS
from repro.runtime import Tracer
from repro.stream.merge import merge_shards
from repro.stream.shard import segment_files, split_stream
from repro.stream.spill import SpillingHeatStore, StreamSpiller
from repro.workloads.minicuda import CATALOG

BACKENDS = ("interp", "codegen", "codegen-vec")
WORKLOAD = "mc-spatter-lcg"  # scattered heat + phases: the hard case


def _streamed_run(backend: str, out_dir) -> dict:
    """One streamed run of ``WORKLOAD`` under ``backend``."""
    heat = SpillingHeatStore(nbuckets=64)
    tracer = Tracer(heat=heat)
    unit = parse(CATALOG[WORKLOAD]())
    instrument(unit)
    interp = Interpreter(unit, platform=PLATFORMS["intel-pascal"](),
                         tracer=tracer, source_name=f"{WORKLOAD}.cu",
                         backend=backend)
    spiller = StreamSpiller(out_dir, shard="shard-0", workload=WORKLOAD,
                            platform="intel-pascal",
                            config={"backend": backend})
    # The interpreter is not a Session, but the spiller only needs the
    # same three wires a Session exposes.
    shim = SimpleNamespace(platform=interp.runtime.platform,
                           runtime=interp.runtime, tracer=interp.tracer)
    spiller.attach(shim, heat=heat)
    interp.run("main")
    manifest = spiller.close()
    if backend == "codegen-vec":
        info = interp.tracer.backend_info()
        assert info["fallbacks"] == 0, f"vectorizer fell back: {info}"
    return manifest


def _manifest_no_backend(manifest: dict) -> str:
    m = json.loads(json.dumps(manifest))
    m.get("config", {}).pop("backend", None)
    return json.dumps(m, sort_keys=True)


@pytest.fixture(scope="module")
def streams(tmp_path_factory):
    root = tmp_path_factory.mktemp("streams")
    out = {}
    for backend in BACKENDS:
        stream_dir = root / backend
        manifest = _streamed_run(backend, stream_dir)
        out[backend] = (stream_dir, manifest)
    return out


def test_streamed_segments_byte_identical(streams):
    ref_dir, ref_manifest = streams["interp"]
    ref_segments = {p.name: p.read_bytes() for p in segment_files(ref_dir)}
    assert ref_segments  # the run actually streamed something
    for backend in ("codegen", "codegen-vec"):
        stream_dir, manifest = streams[backend]
        segments = {p.name: p.read_bytes() for p in segment_files(stream_dir)}
        assert segments == ref_segments, f"{backend} segment drift"
        assert (_manifest_no_backend(manifest)
                == _manifest_no_backend(ref_manifest))


def test_four_shard_merge_identical(streams, tmp_path):
    """split x4 -> merge: heat store, events, and summary all agree."""
    merged = {}
    for backend, (stream_dir, _) in streams.items():
        shards = split_stream(stream_dir, tmp_path / backend, 4)
        assert len(shards) == 4
        merged[backend] = merge_shards(shards)

    ref = merged["interp"]
    for backend in ("codegen", "codegen-vec"):
        run = merged[backend]
        assert not run.warnings and not ref.warnings
        assert run.summary == ref.summary
        assert len(run.events) == len(ref.events)
        heats = {label: heat for label, heat in _heat_items(run.store)}
        for label, heat in _heat_items(ref.store):
            other = heats.pop(label)
            assert len(other.epochs) == len(heat.epochs)
            for a, b in zip(heat.epochs, other.epochs):
                assert a.epoch == b.epoch and a.total == b.total
                assert np.array_equal(a.counts, b.counts)
        assert not heats


def _heat_items(store):
    return sorted((h.label, h) for h in store.allocations())

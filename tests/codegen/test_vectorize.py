"""Vectorizer: varying analysis, provability bails, runtime fallbacks."""

import pytest

from repro.codegen import CodegenBail
from repro.codegen.emitter import resolve_kernel
from repro.codegen.vectorize import analyze_kernel, compile_vec
from repro.instrument import instrument, parse
from repro.interp import run_program
from repro.runtime import Tracer

from .test_emitter import HEADER, _describe_no_backend, _kernel

GUARDED_LOOP = HEADER + """
__global__ void smooth(float* dst, float* src, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= 2 && i < n - 2) {
        float acc = 0.0;
        for (int k = 0 - 2; k <= 2; k++) {
            acc += src[i + k];
        }
        dst[i] = acc / 5;
    }
}
int main() { return 0; }
"""


def _analyze(source: str, name: str):
    fn = _kernel(source, name)
    res = resolve_kernel(fn)
    has_live = analyze_kernel(fn, res)
    by_name = {}
    for sym in res.symbols:
        by_name.setdefault(sym.name, sym)
    return fn, res, by_name, has_live


class TestVaryingAnalysis:
    def test_guarded_uniform_loop_counter_stays_uniform(self):
        """``k`` lives under a varying guard but every active lane runs
        the identical trip count -- the canonical shape the depth rule
        must keep vectorizable (Pathfinder/stencil inner loops)."""
        _, _, syms, _ = _analyze(GUARDED_LOOP, "smooth")
        assert syms["i"].varying
        assert not syms["k"].varying
        assert syms["acc"].varying  # accumulates per-lane heap values

    def test_uniform_write_at_decl_depth_stays_uniform(self):
        src = HEADER + """
__global__ void k(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        int t = 5;
        t = t + 1;
        a[i] = t;
    }
}
int main() { return 0; }
"""
        _, _, syms, _ = _analyze(src, "k")
        assert not syms["t"].varying

    def test_write_above_decl_depth_goes_varying(self):
        """A symbol declared outside a varying branch but written inside
        it diverges: some lanes write, some keep the old value."""
        src = HEADER + """
__global__ void k(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int t = 0;
    if (i < n) { t = 1; }
    a[i] = t;
}
int main() { return 0; }
"""
        _, _, syms, _ = _analyze(src, "k")
        assert syms["t"].varying

    def test_masked_early_return_sets_live(self):
        src = HEADER + """
__global__ void k(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= n) { return; }
    a[i] = i;
}
int main() { return 0; }
"""
        _, _, _, has_live = _analyze(src, "k")
        assert has_live
        compile_vec(_kernel(src, "k"))  # still provable


class TestProvabilityBails:
    def _bail(self, source: str, name: str) -> str:
        with pytest.raises(CodegenBail) as exc:
            compile_vec(_kernel(source, name))
        return exc.value.reason

    def test_divergent_loop_condition_bails(self):
        src = HEADER + """
__global__ void k(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < i; j++) { a[j] = i; }
}
int main() { return 0; }
"""
        assert "divergent loop" in self._bail(src, "k")

    def test_divergent_break_bails(self):
        src = HEADER + """
__global__ void k(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    for (int j = 0; j < 8; j++) {
        if (i > j) { break; }
        a[j] = i;
    }
}
int main() { return 0; }
"""
        assert "divergent break" in self._bail(src, "k")

    def test_value_return_bails(self):
        src = "int f(int x) { return x; }\nint main() { return 0; }"
        assert "return with a value" in self._bail(src, "f")

    def test_guarded_loop_vectorizes(self):
        ck = compile_vec(_kernel(GUARDED_LOOP, "smooth"))
        assert ck.source.startswith("def _kernel(")
        assert compile_vec(_kernel(GUARDED_LOOP, "smooth")) is ck  # memoized


CONFLICT = HEADER + """
__global__ void clash(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    a[0] = i;
}
int main() {
    int* a;
    cudaMallocManaged((void**)&a, 16 * sizeof(int));
    clash<<<1, 8>>>(a, 16);
    cudaDeviceSynchronize();
    printf("a0=%d\\n", a[0]);
    tracePrint(XplAllocData(a, "a", 64));
    return 0;
}
"""

SHARED_READ = HEADER + """
__global__ void bcast(int* dst, int* src, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) { dst[i] = src[0] + i; }
}
int main() {
    int* src;
    int* dst;
    cudaMallocManaged((void**)&src, 16 * sizeof(int));
    cudaMallocManaged((void**)&dst, 16 * sizeof(int));
    src[0] = 7;
    bcast<<<1, 16>>>(dst, src, 16);
    cudaDeviceSynchronize();
    printf("d5=%d\\n", dst[5]);
    tracePrint(XplAllocData(src, "src", 64), XplAllocData(dst, "dst", 64));
    return 0;
}
"""


class TestRuntimeFallback:
    def test_conflicting_scatter_falls_back_and_matches(self):
        """All lanes write word 0 with different values: the alias check
        cannot prove last-wins order, so the launch re-runs scalar."""
        it_i = run_program(CONFLICT, tracer=Tracer(), backend="interp")
        it_v = run_program(CONFLICT, tracer=Tracer(), backend="codegen-vec")
        assert it_i.stdout == it_v.stdout
        assert (_describe_no_backend(it_i.tracer)
                == _describe_no_backend(it_v.tracer))
        info = it_v.tracer.backend_info()
        assert info["launches"] == {"codegen": 1}
        assert info["fallbacks"] == 1

    def test_shared_read_word_is_fine(self):
        """All lanes *reading* one word is not a conflict."""
        it_i = run_program(SHARED_READ, tracer=Tracer(), backend="interp")
        it_v = run_program(SHARED_READ, tracer=Tracer(),
                           backend="codegen-vec")
        assert it_i.stdout == it_v.stdout
        assert (_describe_no_backend(it_i.tracer)
                == _describe_no_backend(it_v.tracer))
        info = it_v.tracer.backend_info()
        assert info["launches"] == {"codegen-vec": 1}
        assert info["fallbacks"] == 0

    def test_sampling_demotes_vec_to_scalar(self):
        """Batched shadow updates cannot reproduce 1-in-N word sampling;
        explicit codegen-vec demotes (and counts it), auto stays silent."""
        explicit = run_program(SHARED_READ, tracer=Tracer(sample=4),
                               backend="codegen-vec")
        info = explicit.tracer.backend_info()
        assert info["launches"] == {"codegen": 1}
        assert info["fallbacks"] == 1

        auto = run_program(SHARED_READ, tracer=Tracer(sample=4),
                           backend="auto")
        info = auto.tracer.backend_info()
        assert info["launches"] == {"codegen": 1}
        assert info["fallbacks"] == 0

    def test_vec_runtime_error_reproduced_per_thread(self):
        """A lane-level division by zero bails the vectorized attempt;
        the scalar re-run raises the authentic per-thread error."""
        src = HEADER + """
__global__ void crash(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int z = n - n;
    a[i] = i / z;
}
int main() {
    int* a;
    cudaMallocManaged((void**)&a, 16 * sizeof(int));
    crash<<<1, 4>>>(a, 16);
    return 0;
}
"""
        errors = {}
        for backend in ("interp", "codegen-vec"):
            with pytest.raises(Exception) as exc:
                run_program(src, tracer=Tracer(), backend=backend)
            errors[backend] = (type(exc.value), str(exc.value))
        assert errors["interp"] == errors["codegen-vec"]

    def test_debug_tracer_subclass_forces_scalar_fallback(self):
        """A tracer overriding trace hooks would miss batched updates;
        the ladder must not hand it to a compiled trace path."""

        class Spy(Tracer):
            def __init__(self):
                super().__init__()
                self.hits = 0

            def traceR(self, addr, size=4, site=None):
                self.hits += 1
                return super().traceR(addr, size, site)

        spy = Spy()
        it = run_program(SHARED_READ, tracer=spy, backend="auto")
        info = it.tracer.backend_info()
        assert info["launches"] == {"interp": 1}  # no compiled trace path
        assert spy.hits > 0

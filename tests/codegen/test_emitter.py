"""Scalar codegen: digest memoization, bail caching, oracle equality."""

import pytest

from repro.codegen import CodegenBail, compile_scalar, kernel_digest
from repro.codegen.emitter import _SCALAR_CACHE
from repro.instrument import instrument, parse
from repro.interp import run_program
from repro.runtime import Tracer

HEADER = """\
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);
#pragma xpl replace kernel-launch
void traceKernelLaunch(int g, int b, int s, int st, ...);
"""

SAXPY = HEADER + """
__global__ void saxpy(float* y, float* x, float a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        y[i] = y[i] + a * x[i];
    }
}

int main() {
    int n = 96;
    float* x;
    float* y;
    cudaMallocManaged((void**)&x, n * sizeof(float));
    cudaMallocManaged((void**)&y, n * sizeof(float));
    for (int i = 0; i < n; i++) { x[i] = i % 7; y[i] = i % 5; }
    saxpy<<<2, 64>>>(y, x, 2.0, n);
    saxpy<<<2, 64>>>(y, x, 0.5, n);
    cudaDeviceSynchronize();
    float sum = 0.0;
    for (int i = 0; i < n; i++) { sum += y[i]; }
    printf("sum=%g\\n", sum);
    tracePrint(XplAllocData(x, "x", n * 4), XplAllocData(y, "y", n * 4));
    return 0;
}
"""


def _kernel(source: str, name: str):
    unit = parse(source)
    instrument(unit)
    return unit.function(name)


def _describe_no_backend(tracer):
    d = tracer.describe()
    for key in ("backend", "backend_launches", "backend_fallbacks"):
        d.pop(key, None)
    return d


class TestDigest:
    def test_digest_stable_across_parses(self):
        a = kernel_digest(_kernel(SAXPY, "saxpy"))
        b = kernel_digest(_kernel(SAXPY, "saxpy"))
        assert a == b

    def test_digest_changes_with_body(self):
        changed = SAXPY.replace("a * x[i]", "a + x[i]")
        assert (kernel_digest(_kernel(SAXPY, "saxpy"))
                != kernel_digest(_kernel(changed, "saxpy")))


class TestMemoization:
    def test_repeat_compiles_hit_the_cache(self):
        fn = _kernel(SAXPY, "saxpy")
        first = compile_scalar(fn, heat_on=False)
        again = compile_scalar(_kernel(SAXPY, "saxpy"), heat_on=False)
        assert again is first

    def test_heat_flag_is_part_of_the_key(self):
        fn = _kernel(SAXPY, "saxpy")
        assert compile_scalar(fn, False) is not compile_scalar(fn, True)

    def test_bails_are_cached_too(self):
        src = HEADER + """
__global__ void bad(int* a) {
    helper(a);
}
int main() { return 0; }
"""
        fn = _kernel(src, "bad")
        with pytest.raises(CodegenBail) as first:
            compile_scalar(fn, heat_on=False)
        key = (kernel_digest(fn), False)
        assert isinstance(_SCALAR_CACHE[key], CodegenBail)
        with pytest.raises(CodegenBail) as second:
            compile_scalar(fn, heat_on=False)
        assert second.value is first.value  # one analysis, not one per launch

    def test_compiled_shape(self):
        ck = compile_scalar(_kernel(SAXPY, "saxpy"), heat_on=True)
        assert ck.source.startswith("def _kernel(_bx, _tx, _bd, _gd")
        assert ck.sites  # trace calls carry source lines for heat sites
        assert ck.heat_on


class TestScalarOracle:
    def test_matches_interp_stdout_and_shadow(self):
        it_a = run_program(SAXPY, tracer=Tracer(), backend="interp")
        it_b = run_program(SAXPY, tracer=Tracer(), backend="codegen")
        assert it_a.stdout == it_b.stdout
        assert (_describe_no_backend(it_a.tracer)
                == _describe_no_backend(it_b.tracer))
        assert it_b.tracer.backend_info() == {
            "backend": "codegen", "launches": {"codegen": 2}, "fallbacks": 0}

    def test_runtime_errors_match_interp(self):
        src = HEADER + """
__global__ void crash(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    int z = n - n;
    a[i] = i / z;
}
int main() {
    int* a;
    cudaMallocManaged((void**)&a, 16 * sizeof(int));
    crash<<<1, 4>>>(a, 16);
    return 0;
}
"""
        errors = {}
        for backend in ("interp", "codegen"):
            with pytest.raises(Exception) as exc:
                run_program(src, tracer=Tracer(), backend=backend)
            errors[backend] = (type(exc.value), str(exc.value))
        assert errors["interp"] == errors["codegen"]

    def test_kernel_printf_matches_interp(self):
        src = HEADER + """
__global__ void speak(int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i == 0) { printf("hello %d\\n", n); }
}
int main() {
    speak<<<1, 4>>>(42);
    cudaDeviceSynchronize();
    return 0;
}
"""
        outs = {b: run_program(src, tracer=Tracer(), backend=b).stdout
                for b in ("interp", "codegen")}
        assert outs["interp"] == outs["codegen"] == "hello 42\n"

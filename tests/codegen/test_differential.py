"""Differential oracle sweep: every bundled workload, every backend.

The tree-walking interpreter is the oracle; the compiled backends must
produce *byte-identical* observable state -- stdout, diagnostics, shadow
counters, heat matrices, signature vectors, and the telemetry artifacts
(events.jsonl / metrics.prom, minus the backend-attribution records that
exist precisely to tell the backends apart).
"""

import json

import numpy as np
import pytest

from repro.heatmap.store import HeatStore
from repro.interp import run_program
from repro.runtime import Tracer
from repro.signature import signature_from_store
from repro.workloads.minicuda import CATALOG
from repro.workloads.spatter import indirection, to_mini_cuda, uniform_stride

BACKENDS = ("interp", "codegen", "codegen-vec")


def _sources() -> dict[str, str]:
    srcs = {name: build() for name, build in CATALOG.items()}
    srcs["spatter-scatter-stride"] = to_mini_cuda(
        uniform_stride(8, count=16, kind="scatter"))
    srcs["spatter-scatter-lcg"] = to_mini_cuda(
        indirection(length=256, spread=4096, kind="scatter"))
    return srcs


SOURCES = _sources()


def _describe_no_backend(tracer) -> dict:
    d = tracer.describe()
    for key in ("backend", "backend_launches", "backend_fallbacks"):
        d.pop(key, None)
    return d


def _heat_bytes(store: HeatStore) -> list[tuple]:
    """Every heat matrix and per-site vector, as comparable bytes."""
    out = []
    for heat in store.allocations():
        for snap in heat.epochs:
            sites = [(label, vec.tobytes())
                     for label, vec in sorted(
                         (s.label, v) for s, v in snap.sites.items())]
            out.append((heat.label, snap.epoch, snap.total,
                        snap.counts.tobytes(), sites))
    return out


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_backends_byte_match_the_interpreter(name):
    results = {}
    for backend in BACKENDS:
        heat = HeatStore()
        tracer = Tracer(heat=heat)
        it = run_program(SOURCES[name], tracer=tracer, backend=backend,
                         source_name=f"{name}.cu")
        sig = signature_from_store(heat, workload=name)
        results[backend] = {
            "stdout": it.stdout,
            "describe": _describe_no_backend(it.tracer),
            "heat": _heat_bytes(heat),
            "signature": sig.to_json(),
        }
        if backend == "codegen-vec":
            info = it.tracer.backend_info()
            assert info["fallbacks"] == 0, (
                f"{name}: vectorizer fell back {info}")
    assert results["codegen"] == results["interp"]
    assert results["codegen-vec"] == results["interp"]


def _filtered_events(path) -> list[str]:
    """events.jsonl minus backend attribution (re-serialized per line)."""
    lines = []
    for raw in path.read_text().splitlines():
        rec = json.loads(raw)
        if rec.get("type") == "backend":
            continue
        if rec.get("type") == "manifest":
            rec.get("config", {}).pop("backend", None)
        lines.append(json.dumps(rec, sort_keys=True))
    return lines


def _filtered_metrics(path) -> list[str]:
    return [line for line in path.read_text().splitlines()
            if "backend_fallbacks" not in line]


@pytest.mark.parametrize("workload", ["mc-pathfinder", "mc-spatter-lcg"])
def test_traced_artifacts_byte_match(workload, tmp_path):
    """repro-trace artifacts are identical across backends once the
    backend-attribution records are stripped."""
    from repro.telemetry.cli import run_traced

    artifacts = {}
    for backend in BACKENDS:
        out = tmp_path / backend
        paths = run_traced(workload, "pcie", out, backend=backend)
        artifacts[backend] = {
            "events": _filtered_events(paths["events"]),
            "metrics": _filtered_metrics(paths["metrics"]),
            "timeline": paths["timeline"].read_text(),
        }
    assert artifacts["codegen"] == artifacts["interp"]
    assert artifacts["codegen-vec"] == artifacts["interp"]


def test_interp_artifacts_carry_no_backend_records(tmp_path):
    """The historical interp artifacts stay byte-stable: no backend
    record, no fallback gauge (backend_info() is None on interp)."""
    from repro.telemetry.cli import run_traced

    paths = run_traced("mc-stencil", "pcie", tmp_path, backend="interp")
    raw = paths["events"].read_text()
    assert '"type": "backend"' not in raw
    assert "backend_fallbacks" not in paths["metrics"].read_text()


def test_signature_vectors_identical_to_interp_reference():
    """Signature cosine drift across backends would poison the phase
    index; require exact equality, not just high similarity."""
    from repro.signature import run_similarity

    sigs = {}
    for backend in ("interp", "codegen-vec"):
        heat = HeatStore()
        run_program(SOURCES["mc-lulesh"], tracer=Tracer(heat=heat),
                    backend=backend, source_name="mc-lulesh.cu")
        sigs[backend] = signature_from_store(heat, workload="mc-lulesh")
    sim = run_similarity(sigs["interp"], sigs["codegen-vec"])
    assert sim["similarity"] == pytest.approx(1.0)
    for (ea, va, ta), (eb, vb, tb) in zip(
            sigs["interp"].epoch_vectors, sigs["codegen-vec"].epoch_vectors):
        assert ea == eb and ta == tb
        assert np.array_equal(va, vb)

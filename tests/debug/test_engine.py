"""Engine-level tests: breakpoint matching, UM driving, stepping."""

import pytest

from repro.debug import BreakpointTable, DebugEngine, DebugQuit
from repro.memsim import EventKind, MemoryKind

PINGPONG = """
    #pragma xpl replace cudaMallocManaged
    cudaError_t trcMallocManaged(void** p, size_t sz);
    #pragma xpl replace kernel-launch
    void traceKernelLaunch(int g, int b, int s, int st, ...);

    __global__ void bump(int* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = a[i] + 1; }
    }

    int main() {
        int* a;
        cudaMallocManaged((void**)&a, 256);
        for (int i = 0; i < 64; i++) { a[i] = i; }
        bump<<<2, 32>>>(a, 64);
        int s = 0;
        for (int i = 0; i < 64; i++) { s += a[i]; }
    #pragma xpl diagnostic tracePrint(out; a)
        return s;
    }
"""


class TestBreakpointTable:
    def test_line_and_kernel_matching(self):
        bps = BreakpointTable()
        line = bps.add_line(14)
        kern = bps.add_kernel("bump")
        assert bps.match_line(14) is line
        assert bps.match_line(15) is None
        assert bps.match_kernel("bump") is kern
        assert bps.match_kernel("other") is None

    def test_nth_fault_matching(self):
        from repro.memsim import Event, Processor
        bps = BreakpointTable()
        third = bps.add_fault(3)
        ev = Event(EventKind.PAGE_FAULT, 0.0, Processor.GPU, pages=1)
        assert bps.match_event(ev, 2) is None
        assert bps.match_event(ev, 3) is third
        every = bps.add_fault()
        assert bps.match_event(ev, 7) is every

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError, match="unknown anti-pattern"):
            BreakpointTable().add_pattern("nonsense")

    def test_watch_overlap_and_label_resolution(self):
        bps = BreakpointTable()
        bp = bps.add_watch(label="a")
        assert bps.match_watch(0x1000, 4) is None  # unresolved
        bps.resolve_watch_labels("a", 0x1000, 0x1100)
        assert bps.match_watch(0x0FFD, 4) is bp  # straddles the low edge
        assert bps.match_watch(0x10FF, 1) is bp
        assert bps.match_watch(0x1100, 4) is None
        bps.remove(bp.bid)
        assert bps.match_watch(0x1000, 4) is None


class TestDebugTracerDrivesUM:
    def test_managed_accesses_reach_the_driver(self):
        engine = DebugEngine(PINGPONG)
        engine.run()
        kinds = {ev.kind for ev in engine.log}
        assert EventKind.PAGE_FAULT in kinds
        assert EventKind.MIGRATION in kinds

    def test_cause_links_name_interpreted_sites(self):
        engine = DebugEngine(PINGPONG, source_name="pp.cu")
        engine.run()
        sites = {ev.cause.site for ev in engine.log if ev.cause}
        assert any(s.startswith("pp.cu:") for s in sites)
        kernels = {ev.cause.kernel for ev in engine.log if ev.cause}
        assert "bump" in kernels

    def test_stack_allocations_stay_out_of_the_driver(self):
        engine = DebugEngine(PINGPONG)
        engine.run()
        for label in engine.allocs:
            alloc = engine.allocs[label]
            assert alloc.kind is MemoryKind.MANAGED


class TestPauseMachinery:
    def test_line_breakpoint_pauses_with_env(self):
        engine = DebugEngine(PINGPONG)
        stops = []

        def on_pause(eng, stop):
            stops.append(stop)
            return "continue"

        engine.on_pause = on_pause
        engine.breakpoints.add_line(15)  # the CPU init loop line
        engine.run()
        assert stops and all(s.line == 15 for s in stops)
        assert stops[0].reason == "breakpoint"
        # the loop body re-fires the breakpoint every iteration, gdb-style
        assert len(stops) >= 64

    def test_kernel_breakpoint_then_step_carries_thread_coords(self):
        engine = DebugEngine(PINGPONG)
        seen = []

        def on_pause(eng, stop):
            seen.append(stop)
            return "step" if len(seen) < 3 else "continue"

        engine.on_pause = on_pause
        engine.breakpoints.add_kernel("bump")
        engine.run()
        assert seen[0].reason == "kernel"
        # stepping from kernel entry lands inside the kernel body
        assert seen[1].thread == (0, 0)

    def test_nth_fault_pause_is_deferred_but_exact(self):
        engine = DebugEngine(PINGPONG)
        stops = []
        engine.on_pause = lambda e, s: stops.append(s) or "continue"
        engine.breakpoints.add_fault(2)
        engine.run()
        assert len(stops) == 1
        assert stops[0].event.kind is EventKind.PAGE_FAULT

    def test_pattern_breakpoint_fires_at_diagnostic(self):
        engine = DebugEngine(PINGPONG)
        stops = []
        engine.on_pause = lambda e, s: stops.append(s) or "continue"
        engine.breakpoints.add_pattern("alternating")
        engine.run()
        assert len(stops) == 1
        assert stops[0].findings
        assert all(f.name == "a" for f in stops[0].findings)

    def test_quit_unwinds_the_program(self):
        engine = DebugEngine(PINGPONG)
        engine.on_pause = lambda e, s: "quit"
        engine.breakpoints.add_line(14)
        with pytest.raises(DebugQuit):
            engine.run()
        assert not engine.finished

    def test_finish_from_kernel_thread_lands_back_in_main(self):
        engine = DebugEngine(PINGPONG)
        stops = []

        def on_pause(eng, stop):
            stops.append((stop.reason, stop.line, stop.thread,
                          len(eng.interp.call_stack)))
            if len(stops) == 1:
                # drop the breakpoint so only the finish stop follows
                eng.breakpoints.remove(bp.bid)
                return "finish"
            return "continue"

        engine.on_pause = on_pause
        bp = engine.breakpoints.add_line(9)  # inside the kernel body
        engine.run()
        assert stops[0][0] == "breakpoint" and stops[0][2] == (0, 0)
        reason, line, thread, depth = stops[1]
        assert reason == "finish"
        # remaining kernel threads run at full depth; the first shallower
        # statement is back in main, after the launch completes
        assert thread is None and depth == 1 and line > 16


class TestInspection:
    def test_residency_and_heat_after_run(self):
        engine = DebugEngine(PINGPONG)
        engine.run()
        res = engine.residency_lines("a")
        assert res[0].startswith("a: managed, 256 bytes, 1 page(s)")
        heat = engine.heat_lines("a")
        assert heat[0].startswith("a heat")
        assert engine.residency_lines("zzz")[0].startswith(
            "no traced allocation")

    def test_eval_expr_reads_program_state(self):
        engine = DebugEngine(PINGPONG)
        captured = []

        def on_pause(eng, stop):
            captured.append(eng.eval_expr("a[3]"))
            return "continue"

        engine.on_pause = on_pause
        engine.breakpoints.add_line(16)  # after init, at launch
        engine.run()
        assert captured[0] == 3

    def test_explain_matches_shared_chain_renderer(self):
        from repro.causes import CausalGraph, render_chain
        engine = DebugEngine(PINGPONG)
        engine.run()
        graph = CausalGraph.from_log(engine.log, engine.alloc_sites)
        ev = max(graph.events, key=lambda e: (e.cost, e.id))
        expected = render_chain(graph.chain(ev.id))
        lines = engine.explain_lines(str(ev.id))
        assert lines[1:1 + len(expected)] == expected

"""Golden scripted-session tests: transcripts, determinism, blame parity."""

import io
from pathlib import Path

from repro.causes import render_chain, render_report
from repro.debug import DebugEngine, DebugSession
from repro.debug.cli import main

REPO = Path(__file__).resolve().parents[2]
PATHFINDER = (REPO / "examples" / "pathfinder_pingpong.cu").read_text()

SIMPLE = """
    #pragma xpl replace cudaMallocManaged
    cudaError_t trcMallocManaged(void** p, size_t sz);
    #pragma xpl replace kernel-launch
    void traceKernelLaunch(int g, int b, int s, int st, ...);

    __global__ void bump(int* a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) { a[i] = a[i] + 1; }
    }

    int main() {
        int* a;
        cudaMallocManaged((void**)&a, 256);
        for (int i = 0; i < 64; i++) { a[i] = i; }
        bump<<<2, 32>>>(a, 64);
        int s = 0;
        for (int i = 0; i < 64; i++) { s += a[i]; }
    #pragma xpl diagnostic tracePrint(out; a)
        return s;
    }
"""


def run_script(source, script, *, source_name="prog.cu"):
    """One scripted session over fresh state; returns the transcript."""
    out = io.StringIO()
    engine = DebugEngine(source, source_name=source_name, out=io.StringIO())
    session = DebugSession(engine, out=out, script=script)
    session.interact()
    return out.getvalue()


class TestGoldenSessions:
    def test_nth_fault_breakpoint_session(self):
        text = run_script(SIMPLE, [
            "break fault 2",
            "run",
            "bt",
            "continue",
            "quit",
        ])
        assert "(repro-debug) break fault 2" in text
        assert "breakpoint 1: page fault #2" in text
        assert "breakpoint 1 (page fault #2): page_fault on" in text
        assert "#0  main at prog.cu:" in text
        assert "[program exited with value 2080]" in text

    def test_watchpoint_session(self):
        text = run_script(SIMPLE, [
            "watch a",
            "run",
            "delete 1",
            "continue",
            "quit",
        ])
        # the label binds lazily, then fires on the first traced access
        assert "not traced yet" in text
        assert "watchpoint 1 (watch a): write a+0 (4 B) at prog.cu:15" in text
        assert "deleted breakpoint 1" in text
        assert "[program exited with value 2080]" in text

    def test_pingpong_explain_session(self):
        text = run_script(PATHFINDER, [
            "break pattern ping-pong",
            "run",
            "res src",
            "explain ping-pong",
            "continue",
            "quit",
        ], source_name="pathfinder_pingpong.cu")
        assert "breakpoint 1 (anti-pattern ping-pong) fired at" in text
        assert "alternating CPU/GPU accesses in managed memory: src --" in text
        assert "src: managed, 1024 bytes, 1 page(s)" in text
        assert "cause chain of" in text
        assert "category ping_pong this run:" in text

    def test_commands_before_run_are_rejected(self):
        text = run_script(SIMPLE, ["continue", "run", "quit"])
        assert "the program is not being run -- 'run' starts it" in text
        assert "[program exited with value 2080]" in text


class TestDeterminism:
    def test_scripted_sessions_byte_match(self):
        script = (REPO / "examples" / "debug_pingpong.txt")
        lines = script.read_text().splitlines()
        a = run_script(PATHFINDER, lines, source_name="pathfinder_pingpong.cu")
        b = run_script(PATHFINDER, lines, source_name="pathfinder_pingpong.cu")
        assert a == b
        assert "[program exited with value 15]" in a

    def test_cli_transcripts_byte_match(self, tmp_path):
        cmds = tmp_path / "cmds.txt"
        cmds.write_text("break kernel gather_kernel\nrun\ninfo allocs\n"
                        "continue\nexplain last\nquit\n")
        outs = []
        for name in ("t1.txt", "t2.txt"):
            t = tmp_path / name
            assert main(["--spatter",
                         str(REPO / "examples" / "spatter_indirect.json"),
                         "--script", str(cmds), "--transcript", str(t)]) == 0
            outs.append(t.read_bytes())
        assert outs[0] == outs[1]
        assert b"entering gather_kernel<<<" in outs[0]


class TestBlameParity:
    def test_explain_chain_is_the_shared_renderer(self):
        engine = DebugEngine(PATHFINDER, source_name="pathfinder_pingpong.cu",
                             out=io.StringIO())
        engine.run()
        graph = engine.graph()
        cands = [e for e in graph.events if graph.category(e) == "ping_pong"]
        assert cands, "pathfinder scenario must produce ping-pong events"
        ev = max(cands, key=lambda e: (e.cost, e.id))
        expected = render_chain(graph.chain(ev.id))
        lines = engine.explain_lines("ping-pong")
        assert lines[1:1 + len(expected)] == expected

    def test_explain_rollup_matches_graph_blame(self):
        from repro.causes.render import format_bytes, format_cost
        engine = DebugEngine(PATHFINDER, source_name="pathfinder_pingpong.cu",
                             out=io.StringIO())
        engine.run()
        rollup = next(r for r in engine.graph().blame()["by_category"]
                      if r["category"] == "ping_pong")
        last = engine.explain_lines("ping-pong")[-1]
        assert last == (
            f"category ping_pong this run: {rollup['events']} event(s),"
            f" {rollup['pages']} page(s),"
            f" {format_bytes(rollup['moved'])} moved,"
            f" {format_cost(rollup['cost'])}")

    def test_blame_command_is_the_repro_why_report(self):
        engine = DebugEngine(PATHFINDER, source_name="pathfinder_pingpong.cu",
                             out=io.StringIO())
        engine.run()
        report = engine.graph().report(workload="pathfinder_pingpong.cu",
                                       platform=engine.platform.name)
        assert engine.blame_text(limit=5) == render_report(report, limit=5)

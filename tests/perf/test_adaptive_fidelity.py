"""Adaptive sampling (``Tracer(sample="auto")``): better fidelity per word.

The signature-guided sampler spends its recording budget where patterns
change: full rate for ``auto_hot`` epochs after every detected phase
transition, ``auto_stride`` in steady state.  Within one phase the
program repeats the same access pattern, so everything the tracer learns
about a phase is the union of the shadow states it recorded across that
phase's epochs.  A fixed stride never records the off-grid words of wide
spans no matter how many epochs it watches; the adaptive sampler's
full-rate epochs at each transition capture the new pattern exactly.

Fidelity here is per-word agreement between that per-phase union and a
full trace's shadow -- exactly the information diagnostics are built
from -- compared at an equal-or-larger recorded-word budget for the
fixed-stride contender.
"""

import numpy as np

from repro.heatmap.store import HeatStore
from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.runtime import Tracer

WORDS = 4096
QUARTER = WORDS // 4
REGIMES = 4
EPOCHS_PER_REGIME = 8


def _epochs():
    """A phased program: each regime hammers its own quarter of the buffer.

    Every epoch of regime ``r`` replays the same accesses -- one wide GPU
    read of the quarter plus a fixed set of narrow CPU writes -- so a
    full-rate pass over any single epoch of the regime captures the
    regime's entire footprint.
    """
    program = []
    for r in range(REGIMES):
        base = r * QUARTER
        epoch = [(Processor.GPU, False, base, base + QUARTER)]
        for i in range(16):
            lo = base + (i * 61) % (QUARTER - 16)
            epoch.append((Processor.CPU, True, lo, lo + 16))
        program.extend([epoch] * EPOCHS_PER_REGIME)
    return program


def _replay(tracer):
    """Run the phased program; return each epoch's shadow snapshot."""
    space = AddressSpace()
    alloc = space.allocate(WORDS * 4, MemoryKind.MANAGED, label="m")
    tracer.trc_register(alloc)
    snapshots = []
    for epoch in _epochs():
        for proc, is_write, lo, hi in epoch:
            tracer.on_access(proc, alloc, lo * 4, 4, hi - lo,
                             is_write=is_write, indices=None, is_rmw=False)
        tracer.flush_trace()
        snapshots.append(tracer.smt.lookup(alloc.base).shadow.copy())
        tracer.advance_epoch()
    return snapshots


def _phase_fidelity(snapshots, reference):
    """Mean per-word agreement of each regime's shadow union vs. full."""
    scores = []
    for r in range(REGIMES):
        lo = r * EPOCHS_PER_REGIME
        chunk = snapshots[lo:lo + EPOCHS_PER_REGIME]
        union = np.bitwise_or.reduce(np.stack(chunk), axis=0)
        # Epochs within a regime are identical: any reference epoch of
        # the regime is the ground-truth pattern.
        scores.append(float(np.mean(union == reference[lo])))
    return sum(scores) / len(scores)


def test_auto_beats_fixed_stride_at_equal_budget():
    reference = _replay(Tracer())

    auto_tracer = Tracer(sample="auto", auto_stride=8, auto_hot=2)
    auto_tracer.heat = HeatStore(nbuckets=32, attribute=False)
    auto_snaps = _replay(auto_tracer)

    fixed_tracer = Tracer(sample=2)
    fixed_snaps = _replay(fixed_tracer)

    auto = auto_tracer.describe()
    fixed = fixed_tracer.describe()
    # Fair fight: the fixed-stride run gets at least as many recorded
    # words as the adaptive one, and both genuinely sample.
    assert auto["words_recorded"] <= fixed["words_recorded"]
    assert auto["words_recorded"] < auto["words_seen"] * 0.6

    auto_fidelity = _phase_fidelity(auto_snaps, reference)
    fixed_fidelity = _phase_fidelity(fixed_snaps, reference)
    assert auto_fidelity >= fixed_fidelity + 0.1
    assert auto_fidelity > 0.99


def test_auto_reacts_to_every_regime_switch():
    tracer = Tracer(sample="auto", auto_stride=8, auto_hot=2)
    tracer.heat = HeatStore(nbuckets=32, attribute=False)
    _replay(tracer)
    assert tracer.auto_changes == REGIMES - 1
    info = tracer.sampling_info()
    assert info["mode"] == "auto"
    # Steady state dominates: the measured rate sits well below full
    # tracing but above the raw steady-state stride.
    assert 1 / 8 < info["measured_rate"] < 0.6


def test_auto_budget_is_deterministic():
    def run():
        tracer = Tracer(sample="auto", auto_stride=8, auto_hot=2)
        tracer.heat = HeatStore(nbuckets=32, attribute=False)
        _replay(tracer)
        return tracer.describe()

    assert run() == run()

"""Sampled shadow mode (``Tracer(sample=N)``): estimates track full traces.

Sampling records 1-in-N words (strided over wide spans, 1-in-N calls for
narrow accesses) and diagnostics scale the counters back up.  The result
is an *estimate*; these tests pin down how good it must be: exact for
dense access patterns (full-span accesses clamp to the block size) and
within a modest relative error for partial coverage.
"""

import numpy as np
import pytest

from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.runtime import Tracer, trace_print

WORDS = 4096


def _traced(sample, accesses):
    """Replay ``accesses`` = [(proc, is_write, lo, hi)] under sampling."""
    space = AddressSpace()
    alloc = space.allocate(WORDS * 4, MemoryKind.MANAGED, label="m")
    tracer = Tracer(sample=sample)
    tracer.trc_register(alloc)
    for proc, is_write, lo, hi in accesses:
        tracer.on_access(proc, alloc, lo * 4, 4, hi - lo,
                         is_write=is_write, indices=None, is_rmw=False)
    return trace_print(tracer).named("m")


def test_dense_pattern_is_exact():
    """Full-span accesses scale back to exactly the block size."""
    accesses = [(Processor.CPU, True, 0, WORDS),
                (Processor.GPU, False, 0, WORDS)]
    full = _traced(None, accesses)
    sampled = _traced(8, accesses)
    assert sampled.counts == full.counts
    assert sampled.density_pct == 100


def test_partial_coverage_estimates_within_tolerance():
    """Strided/partial patterns estimate densities within 15% relative."""
    rng = np.random.default_rng(42)
    accesses = []
    for _ in range(300):
        lo = int(rng.integers(WORDS - 64))
        hi = lo + int(rng.integers(16, 64))
        proc = Processor.GPU if rng.integers(2) else Processor.CPU
        accesses.append((proc, bool(rng.integers(2)), lo, hi))
    full = _traced(None, accesses)
    sampled = _traced(4, accesses)
    assert sampled.counts.accessed_words == pytest.approx(
        full.counts.accessed_words, rel=0.15)
    assert sampled.counts.cpu_written + sampled.counts.gpu_written == \
        pytest.approx(full.counts.cpu_written + full.counts.gpu_written,
                      rel=0.20)


def test_sampling_is_opt_in():
    """Default tracer records every word (sample factor 1)."""
    assert Tracer().sample == 1
    assert Tracer(sample=8).sample == 8

"""Differential equivalence: the fast paths change nothing observable.

The PR-5 optimisations (UM-driver resident fast path, trace batching,
interpreter dispatch) are pure performance work -- every diagnostic
counter, transfer record, driver event and simulated cost must be
bit-identical with the fast paths on and off.  These tests run real
workloads and randomized access sequences both ways and compare the
complete observable state.
"""

import numpy as np
import pytest

from repro.interp import run_program
from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.runtime import Tracer, trace_print
from repro.workloads.base import make_session
from repro.workloads.rodinia import Gaussian
from repro.workloads.smithwaterman import SmithWaterman


def _session(fast: bool):
    """A fresh session with both fast paths either on (default) or off."""
    session = make_session("intel-pascal")
    session.platform.um.fast_path = fast
    if not fast:
        session.tracer.batcher = None  # per-call shadow updates
    return session


def _fingerprint(session):
    """Everything observable about a finished traced run."""
    result = trace_print(session.tracer, reset=False)
    reports = {
        r.name: (r.counts, r.alternating, r.density_pct, r.freed)
        for r in result.reports
    }
    log = session.platform.events
    transfers = [(t.alloc.label, t.offset, t.nbytes, t.direction, t.epoch)
                 for t in session.tracer.transfers]
    return {
        "reports": reports,
        "transfers": transfers,
        "kernels": session.tracer.kernels,
        "event_counts": dict(log.counts),
        "event_pages": dict(log.pages),
        "event_bytes": dict(log.bytes),
        "sim_time": session.sim_time,
    }


@pytest.mark.parametrize("workload", ["smithwaterman", "gaussian"])
def test_workload_equivalence(workload):
    """SW + one Rodinia workload: identical diagnostics, transfers, cost."""
    prints = []
    for fast in (True, False):
        session = _session(fast)
        if workload == "smithwaterman":
            SmithWaterman(session, 48).run()
        else:
            Gaussian(session, size=24).run()
        prints.append(_fingerprint(session))
    on, off = prints
    assert on["reports"] == off["reports"]
    assert on["transfers"] == off["transfers"]
    assert on["kernels"] == off["kernels"]
    assert on["event_counts"] == off["event_counts"]
    assert on["event_pages"] == off["event_pages"]
    assert on["event_bytes"] == off["event_bytes"]
    assert on["sim_time"] == pytest.approx(off["sim_time"], rel=0, abs=0.0)


_MINI_CUDA = """
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);

__global__ void sweep(int* a, int* b, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {
        for (int k = 0; k < 4; k++) {
            b[i] = b[i] + a[i] + k;
        }
    }
}

int main() {
    int n = 256;
    int* a;
    int* b;
    cudaMallocManaged((void**)&a, n * sizeof(int));
    cudaMallocManaged((void**)&b, n * sizeof(int));
    for (int i = 0; i < n; i++) { a[i] = i; b[i] = 0; }
    sweep<<<4, 64>>>(a, b, n);
    cudaDeviceSynchronize();
    tracePrint(XplAllocData(a, "a", n * 4), XplAllocData(b, "b", n * 4));
    for (int i = 0; i < n; i++) { a[i] = b[i] - 1; }
    tracePrint(XplAllocData(a, "a", n * 4), XplAllocData(b, "b", n * 4));
    return 0;
}
"""


def test_instrumented_source_diagnostics_bit_identical():
    """Batched vs unbatched mini-CUDA runs print byte-identical reports."""
    outs = []
    for batch in (True, False):
        interp = run_program(_MINI_CUDA, tracer=Tracer(batch=batch))
        outs.append(interp.stdout)
    assert outs[0] == outs[1]
    assert "access density" in outs[0]


def _replay(batch: bool, seed: int):
    """Drive a tracer with a deterministic random access sequence."""
    space = AddressSpace()
    allocs = [space.allocate(2 * 4096, MemoryKind.MANAGED, label="x"),
              space.allocate(3 * 4096, MemoryKind.MANAGED, label="y")]
    tracer = Tracer(batch=batch)
    for alloc in allocs:
        tracer.trc_register(alloc)
    rng = np.random.default_rng(seed)
    snapshots = []
    for _ in range(600):
        alloc = allocs[int(rng.integers(len(allocs)))]
        proc = Processor.GPU if rng.integers(2) else Processor.CPU
        kind = int(rng.integers(3))  # 0=read 1=write 2=rmw
        nwords = alloc.size // 4
        if rng.integers(8) == 0:  # scattered access
            idx = rng.integers(nwords, size=int(rng.integers(1, 16)))
            tracer.on_access(proc, alloc, 0, 4, len(idx),
                             is_write=kind == 1, indices=idx,
                             is_rmw=kind == 2)
        else:  # span access
            lo = int(rng.integers(nwords))
            hi = lo + 1 + int(rng.integers(min(64, nwords - lo)))
            tracer.on_access(proc, alloc, lo * 4, 4, hi - lo,
                             is_write=kind == 1, indices=None,
                             is_rmw=kind == 2)
        if rng.integers(50) == 0:  # mid-run diagnostic (advances the epoch)
            result = trace_print(tracer)
            snapshots.append([(r.name, r.counts, r.alternating)
                              for r in result.reports])
    result = trace_print(tracer)
    snapshots.append([(r.name, r.counts, r.alternating)
                      for r in result.reports])
    return snapshots


@pytest.mark.parametrize("seed", [3, 11, 2026])
def test_randomized_sequences_equivalent(seed):
    """Random read/write/RMW interleavings: batched == unbatched."""
    assert _replay(True, seed) == _replay(False, seed)

"""Unit tests for device specs, the simulated clock, and streams."""

import pytest

from repro.memsim import DeviceSpec, Processor, SimClock, Stream


class TestProcessor:
    def test_other_flips(self):
        assert Processor.CPU.other is Processor.GPU
        assert Processor.GPU.other is Processor.CPU

    def test_short_tags_match_paper_tables(self):
        assert Processor.CPU.short == "C"
        assert Processor.GPU.short == "G"

    def test_values_are_row_indices(self):
        assert int(Processor.CPU) == 0
        assert int(Processor.GPU) == 1


class TestDeviceSpec:
    def make(self, **kw):
        defaults = dict(
            name="gpu", processor=Processor.GPU, memory_bytes=1 << 30,
            element_time=1e-9, launch_overhead=1e-6,
        )
        defaults.update(kw)
        return DeviceSpec(**defaults)

    def test_compute_time_scales_with_elements(self):
        d = self.make()
        assert d.compute_time(1000) == pytest.approx(1e-6 + 1000 * 1e-9)

    def test_ops_per_element_multiplier(self):
        d = self.make()
        assert d.compute_time(10, ops_per_element=5) == pytest.approx(1e-6 + 50e-9)

    def test_rejects_negative_elements(self):
        with pytest.raises(ValueError):
            self.make().compute_time(-1)

    @pytest.mark.parametrize("field,value", [
        ("memory_bytes", 0), ("element_time", 0.0), ("launch_overhead", -1.0),
    ])
    def test_rejects_bad_parameters(self, field, value):
        with pytest.raises(ValueError):
            self.make(**{field: value})


class TestSimClock:
    def test_starts_at_zero_and_advances(self):
        c = SimClock()
        assert c.now == 0.0
        c.advance(1.5)
        assert c.now == 1.5

    def test_advance_to_never_rewinds(self):
        c = SimClock()
        c.advance(2.0)
        c.advance_to(1.0)
        assert c.now == 2.0
        c.advance_to(3.0)
        assert c.now == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_reset(self):
        c = SimClock()
        c.advance(5)
        c.reset()
        assert c.now == 0.0


class TestStream:
    def test_enqueue_serializes_on_one_stream(self):
        c = SimClock()
        s = Stream(c)
        t1 = s.enqueue(1.0)
        t2 = s.enqueue(2.0)
        assert (t1, t2) == (1.0, 3.0)

    def test_work_starts_no_earlier_than_host_clock(self):
        c = SimClock()
        s = Stream(c)
        c.advance(5.0)
        assert s.enqueue(1.0) == 6.0

    def test_cross_stream_dependency_via_after(self):
        c = SimClock()
        copy, compute = Stream(c, "copy"), Stream(c, "compute")
        t_copy = copy.enqueue(2.0)
        t_k = compute.enqueue(3.0, after=t_copy)
        assert t_k == 5.0

    def test_overlap_two_streams(self):
        # A transfer on one stream overlaps compute on another: the
        # second kernel waits only on its own input transfer.
        c = SimClock()
        copy, compute = Stream(c, "copy"), Stream(c, "compute")
        t1 = copy.enqueue(1.0)            # seg1 in   [0,1]
        k1 = compute.enqueue(4.0, after=t1)  # kernel1 [1,5]
        t2 = copy.enqueue(1.0)            # seg2 in   [1,2] -- overlapped
        k2 = compute.enqueue(4.0, after=t2)  # kernel2 [5,9]
        assert k2 == 9.0
        assert compute.synchronize() == 9.0
        assert c.now == 9.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Stream(SimClock()).enqueue(-1.0)

"""Eviction under oversubscription: LRU order, mappings, event shape.

Focused coverage of :meth:`UnifiedMemoryDriver._ensure_capacity` beyond
the smoke assertions in ``test_unified_memory.py``: which pages get
picked (global LRU), what survives (AccessedBy mappings), and what the
EVICTION event reports (page counts, bytes, costs, cause links).
"""

import numpy as np

from repro.memsim import (
    PAGE_SIZE,
    AddressSpace,
    EventKind,
    EventLog,
    MemoryKind,
    Processor,
    SimClock,
    UMCostParams,
    UnifiedMemoryDriver,
    pcie3,
)

CPU, GPU = Processor.CPU, Processor.GPU


def make_driver(gpu_pages=8, block=2):
    params = UMCostParams(eviction_block_pages=block)
    clock = SimClock()
    log = EventLog()
    drv = UnifiedMemoryDriver(pcie3(), gpu_pages * PAGE_SIZE, clock, log,
                              params)
    return drv, AddressSpace(), log


def managed(space, drv, npages=4, label="a"):
    alloc = space.allocate(npages * PAGE_SIZE, MemoryKind.MANAGED,
                           label=label, materialize=False)
    drv.register(alloc)
    return alloc


class TestLruOrder:
    def test_least_recently_used_allocation_is_evicted_first(self):
        drv, space, log = make_driver(gpu_pages=8, block=2)
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=4, label="b")
        c = managed(space, drv, npages=2, label="c")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.access(b, 0, 4, GPU, is_write=True)   # 8 resident: full
        drv.access(a, 0, 4, GPU, is_write=False)  # refresh a: b is now LRU
        drv.access(c, 0, 2, GPU, is_write=True)   # needs room for 2
        st_a, st_b = drv.state_of(a), drv.state_of(b)
        assert st_a.present[GPU].all(), "recently used pages must survive"
        assert int(st_b.present[GPU].sum()) <= 2, "LRU alloc takes the hit"
        assert drv.gpu_pages_in_use <= 8

    def test_eviction_is_block_granular(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=1, label="b")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.access(b, 0, 1, GPU, is_write=True)   # 1 page over capacity
        # The whole aligned 4-page block around the LRU page is written
        # back, not just the single page needed.
        assert log.pages[EventKind.EVICTION] == 4
        assert not drv.state_of(a).present[GPU].any()

    def test_evicted_pages_live_on_host_and_stay_mapped_there(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=4, label="b")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.access(b, 0, 4, GPU, is_write=True)
        st_a = drv.state_of(a)
        assert st_a.present[CPU].all()
        assert st_a.mapped[CPU].all()


class TestAccessedByAcrossEviction:
    def test_accessed_by_mapping_survives_eviction(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        a = managed(space, drv, npages=4, label="a")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.set_accessed_by(a, 0, 4, GPU, True)
        b = managed(space, drv, npages=4, label="b")
        drv.access(b, 0, 4, GPU, is_write=True)   # evicts a
        st_a = drv.state_of(a)
        assert not st_a.present[GPU].any()
        assert st_a.mapped[GPU].all(), "AccessedBy pins the mapping"
        # The retained mapping turns the re-access into a remote access
        # instead of a migration storm.
        out = drv.access(a, 0, 4, GPU, is_write=False, nbytes=256)
        assert out.remote_bytes == 256
        assert out.migrated_pages == 0

    def test_without_accessed_by_the_mapping_is_dropped(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        a = managed(space, drv, npages=4, label="a")
        drv.access(a, 0, 4, GPU, is_write=True)
        b = managed(space, drv, npages=4, label="b")
        drv.access(b, 0, 4, GPU, is_write=True)   # evicts a
        st_a = drv.state_of(a)
        assert not st_a.mapped[GPU].any()
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.migrated_pages == 4


class TestEvictionEvent:
    def test_event_reports_pages_bytes_and_batch_cost(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=4, label="b")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.access(b, 0, 4, GPU, is_write=True)
        evictions = log.of_kind(EventKind.EVICTION)
        assert len(evictions) == 1
        ev = evictions[0]
        assert ev.pages == 4
        assert ev.nbytes == 4 * PAGE_SIZE
        expected = (drv.params.eviction_service
                    + drv.link.transfer_time(4 * PAGE_SIZE))
        assert ev.cost == expected
        assert log.costs[EventKind.EVICTION] == expected

    def test_eviction_advances_the_clock(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=4, label="b")
        drv.access(a, 0, 4, GPU, is_write=True)
        before = drv.clock.now
        drv.access(b, 0, 4, GPU, is_write=True)
        assert drv.clock.now > before

    def test_refault_after_eviction_names_the_eviction_as_parent(self):
        drv, space, log = make_driver(gpu_pages=4, block=4)
        drv.track_causes = True
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=4, label="b")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.access(b, 0, 4, GPU, is_write=True)   # evicts a
        eviction = log.of_kind(EventKind.EVICTION)[-1]
        drv.access(a, 0, 4, GPU, is_write=False)  # oversubscription refault
        refault = log.of_kind(EventKind.PAGE_FAULT)[-1]
        assert refault.cause is not None
        assert refault.cause.parent == eviction.id

    def test_oversubscribed_faults_pay_the_pressure_factor(self):
        def fault_cost(ballast_pages):
            drv, space, log = make_driver(gpu_pages=4, block=4)
            if ballast_pages:
                # Registered-but-untouched footprint: pushes the GPU-
                # visible total past device memory without evicting.
                managed(space, drv, npages=ballast_pages, label="ballast")
            a = managed(space, drv, npages=4, label="a")
            drv.access(a, 0, 4, CPU, is_write=True)
            return drv.access(a, 0, 4, GPU, is_write=False).cost

        roomy = fault_cost(0)        # visible footprint == capacity
        pressured = fault_cost(4)    # visible footprint 2x capacity
        assert pressured > roomy

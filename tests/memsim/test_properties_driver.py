"""Property-based tests for the unified-memory driver and helpers."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    PAGE_SIZE,
    AddressSpace,
    EventLog,
    MemoryKind,
    Processor,
    SimClock,
    UnifiedMemoryDriver,
    contiguous_runs,
    pcie3,
)

CPU, GPU = Processor.CPU, Processor.GPU
NPAGES = 12


def make_driver(gpu_pages=1024):
    drv = UnifiedMemoryDriver(pcie3(), gpu_pages * PAGE_SIZE,
                              SimClock(), EventLog(keep_events=False))
    space = AddressSpace()
    alloc = space.allocate(NPAGES * PAGE_SIZE, MemoryKind.MANAGED,
                           materialize=False)
    drv.register(alloc)
    return drv, alloc


#: One driver step: (actor, lo, span, is_write) or an advice toggle.
accesses = st.tuples(
    st.sampled_from([CPU, GPU]),
    st.integers(0, NPAGES - 1),
    st.integers(1, 5),
    st.booleans(),
)
advice = st.sampled_from(["rm_on", "rm_off", "pref_cpu", "pref_none", "ab_gpu"])
steps = st.lists(st.one_of(accesses, advice), max_size=30)


class TestDriverInvariants:
    @given(steps)
    @settings(max_examples=60, deadline=None)
    def test_state_machine_invariants(self, sequence):
        drv, alloc = make_driver()
        st_ = drv.state_of(alloc)
        total_cost = 0.0
        for step in sequence:
            if isinstance(step, str):
                if step == "rm_on":
                    drv.set_read_mostly(alloc, 0, NPAGES, True)
                elif step == "rm_off":
                    drv.set_read_mostly(alloc, 0, NPAGES, False)
                elif step == "pref_cpu":
                    drv.set_preferred_location(alloc, 0, NPAGES, CPU)
                elif step == "pref_none":
                    drv.set_preferred_location(alloc, 0, NPAGES, None)
                else:
                    drv.set_accessed_by(alloc, 0, NPAGES, GPU, True)
                continue
            proc, lo, span, is_write = step
            hi = min(NPAGES, lo + span)
            out = drv.access(alloc, lo, hi, proc, is_write=is_write)
            total_cost += out.cost
            # Costs are never negative.
            assert out.cost >= 0.0

            # Pages touched by this access are now present at the accessor
            # or mapped for it (remote service).
            window = slice(lo, hi)
            served = st_.present[proc, window] | st_.mapped[proc, window]
            assert served.all()

            # Without ReadMostly, a page has at most one valid copy.
            both = st_.present[CPU] & st_.present[GPU]
            assert (~both | st_.read_mostly).all()

            # A written page either lives solely at the writer, or stays
            # home and is written through an established remote mapping
            # (the PreferredLocation semantics).
            if is_write:
                sole = st_.sole_copy_on(proc)[window]
                remote = (st_.present[proc.other, window]
                          & st_.mapped[proc, window])
                assert (sole | remote).all()

            # Residency accounting matches the state matrix.
            assert drv.gpu_pages_in_use == int(st_.present[GPU].sum())
        assert total_cost >= 0.0

    @given(steps)
    @settings(max_examples=30, deadline=None)
    def test_capacity_respected_under_pressure(self, sequence):
        drv, alloc = make_driver(gpu_pages=4)
        for step in sequence:
            if isinstance(step, str):
                continue
            proc, lo, span, is_write = step
            hi = min(NPAGES, lo + span)
            if proc is GPU and hi - lo > 4:
                hi = lo + 4  # single accesses larger than memory can't fit
            drv.access(alloc, lo, hi, proc, is_write=is_write)
            assert drv.gpu_pages_in_use <= 4


class TestContiguousRuns:
    @given(st.lists(st.integers(0, 100), max_size=40, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_runs_partition_the_index_set(self, raw):
        idx = np.array(sorted(raw), dtype=np.int64)
        runs = contiguous_runs(idx)
        rebuilt = [i for a, b in runs for i in range(a, b)]
        assert rebuilt == sorted(raw)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=40, unique=True))
    @settings(max_examples=100, deadline=None)
    def test_runs_are_maximal_and_disjoint(self, raw):
        idx = np.array(sorted(raw), dtype=np.int64)
        runs = contiguous_runs(idx)
        for (a1, b1), (a2, b2) in zip(runs, runs[1:]):
            assert b1 < a2  # disjoint AND non-adjacent (maximality)


class TestAddressSpaceProperties:
    @given(st.lists(st.integers(1, 10_000), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_allocations_never_overlap_and_lookup_agrees(self, sizes):
        space = AddressSpace()
        allocs = [space.allocate(s, MemoryKind.MANAGED, materialize=False)
                  for s in sizes]
        spans = sorted((a.base, a.end) for a in allocs)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            assert e1 <= s2
        for a in allocs:
            assert space.find(a.base) is a
            assert space.find(a.end - 1) is a

"""Unit tests for the unified-memory driver state machine."""

import numpy as np
import pytest

from repro.memsim import (
    PAGE_SIZE,
    AddressSpace,
    EventKind,
    EventLog,
    MemoryKind,
    Processor,
    SimClock,
    UMCostParams,
    UnifiedMemoryDriver,
    contiguous_runs,
    nvlink2,
    pcie3,
)

CPU, GPU = Processor.CPU, Processor.GPU


def make_driver(link=None, gpu_bytes=1 << 30, params=None):
    clock = SimClock()
    log = EventLog()
    drv = UnifiedMemoryDriver(link or pcie3(), gpu_bytes, clock, log, params)
    return drv, AddressSpace(), log


def managed(space, drv, npages=4, label="a"):
    alloc = space.allocate(npages * PAGE_SIZE, MemoryKind.MANAGED,
                           label=label, materialize=False)
    drv.register(alloc)
    return alloc


class TestFirstTouch:
    def test_populates_at_accessor_without_fault(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        out = drv.access(a, 0, 4, CPU, is_write=True)
        assert out.populated_pages == 4
        assert out.fault_groups == 0
        st = drv.state_of(a)
        assert st.present[CPU].all()
        assert not st.present[GPU].any()

    def test_gpu_first_touch_counts_toward_residency(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, GPU, is_write=True)
        assert drv.gpu_pages_in_use == 4


class TestMigration:
    def test_remote_access_after_cpu_touch_migrates_on_pcie(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.migrated_pages == 4
        assert out.fault_groups == 1  # contiguous pages -> one fault group
        st = drv.state_of(a)
        assert st.present[GPU].all() and not st.present[CPU].any()

    def test_scattered_pages_cost_one_group_each(self):
        drv, space, log = make_driver()
        a = managed(space, drv, npages=8)
        drv.access(a, 0, 8, CPU, is_write=True)
        # GPU touches pages 0, 2, 4, 6: four separate fault groups.
        total_groups = 0
        for p in (0, 2, 4, 6):
            total_groups += drv.access(a, p, p + 1, GPU, is_write=False).fault_groups
        assert total_groups == 4

    def test_contiguous_run_helper(self):
        assert contiguous_runs(np.array([0, 1, 2, 5, 6, 9])) == [(0, 3), (5, 7), (9, 10)]
        assert contiguous_runs(np.array([], dtype=int)) == []

    def test_alternating_access_thrashes(self):
        # The LULESH anti-pattern: CPU writes then GPU reads, every step.
        drv, space, log = make_driver()
        a = managed(space, drv, npages=1)
        drv.access(a, 0, 1, CPU, is_write=True)
        for _ in range(10):
            drv.access(a, 0, 1, GPU, is_write=False)
            drv.access(a, 0, 1, CPU, is_write=True)
        assert log.migrated_pages == 20

    def test_replay_penalty_scales_with_accessors(self):
        params = UMCostParams(replay_per_block=1e-6, fault_service=0.0)
        drv, space, log = make_driver(params=params)
        a = managed(space, drv, npages=1)
        drv.access(a, 0, 1, CPU, is_write=True)
        small = drv.access(a, 0, 1, GPU, is_write=False, accessors=1).cost
        drv.access(a, 0, 1, CPU, is_write=True)
        big = drv.access(a, 0, 1, GPU, is_write=False, accessors=101).cost
        assert big - small == pytest.approx(100e-6)

    def test_replay_capped_at_max_blocks(self):
        params = UMCostParams(replay_per_block=1e-6, max_replay_blocks=10)
        drv, space, log = make_driver(params=params)
        a = managed(space, drv, npages=1)
        drv.access(a, 0, 1, CPU, is_write=True)
        c1 = drv.access(a, 0, 1, GPU, is_write=False, accessors=10).cost
        drv.access(a, 0, 1, CPU, is_write=True)
        c2 = drv.access(a, 0, 1, GPU, is_write=False, accessors=10_000).cost
        assert c1 == pytest.approx(c2)


class TestReadMostly:
    def test_read_duplicates_instead_of_migrating(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_read_mostly(a, 0, 4, True)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.duplicated_pages == 4
        assert out.migrated_pages == 0
        st = drv.state_of(a)
        assert st.present[CPU].all() and st.present[GPU].all()

    def test_second_read_is_free_of_driver_events(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_read_mostly(a, 0, 4, True)
        drv.access(a, 0, 4, GPU, is_write=False)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.cost == 0.0

    def test_write_invalidates_other_copies(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_read_mostly(a, 0, 4, True)
        drv.access(a, 0, 4, GPU, is_write=False)    # duplicate to GPU
        out = drv.access(a, 0, 4, CPU, is_write=True)  # CPU write: invalidate GPU
        assert out.invalidated_pages == 4
        st = drv.state_of(a)
        assert st.present[CPU].all() and not st.present[GPU].any()
        assert drv.gpu_pages_in_use == 0

    def test_unset_collapses_duplicates(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_read_mostly(a, 0, 4, True)
        drv.access(a, 0, 4, GPU, is_write=False)
        drv.set_read_mostly(a, 0, 4, False)
        st = drv.state_of(a)
        assert (st.present.sum(axis=0) == 1).all()


class TestPreferredLocation:
    def test_setting_preference_does_not_move_data(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_preferred_location(a, 0, 4, GPU)
        st = drv.state_of(a)
        assert st.present[CPU].all() and not st.present[GPU].any()

    def test_faulting_on_preferred_elsewhere_maps_instead_of_migrating(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_preferred_location(a, 0, 4, CPU)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.migrated_pages == 0
        assert out.remote_bytes > 0
        st = drv.state_of(a)
        assert st.present[CPU].all()       # data stayed home
        assert st.mapped[GPU].all()        # GPU mapped it remotely

    def test_subsequent_accesses_stay_remote(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_preferred_location(a, 0, 4, CPU)
        drv.access(a, 0, 4, GPU, is_write=False)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.fault_groups == 0 and out.remote_bytes > 0


class TestAccessedBy:
    def test_accessed_by_maps_populated_pages(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_accessed_by(a, 0, 4, GPU, True)
        st = drv.state_of(a)
        assert st.mapped[GPU].all()

    def test_gpu_access_through_mapping_avoids_migration(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        drv.set_accessed_by(a, 0, 4, GPU, True)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.migrated_pages == 0 and out.fault_groups == 0
        assert out.remote_bytes > 0

    def test_mapping_survives_migration(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, GPU, is_write=True)          # resident on GPU
        drv.set_accessed_by(a, 0, 4, CPU, True)
        # CPU cannot map GPU memory over PCIe, so its access migrates; the
        # GPU-side AccessedBy is not in play here -- check the converse:
        drv.set_accessed_by(a, 0, 4, GPU, True)
        drv.access(a, 0, 4, CPU, is_write=True)          # migrate to CPU
        st = drv.state_of(a)
        assert st.mapped[GPU].all()                      # kept up to date


class TestCoherentLink:
    def test_nvlink_serves_read_faults_remotely(self):
        drv, space, log = make_driver(link=nvlink2())
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.migrated_pages == 0
        assert out.remote_bytes > 0
        # And the page stays mapped: no further faults.
        out2 = drv.access(a, 0, 4, GPU, is_write=False)
        assert out2.fault_groups == 0

    def test_nvlink_writes_still_migrate(self):
        drv, space, log = make_driver(link=nvlink2())
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        out = drv.access(a, 0, 4, GPU, is_write=True)
        assert out.migrated_pages == 4

    def test_alternating_pattern_cheap_on_nvlink_expensive_on_pcie(self):
        def thrash_cost(link):
            drv, space, log = make_driver(link=link)
            a = managed(space, drv, npages=1)
            drv.access(a, 0, 1, CPU, is_write=True)
            total = 0.0
            for _ in range(20):
                total += drv.access(a, 0, 1, GPU, is_write=False,
                                    accessors=500, nbytes=256).cost
                total += drv.access(a, 0, 1, CPU, is_write=True, nbytes=64).cost
            return total

        assert thrash_cost(pcie3()) > 10 * thrash_cost(nvlink2())


class TestEviction:
    def test_oversubscription_evicts_lru(self):
        drv, space, log = make_driver(gpu_bytes=8 * PAGE_SIZE)
        a = managed(space, drv, npages=6, label="a")
        b = managed(space, drv, npages=6, label="b")
        drv.access(a, 0, 6, GPU, is_write=True)
        drv.access(b, 0, 6, GPU, is_write=True)   # forces eviction of a's pages
        assert drv.gpu_pages_in_use <= 8
        assert log.pages[EventKind.EVICTION] >= 4
        st_a = drv.state_of(a)
        assert st_a.present[CPU].sum() >= 4       # evicted pages live on host

    def test_evicted_page_refaults_on_reuse(self):
        drv, space, log = make_driver(gpu_bytes=4 * PAGE_SIZE)
        a = managed(space, drv, npages=4, label="a")
        b = managed(space, drv, npages=4, label="b")
        drv.access(a, 0, 4, GPU, is_write=True)
        drv.access(b, 0, 4, GPU, is_write=True)   # evicts all of a
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.migrated_pages == 4

    def test_device_allocation_over_capacity_raises(self):
        drv, space, log = make_driver(gpu_bytes=4 * PAGE_SIZE)
        big = space.allocate(5 * PAGE_SIZE, MemoryKind.DEVICE, materialize=False)
        with pytest.raises(MemoryError):
            drv.register(big)

    def test_free_releases_gpu_residency(self):
        drv, space, log = make_driver(gpu_bytes=4 * PAGE_SIZE)
        a = managed(space, drv, npages=4)
        drv.access(a, 0, 4, GPU, is_write=True)
        assert drv.gpu_pages_in_use == 4
        drv.unregister(a)
        assert drv.gpu_pages_in_use == 0


class TestPrefetch:
    def test_prefetch_moves_pages_without_faults(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.access(a, 0, 4, CPU, is_write=True)
        cost = drv.prefetch(a, 0, 4, GPU)
        assert cost > 0
        assert log.fault_groups == 0
        out = drv.access(a, 0, 4, GPU, is_write=False)
        assert out.fault_groups == 0 and out.cost == 0.0

    def test_prefetch_populates_untouched_pages(self):
        drv, space, log = make_driver()
        a = managed(space, drv)
        drv.prefetch(a, 0, 4, GPU)
        st = drv.state_of(a)
        assert st.present[GPU].all()


class TestKindEdges:
    def test_host_allocations_cost_nothing(self):
        drv, space, log = make_driver()
        h = space.allocate(64, MemoryKind.HOST)
        out = drv.access(h, 0, 1, CPU, is_write=True)
        assert out.cost == 0.0

    def test_cpu_dereference_of_device_memory_raises(self):
        drv, space, log = make_driver()
        d = space.allocate(PAGE_SIZE, MemoryKind.DEVICE, materialize=False)
        drv.register(d)
        with pytest.raises(RuntimeError):
            drv.access(d, 0, 1, CPU, is_write=False)

    def test_bad_page_range_rejected(self):
        drv, space, log = make_driver()
        a = managed(space, drv, npages=2)
        with pytest.raises(ValueError):
            drv.access(a, 0, 3, CPU, is_write=False)

    def test_state_of_unregistered_raises(self):
        drv, space, log = make_driver()
        h = space.allocate(64, MemoryKind.HOST)
        with pytest.raises(KeyError):
            drv.state_of(h)

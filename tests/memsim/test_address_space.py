"""Unit tests for the flat simulated address space and allocator."""

import numpy as np
import pytest

from repro.memsim import PAGE_SIZE, AddressSpace, MemoryKind


@pytest.fixture
def space():
    return AddressSpace()


class TestAllocate:
    def test_kinds_live_in_disjoint_regions(self, space):
        host = space.allocate(64, MemoryKind.HOST)
        dev = space.allocate(64, MemoryKind.DEVICE)
        man = space.allocate(64, MemoryKind.MANAGED)
        assert host.base < dev.base < man.base
        assert dev.base - host.end > 1 << 30

    def test_device_and_managed_are_page_aligned(self, space):
        a = space.allocate(100, MemoryKind.MANAGED)
        b = space.allocate(100, MemoryKind.MANAGED)
        assert a.base % PAGE_SIZE == 0
        assert b.base % PAGE_SIZE == 0
        assert b.base - a.base == PAGE_SIZE

    def test_host_allocations_are_16_byte_aligned_and_packed(self, space):
        a = space.allocate(10, MemoryKind.HOST)
        b = space.allocate(10, MemoryKind.HOST)
        assert a.base % 16 == 0
        assert b.base - a.base == 16

    def test_zero_and_negative_sizes_rejected(self, space):
        for bad in (0, -4):
            with pytest.raises(ValueError):
                space.allocate(bad, MemoryKind.HOST)

    def test_materialized_backing_is_zeroed(self, space):
        a = space.allocate(32, MemoryKind.MANAGED)
        assert a.materialized
        assert a.data is not None and not a.data.any()

    def test_footprint_only_has_no_backing(self, space):
        a = space.allocate(1 << 20, MemoryKind.MANAGED, materialize=False)
        assert not a.materialized
        with pytest.raises(RuntimeError):
            a.view(np.float64)

    def test_num_pages_rounds_up(self, space):
        assert space.allocate(1, MemoryKind.MANAGED).num_pages == 1
        assert space.allocate(PAGE_SIZE + 1, MemoryKind.MANAGED).num_pages == 2


class TestFind:
    def test_find_hits_interior_addresses(self, space):
        a = space.allocate(100, MemoryKind.MANAGED)
        assert space.find(a.base) is a
        assert space.find(a.base + 99) is a
        assert space.find(a.base + 100) is None

    def test_find_untracked_address_returns_none(self, space):
        assert space.find(0x1234) is None

    def test_find_after_free_returns_none(self, space):
        a = space.allocate(64, MemoryKind.DEVICE)
        space.free(a.base)
        assert space.find(a.base) is None
        assert a.freed

    def test_find_among_many(self, space):
        allocs = [space.allocate(50, MemoryKind.MANAGED) for _ in range(100)]
        for a in allocs:
            assert space.find(a.base + 25) is a


class TestFree:
    def test_double_free_rejected(self, space):
        a = space.allocate(16, MemoryKind.HOST)
        space.free(a.base)
        with pytest.raises(ValueError):
            space.free(a.base)

    def test_free_of_interior_address_rejected(self, space):
        a = space.allocate(64, MemoryKind.HOST)
        with pytest.raises(ValueError):
            space.free(a.base + 8)

    def test_freed_allocation_drops_backing(self, space):
        a = space.allocate(64, MemoryKind.MANAGED)
        space.free(a.base)
        assert a.data is None

    def test_all_allocations_remembers_freed(self, space):
        a = space.allocate(64, MemoryKind.MANAGED)
        space.free(a.base)
        assert a in space.all_allocations


class TestAllocationGeometry:
    def test_page_range_covers_partial_pages(self, space):
        a = space.allocate(3 * PAGE_SIZE, MemoryKind.MANAGED)
        assert a.page_range(a.base, 1) == (0, 1)
        assert a.page_range(a.base + PAGE_SIZE - 1, 2) == (0, 2)
        assert a.page_range(a.base + PAGE_SIZE, PAGE_SIZE) == (1, 2)
        assert a.page_range(a.base, 3 * PAGE_SIZE) == (0, 3)

    def test_page_range_rejects_overrun(self, space):
        a = space.allocate(PAGE_SIZE, MemoryKind.MANAGED)
        with pytest.raises(ValueError):
            a.page_range(a.base, PAGE_SIZE + 1)

    def test_typed_view_shares_backing(self, space):
        a = space.allocate(8 * 10, MemoryKind.MANAGED)
        v = a.view(np.float64)
        v[:] = 7.0
        assert a.view(np.float64)[3] == 7.0

    def test_view_with_offset_and_count(self, space):
        a = space.allocate(8 * 10, MemoryKind.MANAGED)
        a.view(np.float64)[:] = np.arange(10)
        sub = a.view(np.float64, offset=16, count=3)
        assert list(sub) == [2.0, 3.0, 4.0]

    def test_offset_of_out_of_range_rejected(self, space):
        a = space.allocate(16, MemoryKind.HOST)
        with pytest.raises(ValueError):
            a.offset_of(a.end)

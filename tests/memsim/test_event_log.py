"""EventLog retention, ids, the per-kind index and ring-buffer mode."""

from repro.memsim import Event, EventKind, EventLog, Processor

CPU = Processor.CPU


def ev(kind=EventKind.PAGE_FAULT, pages=1, cost=1e-6):
    return Event(kind, 0.0, CPU, pages=pages, cost=cost)


class TestIds:
    def test_record_assigns_sequential_ids(self):
        log = EventLog()
        ids = [log.record(ev()).id for _ in range(5)]
        assert ids == [0, 1, 2, 3, 4]

    def test_clear_resets_the_id_sequence(self):
        log = EventLog()
        log.record(ev())
        log.clear()
        assert log.record(ev()).id == 0

    def test_counters_only_mode_still_assigns_ids(self):
        log = EventLog(keep_events=False)
        assert log.record(ev()).id == 0
        assert log.record(ev()).id == 1
        assert len(list(log)) == 0
        assert len(log) == 2


class TestOfKindIndex:
    def test_of_kind_returns_only_that_kind_in_order(self):
        log = EventLog()
        f1 = log.record(ev(EventKind.PAGE_FAULT))
        m1 = log.record(ev(EventKind.MIGRATION))
        f2 = log.record(ev(EventKind.PAGE_FAULT))
        assert log.of_kind(EventKind.PAGE_FAULT) == [f1, f2]
        assert log.of_kind(EventKind.MIGRATION) == [m1]
        assert log.of_kind(EventKind.EVICTION) == []

    def test_of_kind_matches_linear_scan(self):
        log = EventLog()
        kinds = [EventKind.PAGE_FAULT, EventKind.MIGRATION,
                 EventKind.EVICTION, EventKind.PAGE_FAULT,
                 EventKind.MIGRATION, EventKind.PAGE_FAULT]
        for k in kinds:
            log.record(ev(k))
        for k in set(kinds):
            assert log.of_kind(k) == [e for e in log if e.kind == k]


class TestRetention:
    def test_capacity_without_ring_keeps_the_oldest_window(self):
        log = EventLog(capacity=3)
        recorded = [log.record(ev()) for _ in range(5)]
        assert list(log) == recorded[:3]
        assert log.of_kind(EventKind.PAGE_FAULT) == recorded[:3]
        # Aggregates still cover the full run.
        assert len(log) == 5
        assert log.counts[EventKind.PAGE_FAULT] == 5

    def test_ring_keeps_the_newest_window(self):
        log = EventLog(capacity=3, ring=True)
        recorded = [log.record(ev()) for _ in range(5)]
        assert list(log) == recorded[-3:]
        assert log.of_kind(EventKind.PAGE_FAULT) == recorded[-3:]
        assert len(log) == 5

    def test_ring_index_is_bounded_per_kind(self):
        log = EventLog(capacity=2, ring=True)
        for _ in range(4):
            log.record(ev(EventKind.PAGE_FAULT))
            log.record(ev(EventKind.MIGRATION))
        assert [e.id for e in log.of_kind(EventKind.PAGE_FAULT)] == [4, 6]
        assert [e.id for e in log.of_kind(EventKind.MIGRATION)] == [5, 7]

    def test_summary_counters_unaffected_by_retention(self):
        bounded = EventLog(capacity=1, ring=True)
        unbounded = EventLog()
        for log in (bounded, unbounded):
            for _ in range(4):
                log.record(ev(EventKind.MIGRATION, pages=2, cost=1e-6))
        assert bounded.summary() == unbounded.summary()

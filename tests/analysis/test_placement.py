"""Tests for the automatic placement advisor (diagnose -> fix loop)."""

import numpy as np
import pytest

from repro.analysis import (
    apply_plan,
    diagnose,
    recommend_placement,
)
from repro.cudart import CudaRuntime, cudaMemoryAdvise
from repro.memsim import CPU_DEVICE_ID, GPU_DEVICE_ID, Processor, intel_pascal
from repro.runtime import Tracer
from repro.workloads.base import make_session
from repro.workloads.lulesh import Lulesh

A = cudaMemoryAdvise


@pytest.fixture
def setup():
    rt = CudaRuntime(intel_pascal())
    tracer = Tracer().attach(rt)
    return rt, tracer


def gpu_read(rt, view):
    rt.launch(lambda ctx, v: v.read(0, len(v)), 4, 64, view, name="r")


def gpu_write(rt, view):
    rt.launch(lambda ctx, v: v.write(0, None, hi=len(v)), 4, 64, view, name="w")


class TestRules:
    def test_read_shared_gets_read_mostly(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="table").typed(np.float32)
        v.write(0, np.ones(len(v), np.float32))  # one-off CPU init
        diagnose(tracer)  # close the initialization epoch
        for _ in range(20):
            gpu_read(rt, v)
            v.read(0, len(v))
        # Steady state: shared, read-only -> ReadMostly.
        plan = recommend_placement(diagnose(tracer))
        advices = [a.advice for a in plan.for_allocation("table")]
        assert advices == [A.cudaMemAdviseSetReadMostly]

    def test_write_heavy_shared_gets_pin_plus_mapping(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="frame").typed(np.float32)
        for _ in range(4):
            v.write(0, np.ones(len(v), np.float32))  # CPU rewrites
            gpu_read(rt, v)
        plan = recommend_placement(diagnose(tracer))
        actions = plan.for_allocation("frame")
        kinds = {(a.advice, a.device_id) for a in actions}
        assert (A.cudaMemAdviseSetPreferredLocation, CPU_DEVICE_ID) in kinds
        assert (A.cudaMemAdviseSetAccessedBy, GPU_DEVICE_ID) in kinds

    def test_gpu_exclusive_gets_gpu_pin(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="scratch").typed(np.float32)
        gpu_write(rt, v)
        gpu_read(rt, v)
        plan = recommend_placement(diagnose(tracer))
        actions = plan.for_allocation("scratch")
        assert [(a.advice, a.device_id) for a in actions] == [
            (A.cudaMemAdviseSetPreferredLocation, GPU_DEVICE_ID)]

    def test_untouched_allocation_left_alone(self, setup):
        rt, tracer = setup
        rt.malloc_managed(4096, label="cold")
        plan = recommend_placement(diagnose(tracer))
        assert plan.for_allocation("cold") == []

    def test_device_memory_not_advised(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="dev")
        gpu_write(rt, d.typed(np.float32))
        plan = recommend_placement(diagnose(tracer))
        assert plan.for_allocation("dev") == []

    def test_plan_summary_readable(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="x").typed(np.float32)
        gpu_write(rt, v)
        plan = recommend_placement(diagnose(tracer))
        assert "SetPreferredLocation" in plan.summary()
        assert "x" in plan.summary()


class TestApply:
    def test_apply_issues_advise_calls(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="x").typed(np.float32)
        gpu_write(rt, v)
        plan = recommend_placement(diagnose(tracer))
        issued = apply_plan(rt, plan)
        assert issued == len(plan) >= 1
        st = rt.platform.um.state_of(v.alloc)
        assert (st.preferred == int(Processor.GPU)).all()

    def test_freed_allocations_skipped(self, setup):
        rt, tracer = setup
        p = rt.malloc_managed(4096, label="x")
        p.typed(np.float32).write(0, np.ones(1024, np.float32))
        d = diagnose(tracer)
        plan = recommend_placement(d)
        rt.free(p)
        assert apply_plan(rt, plan) == 0


class TestClosedLoopOnLulesh:
    def test_recommendations_speed_up_the_baseline(self):
        """The headline: diagnose LULESH, apply the advisor's plan, and the
        re-run beats the untreated baseline on the PCIe platform."""
        size, iters = 16, 12

        def timed(plan_from_diagnosis: bool) -> float:
            session = make_session("intel-pascal", trace=True,
                                   materialize=False)
            app = Lulesh(session, size)
            app.run(2)  # warm-up epoch to observe behaviour
            if plan_from_diagnosis:
                d = diagnose(session.tracer)
                plan = recommend_placement(d)
                assert plan.for_allocation("dom"), "dom must get advice"
                apply_plan(session.runtime, plan)
            session.tracer.detach()  # measure without tracing overhead
            t0 = session.platform.clock.now
            app.run(iters)
            return session.platform.clock.now - t0

        untreated = timed(False)
        treated = timed(True)
        assert treated < untreated * 0.8

    def test_dom_rule_is_pin_at_cpu_with_gpu_mapping(self):
        session = make_session("intel-pascal", trace=True, materialize=False)
        app = Lulesh(session, 8)
        app.run(2)
        plan = recommend_placement(diagnose(session.tracer))
        advices = {(a.advice, a.device_id) for a in plan.for_allocation("dom")}
        assert (A.cudaMemAdviseSetPreferredLocation, CPU_DEVICE_ID) in advices
        assert (A.cudaMemAdviseSetAccessedBy, GPU_DEVICE_ID) in advices

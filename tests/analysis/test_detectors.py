"""Unit tests for the three anti-pattern detectors."""

import numpy as np
import pytest

from repro.analysis import (
    AntiPattern,
    block_densities,
    detect_alternating,
    detect_low_density,
    detect_unnecessary_transfers,
    diagnose,
    format_findings,
)
from repro.cudart import CudaRuntime, cudaMemcpyKind, cudaMemoryAdvise
from repro.memsim import intel_pascal
from repro.runtime import Tracer, trace_print

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
A = cudaMemoryAdvise


@pytest.fixture
def setup():
    rt = CudaRuntime(intel_pascal())
    tracer = Tracer().attach(rt)
    return rt, tracer


def gpu_read(rt, view, lo=0, hi=None):
    rt.launch(lambda ctx, v: v.read(lo, hi if hi is not None else len(v)),
              1, 32, view, name="gpu_read")


def gpu_write(rt, view, lo=0, hi=None):
    rt.launch(lambda ctx, v: v.write(lo, None, hi=hi if hi is not None else len(v)),
              1, 32, view, name="gpu_write")


class TestAlternating:
    def test_cpu_write_gpu_read_fires(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        gpu_read(rt, v)
        d = diagnose(tracer)
        hits = d.of(AntiPattern.ALTERNATING_ACCESS)
        assert len(hits) == 1 and hits[0].name == "x"
        assert hits[0].metric == 16

    def test_exclusive_access_does_not_fire(self, setup):
        rt, tracer = setup
        cpu_only = rt.malloc_managed(64, label="c").typed(np.int32)
        gpu_only = rt.malloc_managed(64, label="g").typed(np.int32)
        cpu_only.write(0, np.zeros(16, np.int32))
        gpu_write(rt, gpu_only)
        d = diagnose(tracer)
        assert d.of(AntiPattern.ALTERNATING_ACCESS) == []

    def test_read_only_sharing_does_not_fire(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        # no writes at all this epoch: CPU and GPU both read
        v.read(0, 16)
        gpu_read(rt, v)
        d = diagnose(tracer)
        assert d.of(AntiPattern.ALTERNATING_ACCESS) == []

    def test_device_memory_exempt(self, setup):
        rt, tracer = setup
        d = rt.malloc(64, label="d")
        rt.memcpy(d, np.zeros(64, np.uint8), 64, H2D)  # CPU write via memcpy
        gpu_write(rt, d.typed(np.int32))               # GPU writes same words
        diag = diagnose(tracer)
        assert diag.of(AntiPattern.ALTERNATING_ACCESS) == []

    def test_matching_read_mostly_advice_suppresses(self, setup):
        rt, tracer = setup
        m = rt.malloc_managed(64, label="x")
        v = m.typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        trace_print(tracer)  # init epoch closed
        rt.mem_advise(m, 64, A.cudaMemAdviseSetReadMostly)
        # Steady state: only reads from both sides; a single stale write bit
        # from the memcpy-free epoch is gone after reset.
        v.read(0, 16)
        gpu_read(rt, v)
        d = diagnose(tracer)
        assert d.for_allocation("x") == [] or all(
            f.pattern is not AntiPattern.ALTERNATING_ACCESS
            for f in d.for_allocation("x"))

    def test_mismatched_read_mostly_still_fires(self, setup):
        rt, tracer = setup
        m = rt.malloc_managed(256, label="x")
        v = m.typed(np.int32)
        rt.mem_advise(m, 256, A.cudaMemAdviseSetReadMostly)
        # Heavy writes under ReadMostly: hint inconsistent with behaviour.
        v.write(0, np.zeros(64, np.int32))
        gpu_read(rt, v)
        v.write(0, np.zeros(64, np.int32))
        d = diagnose(tracer)
        assert len(d.of(AntiPattern.ALTERNATING_ACCESS)) == 1

    def test_min_words_threshold(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(2, np.int32))
        gpu_read(rt, v, 0, 2)
        result = trace_print(tracer, include_maps=True)
        assert detect_alternating(result, tracer, min_words=3) == []
        # (fresh epoch for the second call would show nothing, so reuse result)
        assert len(detect_alternating(result, tracer, min_words=1)) == 1


class TestLowDensity:
    def test_sparse_managed_allocation_fires(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="x").typed(np.int32)  # 1024 words
        v.write(0, np.zeros(10, np.int32))
        d = diagnose(tracer)
        hits = d.of(AntiPattern.LOW_ACCESS_DENSITY)
        assert len(hits) == 1
        assert hits[0].metric == pytest.approx(10 / 1024)

    def test_dense_allocation_does_not_fire(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        d = diagnose(tracer)
        assert d.of(AntiPattern.LOW_ACCESS_DENSITY) == []

    def test_untouched_allocation_does_not_fire(self, setup):
        rt, tracer = setup
        rt.malloc_managed(4096, label="x")
        d = diagnose(tracer)
        assert d.of(AntiPattern.LOW_ACCESS_DENSITY) == []

    def test_host_heap_exempt(self, setup):
        rt, tracer = setup
        v = rt.host_malloc(4096, label="h").typed(np.int32)
        v.write(0, np.zeros(1, np.int32))
        d = diagnose(tracer)
        assert d.of(AntiPattern.LOW_ACCESS_DENSITY) == []

    def test_threshold_boundary_inclusive(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)  # 16 words
        v.write(0, np.zeros(8, np.int32))  # exactly 50%
        d = diagnose(tracer, density_threshold=0.5)
        assert len(d.of(AntiPattern.LOW_ACCESS_DENSITY)) == 1

    def test_block_granular_density(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(1024, label="x").typed(np.int32)  # 256 words
        v.write(0, np.zeros(4, np.int32))        # block 0: sparse
        v.write(64, np.zeros(64, np.int32))      # block 1: dense
        result = trace_print(tracer, include_maps=True)
        hits = detect_low_density(result, threshold=0.5, block_words=64)
        assert hits[0].ranges == ((0, 64),)

    def test_block_densities_helper(self):
        mask = np.zeros(10, dtype=bool)
        mask[:3] = True
        dens = block_densities(mask, 4)
        assert dens[0] == pytest.approx(0.75)
        assert dens[1] == 0.0
        assert dens[2] == 0.0  # tail block (2 words, none set)

    def test_bad_threshold_rejected(self, setup):
        rt, tracer = setup
        result = trace_print(tracer, include_maps=True)
        with pytest.raises(ValueError):
            detect_low_density(result, threshold=0.0)


class TestUnnecessaryTransfers:
    def test_transfer_in_never_accessed(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="wall")
        rt.memcpy(d, np.zeros(4096, np.uint8), 4096, H2D)
        v = d.typed(np.int32)
        gpu_read(rt, v, 0, 128)  # GPU uses only the first eighth
        diag = diagnose(tracer)
        hits = diag.of(AntiPattern.UNNECESSARY_TRANSFER_IN)
        assert len(hits) == 1
        (lo, hi), = hits[0].ranges
        assert lo == 128 and hi == 1024

    def test_fully_used_transfer_clean(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="wall")
        rt.memcpy(d, np.zeros(4096, np.uint8), 4096, H2D)
        gpu_read(rt, d.typed(np.int32))
        diag = diagnose(tracer)
        assert diag.of(AntiPattern.UNNECESSARY_TRANSFER_IN) == []

    def test_overwritten_before_use(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="m_cuda")
        rt.memcpy(d, np.zeros(4096, np.uint8), 4096, H2D)
        gpu_write(rt, d.typed(np.int32))  # overwrites everything, reads nothing
        diag = diagnose(tracer)
        hits = diag.of(AntiPattern.TRANSFER_OVERWRITTEN)
        assert len(hits) == 1
        assert hits[0].metric == 4096

    def test_read_then_write_is_legitimate(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="x")
        rt.memcpy(d, np.zeros(4096, np.uint8), 4096, H2D)

        def k(ctx, v):
            v.read(0, len(v))
            v.write(0, None, hi=len(v))

        rt.launch(k, 1, 32, d.typed(np.int32))
        diag = diagnose(tracer)
        assert diag.of(AntiPattern.TRANSFER_OVERWRITTEN) == []

    def test_unmodified_transfer_out(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="input_cuda")
        host = np.zeros(4096, np.uint8)
        rt.memcpy(d, host, 4096, H2D)
        gpu_read(rt, d.typed(np.int32))
        rt.memcpy(host, d, 4096, D2H)  # round trip, GPU never wrote
        diag = diagnose(tracer)
        hits = diag.of(AntiPattern.UNNECESSARY_TRANSFER_OUT)
        assert len(hits) == 1
        assert hits[0].metric == 4096

    def test_modified_transfer_out_clean(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="x")
        host = np.zeros(4096, np.uint8)
        gpu_write(rt, d.typed(np.int32))
        rt.memcpy(host, d, 4096, D2H)
        diag = diagnose(tracer)
        assert diag.of(AntiPattern.UNNECESSARY_TRANSFER_OUT) == []

    def test_unused_allocation(self, setup):
        rt, tracer = setup
        rt.malloc(4096, label="output_hidden_cuda")
        diag = diagnose(tracer)
        hits = diag.of(AntiPattern.UNUSED_ALLOCATION)
        assert len(hits) == 1 and hits[0].name == "output_hidden_cuda"

    def test_min_block_words_filters_small_gaps(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="x")
        rt.memcpy(d, np.zeros(4096, np.uint8), 4096, H2D)
        v = d.typed(np.int32)

        def k(ctx, view):
            # Touch all but a 4-word hole.
            view.read(0, 512)
            view.read(516, 1024)

        rt.launch(k, 1, 32, v)
        diag = diagnose(tracer, min_transfer_block_words=16)
        assert diag.of(AntiPattern.UNNECESSARY_TRANSFER_IN) == []

    def test_transfers_scoped_to_epoch(self, setup):
        rt, tracer = setup
        d = rt.malloc(4096, label="x")
        rt.memcpy(d, np.zeros(4096, np.uint8), 4096, H2D)
        gpu_read(rt, d.typed(np.int32))
        diagnose(tracer)  # epoch 0: clean
        gpu_read(rt, d.typed(np.int32), 0, 64)
        diag = diagnose(tracer)  # epoch 1 has no transfer records
        assert diag.of(AntiPattern.UNNECESSARY_TRANSFER_IN) == []


class TestFacade:
    def test_format_findings_mentions_remedies(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        gpu_read(rt, v)
        d = diagnose(tracer)
        text = format_findings(d.findings)
        assert "alternating" in text
        assert "remedy:" in text

    def test_diagnose_writes_report_and_findings(self, setup):
        import io
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        gpu_read(rt, v)
        out = io.StringIO()
        diagnose(tracer, out=out)
        assert "write counts" in out.getvalue()
        assert "anti-pattern finding" in out.getvalue()

"""Unit tests for the simulated CUDA runtime API."""

import numpy as np
import pytest

from repro.cudart import (
    CudaError,
    CudaRuntime,
    ObserverBase,
    cudaError_t,
    cudaMemcpyKind,
    cudaMemoryAdvise,
)
from repro.memsim import EventKind, MemoryKind, Processor, intel_pascal, power9_volta

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost


@pytest.fixture
def rt():
    return CudaRuntime(intel_pascal())


class Recorder(ObserverBase):
    """Observer that remembers everything it sees."""

    def __init__(self):
        self.allocs, self.frees, self.accesses = [], [], []
        self.memcpys, self.launches, self.advices = [], [], []

    def on_alloc(self, alloc):
        self.allocs.append(alloc)

    def on_free(self, alloc):
        self.frees.append(alloc)

    def on_access(self, proc, alloc, off, esz, count, is_write, indices, is_rmw):
        self.accesses.append((proc, alloc, off, esz, count, is_write, is_rmw))

    def on_memcpy(self, dst, dst_off, src, src_off, nbytes, kind):
        self.memcpys.append((dst, src, nbytes, kind))

    def on_kernel_launch(self, name, grid, block):
        self.launches.append((name, grid, block))

    def on_advice(self, alloc, advice, off, nbytes, device_id):
        self.advices.append((alloc, advice, nbytes, device_id))


class TestAllocation:
    def test_malloc_kinds(self, rt):
        assert rt.malloc(64).alloc.kind is MemoryKind.DEVICE
        assert rt.malloc_managed(64).alloc.kind is MemoryKind.MANAGED
        assert rt.host_malloc(64).alloc.kind is MemoryKind.HOST

    def test_zero_size_raises_cuda_error(self, rt):
        with pytest.raises(CudaError) as e:
            rt.malloc(0)
        assert e.value.code is cudaError_t.cudaErrorInvalidValue

    def test_oom_raises_memory_allocation(self):
        rt = CudaRuntime(intel_pascal(gpu_memory_bytes=1 << 20))
        with pytest.raises(CudaError) as e:
            rt.malloc(1 << 21)
        assert e.value.code is cudaError_t.cudaErrorMemoryAllocation

    def test_free_interior_pointer_rejected(self, rt):
        p = rt.malloc_managed(4096 * 2)
        with pytest.raises(CudaError):
            rt.free(p + 4096)

    def test_observers_see_alloc_and_free(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        p = rt.malloc_managed(64, label="x")
        rt.free(p)
        assert rec.allocs[0].label == "x"
        assert rec.frees[0] is p.alloc


class TestMemcpy:
    def test_h2d_copies_data_and_charges_link(self, rt):
        d = rt.malloc(4 * 100)
        host = np.arange(100, dtype=np.int32)
        t0 = rt.platform.clock.now
        rt.memcpy(d, host, 400, H2D)
        assert rt.platform.clock.now > t0
        assert list(d.alloc.data.view(np.int32)[:5]) == [0, 1, 2, 3, 4]

    def test_d2h_roundtrip(self, rt):
        d = rt.malloc(4 * 10)
        src = np.arange(10, dtype=np.int32)
        back = np.zeros(10, dtype=np.int32)
        rt.memcpy(d, src, 40, H2D)
        rt.memcpy(back, d, 40, D2H)
        assert (back == src).all()

    def test_wrong_direction_rejected(self, rt):
        d = rt.malloc(64)
        host = np.zeros(64, np.uint8)
        with pytest.raises(CudaError) as e:
            rt.memcpy(host, d, 64, H2D)  # claims H2D but copies D->H
        assert e.value.code is cudaError_t.cudaErrorInvalidMemcpyDirection

    def test_managed_endpoint_legal_either_side(self, rt):
        m = rt.malloc_managed(64)
        host = np.zeros(64, np.uint8)
        rt.memcpy(m, host, 64, H2D)
        rt.memcpy(host, m, 64, D2H)

    def test_memcpy_to_managed_faults_pages_back_to_cpu(self, rt):
        m = rt.malloc_managed(4096)
        v = m.typed(np.float32)

        def k(ctx, view):
            view.write(0, None, hi=len(view))

        rt.launch(k, 1, 32, v)
        assert rt.platform.um.state_of(m.alloc).present[Processor.GPU, 0]
        rt.memcpy(m, np.zeros(4096, np.uint8), 4096, H2D)
        assert rt.platform.um.state_of(m.alloc).present[Processor.CPU, 0]

    def test_observer_sees_memcpy(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        d = rt.malloc(64)
        rt.memcpy(d, np.zeros(64, np.uint8), 64, H2D)
        dst, src, nbytes, kind = rec.memcpys[0]
        assert dst is d.alloc and src is None and nbytes == 64 and kind is H2D

    def test_oversized_memcpy_rejected(self, rt):
        d = rt.malloc(64)
        with pytest.raises(CudaError):
            rt.memcpy(d, np.zeros(128, np.uint8), 128, H2D)

    def test_zero_byte_memcpy_is_noop(self, rt):
        d = rt.malloc(64)
        t0 = rt.platform.clock.now
        assert rt.memcpy(d, np.zeros(1, np.uint8), 0, H2D) is cudaError_t.cudaSuccess
        assert rt.platform.clock.now == t0


class TestAdvise:
    def test_advise_requires_managed(self, rt):
        d = rt.malloc(4096)
        with pytest.raises(CudaError):
            rt.mem_advise(d, 4096, cudaMemoryAdvise.cudaMemAdviseSetReadMostly)

    def test_read_mostly_duplicates_on_gpu_read(self, rt):
        m = rt.malloc_managed(4096)
        v = m.typed(np.float64)
        v.write(0, np.ones(len(v)))  # CPU first touch
        rt.mem_advise(m, 4096, cudaMemoryAdvise.cudaMemAdviseSetReadMostly)

        def k(ctx, view):
            view.read(0, len(view))

        rt.launch(k, 1, 32, v)
        st = rt.platform.um.state_of(m.alloc)
        assert st.present[Processor.CPU, 0] and st.present[Processor.GPU, 0]

    def test_preferred_location_cpu_keeps_data_home(self, rt):
        m = rt.malloc_managed(4096)
        v = m.typed(np.float64)
        v.write(0, np.ones(len(v)))
        rt.mem_advise(m, 4096, cudaMemoryAdvise.cudaMemAdviseSetPreferredLocation,
                      device_id=-1)

        def k(ctx, view):
            view.read(0, len(view))

        rt.launch(k, 4, 32, v)
        st = rt.platform.um.state_of(m.alloc)
        assert st.present[Processor.CPU, 0] and not st.present[Processor.GPU, 0]

    def test_observer_sees_advice(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        m = rt.malloc_managed(4096)
        rt.mem_advise(m, 4096, cudaMemoryAdvise.cudaMemAdviseSetAccessedBy, device_id=0)
        assert rec.advices[0][1] is cudaMemoryAdvise.cudaMemAdviseSetAccessedBy

    def test_prefetch_moves_pages(self, rt):
        m = rt.malloc_managed(4096 * 4)
        v = m.typed(np.float64)
        v.write(0, np.zeros(len(v)))
        rt.mem_prefetch(m, 4096 * 4, device_id=0)
        st = rt.platform.um.state_of(m.alloc)
        assert st.present[Processor.GPU].all()


class TestKernelLaunch:
    def test_kernel_accesses_attributed_to_gpu(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        v = rt.malloc_managed(4096).typed(np.float32)

        def saxpy(ctx, x):
            x.write(0, np.ones(len(x), np.float32))

        rt.launch(saxpy, 8, 128, v)
        procs = {a[0] for a in rec.accesses}
        assert procs == {Processor.GPU}
        assert rec.launches == [("saxpy", 8, 128)]

    def test_launch_advances_clock_by_compute_plus_memory(self, rt):
        v = rt.malloc_managed(1 << 16).typed(np.float32)
        v.write(0, np.zeros(len(v), np.float32))  # CPU touch => GPU will fault
        t0 = rt.platform.clock.now

        def k(ctx, x):
            x.read(0, len(x))

        rt.launch(k, 64, 256, v, work=len(v))
        elapsed = rt.platform.clock.now - t0
        compute = rt.platform.gpu.compute_time(len(v))
        assert elapsed > compute  # migration cost came on top

    def test_host_accesses_outside_kernel_are_cpu(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        v = rt.malloc_managed(64).typed(np.float64)
        v.write(0, np.zeros(len(v)))
        assert rec.accesses[0][0] is Processor.CPU

    def test_stream_launch_defers_time(self, rt):
        v = rt.malloc_managed(4096).typed(np.float32)
        s = rt.new_stream()
        rt.launch(lambda ctx, x: x.write(0, None, hi=len(x)), 1, 32, v,
                  name="k", stream=s)
        t_before_sync = rt.platform.clock.now
        rt.device_synchronize()
        assert rt.platform.clock.now > t_before_sync

    def test_invalid_launch_config(self, rt):
        with pytest.raises(ValueError):
            rt.launch(lambda ctx: None, 0, 32)

    def test_nested_context_restored_after_kernel_error(self, rt):
        def bad(ctx):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            rt.launch(bad, 1, 1)
        assert rt.current_proc is Processor.CPU


class TestRmwObservation:
    def test_rmw_published_once_with_flag(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        v = rt.malloc_managed(4 * 8).typed(np.int32)
        v.rmw(0, 8, lambda x: x + 1)
        kinds = [(a[5], a[6]) for a in rec.accesses]  # (is_write, is_rmw)
        assert kinds == [(True, True)]


class TestMemset:
    def test_memset_fills(self, rt):
        d = rt.malloc(64)
        rt.memset(d, 0xAB, 64)
        assert (d.alloc.data == 0xAB).all()


class TestNvlinkPlatformIntegration:
    def test_thrash_is_cheaper_on_power9(self):
        def run(platform):
            rt = CudaRuntime(platform)
            v = rt.malloc_managed(4096).typed(np.float64)
            v.write(0, np.zeros(len(v)))
            for _ in range(10):
                rt.launch(lambda ctx, x: x.read(0, len(x)), 32, 128, v, name="r")
                v.write(0, np.zeros(4))
            return rt.platform.clock.now

        assert run(intel_pascal()) > run(power9_volta())


class TestObserverLifecycle:
    def test_subscribe_is_idempotent(self, rt):
        rec = Recorder()
        rt.subscribe(rec)
        rt.subscribe(rec)
        assert rt.observers.count(rec) == 1
        rt.malloc(64)
        assert len(rec.allocs) == 1

    def test_tracer_double_attach_is_idempotent(self, rt):
        from repro.runtime import Tracer

        tracer = Tracer().attach(rt)
        tracer.attach(rt)
        assert rt.observers.count(tracer) == 1
        tracer.detach()
        assert tracer not in rt.observers

    def test_unsubscribe_self_while_publishing(self, rt):
        """An observer may drop out from inside a callback without
        breaking the in-flight notification round."""

        class OneShot(ObserverBase):
            def __init__(self):
                self.seen = 0

            def on_alloc(self, alloc):
                self.seen += 1
                rt.unsubscribe(self)

        one_shot = OneShot()
        tail = Recorder()
        rt.subscribe(one_shot)
        rt.subscribe(tail)     # after one_shot in the observer list
        rt.malloc(64)
        rt.malloc(64)
        assert one_shot.seen == 1          # dropped out after the first event
        assert len(tail.allocs) == 2       # later observers still notified

    def test_unsubscribe_other_while_publishing(self, rt):
        victim = Recorder()

        class Assassin(ObserverBase):
            def on_alloc(self, alloc):
                rt.unsubscribe(victim)

        rt.subscribe(Assassin())
        rt.subscribe(victim)
        rt.malloc(64)
        # The snapshot iteration still delivers the in-flight event...
        assert len(victim.allocs) == 1
        rt.malloc(64)
        # ...but nothing afterwards.
        assert len(victim.allocs) == 1

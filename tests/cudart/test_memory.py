"""Unit tests for DevicePtr and ArrayView."""

import numpy as np
import pytest

from repro.cudart import CudaError, CudaRuntime
from repro.memsim import intel_pascal


@pytest.fixture
def rt():
    return CudaRuntime(intel_pascal())


class TestDevicePtr:
    def test_pointer_arithmetic(self, rt):
        p = rt.malloc_managed(1024)
        q = p + 128
        assert q.addr == p.addr + 128

    def test_arithmetic_cannot_escape_allocation(self, rt):
        p = rt.malloc_managed(64)
        with pytest.raises(ValueError):
            _ = p + 65
        with pytest.raises(ValueError):
            _ = p + (-1)

    def test_typed_view_count_inference(self, rt):
        p = rt.malloc_managed(80)
        v = p.typed(np.float64)
        assert len(v) == 10

    def test_typed_view_overflow_rejected(self, rt):
        p = rt.malloc_managed(80)
        with pytest.raises(ValueError):
            p.typed(np.float64, 11)

    def test_typed_view_with_offset(self, rt):
        p = rt.malloc_managed(80)
        v = p.typed(np.float64, offset_bytes=16)
        assert len(v) == 8
        assert v.addr == p.addr + 16


class TestArrayViewFunctional:
    def test_write_then_read_roundtrip(self, rt):
        v = rt.malloc_managed(8 * 8).typed(np.float64)
        v.write(0, np.arange(8.0))
        got = v.read(2, 5)
        assert list(got) == [2.0, 3.0, 4.0]

    def test_read_returns_copy_not_view(self, rt):
        v = rt.malloc_managed(8 * 4).typed(np.float64)
        v.write(0, np.ones(4))
        got = v.read(0, 4)
        got[:] = 99
        assert v.raw[0] == 1.0

    def test_scalar_write_needs_hi(self, rt):
        v = rt.malloc_managed(8 * 4).typed(np.float64)
        with pytest.raises(ValueError):
            v.write(0, 3.0)
        v.write(0, 3.0, hi=4)
        assert (v.raw == 3.0).all()

    def test_fill(self, rt):
        v = rt.malloc_managed(4 * 10).typed(np.int32)
        v.fill(7)
        assert (v.raw == 7).all()

    def test_gather_scatter(self, rt):
        v = rt.malloc_managed(4 * 10).typed(np.int32)
        v.write(0, np.arange(10, dtype=np.int32))
        idx = np.array([1, 3, 5])
        assert list(v.gather(idx)) == [1, 3, 5]
        v.scatter(idx, np.array([-1, -3, -5]))
        assert v.raw[3] == -3

    def test_rmw_applies_function(self, rt):
        v = rt.malloc_managed(4 * 4).typed(np.int32)
        v.write(0, np.arange(4, dtype=np.int32))
        v.rmw(0, 4, lambda x: x + 10)
        assert list(v.raw) == [10, 11, 12, 13]

    def test_out_of_bounds_rejected(self, rt):
        v = rt.malloc_managed(8 * 4).typed(np.float64)
        with pytest.raises(IndexError):
            v.read(0, 5)
        with pytest.raises(IndexError):
            v.gather(np.array([4]))

    def test_subview_windows_elements(self, rt):
        v = rt.malloc_managed(8 * 10).typed(np.float64)
        v.write(0, np.arange(10.0))
        sub = v.subview(4, 7)
        assert list(sub.read(0, 3)) == [4.0, 5.0, 6.0]

    def test_empty_range_is_noop(self, rt):
        v = rt.malloc_managed(8 * 4).typed(np.float64)
        before = rt.platform.clock.now
        assert len(v.read(2, 2)) == 0
        assert rt.platform.clock.now == before


class TestArrayViewFootprint:
    def test_footprint_read_returns_none_but_simulates(self):
        rt = CudaRuntime(intel_pascal(), materialize=False)
        v = rt.malloc_managed(1 << 20).typed(np.float64)
        assert v.read(0, 100) is None
        st = rt.platform.um.state_of(v.alloc)
        assert st.present[0, 0]  # populated at CPU by the read

    def test_footprint_write_ignores_values(self):
        rt = CudaRuntime(intel_pascal(), materialize=False)
        v = rt.malloc_managed(4096).typed(np.float64)
        v.write(0, None, hi=8)  # must not raise
        assert not v.functional

    def test_raw_raises_in_footprint_mode(self):
        rt = CudaRuntime(intel_pascal(), materialize=False)
        v = rt.malloc_managed(4096).typed(np.float64)
        with pytest.raises(RuntimeError):
            _ = v.raw

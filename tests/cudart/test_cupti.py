"""Tests for the CUPTI-style kernel profiler."""

import numpy as np
import pytest

from repro.cudart import CudaRuntime, KernelProfiler
from repro.memsim import intel_pascal
from repro.workloads.base import make_session
from repro.workloads.lulesh import Lulesh


@pytest.fixture
def setup():
    rt = CudaRuntime(intel_pascal())
    profiler = KernelProfiler(rt.platform)
    rt.subscribe(profiler)
    return rt, profiler


class TestAttribution:
    def test_fault_storm_attributed_to_the_faulting_kernel(self, setup):
        rt, prof = setup
        v = rt.malloc_managed(4 * 4096, label="x").typed(np.float32)
        v.write(0, np.zeros(len(v), np.float32))  # CPU-resident pages

        rt.launch(lambda ctx, d: d.read(0, len(d)), 8, 128, v, name="reader")
        rt.launch(lambda ctx, d: d.read(0, len(d)), 8, 128, v, name="rereader")

        reader = next(p for p in prof.profiles if p.name == "reader")
        rereader = next(p for p in prof.profiles if p.name == "rereader")
        assert reader.fault_groups >= 1
        assert reader.migrated_pages == 4
        assert rereader.fault_groups == 0   # pages already resident
        assert rereader.migrated_pages == 0

    def test_memory_fraction_bounded(self, setup):
        rt, prof = setup
        v = rt.malloc_managed(4096, label="x").typed(np.float32)
        v.write(0, np.zeros(len(v), np.float32))
        rt.launch(lambda ctx, d: d.read(0, len(d)), 1, 32, v, name="k")
        p = prof.profiles[0]
        assert 0.0 <= p.memory_fraction <= 1.0
        assert p.duration >= p.memory_time

    def test_launch_metadata_recorded(self, setup):
        rt, prof = setup
        rt.launch(lambda ctx: None, 3, 64, name="noop")
        p = prof.profiles[0]
        assert (p.name, p.grid, p.block, p.launch_index) == ("noop", 3, 64, 1)

    def test_aggregation_and_hotspots(self, setup):
        rt, prof = setup
        v = rt.malloc_managed(4 * 4096, label="x").typed(np.float32)
        for i in range(3):
            v.write(0, np.zeros(len(v), np.float32))   # CPU dirties pages
            rt.launch(lambda ctx, d: d.read(0, len(d)), 8, 128, v, name="hot")
        rt.launch(lambda ctx: None, 1, 32, name="cold")
        agg = prof.by_kernel()
        assert agg["hot"]["launches"] == 3
        assert agg["hot"]["fault_groups"] >= 3
        assert prof.hotspots(1)[0][0] == "hot"
        assert "hot" in prof.report()

    def test_reset(self, setup):
        rt, prof = setup
        rt.launch(lambda ctx: None, 1, 1, name="k")
        prof.reset()
        assert prof.profiles == []


class TestOnLulesh:
    def test_profiler_pinpoints_the_domain_faulting_kernels(self):
        """The paper's proposed use: per-kernel fault counts reveal which
        launches trip over the shared domain object."""
        session = make_session("intel-pascal", trace=False, materialize=False)
        prof = KernelProfiler(session.platform)
        session.runtime.subscribe(prof)
        app = Lulesh(session, 8)
        app.run(1)        # warm-up: one-time array migrations
        prof.reset()
        app.run(3)        # steady state

        agg = prof.by_kernel()
        # The first kernel after each CPU write phase keeps faulting on
        # the domain page...
        assert agg["calc_force_for_nodes"]["fault_groups"] >= 3
        # ...while kernels launched back-to-back on the GPU stay quiet.
        assert agg["calc_position_for_nodes"]["fault_groups"] == 0

    def test_duplicate_variant_quiets_the_profiler(self):
        def steady_faults(variant):
            session = make_session("intel-pascal", trace=False,
                                   materialize=False)
            prof = KernelProfiler(session.platform)
            session.runtime.subscribe(prof)
            app = Lulesh(session, 8, variant=variant)
            app.run(1)
            prof.reset()
            app.run(3)
            return sum(p.fault_groups for p in prof.profiles)

        # The duplicate-domain fix removes the struct-page storms; only
        # the per-timestep temporaries' first-touch faults remain.
        assert steady_faults("duplicate") < 0.7 * steady_faults("baseline")


class TestAttributionRegressions:
    def test_out_of_order_completion_matches_by_identity(self, setup):
        """Stream overlap can complete kernels out of launch order; each
        completion must pop its own launch snapshot, not the newest one."""
        rt, prof = setup
        from repro.memsim import Event, EventKind, Processor

        prof.on_kernel_launch("a", 1, 1)
        rt.platform.events.record(
            Event(EventKind.PAGE_FAULT, 0.0, Processor.GPU, pages=1))
        prof.on_kernel_launch("b", 1, 1)
        prof.on_kernel_complete("b", 1, 1, 0.001)   # out of launch order
        prof.on_kernel_complete("a", 1, 1, 0.001)

        a = next(p for p in prof.profiles if p.name == "a")
        b = next(p for p in prof.profiles if p.name == "b")
        assert a.fault_groups == 1   # fault happened after a's launch...
        assert b.fault_groups == 0   # ...but before b's

    def test_reset_mid_launch_drops_stale_snapshot(self, setup):
        rt, prof = setup
        prof.on_kernel_launch("stale", 1, 1)
        prof.reset()
        prof.on_kernel_complete("stale", 1, 1, 0.001)
        assert prof.profiles == []   # no snapshot left to attribute to
        rt.launch(lambda ctx: None, 1, 1, name="fresh")
        assert prof.profiles[0].launch_index == 1

    def test_eviction_inside_kernel_attributed_to_it(self):
        """A kernel whose working set overflows GPU memory triggers
        evictions mid-launch; the profiler must charge them to that kernel."""
        from repro.memsim import PAGE_SIZE

        rt = CudaRuntime(intel_pascal(gpu_memory_bytes=8 * PAGE_SIZE),
                         materialize=False)
        prof = KernelProfiler(rt.platform)
        rt.subscribe(prof)
        views = [rt.malloc_managed(4 * PAGE_SIZE, label=f"m{i}").typed(np.float32)
                 for i in range(3)]  # 12 managed pages vs 8 of GPU memory
        for i, v in enumerate(views):
            rt.launch(lambda ctx, d: d.write(0, None, hi=len(d)),
                      2, 128, v, name=f"w{i}")

        by_name = {p.name: p for p in prof.profiles}
        assert by_name["w0"].evicted_pages == 0
        # The third working set does not fit: its kernel pays the eviction.
        assert by_name["w2"].evicted_pages > 0
        assert by_name["w2"].memory_time > 0

"""Failure-injection tests: the runtime under abuse and resource pressure."""

import numpy as np
import pytest

from repro.cudart import CudaError, CudaRuntime, cudaError_t, cudaMemoryAdvise
from repro.memsim import PAGE_SIZE, Processor, intel_pascal
from repro.runtime import Tracer, trace_print


class TestGpuMemoryExhaustion:
    def test_cuda_malloc_oom_is_recoverable(self):
        rt = CudaRuntime(intel_pascal(gpu_memory_bytes=8 * PAGE_SIZE))
        keep = rt.malloc(4 * PAGE_SIZE, label="half")
        with pytest.raises(CudaError) as err:
            rt.malloc(5 * PAGE_SIZE, label="toomuch")
        assert err.value.code is cudaError_t.cudaErrorMemoryAllocation
        # The failed allocation must not leak tracked state.
        rt.free(keep)
        rt.malloc(8 * PAGE_SIZE, label="retry")  # now it fits

    def test_managed_oversubscription_survives_via_eviction(self):
        rt = CudaRuntime(intel_pascal(gpu_memory_bytes=8 * PAGE_SIZE),
                         materialize=False)
        views = [rt.malloc_managed(4 * PAGE_SIZE, label=f"m{i}").typed(np.float32)
                 for i in range(4)]  # 16 pages of managed vs 8 of GPU memory
        for v in views:
            rt.launch(lambda ctx, d: d.write(0, None, hi=len(d)),
                      2, 128, v, name="w")
        assert rt.platform.um.gpu_pages_in_use <= 8
        # Everything remains accessible afterwards.
        for v in views:
            rt.launch(lambda ctx, d: d.read(0, len(d)), 2, 128, v, name="r")

    def test_pinned_working_set_larger_than_memory_raises(self):
        rt = CudaRuntime(intel_pascal(gpu_memory_bytes=2 * PAGE_SIZE),
                         materialize=False)
        v = rt.malloc_managed(4 * PAGE_SIZE).typed(np.float32)
        with pytest.raises(MemoryError):
            # One access needing 4 resident pages with only 2 available:
            # every candidate page is pinned by the access itself.
            rt.launch(lambda ctx, d: d.write(0, None, hi=len(d)),
                      1, 128, v, name="w")


class TestApiMisuse:
    def test_double_free_detected(self):
        rt = CudaRuntime(intel_pascal())
        p = rt.malloc_managed(64)
        rt.free(p)
        with pytest.raises(ValueError):
            rt.free(p)

    def test_use_after_free_of_view_raises(self):
        rt = CudaRuntime(intel_pascal())
        p = rt.malloc_managed(64)
        v = p.typed(np.int32)
        rt.free(p)
        with pytest.raises(Exception):
            v.write(0, np.zeros(4, np.int32))

    def test_advise_on_freed_range_raises(self):
        rt = CudaRuntime(intel_pascal())
        p = rt.malloc_managed(4096)
        rt.free(p)
        with pytest.raises(Exception):
            rt.mem_advise(p, 4096,
                          cudaMemoryAdvise.cudaMemAdviseSetReadMostly)

    def test_tracer_survives_allocation_churn(self):
        rt = CudaRuntime(intel_pascal())
        tracer = Tracer().attach(rt)
        for i in range(100):
            p = rt.malloc_managed(256, label=f"t{i}")
            p.typed(np.int32).write(0, np.zeros(8, np.int32))
            rt.free(p)
            if i % 10 == 0:
                trace_print(tracer)
        result = trace_print(tracer)
        assert len(tracer.smt) == 0
        assert tracer.smt.graveyard == []

    def test_kernel_exception_leaves_runtime_usable(self):
        rt = CudaRuntime(intel_pascal())
        tracer = Tracer().attach(rt)

        def boom(ctx):
            raise RuntimeError("device assert")

        with pytest.raises(RuntimeError):
            rt.launch(boom, 1, 32, name="boom")
        assert rt.current_proc is Processor.CPU
        # A follow-up launch is attributed correctly.
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        rt.launch(lambda ctx, d: d.write(0, None, hi=len(d)), 1, 16, v,
                  name="ok")
        r = trace_print(tracer).named("x")
        assert r.counts.gpu_written > 0


class TestAdviceUnsetPaths:
    def test_unset_preferred_location_restores_migration(self):
        rt = CudaRuntime(intel_pascal())
        A = cudaMemoryAdvise
        m = rt.malloc_managed(4096)
        v = m.typed(np.float64)
        v.write(0, np.zeros(len(v)))
        rt.mem_advise(m, 4096, A.cudaMemAdviseSetPreferredLocation, -1)
        rt.mem_advise(m, 4096, A.cudaMemAdviseUnsetPreferredLocation)
        rt.launch(lambda ctx, d: d.read(0, len(d)), 1, 32, v, name="r")
        st = rt.platform.um.state_of(m.alloc)
        assert st.present[Processor.GPU].all()  # migrated, not mapped

    def test_unset_accessed_by_drops_stale_mapping(self):
        rt = CudaRuntime(intel_pascal())
        A = cudaMemoryAdvise
        m = rt.malloc_managed(4096)
        v = m.typed(np.float64)
        v.write(0, np.zeros(len(v)))
        rt.mem_advise(m, 4096, A.cudaMemAdviseSetAccessedBy, 0)
        rt.mem_advise(m, 4096, A.cudaMemAdviseUnsetAccessedBy, 0)
        st = rt.platform.um.state_of(m.alloc)
        assert not st.mapped[Processor.GPU].any()

"""repro-top: scripted-mode rendering over live and finished shards."""

import pytest

from repro.stream.segments import SegmentWriter, segment_files
from repro.stream.shard import run_streaming, split_stream
from repro.stream.top import Monitor, main


@pytest.fixture(scope="module")
def shards(tmp_path_factory):
    base = tmp_path_factory.mktemp("top")
    run_streaming("pathfinder", "pcie", base / "whole", log_capacity=64)
    return [str(p) for p in split_stream(base / "whole", base, 2)]


class TestMonitor:
    def test_frame_has_all_panels(self, shards):
        frame = Monitor(shards, color=False).render_frame()
        assert "repro-top — pathfinder on intel-pascal — 2 shard(s)" in frame
        assert "2 complete" in frame
        assert "counters" in frame and "events" in frame
        assert "driver" in frame
        assert "residency" in frame and "sim time" in frame
        assert "heat       latest spilled epoch per allocation" in frame

    def test_heat_strips_use_ascii_ramp_without_color(self, shards):
        frame = Monitor(shards, color=False, width=16).render_frame()
        strip_rows = [l for l in frame.splitlines()
                      if "|" in l and l.lstrip().startswith("gpu")]
        assert strip_rows  # pathfinder allocations render strips
        assert "\x1b[" not in frame  # no ANSI without color

    def test_color_mode_emits_ansi(self, shards):
        frame = Monitor(shards, color=True).render_frame()
        assert "\x1b[48;5;" in frame

    def test_drilldown_panel(self, shards):
        monitor = Monitor(shards, color=False, alloc="gpuWall")
        frame = monitor.render_frame()
        assert "drill-down gpuWall" in frame
        assert any(l.lstrip().startswith("e") and "|" in l
                   for l in frame.splitlines())
        monitor = Monitor(shards, color=False, alloc="nope")
        assert "(no heat spilled for this allocation)" \
            in monitor.render_frame()

    def test_waiting_for_missing_manifest(self, tmp_path):
        frame = Monitor([tmp_path / "nothing"]).render_frame()
        assert "waiting for manifest" in frame
        assert "0 complete" in frame

    def test_truncated_tail_segment_tolerated(self, shards, tmp_path):
        import shutil

        live = tmp_path / "live"
        shutil.copytree(shards[0], live)
        victim = segment_files(live)[-1]
        victim.write_bytes(victim.read_bytes()[:25])
        frame = Monitor([live]).render_frame()  # must not raise
        assert "repro-top" in frame

    def test_incremental_tailing_only_reads_new_segments(self, tmp_path):
        writer = SegmentWriter(tmp_path, shard="s", workload="w",
                               platform="p")
        writer.write_segment([
            {"type": "alloc_meta", "label": "x", "base": 0, "serial": 0,
             "size": 64, "nwords": 16, "nbuckets": 4},
            {"type": "heat_epoch", "label": "x", "base": 0, "serial": 0,
             "epoch": 0, "counts": [[1, 0, 0, 0]] * 6, "sites": []},
        ])
        monitor = Monitor([tmp_path], color=False)
        monitor.render_frame()
        assert monitor.views[0].heat["x"][0] == 0
        writer.write_segment([
            {"type": "heat_epoch", "label": "x", "base": 0, "serial": 0,
             "epoch": 1, "counts": [[0, 5, 0, 0]] * 6, "sites": []},
        ])
        monitor.render_frame()
        epoch, vec = monitor.views[0].heat["x"]
        assert epoch == 1 and vec[1] == 30
        assert monitor.views[0]._read_segments == 2

    def test_dropped_warning_row(self, tmp_path):
        writer = SegmentWriter(tmp_path, shard="s", workload="w",
                               platform="p")
        writer.write_segment([{"type": "epoch", "epoch": 0, "t": 0.1}])
        writer.finalize({"events_spilled": 3, "events_dropped": 7})
        frame = Monitor([tmp_path]).render_frame()
        assert "7 event(s) dropped from retention" in frame


class TestMainScripted:
    def test_frames_mode_renders_and_exits(self, shards, capsys):
        rc = main(shards + ["--frames", "2", "--interval", "0",
                            "--no-color", "--no-clear",
                            "--alloc", "gpuWall"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("repro-top —") == 2
        assert "drill-down gpuWall" in out
        assert "\x1b[H\x1b[2J" not in out  # scripted mode never clears

    def test_auto_exit_when_all_shards_complete(self, shards, capsys):
        rc = main(shards + ["--interval", "0", "--no-color", "--no-clear"])
        assert rc == 0
        assert capsys.readouterr().out.count("repro-top —") == 1

"""Segment framing: round-trips, crash detection, manifest versioning."""

import json

import pytest

from repro.stream.segments import (
    MANIFEST_NAME,
    STREAM_VERSION,
    IncompatibleStreamError,
    SegmentWriter,
    TruncatedSegmentError,
    iter_shard_records,
    load_manifest,
    read_segment,
    segment_files,
    write_manifest,
)

RECORDS = [
    {"type": "driver_event", "id": 0, "kind": "page_fault", "t": 0.1},
    {"type": "heat_epoch", "epoch": 2, "label": "m", "counts": [[1, 2]]},
    {"type": "alloc", "label": "m", "base": 4096},
]


@pytest.fixture
def stream(tmp_path):
    return SegmentWriter(tmp_path, shard="s0", workload="wl", platform="pcie")


class TestWriterReader:
    def test_round_trip(self, stream, tmp_path):
        path = stream.write_segment(RECORDS)
        assert read_segment(path) == RECORDS

    def test_segments_are_numbered_and_ordered(self, stream, tmp_path):
        stream.write_segment(RECORDS)
        stream.write_segment(RECORDS[:1])
        files = segment_files(tmp_path)
        assert [p.name for p in files] == ["seg-00000.jsonl", "seg-00001.jsonl"]

    def test_manifest_tracks_segments_and_rollup(self, stream, tmp_path):
        stream.write_segment(RECORDS, rollup={"events_spilled": 1})
        manifest = load_manifest(tmp_path)
        assert manifest["shard"] == "s0"
        assert manifest["workload"] == "wl"
        assert manifest["complete"] is False
        entry = manifest["segments"][0]
        assert entry["records"] == 3
        assert entry["events"] == 1
        assert entry["heat_epochs"] == 1
        assert entry["epoch_lo"] == entry["epoch_hi"] == 2
        assert manifest["rollup"]["events_spilled"] == 1

    def test_finalize_marks_complete(self, stream, tmp_path):
        stream.write_segment(RECORDS)
        stream.finalize({"events_spilled": 9})
        manifest = load_manifest(tmp_path)
        assert manifest["complete"] is True
        assert manifest["rollup"]["events_spilled"] == 9

    def test_record_without_type_rejected(self, stream):
        with pytest.raises(ValueError, match="type"):
            stream.write_segment([{"id": 1}])


class TestCrashDetection:
    def _segment(self, stream):
        return stream.write_segment(RECORDS)

    def test_chopped_file_is_truncated(self, stream):
        path = self._segment(stream)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(TruncatedSegmentError):
            read_segment(path)

    def test_missing_trailer_is_truncated(self, stream):
        path = self._segment(stream)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(TruncatedSegmentError, match="trailer"):
            read_segment(path)

    def test_bitflip_fails_crc(self, stream):
        path = self._segment(stream)
        text = path.read_text().replace("page_fault", "page_vault", 1)
        path.write_text(text)
        with pytest.raises(TruncatedSegmentError, match="checksum"):
            read_segment(path)

    def test_wrong_record_count_detected(self, stream):
        path = self._segment(stream)
        lines = path.read_text().splitlines()
        trailer = json.loads(lines[-1])
        trailer["records"] = 99
        # Recompute a valid CRC so only the count disagrees.
        import zlib

        payload = "".join(line + "\n" for line in lines[:-1])
        trailer["crc32"] = zlib.crc32(payload.encode())
        path.write_text(payload + json.dumps(trailer) + "\n")
        with pytest.raises(TruncatedSegmentError, match="payload records"):
            read_segment(path)

    def test_iter_skips_truncated_with_warning(self, stream, tmp_path):
        self._segment(stream)
        bad = stream.write_segment(RECORDS[:1])
        bad.write_bytes(bad.read_bytes()[:10])
        warnings = []
        records = list(iter_shard_records(tmp_path, warn=warnings.append))
        assert records == RECORDS
        assert len(warnings) == 1 and "truncated" in warnings[0]

    def test_iter_strict_raises(self, stream, tmp_path):
        path = self._segment(stream)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(TruncatedSegmentError):
            list(iter_shard_records(tmp_path, strict=True))


class TestManifest:
    def test_atomic_write_leaves_no_tmp(self, tmp_path):
        write_manifest(tmp_path, {"stream_version": STREAM_VERSION})
        assert not (tmp_path / (MANIFEST_NAME + ".tmp")).exists()
        assert load_manifest(tmp_path)["stream_version"] == STREAM_VERSION

    def test_future_version_rejected(self, tmp_path):
        write_manifest(tmp_path, {"stream_version": STREAM_VERSION + 1})
        with pytest.raises(IncompatibleStreamError):
            load_manifest(tmp_path)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_manifest(tmp_path / "nowhere")

    def test_unlisted_crashed_segment_still_detected(self, stream, tmp_path):
        """A crash can leave a segment the manifest never saw."""
        stream.write_segment(RECORDS)
        orphan = tmp_path / "segments" / "seg-00001.jsonl"
        orphan.write_text('{"type":"segment_header"}\n{"type":"driver')
        warnings = []
        list(iter_shard_records(tmp_path, warn=warnings.append))
        assert len(warnings) == 1

"""Spill path: EventLog overflow routing, SpillingHeatStore, StreamSpiller."""

import numpy as np
import pytest

from repro.cudart import CudaRuntime
from repro.memsim import PAGE_SIZE, Event, EventKind, EventLog, Processor, intel_pascal
from repro.stream.segments import iter_shard_records, load_manifest
from repro.stream.spill import SpillingHeatStore, StreamSpiller
from repro.telemetry import StringJsonl, TelemetryRecorder
from repro.workloads.base import make_session


def _event(i: int) -> Event:
    return Event(kind=EventKind.PAGE_FAULT, time=float(i),
                 device=Processor.GPU, pages=1)


class TestEventLogOverflow:
    def test_ring_eviction_goes_to_spill_sink_fifo(self):
        log = EventLog(capacity=3, ring=True)
        spilled = []
        log.spill = spilled.append
        for i in range(8):
            log.record(_event(i))
        assert [e.id for e in spilled] == [0, 1, 2, 3, 4]
        assert [e.id for e in log] == [5, 6, 7]
        assert log.dropped_total == 0  # spilled, not lost

    def test_spilled_plus_retained_is_complete_and_ordered(self):
        log = EventLog(capacity=4, ring=True)
        spilled = []
        log.spill = spilled.append
        for i in range(11):
            log.record(_event(i))
        ids = [e.id for e in spilled] + [e.id for e in log]
        assert ids == list(range(11))

    def test_without_sink_drops_are_counted_and_announced(self):
        log = EventLog(capacity=2, ring=True)
        seen = []
        log.add_drop_listener(seen.append)
        for i in range(5):
            log.record(_event(i))
        assert log.dropped_total == 3
        assert log.dropped[EventKind.PAGE_FAULT] == 3
        assert [e.id for e in seen] == [0, 1, 2]
        log.remove_drop_listener(seen.append)

    def test_non_ring_overflow_also_routed(self):
        log = EventLog(capacity=2, ring=False)
        spilled = []
        log.spill = spilled.append
        for i in range(5):
            log.record(_event(i))
        assert [e.id for e in log] == [0, 1]     # oldest window retained
        assert [e.id for e in spilled] == [2, 3, 4]

    def test_configure_retention_shrink_routes_overflow(self):
        log = EventLog()  # default large capacity
        for i in range(6):
            log.record(_event(i))
        spilled = []
        log.spill = spilled.append
        log.configure_retention(capacity=2, ring=True)
        assert [e.id for e in spilled] == [0, 1, 2, 3]  # ring keeps newest
        assert [e.id for e in log] == [4, 5]
        log.record(_event(6))
        assert [e.id for e in spilled] == [0, 1, 2, 3, 4]

    def test_configure_retention_preserves_counters_and_ids(self):
        log = EventLog()
        for i in range(4):
            log.record(_event(i))
        before = log.summary()
        log.configure_retention(capacity=1, ring=True)
        assert log.summary() == before
        assert log.record(_event(99)).id == 4

    def test_kind_index_rebuilt(self):
        log = EventLog()
        log.record(_event(0))
        log.record(Event(kind=EventKind.MIGRATION, time=0.5,
                         device=Processor.GPU, pages=4))
        log.configure_retention(capacity=1, ring=True)
        assert [e.kind for e in log.of_kind(EventKind.MIGRATION)] \
            == [EventKind.MIGRATION]
        assert log.of_kind(EventKind.PAGE_FAULT) == []


def _heat_session(sample=None):
    return make_session("intel-pascal", trace=True, sample=sample)


def _touch(session, label="v", pages=4):
    rt = session.runtime
    v = rt.malloc_managed(pages * PAGE_SIZE, label=label).typed(np.float32)
    v.write(0, np.zeros(len(v), np.float32))
    rt.launch(lambda ctx, d: d.read(0, len(d)), 8, 128, v, name="reader")
    return v


class TestSpillingHeatStore:
    def test_spilled_epochs_are_released(self):
        sunk = []
        heat = SpillingHeatStore(nbuckets=8,
                                 sink=lambda h, s: sunk.append((h.label, s.epoch)))
        session = _heat_session()
        session.tracer.heat = heat
        _touch(session)
        session.tracer.advance_epoch()
        _touch(session, label="w")
        session.tracer.advance_epoch()
        assert heat.epochs_spilled == len(sunk) >= 2
        assert {label for label, _ in sunk} == {"v", "w"}
        # released: no per-epoch snapshots retained in memory
        assert all(not h.epochs for h in heat.allocations())
        assert heat.epochs_closed == [0, 1]

    def test_retain_keeps_snapshots_too(self):
        heat = SpillingHeatStore(nbuckets=8, sink=lambda h, s: None, retain=True)
        session = _heat_session()
        session.tracer.heat = heat
        _touch(session)
        session.tracer.advance_epoch()
        assert any(h.epochs for h in heat.allocations())


class TestStreamSpiller:
    def _run(self, tmp_path, *, log_capacity=4, epochs=3, sample=None):
        session = _heat_session(sample=sample)
        session.platform.events.configure_retention(capacity=log_capacity,
                                                    ring=True)
        heat = SpillingHeatStore(nbuckets=8)
        spiller = StreamSpiller(tmp_path, shard="t0", workload="unit",
                                platform="intel-pascal", watermark_events=64)
        spiller.attach(session, heat=heat)
        for i in range(epochs):
            _touch(session, label=f"a{i}")
            session.tracer.advance_epoch()
        total_events = len(session.platform.events)
        manifest = spiller.close()
        return session, spiller, manifest, total_events

    def test_stream_contains_every_event_once_in_order(self, tmp_path):
        _, spiller, manifest, total = self._run(tmp_path)
        records = list(iter_shard_records(tmp_path, strict=True))
        ids = [r["id"] for r in records if r["type"] == "driver_event"]
        assert ids == sorted(ids) and len(ids) == len(set(ids)) == total
        assert spiller.events_spilled == total
        assert manifest["complete"] is True

    def test_epoch_markers_follow_their_heat(self, tmp_path):
        self._run(tmp_path, epochs=2)
        records = list(iter_shard_records(tmp_path, strict=True))
        for marker in (r for r in records if r["type"] == "epoch"):
            heats = [r for r in records if r["type"] == "heat_epoch"
                     and r["epoch"] == marker["epoch"]]
            assert heats, f"epoch {marker['epoch']} has no heat before it"
            assert records.index(heats[-1]) < records.index(marker)

    def test_alloc_meta_written_once_per_allocation(self, tmp_path):
        self._run(tmp_path, epochs=2)
        records = list(iter_shard_records(tmp_path, strict=True))
        metas = [(r["base"], r["serial"]) for r in records
                 if r["type"] == "alloc_meta"]
        assert len(metas) == len(set(metas)) >= 2

    def test_rollup_counters(self, tmp_path):
        _, spiller, manifest, total = self._run(tmp_path)
        rollup = manifest["rollup"]
        assert rollup["events_spilled"] == total
        assert rollup["events_dropped"] == 0
        assert rollup["heat_epochs_spilled"] == spiller.heat_epochs_spilled > 0
        assert rollup["summary"]["fault_groups"] > 0
        assert rollup["sim_time"] > 0

    def test_sampling_recorded_when_sampled(self, tmp_path):
        _, _, manifest, _ = self._run(tmp_path, sample=4)
        assert manifest["rollup"]["sampling"]["sample"] == 4
        records = list(iter_shard_records(tmp_path, strict=True))
        sampling = [r for r in records if r["type"] == "sampling"]
        assert sampling and sampling[0]["effective_rate"] == 0.25

    def test_close_unwires_and_is_idempotent(self, tmp_path):
        session, spiller, _, _ = self._run(tmp_path)
        assert session.platform.events.spill is None
        assert spiller._epoch_hook not in session.tracer.epoch_hooks
        again = spiller.close()
        assert again["complete"] is True

    def test_attach_twice_rejected(self, tmp_path):
        session = _heat_session()
        spiller = StreamSpiller(tmp_path / "s")
        spiller.attach(session)
        with pytest.raises(RuntimeError):
            spiller.attach(session)
        spiller.close()


class TestDroppedTelemetry:
    """Satellite: repro_events_dropped_total via the recorder drop listener."""

    def test_counter_counts_unspilled_ring_losses(self):
        rt = CudaRuntime(intel_pascal())
        rt.platform.events.configure_retention(capacity=2, ring=True)
        rec = TelemetryRecorder(jsonl=StringJsonl())
        rec.attach(rt)
        v = rt.malloc_managed(4 * PAGE_SIZE, label="v").typed(np.float32)
        v.write(0, np.zeros(len(v), np.float32))
        rt.launch(lambda ctx, d: d.read(0, len(d)), 8, 128, v, name="reader")
        assert rec.events_dropped_total == rt.platform.events.dropped_total > 0
        text = rec.metrics.to_prometheus()
        assert "repro_events_dropped_total" in text  # bare contract name
        assert "xplacer_repro_events_dropped_total" not in text
        rec.detach()

    def test_counter_is_zero_valued_before_any_drop(self):
        rec = TelemetryRecorder()
        assert "repro_events_dropped_total 0" in rec.metrics.to_prometheus()
        assert rec.events_dropped_total == 0

"""Merge algebra goldens: split-and-remerge byte-matches the single run."""

import json

import pytest

from repro.heatmap.cli import REPORT_RUNNERS
from repro.heatmap.store import HeatStore
from repro.stream.merge import merge_shards
from repro.stream.segments import TruncatedSegmentError, segment_files
from repro.stream.shard import run_streaming, split_stream
from repro.telemetry.events_jsonl import encode_driver_event
from repro.workloads.base import make_session

K = 4


@pytest.fixture(scope="module")
def lulesh_stream(tmp_path_factory):
    """One streaming LULESH run (ring small enough to force spilling)."""
    out = tmp_path_factory.mktemp("stream") / "whole"
    result = run_streaming("lulesh", "pcie", out, log_capacity=32)
    return out, result


@pytest.fixture(scope="module")
def lulesh_shards(lulesh_stream, tmp_path_factory):
    src, _ = lulesh_stream
    base = tmp_path_factory.mktemp("shards")
    return split_stream(src, base, K)


@pytest.fixture(scope="module")
def merged_whole(lulesh_stream):
    src, _ = lulesh_stream
    return merge_shards([src])


@pytest.fixture(scope="module")
def merged_sharded(lulesh_shards):
    return merge_shards(lulesh_shards)


class TestGoldenSplitRemerge:
    """repro-agg over K shards must byte-match the single-process run."""

    def test_streaming_forced_spills(self, lulesh_stream):
        _, result = lulesh_stream
        rollup = result["manifest"]["rollup"]
        assert rollup["events_spilled"] > 32  # ring was really overflowed
        assert rollup["events_dropped"] == 0

    def test_events_identical_ids_preserved(self, merged_whole, merged_sharded):
        assert merged_sharded.events == merged_whole.events
        assert not merged_sharded.ids_rebased
        ids = [ev["id"] for ev in merged_sharded.events]
        assert ids == sorted(ids)

    def test_heat_csv_byte_identical(self, merged_whole, merged_sharded):
        assert merged_sharded.store.to_csv() == merged_whole.store.to_csv()

    def test_epochs_and_summary_identical(self, merged_whole, merged_sharded):
        assert merged_sharded.store.epochs_closed \
            == merged_whole.store.epochs_closed
        assert merged_sharded.summary == merged_whole.summary

    def test_causes_json_byte_identical(self, merged_whole, merged_sharded):
        a = json.dumps(merged_whole.causes_report(), indent=2)
        b = json.dumps(merged_sharded.causes_report(), indent=2)
        assert a == b

    def test_metrics_identical_modulo_shard_count(self, merged_whole,
                                                  merged_sharded):
        def lines(run):
            return [line for line
                    in run._registry().to_prometheus().splitlines()
                    if "merged_shards" not in line]
        assert lines(merged_sharded) == lines(merged_whole)

    def test_merge_is_order_independent(self, lulesh_shards, merged_sharded):
        reversed_merge = merge_shards(list(reversed(lulesh_shards)))
        assert reversed_merge.events == merged_sharded.events
        assert reversed_merge.store.to_csv() == merged_sharded.store.to_csv()

    def test_written_bundle_feeds_existing_renderers(self, merged_sharded,
                                                     tmp_path):
        paths = merged_sharded.write(tmp_path / "out")
        for key in ("manifest", "events", "heat_csv", "heat_npz",
                    "metrics", "causes", "report"):
            assert paths[key].exists(), key
        first = json.loads(paths["events"].read_text().splitlines()[0])
        assert first["type"] == "manifest"  # repro-why-consumable stream
        causes = json.loads(paths["causes"].read_text())
        assert causes["type"] == "causes_report" and causes["totals"]
        html = paths["report"].read_text()
        assert "streamed run" in html and "4 shard(s)" in html

    def test_repro_why_rebuilds_identical_causes_from_merged_jsonl(
            self, merged_sharded, tmp_path):
        """The merged events.jsonl feeds the repro-why pipeline unchanged."""
        from repro.causes.capture import build_report as build_from_dir

        merged_sharded.write(tmp_path / "out", report=False)
        rebuilt = build_from_dir(tmp_path / "out")
        assert rebuilt == merged_sharded.causes_report()


class TestStreamingEqualsInMemory:
    """The spilled stream reconstructs the plain in-memory run exactly."""

    @pytest.fixture(scope="class")
    def in_memory(self):
        from repro.signature.tracker import PhaseTracker

        session = make_session("intel-pascal", trace=True)
        session.platform.um.track_causes = True
        heat = HeatStore(nbuckets=64, attribute=True)
        session.tracer.heat = heat
        # Streaming runs track phases by default; the in-memory reference
        # must emit the same markers for the event streams to match.
        tracker = PhaseTracker(
            log=session.platform.events,
            clock=lambda: session.platform.clock.now,
        ).attach(session.tracer, heat)
        REPORT_RUNNERS["lulesh"](session)
        tracker.finish()
        return session, heat

    def test_events_identical(self, in_memory, merged_whole):
        session, _ = in_memory
        plain = [encode_driver_event(e) for e in session.platform.events]
        assert merged_whole.events == plain

    def test_heat_identical(self, in_memory, merged_whole):
        _, heat = in_memory
        assert merged_whole.store.to_csv() == heat.to_csv()
        assert merged_whole.store.epochs_closed == heat.epochs_closed

    def test_summary_matches_event_log(self, in_memory, merged_whole):
        session, _ = in_memory
        expect = session.platform.events.summary()
        got = merged_whole.summary
        for key, value in expect.items():
            if key == "memory_time":  # float summation order differs
                assert got[key] == pytest.approx(value, rel=1e-9)
            else:
                assert got[key] == value, key


class TestCrashedShard:
    def _chop(self, shards, tmp_path):
        import shutil

        broken = []
        for i, shard in enumerate(shards):
            dst = tmp_path / f"c{i}"
            shutil.copytree(shard, dst)
            broken.append(dst)
        victim = segment_files(broken[-1])[-1]
        data = victim.read_bytes()
        victim.write_bytes(data[: int(len(data) * 0.7)])
        return broken

    def test_truncated_segment_skipped_with_warning(self, lulesh_shards,
                                                    merged_sharded, tmp_path):
        broken = self._chop(lulesh_shards, tmp_path)
        warned = []
        merged = merge_shards(broken, on_warning=warned.append)
        assert any("truncated" in w for w in merged.warnings)
        assert merged.warnings == warned
        # Only that segment's slice is lost; everything else survives.
        lost = len(merged_sharded.events) - len(merged.events)
        assert 0 < lost <= 64
        assert merged.store.allocations()  # heat from intact shards intact

    def test_strict_mode_raises(self, lulesh_shards, tmp_path):
        broken = self._chop(lulesh_shards, tmp_path)
        with pytest.raises(TruncatedSegmentError):
            merge_shards(broken, strict=True)


class TestIndependentRuns:
    """Overlapping id spaces: rebase + cause-link remap."""

    @pytest.fixture(scope="class")
    def two_runs(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("indep")
        a = run_streaming("pathfinder", "pcie", base / "a", shard="proc-a")
        b = run_streaming("pathfinder", "pcie", base / "b", shard="proc-b")
        merged = merge_shards([base / "a", base / "b"])
        return a, b, merged

    def test_ids_rebased_to_one_sequence(self, two_runs):
        _, _, merged = two_runs
        assert merged.ids_rebased
        assert any("rebasing" in w for w in merged.warnings)
        assert [ev["id"] for ev in merged.events] \
            == list(range(len(merged.events)))

    def test_events_ordered_by_time(self, two_runs):
        _, _, merged = two_runs
        times = [ev["t"] for ev in merged.events]
        assert times == sorted(times)

    def test_cause_parents_remapped_validly(self, two_runs):
        _, _, merged = two_runs
        ids = {ev["id"] for ev in merged.events}
        for ev in merged.events:
            cause = ev.get("cause")
            if cause and cause.get("parent", -1) >= 0:
                assert cause["parent"] in ids
                assert cause["parent"] < ev["id"]  # causes precede effects

    def test_counters_are_the_sum_of_both_runs(self, two_runs):
        a, b, merged = two_runs
        sa = a["manifest"]["rollup"]["summary"]
        sb = b["manifest"]["rollup"]["summary"]
        for key in ("fault_groups", "migrated_pages", "transfer_bytes",
                    "remote_accesses"):
            assert merged.summary[key] == sa[key] + sb[key], key

    def test_sampling_coarsest_stride_wins(self, tmp_path):
        run_streaming("pathfinder", "pcie", tmp_path / "s2", shard="s2",
                      sample=2)
        run_streaming("pathfinder", "pcie", tmp_path / "s4", shard="s4",
                      sample=4)
        warned = []
        merged = merge_shards([tmp_path / "s2", tmp_path / "s4"],
                              on_warning=warned.append)
        assert merged.sampling["sample"] == 4
        assert any("sampling" in w for w in warned)


class TestCli:
    def test_run_split_merge_round_trip(self, tmp_path, capsys):
        from repro.stream.cli import main

        assert main(["run", "--workload", "pathfinder", "--platform", "pcie",
                     "--out", str(tmp_path / "run"),
                     "--log-capacity", "64"]) == 0
        assert main(["split", str(tmp_path / "run"),
                     "--out", str(tmp_path / "shards"), "-k", "2"]) == 0
        assert main(["merge", str(tmp_path / "shards" / "shard-0"),
                     str(tmp_path / "shards" / "shard-1"),
                     "--out", str(tmp_path / "merged")]) == 0
        assert (tmp_path / "merged" / "report.html").exists()
        out = capsys.readouterr().out
        assert "merged 2 shard(s)" in out

    def test_merge_strict_fails_on_truncation(self, tmp_path):
        from repro.stream.cli import main

        main(["run", "--workload", "pathfinder", "--platform", "pcie",
              "--out", str(tmp_path / "run"), "--log-capacity", "64"])
        victim = segment_files(tmp_path / "run")[-1]
        victim.write_bytes(victim.read_bytes()[:40])
        assert main(["merge", str(tmp_path / "run"),
                     "--out", str(tmp_path / "m"), "--strict"]) == 1

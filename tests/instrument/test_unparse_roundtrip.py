"""Golden round-trip tests: every bundled workload survives unparse.

The codegen backends lower the *instrumented* AST through the same
traversal shape as :func:`repro.instrument.unparse`, so drift in the
unparser is now load-bearing: a program that does not round-trip would
compile differently from what the tree-walker executes.  These tests pin
parse -> unparse -> parse idempotence (one iteration reaches a fixpoint)
for every bundled mini-CUDA program, raw and instrumented.
"""

import pytest

from repro.instrument import instrument, parse, unparse
from repro.workloads.minicuda import catalog
from repro.workloads.spatter import indirection, to_mini_cuda, uniform_stride


def _sources() -> dict[str, str]:
    srcs = dict(catalog())
    srcs["spatter-scatter-stride"] = to_mini_cuda(
        uniform_stride(8, count=16, kind="scatter"))
    srcs["spatter-scatter-lcg"] = to_mini_cuda(
        indirection(length=256, spread=4096, kind="scatter"))
    return srcs


SOURCES = _sources()


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_parse_unparse_parse_idempotent(name):
    """unparse(parse(src)) is a fixpoint of the pipeline."""
    src1 = unparse(parse(SOURCES[name]))
    src2 = unparse(parse(src1))
    assert src1 == src2


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_instrumented_round_trip_idempotent(name):
    """The instrumented tree (what codegen consumes) also round-trips."""
    unit = parse(SOURCES[name])
    instrument(unit)
    src1 = unparse(unit)
    src2 = unparse(parse(src1))
    assert src1 == src2


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_round_trip_preserves_semantics(name):
    """Re-parsed source runs identically to the original program."""
    from repro.interp import run_program
    from repro.runtime import Tracer

    it_a = run_program(SOURCES[name], tracer=Tracer())
    it_b = run_program(unparse(parse(SOURCES[name])), tracer=Tracer())
    assert it_a.stdout == it_b.stdout
    da, db = it_a.tracer.describe(), it_b.tracer.describe()
    assert da["words_seen"] == db["words_seen"]
    assert da["words_recorded"] == db["words_recorded"]

"""Unit tests for pragma parsing and the C type model."""

import pytest

from repro.instrument import (
    ParseError,
    TypeError_,
    XplDiagnostic,
    XplReplace,
    expand_pointer,
    parse_xpl_pragma,
)
from repro.instrument.typesys import (
    CHAR,
    DOUBLE,
    INT,
    Array,
    Pointer,
    StructType,
    TypeTable,
)


class TestPragmaParsing:
    def test_replace(self):
        p = parse_xpl_pragma("#pragma xpl replace cudaMalloc")
        assert p == XplReplace("cudaMalloc")

    def test_replace_kernel_launch(self):
        p = parse_xpl_pragma("#pragma xpl replace kernel-launch")
        assert p == XplReplace("kernel-launch")

    def test_diagnostic_with_verbatim_and_expanded(self):
        p = parse_xpl_pragma("#pragma xpl diagnostic trcPrn(std::cout; a, z)")
        assert p == XplDiagnostic("trcPrn", ("std::cout",), ("a", "z"))

    def test_diagnostic_without_semicolon(self):
        p = parse_xpl_pragma("#pragma xpl diagnostic dump(out)")
        assert p == XplDiagnostic("dump", ("out",), ())

    def test_non_xpl_pragma_is_none(self):
        assert parse_xpl_pragma("#pragma omp parallel for") is None

    @pytest.mark.parametrize("bad", [
        "#pragma xpl replace",
        "#pragma xpl replace a b",
        "#pragma xpl diagnostic noparens",
        "#pragma xpl frobnicate x",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ParseError):
            parse_xpl_pragma(bad)


class TestTypeModel:
    def test_primitive_sizes_lp64(self):
        t = TypeTable()
        assert t.primitive("char").size == 1
        assert t.primitive("int").size == 4
        assert t.primitive("long").size == 8
        assert t.primitive("double").size == 8
        assert Pointer(INT).size == 8

    def test_struct_natural_alignment(self):
        s = StructType("S")
        s.lay_out([("c", CHAR), ("d", DOUBLE), ("i", INT)])
        assert [f.offset for f in s.fields] == [0, 8, 16]
        assert s.size == 24  # padded to 8-byte alignment
        assert s.align == 8

    def test_empty_struct(self):
        s = StructType("E")
        s.lay_out([])
        assert s.size == 0 and s.complete

    def test_array_geometry(self):
        a = Array(INT, 10)
        assert a.size == 40 and a.align == 4
        assert a.spell() == "int[10]"

    def test_unknown_member_rejected(self):
        s = StructType("S")
        s.lay_out([("x", INT)])
        with pytest.raises(TypeError_):
            s.field_named("y")

    def test_unknown_struct_rejected(self):
        with pytest.raises(TypeError_):
            TypeTable().struct("Nope")

    def test_typedef_roundtrip(self):
        t = TypeTable()
        t.add_typedef("Real", DOUBLE)
        assert t.typedef("Real") is DOUBLE
        assert t.typedef("Missing") is None


class TestExpandPointer:
    def test_scalar_pointer(self):
        t = TypeTable()
        records = expand_pointer(t, Pointer(INT), "z")
        assert records == [("z", INT)]

    def test_struct_members_expanded(self):
        t = TypeTable()
        pair = t.struct("pair", declare=True)
        pair.lay_out([("first", Pointer(INT)), ("second", Pointer(INT))])
        records = expand_pointer(t, Pointer(pair), "a")
        assert [r[0] for r in records] == ["a", "(a)->first", "(a)->second"]

    def test_repetition_guard(self):
        t = TypeTable()
        node = t.struct("node", declare=True)
        node.lay_out([("next", Pointer(node)), ("data", Pointer(INT))])
        records = expand_pointer(t, Pointer(node), "head")
        names = [r[0] for r in records]
        assert names == ["head", "(head)->next", "(head)->data"]

    def test_non_pointer_rejected(self):
        with pytest.raises(TypeError_):
            expand_pointer(TypeTable(), INT, "x")

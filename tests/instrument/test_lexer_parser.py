"""Unit tests for the mini-CUDA lexer and parser."""

import pytest

from repro.instrument import LexError, ParseError, parse, tokenize
from repro.instrument import ast_nodes as A
from repro.instrument.tokens import TokenKind
from repro.instrument.typesys import Array, Pointer, StructType


class TestLexer:
    def test_basic_tokens(self):
        toks = tokenize("int x = 42;")
        kinds = [t.kind for t in toks]
        assert kinds == [TokenKind.KEYWORD, TokenKind.IDENT, TokenKind.PUNCT,
                         TokenKind.INT, TokenKind.PUNCT, TokenKind.EOF]

    def test_kernel_launch_brackets(self):
        toks = tokenize("k<<<1, 2>>>(x)")
        texts = [t.text for t in toks if t.kind is TokenKind.PUNCT]
        assert "<<<" in texts and ">>>" in texts

    def test_shift_vs_launch(self):
        toks = tokenize("a << b >> c")
        texts = [t.text for t in toks if t.kind is TokenKind.PUNCT]
        assert texts == ["<<", ">>"]

    def test_comments_are_skipped(self):
        toks = tokenize("int a; // line\n/* block\nmore */ int b;")
        idents = [t.text for t in toks if t.kind is TokenKind.IDENT]
        assert idents == ["a", "b"]

    def test_pragma_and_directive(self):
        toks = tokenize('#include "x.h"\n#pragma xpl replace f\nint a;')
        assert toks[0].kind is TokenKind.DIRECTIVE
        assert toks[1].kind is TokenKind.PRAGMA

    def test_float_literals(self):
        toks = tokenize("1.5 2e3 7f 10")
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == [TokenKind.FLOAT, TokenKind.FLOAT, TokenKind.FLOAT,
                         TokenKind.INT]

    def test_string_with_escape(self):
        toks = tokenize(r'"a\"b"')
        assert toks[0].text == r'"a\"b"'

    def test_unterminated_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"open')

    def test_positions_tracked(self):
        toks = tokenize("int\n  x;")
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestParserDeclarations:
    def test_struct_layout(self):
        unit = parse("struct P { int a; double b; int* c; };")
        struct = unit.types.struct("P")
        assert struct.size == 24
        assert [f.offset for f in struct.fields] == [0, 8, 16]

    def test_struct_array_member(self):
        unit = parse("struct Q { int v[10]; char tag; };")
        struct = unit.types.struct("Q")
        assert struct.fields[0].type.size == 40
        assert struct.size == 44

    def test_global_multi_declarator(self):
        unit = parse("int a, *b, c = 3;")
        decls = unit.items[0].decls
        assert [d.name for d in decls] == ["a", "b", "c"]
        assert isinstance(decls[1].ctype, Pointer)
        assert decls[2].init is not None

    def test_function_with_params(self):
        unit = parse("__global__ void k(int* p, int n) { }")
        fn = unit.function("k")
        assert fn.is_kernel
        assert isinstance(fn.params[0].ctype, Pointer)

    def test_prototype_has_no_body(self):
        unit = parse("int f(int x);")
        assert unit.functions()[0].body is None

    def test_variadic(self):
        unit = parse("void log(int level, ...);")
        assert unit.functions()[0].variadic

    def test_array_param_decays(self):
        unit = parse("void f(int a[]) { }")
        assert isinstance(unit.function("f").params[0].ctype, Pointer)

    def test_typedef(self):
        unit = parse("typedef double Real; Real x;")
        assert unit.items[1].decls[0].ctype.spell() == "double"

    def test_local_array(self):
        unit = parse("void f() { int buf[8]; }")
        decl = unit.function("f").body.stmts[0].decls[0]
        assert isinstance(decl.ctype, Array) and decl.ctype.length == 8


class TestParserExpressions:
    def get_expr(self, text):
        unit = parse(f"void f(int* p, int x) {{ {text}; }}")
        return unit.function("f").body.stmts[0].expr

    def test_precedence(self):
        e = self.get_expr("x = 1 + 2 * 3")
        assert isinstance(e, A.Assign)
        assert isinstance(e.value, A.Binary) and e.value.op == "+"
        assert e.value.right.op == "*"

    def test_ternary(self):
        e = self.get_expr("x = x < 3 ? 1 : 2")
        assert isinstance(e.value, A.Ternary)

    def test_pointer_chain(self):
        e = self.get_expr("*p = p[1] + p[x]")
        assert isinstance(e.target, A.Unary) and e.target.op == "*"

    def test_member_chain(self):
        unit = parse("""
            struct N { struct N* next; int v; };
            void f(struct N* n) { n->next->v = 1; }
        """)
        e = unit.function("f").body.stmts[0].expr
        assert isinstance(e.target, A.Member) and e.target.arrow
        assert isinstance(e.target.base, A.Member)

    def test_kernel_launch_with_four_config_args(self):
        e = self.get_expr("k<<<1, 2, 0, 0>>>(p)")
        assert isinstance(e, A.KernelLaunch)
        assert e.shmem is not None and e.stream is not None

    def test_new_with_init(self):
        e = self.get_expr("p = new int(2)")
        assert isinstance(e.value, A.NewExpr)
        assert e.value.init is not None

    def test_new_array(self):
        e = self.get_expr("p = new int[x]")
        assert isinstance(e.value, A.NewExpr) and e.value.count is not None

    def test_cast_vs_paren(self):
        cast = self.get_expr("x = (int)1.5")
        assert isinstance(cast.value, A.Cast)
        grouped = self.get_expr("x = (x) + 1")
        assert isinstance(grouped.value, A.Binary)

    def test_sizeof_type_and_expr(self):
        st = self.get_expr("x = sizeof(int)")
        assert isinstance(st.value, A.SizeofType)
        se = self.get_expr("x = sizeof *p")
        assert isinstance(se.value, A.SizeofExpr)

    def test_postfix_increment(self):
        e = self.get_expr("x++")
        assert isinstance(e, A.Unary) and not e.prefix

    def test_parse_error_has_position(self):
        with pytest.raises(ParseError) as err:
            parse("void f() { int; }")
        assert "at" in str(err.value)


class TestParserStatements:
    def test_for_with_decl(self):
        unit = parse("void f() { for (int i = 0; i < 4; i++) { } }")
        loop = unit.function("f").body.stmts[0]
        assert isinstance(loop, A.For)
        assert isinstance(loop.init, A.DeclStmt)

    def test_if_else_chain(self):
        unit = parse("void f(int x) { if (x) x = 1; else if (x) x = 2; else x = 3; }")
        s = unit.function("f").body.stmts[0]
        assert isinstance(s.other, A.If)

    def test_do_while(self):
        unit = parse("void f(int x) { do { x--; } while (x > 0); }")
        assert isinstance(unit.function("f").body.stmts[0], A.DoWhile)

    def test_break_continue(self):
        unit = parse("void f() { while (1) { break; } while (1) { continue; } }")
        assert isinstance(unit.function("f").body.stmts[0].body.stmts[0], A.Break)

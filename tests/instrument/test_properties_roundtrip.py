"""Property-based tests: unparse/parse round trips on generated ASTs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.instrument import ast_nodes as A
from repro.instrument import parse, unparse, unparse_expr


# ---------------------------------------------------------------------- #
# a recursive strategy for integer expressions over two variables

def exprs():
    leaves = st.one_of(
        st.integers(0, 999).map(lambda n: A.IntLit(str(n))),
        st.sampled_from(["x", "y"]).map(A.Ident),
    )

    def extend(children):
        binops = st.sampled_from(["+", "-", "*", "/", "%", "<", ">", "==",
                                  "&&", "||", "&", "|", "^", "<<", ">>"])
        return st.one_of(
            st.tuples(binops, children, children).map(
                lambda t: A.Binary(t[0], t[1], t[2])),
            st.tuples(st.sampled_from(["-", "!", "~"]), children).map(
                lambda t: A.Unary(t[0], t[1])),
            st.tuples(children, children, children).map(
                lambda t: A.Ternary(t[0], t[1], t[2])),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def wrap(expr_text: str) -> str:
    return f"int f(int x, int y) {{ return {expr_text}; }}"


class TestRoundTrip:
    @given(exprs())
    @settings(max_examples=150, deadline=None)
    def test_unparse_parse_unparse_is_identity(self, expr):
        """Precedence-aware printing must survive a re-parse unchanged."""
        first = unparse_expr(expr)
        unit = parse(wrap(first))
        reparsed = unit.function("f").body.stmts[0].value
        second = unparse_expr(reparsed)
        assert first == second

    @given(exprs())
    @settings(max_examples=75, deadline=None)
    def test_whole_unit_round_trip_stabilizes(self, expr):
        """unparse(parse(.)) reaches a fixpoint after one iteration."""
        src1 = unparse(parse(wrap(unparse_expr(expr))))
        src2 = unparse(parse(src1))
        assert src1 == src2


class TestInterpreterAgreesWithPython:
    @given(exprs())
    @settings(max_examples=60, deadline=None)
    def test_expression_semantics_match_reference(self, expr):
        """The interpreter and a Python reference evaluator agree."""
        from repro.interp import run_program
        from repro.interp.interpreter import _cdiv, _cmod

        X, Y = 7, 3

        def ref(e):
            if isinstance(e, A.IntLit):
                return e.value
            if isinstance(e, A.Ident):
                return {"x": X, "y": Y}[e.name]
            if isinstance(e, A.Unary):
                v = ref(e.operand)
                return {"-": -v, "!": int(not v), "~": ~int(v)}[e.op]
            if isinstance(e, A.Ternary):
                return ref(e.then) if ref(e.cond) else ref(e.other)
            left = ref(e.left)
            if e.op == "&&":
                return int(bool(left) and bool(ref(e.right)))
            if e.op == "||":
                return int(bool(left) or bool(ref(e.right)))
            right = ref(e.right)
            if e.op in ("/", "%") and right == 0:
                raise ZeroDivisionError
            if e.op in ("<<", ">>") and (right < 0 or right > 63 or left < 0):
                raise OverflowError  # skip UB-ish shifts
            return {
                "+": lambda: left + right, "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: _cdiv(left, right),
                "%": lambda: _cmod(left, right),
                "<": lambda: int(left < right), ">": lambda: int(left > right),
                "==": lambda: int(left == right),
                "&": lambda: int(left) & int(right),
                "|": lambda: int(left) | int(right),
                "^": lambda: int(left) ^ int(right),
                "<<": lambda: int(left) << int(right),
                ">>": lambda: int(left) >> int(right),
            }[e.op]()

        try:
            expected = ref(expr)
        except (ZeroDivisionError, OverflowError):
            return  # skip inputs with undefined behaviour
        if not -2**31 <= expected < 2**31:
            return  # int return value would wrap
        src = f"""
            int f(int x, int y) {{ return {unparse_expr(expr)}; }}
            int main() {{ return f({X}, {Y}); }}
        """
        it = run_program(src, instrumented=False)
        assert it.run("main") == expected

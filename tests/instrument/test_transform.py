"""Tests for the instrumentation transform (paper §III-B rules).

Golden cases reproduce the paper's own examples: Fig 2's read/write
wrapping, ``traceRW(*a)++``, the Table I replacement pragma, and the
``tracePrint`` expansion with the STL-pair example.
"""

import pytest

from repro.instrument import instrument_source, parse, instrument
from repro.instrument.errors import TypeError_


def lines_of(src: str) -> list[str]:
    out, _ = instrument_source(src)
    return [line.strip() for line in out.splitlines() if line.strip()]


class TestPaperFig2:
    def test_read_wrapping(self):
        src = "void f() { int* p = new int(2); int x = *p; }"
        assert "int x = traceR(*p);" in lines_of(src)

    def test_write_wrapping(self):
        src = "void f() { int* p = new int(2); *p = 3; }"
        assert "traceW(*p) = 3;" in lines_of(src)

    def test_rmw_wrapping(self):
        src = "void f(int* a) { (*a)++; }"
        assert "traceRW(*a)++;" in lines_of(src)

    def test_compound_assign_is_rmw(self):
        src = "void f(int* a) { a[2] += 5; }"
        assert "traceRW(a[2]) += 5;" in lines_of(src)


class TestElision:
    def test_plain_variables_not_instrumented(self):
        src = "void f() { int x = 1; int y = x; y = x + 2; }"
        out, res = instrument_source(src)
        assert "trace" not in out
        assert sum(res.wrapped.values()) == 0

    def test_address_of_elided(self):
        src = "void f(int* p) { int** q = &p; int* r = &p[3]; }"
        out, _ = instrument_source(src)
        assert "traceR(p[3])" not in out
        assert "&p[3]" in out

    def test_sizeof_operand_elided(self):
        src = "void f(int* p) { int n = sizeof(*p); }"
        out, _ = instrument_source(src)
        assert "trace" not in out

    def test_stack_array_not_instrumented(self):
        src = "void f() { int buf[4]; buf[0] = 1; int x = buf[1]; }"
        out, _ = instrument_source(src)
        assert "trace" not in out

    def test_stack_struct_dot_not_instrumented(self):
        src = """
            struct P { int a; };
            void f() { struct P s; s.a = 1; }
        """
        out, _ = instrument_source(src)
        assert "trace" not in out

    def test_pointer_param_indexing_is_instrumented(self):
        src = "void f(int* p) { p[0] = 1; }"
        assert "traceW(p[0]) = 1;" in lines_of(src)

    def test_arrow_member_is_instrumented(self):
        src = """
            struct P { int a; };
            void f(struct P* p) { p->a = 1; int x = p->a; }
        """
        out = lines_of(src)
        assert "traceW(p->a) = 1;" in out
        assert "int x = traceR(p->a);" in out

    def test_deref_dot_member_is_instrumented(self):
        src = """
            struct P { int a; };
            void f(struct P* p) { (*p).a = 2; }
        """
        out, _ = instrument_source(src)
        assert "traceW((*p).a) = 2;" in out


class TestNesting:
    def test_nested_pointer_chain(self):
        src = """
            struct N { struct N* next; int v; };
            void f(struct N* n) { n->next->v = 1; }
        """
        out, _ = instrument_source(src)
        assert "traceW(traceR(n->next)->v) = 1;" in out

    def test_index_of_loaded_pointer(self):
        src = """
            struct D { double* x; };
            void f(struct D* d, int i) { d->x[i] = 0.0; }
        """
        out, _ = instrument_source(src)
        assert "traceW(traceR(d->x)[i]) = 0.0;" in out


class TestReplacePragmas:
    SRC = """
        #pragma xpl replace cudaMallocManaged
        cudaError_t trcMallocManaged(void** p, size_t sz);

        void f(int** a) {
            cudaMallocManaged((void**)a, 100);
        }
    """

    def test_call_redirected(self):
        out, res = instrument_source(self.SRC)
        assert "trcMallocManaged((void**)a, 100);" in out
        assert res.replacements == {"cudaMallocManaged": "trcMallocManaged"}

    def test_kernel_launch_replacement(self):
        src = """
            #pragma xpl replace kernel-launch
            void traceKernelLaunch(int g, int b, int s, int st, ...);
            __global__ void k(int* p);
            void f(int* p) { k<<<4, 64>>>(p); }
        """
        out, _ = instrument_source(src)
        assert "traceKernelLaunch(4, 64, 0, 0, k, p);" in out

    def test_launch_without_replacement_kept(self):
        src = "__global__ void k(int* p); void f(int* p) { k<<<1, 2>>>(p); }"
        out, _ = instrument_source(src)
        assert "k<<<1, 2>>>(p);" in out

    def test_dangling_replace_pragma_rejected(self):
        src = "#pragma xpl replace foo\nint x;"
        with pytest.raises(TypeError_):
            instrument(parse(src))


class TestDiagnosticExpansion:
    def test_paper_pair_example(self):
        # The paper: a points to an STL pair of two int pointers, z to a
        # scalar; the pragma expands to four XplAllocData records.
        src = """
            struct pair { int* first; int* second; };
            void f(struct pair* a, int* z) {
            #pragma xpl diagnostic tracePrint(out; a, z)
            }
        """
        out, res = instrument_source(src)
        assert ('tracePrint(out, '
                'XplAllocData(a, "a", sizeof(*a)), '
                'XplAllocData(a->first, "a->first", sizeof(*a->first)), '
                'XplAllocData(a->second, "a->second", sizeof(*a->second)), '
                'XplAllocData(z, "z", sizeof(*z)));') in out
        assert res.diagnostics_inserted == 1

    def test_type_repetition_guard(self):
        src = """
            struct node { struct node* next; int* data; };
            void f(struct node* head) {
            #pragma xpl diagnostic tracePrint(out; head)
            }
        """
        out, _ = instrument_source(src)
        # head, head->next and head->data are recorded; head->next's own
        # members are not expanded because struct node repeats on the path.
        assert 'XplAllocData(head->next, "head->next",' in out
        assert 'XplAllocData(head->data, "head->data",' in out
        assert "head->next->next" not in out
        assert "head->next->data" not in out

    def test_non_pointer_argument_rejected(self):
        src = """
            void f(int x) {
            #pragma xpl diagnostic tracePrint(out; x)
            }
        """
        with pytest.raises(TypeError_):
            instrument(parse(src))

    def test_unknown_variable_rejected(self):
        src = """
            void f() {
            #pragma xpl diagnostic tracePrint(out; nothere)
            }
        """
        with pytest.raises(TypeError_):
            instrument(parse(src))

    def test_non_xpl_pragma_passes_through(self):
        src = "void f() {\n#pragma omp parallel\n}"
        out, _ = instrument_source(src)
        assert "#pragma omp parallel" in out


class TestIdempotentShape:
    def test_instrumented_source_reparses(self):
        src = """
            struct D { double* x; };
            #pragma xpl replace cudaMallocManaged
            cudaError_t trcMallocManaged(void** p, size_t sz);
            void f(struct D* d, int n) {
                for (int i = 0; i < n; i++) { d->x[i] = i * 1.0; }
            #pragma xpl diagnostic tracePrint(out; d)
            }
        """
        out, _ = instrument_source(src)
        reparsed = parse(out)  # must be syntactically valid
        assert reparsed.function("f") is not None

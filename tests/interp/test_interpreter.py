"""Tests for the mini-CUDA interpreter: semantics + end-to-end tracing."""

import pytest

from repro.analysis import AntiPattern, detect_alternating
from repro.interp import InterpError, run_program
from repro.memsim import Processor
from repro.runtime import trace_print


def result_of(body: str, *, instrumented: bool = False):
    """Run ``int main() { <body> }`` and return main's return value."""
    it = run_program(f"int main() {{ {body} }}", instrumented=instrumented)
    return it.run("main")


class TestBasics:
    def test_arithmetic_and_return(self):
        assert result_of("return 2 + 3 * 4;") == 14

    def test_c_division_truncates_toward_zero(self):
        assert result_of("return -7 / 2;") == -3
        assert result_of("return -7 % 2;") == -1

    def test_locals_and_assignment(self):
        assert result_of("int x = 5; x += 2; x *= 3; return x;") == 21

    def test_if_else(self):
        assert result_of("int x = 3; if (x > 2) return 1; else return 0;") == 1

    def test_while_loop(self):
        assert result_of("int s = 0; int i = 0; while (i < 5) { s += i; i++; } return s;") == 10

    def test_for_loop_with_break_continue(self):
        assert result_of(
            "int s = 0;"
            "for (int i = 0; i < 10; i++) {"
            "  if (i == 3) continue;"
            "  if (i == 6) break;"
            "  s += i;"
            "} return s;"
        ) == 0 + 1 + 2 + 4 + 5

    def test_do_while(self):
        assert result_of("int i = 0; do { i++; } while (i < 3); return i;") == 3

    def test_ternary_and_logic(self):
        # C logical operators yield 0/1, so this is 1 + 1.
        assert result_of("int x = 0; return x ? 10 : (1 && 2) + (0 || 5);") == 2

    def test_function_call(self):
        it = run_program("""
            int square(int x) { return x * x; }
            int main() { return square(7); }
        """)
        assert it.run("main") == 49

    def test_recursion(self):
        it = run_program("""
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { return fib(10); }
        """)
        assert it.run("main") == 55

    def test_char_literal(self):
        assert result_of("return 'A';") == 65

    def test_printf_capture(self):
        it = run_program('int main() { printf("v=%d\\n", 42); return 0; }')
        assert "v=42" in it.stdout


class TestPointersAndStructs:
    def test_new_and_deref(self):
        assert result_of("int* p = new int(2); *p = *p + 5; return *p;") == 7

    def test_pointer_arithmetic(self):
        assert result_of(
            "int* p = new int[4]; p[0] = 1; p[1] = 2;"
            "int* q = p + 1; return *q;"
        ) == 2

    def test_address_of_local(self):
        assert result_of("int x = 3; int* p = &x; *p = 9; return x;") == 9

    def test_struct_members_via_pointer(self):
        it = run_program("""
            struct P { int a; int b; };
            int main() {
                struct P s;
                struct P* p = &s;
                p->a = 3; p->b = 4;
                return p->a * p->b;
            }
        """)
        assert it.run("main") == 12

    def test_struct_dot_access(self):
        it = run_program("""
            struct P { int a; double d; };
            int main() { struct P s; s.a = 5; return s.a; }
        """)
        assert it.run("main") == 5

    def test_double_values(self):
        assert result_of(
            "double* p = new double(1.5); *p = *p * 2.0;"
            "return (int)*p;"
        ) == 3

    def test_delete(self):
        assert result_of("int* p = new int(1); delete p; return 0;") == 0

    def test_invalid_deref_raises(self):
        with pytest.raises(InterpError):
            result_of("int* p = (int*)1234; return *p;")


class TestCudaBuiltins:
    def test_managed_alloc_and_kernel(self):
        it = run_program("""
            __global__ void twice(int* d, int n) {
                int i = threadIdx.x + blockIdx.x * blockDim.x;
                if (i < n) { d[i] = d[i] * 2; }
            }
            int main() {
                int* a;
                cudaMallocManaged((void**)&a, 8 * sizeof(int));
                for (int i = 0; i < 8; i++) { a[i] = i; }
                twice<<<2, 4>>>(a, 8);
                int s = 0;
                for (int i = 0; i < 8; i++) { s += a[i]; }
                cudaFree(a);
                return s;
            }
        """)
        assert it.run("main") == 2 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7)

    def test_cuda_memcpy(self):
        it = run_program("""
            int main() {
                int* host = new int[4];
                int* dev;
                cudaMalloc((void**)&dev, 4 * sizeof(int));
                host[0] = 11; host[1] = 22; host[2] = 33; host[3] = 44;
                cudaMemcpy(dev, host, 4 * sizeof(int), 1);
                int* back = new int[4];
                cudaMemcpy(back, dev, 4 * sizeof(int), 2);
                return back[2];
            }
        """)
        assert it.run("main") == 33

    def test_kernel_time_advances_clock(self):
        it = run_program("""
            __global__ void k(int* d) { d[threadIdx.x] = 1; }
            int main() {
                int* a;
                cudaMallocManaged((void**)&a, 64);
                k<<<1, 16>>>(a);
                return 0;
            }
        """)
        assert it.platform.clock.now > 0


class TestEndToEndTracing:
    PROGRAM = """
        #pragma xpl replace cudaMallocManaged
        cudaError_t trcMallocManaged(void** p, size_t sz);
        #pragma xpl replace kernel-launch
        void traceKernelLaunch(int g, int b, int s, int st, ...);

        __global__ void scale(int* data, int n, int f) {
            int i = threadIdx.x + blockIdx.x * blockDim.x;
            if (i < n) { data[i] = data[i] * f; }
        }

        int main() {
            int* a;
            cudaMallocManaged((void**)&a, 16 * sizeof(int));
            for (int i = 0; i < 16; i++) { a[i] = i; }
            scale<<<1, 16>>>(a, 16, 3);
            int s = 0;
            for (int i = 0; i < 16; i++) { s += a[i]; }
        #pragma xpl diagnostic tracePrint(out; a)
            return s;
        }
    """

    def test_functional_result_preserved_by_instrumentation(self):
        plain = run_program(self.PROGRAM, instrumented=False)
        traced = run_program(self.PROGRAM, instrumented=True)
        assert plain.run("main") == traced.run("main") == 3 * sum(range(16))

    def test_shadow_counts_reflect_both_processors(self):
        it = run_program(self.PROGRAM)
        # Re-run main under a fresh epoch to get deterministic counts.
        out = it.stdout
        assert "16 elements with alternating accesses" in out
        assert "access density (in %): 100" in out

    def test_kernel_launch_recorded_via_wrapper(self):
        it = run_program(self.PROGRAM)
        assert [k.name for k in it.tracer.kernels].count("scale") >= 1

    def test_alternating_detector_fires_on_interpreted_program(self):
        # Same program without the embedded diagnostic: the test closes
        # the epoch itself and runs the detector on the result.
        program = self.PROGRAM.replace(
            "#pragma xpl diagnostic tracePrint(out; a)", "")
        it = run_program(program)
        result = trace_print(it.tracer, include_maps=True)
        findings = detect_alternating(result, it.tracer)
        assert any(f.pattern is AntiPattern.ALTERNATING_ACCESS
                   for f in findings)

    def test_untraced_plain_run_has_empty_smt(self):
        it = run_program(self.PROGRAM, instrumented=False)
        assert len(it.tracer.smt) == 0

    def test_gpu_accesses_attributed_to_gpu(self):
        it = run_program(self.PROGRAM)
        # The diagnostic output shows GPU writes (G column nonzero).
        lines = [ln.split() for ln in it.stdout.splitlines()
                 if ln.strip() and ln.strip()[0].isdigit()]
        assert lines, it.stdout
        counts = [int(x) for x in lines[0]]
        c, g = counts[0], counts[1]
        assert c == 16 and g == 16

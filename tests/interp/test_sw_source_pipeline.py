"""Fig 7 through the real tool pipeline: a mini-CUDA Smith-Waterman
source program is instrumented, executed, and diagnosed -- the CPU's
full-matrix initialization vs the boundary-only use emerges from the
shadow memory of the *interpreted instrumented source*."""

import numpy as np
import pytest

from repro.interp import run_program
from repro.runtime import trace_print
from repro.workloads.smithwaterman import sw_reference

N, M = 8, 6
W = M + 1

SOURCE = f"""
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);
#pragma xpl replace kernel-launch
void traceKernelLaunch(int g, int b, int s, int st, ...);

__global__ void wavefront(int* H, int* a, int* b, int k, int ilo, int cells) {{
    int t = threadIdx.x;
    if (t < cells) {{
        int i = ilo + t;
        int j = k - i;
        int w = {W};
        int match;
        if (a[i - 1] == b[j - 1]) {{ match = 3; }} else {{ match = -3; }}
        int best = 0;
        int diag = H[(i - 1) * w + (j - 1)] + match;
        int up = H[(i - 1) * w + j] - 2;
        int left = H[i * w + (j - 1)] - 2;
        if (diag > best) {{ best = diag; }}
        if (up > best) {{ best = up; }}
        if (left > best) {{ best = left; }}
        H[i * w + j] = best;
    }}
}}

int main() {{
    int n = {N};
    int m = {M};
    int w = {W};
    int* H;
    int* a;
    int* b;
    cudaMallocManaged((void**)&H, (n + 1) * w * sizeof(int));
    cudaMallocManaged((void**)&a, n * sizeof(int));
    cudaMallocManaged((void**)&b, m * sizeof(int));
    for (int i = 0; i < n; i++) {{ a[i] = (i * 7 + 3) % 4; }}
    for (int j = 0; j < m; j++) {{ b[j] = (j * 5 + 1) % 4; }}
    // The anti-pattern: the CPU zeroes the ENTIRE matrix although only
    // the boundary zeroes will ever be read.
    for (int c = 0; c < (n + 1) * w; c++) {{ H[c] = 0; }}
    for (int k = 2; k <= n + m; k++) {{
        int ilo = 1;
        if (k - m > 1) {{ ilo = k - m; }}
        int ihi = n;
        if (k - 1 < n) {{ ihi = k - 1; }}
        int cells = ihi - ilo + 1;
        if (cells > 0) {{
            wavefront<<<1, cells>>>(H, a, b, k, ilo, cells);
        }}
    }}
    int best = 0;
    for (int c = 0; c < (n + 1) * w; c++) {{
        if (H[c] > best) {{ best = H[c]; }}
    }}
    return best;
}}
"""


@pytest.fixture(scope="module")
def executed():
    it = run_program(SOURCE)
    score = it.run("main")
    # run() above executed main twice (run_program already ran it); use a
    # fresh epoch-spanning diagnosis over everything recorded.
    result = trace_print(it.tracer, include_maps=True)
    return it, score, result


class TestFunctional:
    def test_score_matches_reference(self, executed):
        _, score, _ = executed
        a = np.array([(i * 7 + 3) % 4 for i in range(N)], dtype=np.uint8)
        b = np.array([(j * 5 + 1) % 4 for j in range(M)], dtype=np.uint8)
        assert score == sw_reference(a, b).max()

    def test_all_wavefronts_launched(self, executed):
        it, _, _ = executed
        launches = [k for k in it.tracer.kernels if k.name == "wavefront"]
        assert len(launches) >= (N + M - 1)


class TestFig7FromInstrumentedSource:
    def test_cpu_initialized_the_whole_matrix(self, executed):
        _, _, result = executed
        h = result.named("H")
        assert h.maps["cpu_write"].mask.all()

    def test_gpu_read_cpu_origin_is_boundary_only(self, executed):
        _, _, result = executed
        mask = result.named("H").maps["gpu_read_cpu_origin"].mask
        grid = mask.reshape(N + 1, W)
        assert grid[0, : M].any()          # first row read
        assert grid[1:, 0].any()           # first column read
        interior = grid[1:, 1:]
        assert not interior.any()          # Fig 7b: boundary only

    def test_alternating_on_H(self, executed):
        _, _, result = executed
        h = result.named("H")
        assert h.alternating > 0           # CPU wrote, GPU read+wrote

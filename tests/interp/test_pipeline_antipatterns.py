"""Full-pipeline tests: mini-CUDA programs whose instrumented execution
reproduces each paper anti-pattern through the detectors."""

from repro.analysis import (
    AntiPattern,
    detect_low_density,
    detect_unnecessary_transfers,
)
from repro.interp import run_program
from repro.runtime import trace_print


def diagnose_interp(it):
    result = trace_print(it.tracer, include_maps=True)
    findings = detect_low_density(result)
    findings += detect_unnecessary_transfers(result, it.tracer,
                                             current_epoch_only=False)
    return result, findings


class TestLowDensityProgram:
    SRC = """
        #pragma xpl replace cudaMallocManaged
        cudaError_t trcMallocManaged(void** p, size_t sz);
        #pragma xpl replace kernel-launch
        void traceKernelLaunch(int g, int b, int s, int st, ...);

        __global__ void touch_first(int* data) {
            if (threadIdx.x == 0) { data[0] = 1; }
        }

        int main() {
            int* big;
            cudaMallocManaged((void**)&big, 4096);
            touch_first<<<1, 32>>>(big);
            return 0;
        }
    """

    def test_low_density_detected(self):
        it = run_program(self.SRC)
        _, findings = diagnose_interp(it)
        hits = [f for f in findings
                if f.pattern is AntiPattern.LOW_ACCESS_DENSITY]
        assert hits and hits[0].metric < 0.01


class TestUnnecessaryTransferProgram:
    SRC = """
        #pragma xpl replace cudaMalloc
        cudaError_t trcMalloc(void** p, size_t sz);
        #pragma xpl replace cudaMemcpy
        cudaError_t trcMemcpy(void* d, void* s, size_t n, int kind);
        #pragma xpl replace kernel-launch
        void traceKernelLaunch(int g, int b, int s, int st, ...);

        __global__ void overwrite(int* d, int n) {
            int i = threadIdx.x;
            if (i < n) { d[i] = i; }
        }

        int main() {
            int* host = new int[64];
            for (int i = 0; i < 64; i++) { host[i] = 7; }
            int* dev;
            cudaMalloc((void**)&dev, 64 * sizeof(int));
            cudaMemcpy(dev, host, 64 * sizeof(int), 1);
            overwrite<<<1, 64>>>(dev, 64);
            cudaMemcpy(host, dev, 64 * sizeof(int), 2);
            return host[3];
        }
    """

    def test_overwritten_before_use_detected(self):
        it = run_program(self.SRC)
        _, findings = diagnose_interp(it)
        assert any(f.pattern is AntiPattern.TRANSFER_OVERWRITTEN
                   for f in findings)

    def test_functional_result(self):
        it = run_program(self.SRC)
        assert it.run("main") == 3  # the GPU's value came back

    def test_memcpy_recorded_as_transfers(self):
        it = run_program(self.SRC)
        directions = [t.direction for t in it.tracer.transfers]
        assert directions.count("H2D") >= 1
        assert directions.count("D2H") >= 1


class TestCleanProgram:
    SRC = """
        #pragma xpl replace cudaMalloc
        cudaError_t trcMalloc(void** p, size_t sz);
        #pragma xpl replace cudaMemcpy
        cudaError_t trcMemcpy(void* d, void* s, size_t n, int kind);
        #pragma xpl replace kernel-launch
        void traceKernelLaunch(int g, int b, int s, int st, ...);

        __global__ void triple(int* d, int n) {
            int i = threadIdx.x;
            if (i < n) { d[i] = d[i] * 3; }
        }

        int main() {
            int* host = new int[16];
            for (int i = 0; i < 16; i++) { host[i] = i; }
            int* dev;
            cudaMalloc((void**)&dev, 16 * sizeof(int));
            cudaMemcpy(dev, host, 16 * sizeof(int), 1);
            triple<<<1, 16>>>(dev, 16);
            cudaMemcpy(host, dev, 16 * sizeof(int), 2);
            return host[5];
        }
    """

    def test_no_transfer_findings(self):
        it = run_program(self.SRC)
        result = trace_print(it.tracer, include_maps=True)
        findings = detect_unnecessary_transfers(result, it.tracer,
                                                current_epoch_only=False)
        assert findings == []

    def test_functional_result(self):
        it = run_program(self.SRC)
        assert it.run("main") == 15

"""Tests for InterpError execution context (site, thread, stack)."""

import pytest

from repro.interp import InterpError, run_program

HOST_ERROR = """\
int main() {
    int x = 1;
    return x + bogus;
}
"""

KERNEL_ERROR = """\
__global__ void boom(int* a, int n) {
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    a[i] = missing;
}

int main() {
    int a[4];
    boom<<<1, 4>>>(a, 4);
    return 0;
}
"""

NESTED_ERROR = """\
int inner(int v) {
    return v / oops;
}

int outer(int v) {
    return inner(v) + 1;
}

int main() {
    return outer(3);
}
"""


def error_from(source, *, source_name="prog.cu"):
    with pytest.raises(InterpError) as info:
        run_program(source, instrumented=False, source_name=source_name)
    return info.value


class TestHostContext:
    def test_site_and_message_suffix(self):
        exc = error_from(HOST_ERROR)
        assert exc.site is not None
        assert (exc.site.file, exc.site.line) == ("prog.cu", 3)
        assert str(exc) == "undefined identifier 'bogus' (at prog.cu:3)"

    def test_host_errors_carry_no_thread(self):
        exc = error_from(HOST_ERROR)
        assert exc.thread is None
        assert exc.stack == ("main",)

    def test_source_name_flows_through(self):
        exc = error_from(HOST_ERROR, source_name="other.cu")
        assert exc.site.file == "other.cu"
        assert "(at other.cu:3)" in str(exc)


class TestKernelContext:
    def test_thread_coords_in_site_and_message(self):
        exc = error_from(KERNEL_ERROR)
        assert exc.site.line == 3
        assert exc.thread == (0, 0)  # the first thread fails first
        assert "(at prog.cu:3 [blockIdx.x=0 threadIdx.x=0])" in str(exc)

    def test_stack_names_the_kernel(self):
        exc = error_from(KERNEL_ERROR)
        assert exc.stack == ("main", "boom")


class TestNestedContext:
    def test_innermost_frame_wins(self):
        exc = error_from(NESTED_ERROR)
        assert exc.site.line == 2  # inside inner(), not the call sites
        assert exc.stack == ("main", "outer", "inner")

    def test_original_message_is_a_prefix(self):
        exc = error_from(NESTED_ERROR)
        assert str(exc).startswith("undefined identifier 'oops'")
        assert str(exc).endswith("(at prog.cu:2)")

"""Tests for the Spatter-style gather/scatter pattern generator."""

import io

import numpy as np
import pytest

from repro.analysis import AntiPattern
from repro.workloads.base import make_session
from repro.workloads.spatter import (
    SpatterSpec,
    SpatterWorkload,
    indirection,
    mostly_stride_1,
    to_mini_cuda,
    uniform_stride,
)


class TestSpecGeometry:
    def test_flat_indices_follow_spatter_semantics(self):
        spec = SpatterSpec(name="t", kind="gather", pattern=(0, 2, 4),
                           delta=6, count=3)
        assert spec.flat_indices().tolist() == [
            0, 2, 4, 6, 8, 10, 12, 14, 16]
        assert spec.n == 9
        assert spec.data_length == 17

    def test_uniform_stride_builder(self):
        spec = uniform_stride(8, length=4, count=2)
        assert spec.pattern == (0, 8, 16, 24)
        assert spec.delta == 32
        assert spec.flat_indices().tolist() == [0, 8, 16, 24, 32, 40, 48, 56]

    def test_mostly_stride_1_has_one_jump_per_window(self):
        spec = mostly_stride_1(length=4, jump=100, count=2)
        assert spec.pattern == (0, 1, 2, 103)
        diffs = np.diff(spec.flat_indices()).tolist()
        assert diffs == [1, 1, 101, 1, 1, 1, 101]  # dense runs + jumps

    def test_indirection_is_seed_deterministic(self):
        a = indirection(length=32, spread=1000, seed=7)
        b = indirection(length=32, spread=1000, seed=7)
        c = indirection(length=32, spread=1000, seed=8)
        assert a.pattern == b.pattern
        assert a.pattern != c.pattern
        assert all(0 <= p < 1000 for p in a.pattern)

    def test_validation(self):
        with pytest.raises(ValueError, match="gather|scatter"):
            SpatterSpec(name="x", kind="sort", pattern=(0,), delta=1, count=1)
        with pytest.raises(ValueError):
            SpatterSpec(name="x", kind="gather", pattern=(), delta=1, count=1)
        with pytest.raises(ValueError, match="non-negative"):
            SpatterSpec(name="x", kind="gather", pattern=(-1,), delta=1,
                        count=1)


class TestSpecJson:
    def test_round_trip(self):
        spec = mostly_stride_1(length=8, jump=32, count=4, kind="scatter")
        assert SpatterSpec.from_json(spec.to_json()) == spec

    def test_accepts_spatter_style_input(self):
        spec = SpatterSpec.from_json(
            '[{"kernel": "Gather", "pattern": [0, 4, 8], "count": 2}]')
        assert spec.kind == "gather"
        assert spec.delta == 3  # defaults to the pattern length
        assert spec.count == 2


class TestWorkload:
    def test_uniform_gather_alternates(self):
        session = make_session(trace=True, materialize=True)
        run = SpatterWorkload(session, uniform_stride(
            8, length=16, count=16)).run()
        assert run.name == "spatter"
        assert run.variant == "gather:uniform-8"
        d = run.diagnoses[-1]
        names = {f.name for f in d.of(AntiPattern.ALTERNATING_ACCESS)}
        assert "res" in names  # CPU consumes the dense side every iteration
        assert run.stats["fault_groups"] > 0

    def test_indirection_footprint_is_sparse(self):
        session = make_session(trace=True)
        run = SpatterWorkload(session, indirection(
            length=64, spread=65536)).run()
        assert run.variant == "gather-indirect:indirect-1"
        assert run.stats["footprint_density"] < 0.01

    def test_scatter_variant_runs(self):
        session = make_session(trace=True, materialize=True)
        run = SpatterWorkload(session, uniform_stride(
            4, length=8, count=8, kind="scatter")).run()
        assert run.variant.startswith("scatter:")
        assert run.stats["accesses_per_kernel"] == 64

    def test_gather_values_match_pattern(self):
        session = make_session(trace=True, materialize=True)
        spec = uniform_stride(4, length=8, count=4)
        wl = SpatterWorkload(session, spec)
        wl.run()
        res = wl.res.typed(np.int32).read(0, spec.n)
        # data[i] = i, so each gather reads the indices themselves; the
        # CPU bump after the final launch leaves exactly one +1
        assert res.tolist() == (spec.flat_indices() + 1).tolist()


class TestMiniCudaEmission:
    def test_generated_program_debugs_end_to_end(self):
        from repro.debug import DebugEngine
        spec = uniform_stride(8, length=8, count=4)
        engine = DebugEngine(to_mini_cuda(spec),
                             source_name="spatter.cu", out=io.StringIO())
        value = engine.run()
        # gather of data[i]=i sums the flat indices, twice around the loop
        assert value == int(spec.flat_indices().sum())
        assert set(engine.allocs) == {"data", "idx", "res"}

    def test_emission_is_deterministic(self):
        spec = indirection(length=16, spread=512, seed=3)
        assert to_mini_cuda(spec) == to_mini_cuda(spec)

    def test_oversized_patterns_rejected(self):
        spec = uniform_stride(1, length=8, count=128)  # 1024 accesses
        with pytest.raises(ValueError, match="at most"):
            to_mini_cuda(spec)

"""Tests for the LULESH proxy: diagnosis fidelity and remedy behaviour."""

import numpy as np
import pytest

from repro.analysis import AntiPattern
from repro.memsim import Processor
from repro.runtime import expand_object
from repro.workloads.base import make_session
from repro.workloads.lulesh import (
    ALL_FIELDS,
    DOMAIN_STRUCT_BYTES,
    Domain,
    Lulesh,
    VARIANTS,
    run_lulesh,
)


@pytest.fixture
def traced_app():
    session = make_session("intel-pascal", trace=True, materialize=True)
    return Lulesh(session, 8, diagnose_each_step=True)


class TestDomain:
    def test_struct_block_is_3736_bytes(self):
        session = make_session(trace=False)
        dom = Domain(session, 4)
        assert dom.self_ptr.alloc.size == DOMAIN_STRUCT_BYTES

    def test_expansion_yields_50_allocations_with_reduce_buffer(self, traced_app):
        # dom + 48 arrays; the dt-reduce buffer makes the paper's 50.
        recs = expand_object(traced_app.dom, "dom")
        assert recs[0].name == "dom"
        assert len(recs) == 1 + 39  # 39 persistent live before temps exist

    def test_field_geometry(self):
        session = make_session(trace=False)
        dom = Domain(session, 8)
        assert dom.field_geometry("m_x") == (np.dtype(np.float64), 9 ** 3)
        assert dom.field_geometry("m_p") == (np.dtype(np.float64), 8 ** 3)
        assert dom.field_geometry("m_nodelist")[1] == 8 * 8 ** 3
        assert dom.field_geometry("m_symmX")[1] == 9 ** 2

    def test_unknown_field_rejected(self):
        session = make_session(trace=False)
        dom = Domain(session, 4)
        with pytest.raises(KeyError):
            dom.field_geometry("m_bogus")

    def test_load_of_unset_temp_raises(self):
        session = make_session(trace=False)
        dom = Domain(session, 4)
        with pytest.raises(RuntimeError):
            dom.load("m_dxx")

    def test_too_small_size_rejected(self):
        session = make_session(trace=False)
        with pytest.raises(ValueError):
            Domain(session, 1)


class TestFig4Fidelity:
    """The paper's Fig 4 numbers for the second iteration."""

    def test_dom_row(self, traced_app):
        run = traced_app.run(3)
        r = run.diagnoses[1].result.named("dom")
        c = r.counts
        assert c.cpu_written == 27          # paper: C = 27
        assert c.gpu_written == 0           # paper: G = 0
        assert r.density_pct == 9           # paper: 9%
        assert r.alternating == 18          # paper: 18 elements

    def test_m_p_row(self, traced_app):
        run = traced_app.run(3)
        r = run.diagnoses[1].result.named("(dom)->m_p")
        c = r.counts
        assert c.gpu_written == 1024        # paper: G = 1024
        assert c.read_gg == 1024            # paper: G>G = 1024
        assert r.density_pct == 100         # paper: 100%
        assert r.alternating == 0

    def test_fifty_allocations_reported(self, traced_app):
        run = traced_app.run(2)
        assert len(run.diagnoses[1].result.reports) == 50

    def test_alternating_finding_on_dom(self, traced_app):
        run = traced_app.run(2)
        d = run.diagnoses[1]
        assert any(f.pattern is AntiPattern.ALTERNATING_ACCESS and f.name == "dom"
                   for f in d.findings)

    def test_first_iteration_includes_initialization(self, traced_app):
        run = traced_app.run(2)
        first = run.diagnoses[0].result.named("dom")
        # Initialization writes every pointer slot: far more CPU writes
        # than the steady-state 27.
        assert first.counts.cpu_written > 50

    def test_temps_reported_from_graveyard(self, traced_app):
        run = traced_app.run(2)
        names = {r.name for r in run.diagnoses[1].result.reports}
        assert "m_dxx" in names and "m_delv_zeta" in names


class TestPhysicsSanity:
    def test_state_evolves(self):
        session = make_session(trace=False, materialize=True)
        app = Lulesh(session, 4)
        x0 = app.dom.view("m_x").raw.copy()
        app.run(4)
        assert not np.array_equal(app.dom.view("m_x").raw, x0)

    def test_energy_stays_finite_and_positive(self):
        session = make_session(trace=False, materialize=True)
        app = Lulesh(session, 4)
        app.run(8)
        e = app.energy()
        assert np.isfinite(e) and e > 0

    def test_variants_compute_identical_physics(self):
        energies = {}
        for v in VARIANTS:
            session = make_session(trace=False, materialize=True)
            app = Lulesh(session, 4, variant=v)
            app.run(4)
            energies[v] = app.energy()
        baseline = energies["baseline"]
        for v, e in energies.items():
            assert e == pytest.approx(baseline, rel=1e-12), v


class TestRemedies:
    @pytest.mark.parametrize("variant", [v for v in VARIANTS if v != "baseline"])
    def test_remedies_not_slower_than_baseline_on_intel(self, variant):
        base = run_lulesh(16, 8, platform="intel-pascal")
        other = run_lulesh(16, 8, variant=variant, platform="intel-pascal")
        assert other.sim_time < base.sim_time

    def test_duplicate_beats_read_mostly_on_intel(self):
        rm = run_lulesh(32, 8, variant="read_mostly", platform="intel-pascal")
        dup = run_lulesh(32, 8, variant="duplicate", platform="intel-pascal")
        assert dup.sim_time <= rm.sim_time

    def test_read_mostly_hurts_on_power9(self):
        base = run_lulesh(32, 8, platform="power9-volta")
        rm = run_lulesh(32, 8, variant="read_mostly", platform="power9-volta")
        assert rm.sim_time > base.sim_time  # paper: 0.8x (slower)

    def test_duplicate_is_a_wash_on_power9(self):
        base = run_lulesh(32, 8, platform="power9-volta")
        dup = run_lulesh(32, 8, variant="duplicate", platform="power9-volta")
        assert dup.sim_time == pytest.approx(base.sim_time, rel=0.1)

    def test_speedup_grows_with_problem_size_on_intel(self):
        def speedup(size):
            b = run_lulesh(size, 8, platform="intel-pascal")
            d = run_lulesh(size, 8, variant="duplicate", platform="intel-pascal")
            return b.sim_time / d.sim_time

        assert speedup(24) > speedup(8) * 0.95

    def test_unknown_variant_rejected(self):
        session = make_session(trace=False)
        with pytest.raises(ValueError):
            Lulesh(session, 4, variant="magic")

    def test_duplicate_variant_removes_alternating_on_dom(self):
        session = make_session("intel-pascal", trace=True, materialize=True)
        app = Lulesh(session, 8, variant="duplicate", diagnose_each_step=True)
        run = app.run(3)
        r = run.diagnoses[1].result.named("dom")
        assert r.alternating == 0

"""Tests for Smith-Waterman: correctness, diagnosis figures, timing shape."""

import numpy as np
import pytest

from repro.analysis import AntiPattern, diagnose
from repro.workloads.base import make_session
from repro.workloads.smithwaterman import (
    RotatedSmithWaterman,
    SmithWaterman,
    sw_reference,
)


def functional(n, m=None, cls=SmithWaterman, **kw):
    session = make_session(trace=False, materialize=True)
    return cls(session, n, m, **kw)


class TestCorrectness:
    @pytest.mark.parametrize("n,m", [(12, 9), (9, 12), (20, 10), (1, 5), (7, 7)])
    def test_baseline_matches_reference(self, n, m):
        sw = functional(n, m)
        sw.run()
        ref = sw_reference(sw.host_a, sw.host_b)
        assert np.array_equal(sw.score_matrix(), ref)

    @pytest.mark.parametrize("n,m", [(12, 9), (9, 12), (20, 10), (7, 7), (1, 4)])
    def test_rotated_best_score_matches_reference(self, n, m):
        sw = functional(n, m, cls=RotatedSmithWaterman)
        run = sw.run()
        ref = sw_reference(sw.host_a, sw.host_b)
        assert run.stats["score"] == ref.max()

    def test_baseline_and_rotated_agree(self):
        b = functional(25, 18)
        rb = b.run()
        o = functional(25, 18, cls=RotatedSmithWaterman)
        ro = o.run()
        assert rb.stats["score"] == ro.stats["score"]

    def test_identical_strings_score_match_times_length(self):
        session = make_session(trace=False, materialize=True)
        sw = SmithWaterman(session, 10, 10)
        sw.host_a = sw.host_b.copy()
        sw._setup()
        run = sw.run()
        from repro.workloads.smithwaterman import MATCH
        assert run.stats["score"] == MATCH * 10

    def test_invalid_length_rejected(self):
        session = make_session(trace=False)
        with pytest.raises(ValueError):
            SmithWaterman(session, 0)


class TestFig7Diagnosis:
    """CPU initializes the whole H matrix; only boundary zeroes are read."""

    def test_cpu_initializes_entire_matrix(self):
        session = make_session(trace=True, materialize=True)
        sw = SmithWaterman(session, 20, 10)
        d = diagnose(session.tracer, sw.descriptors(), reset=False)
        h = d.result.named("H")
        assert h.maps["cpu_write"].density == 1.0  # Fig 7a

    def test_gpu_reads_of_initial_values_are_boundary_only(self):
        session = make_session(trace=True, materialize=True)
        sw = SmithWaterman(session, 20, 10)
        sw.run()
        d = diagnose(session.tracer, sw.descriptors())
        mask = d.result.named("H").maps["gpu_read_cpu_origin"].mask
        w = sw.geom.width  # 11 int32 per row
        grid = mask.reshape(sw.n + 1, -1)[:, : -( -w * 4 // 4) or None]
        # Only row 0 and column 0 carry CPU-origin (initial zero) reads.
        grid2 = mask[: (sw.n + 1) * w].reshape(sw.n + 1, w)
        interior = grid2[1:, 1:]
        assert grid2[0].any() and grid2[:, 0].any()
        assert not interior.any()  # Fig 7b

    def test_low_density_finding_on_H_after_full_run(self):
        session = make_session(trace=True, materialize=True)
        sw = SmithWaterman(session, 20, 10)
        sw.run()
        # Whole-run diagnosis at the end of the algorithm: interior reads
        # of GPU-origin values make H dense, but a per-iteration epoch
        # shows the sparse wavefront; check the per-iteration view.
        session2 = make_session(trace=True, materialize=True)
        sw2 = SmithWaterman(session2, 20, 10, diagnose_each_iteration=True)
        run = sw2.run()
        mid = run.diagnoses[8]
        low = [f for f in mid.findings
               if f.pattern is AntiPattern.LOW_ACCESS_DENSITY and f.name == "H"]
        assert low


class TestFig8Diagnosis:
    """Iteration 8: GPU writes diagonal 8, reads diagonals 6 and 7."""

    def test_gpu_writes_follow_the_wavefront(self):
        session = make_session(trace=True, materialize=True)
        sw = SmithWaterman(session, 20, 10, diagnose_each_iteration=True)
        run = sw.run()
        # diagnoses[i] covers wavefront k = i + 2; iteration 8 -> index 6.
        d = run.diagnoses[6]
        h = d.result.named("H")
        w = sw.geom.width
        written = np.flatnonzero(h.maps["gpu_write"].mask)
        cells = {(int(off // w), int(off % w)) for off in written}
        assert cells and all(i + j == 8 for i, j in cells)

    def test_gpu_reads_come_from_previous_two_diagonals(self):
        session = make_session(trace=True, materialize=True)
        sw = SmithWaterman(session, 20, 10, diagnose_each_iteration=True)
        run = sw.run()
        d = run.diagnoses[6]
        h = d.result.named("H")
        w = sw.geom.width
        read_gpu_origin = np.flatnonzero(h.maps["gpu_read_gpu_origin"].mask)
        diags = {int(off // w) + int(off % w) for off in read_gpu_origin}
        assert diags and diags <= {6, 7}  # Fig 8b


class TestTimingShape:
    GPU_MEM = int(16.6e9 / 100)  # paper's 16 GB scaled with the inputs

    def _times(self, n, platform="intel-pascal"):
        sb = make_session(platform, trace=False, materialize=False,
                          gpu_memory_bytes=self.GPU_MEM)
        bt = SmithWaterman(sb, n).run().sim_time
        so = make_session(platform, trace=False, materialize=False,
                          gpu_memory_bytes=self.GPU_MEM)
        ot = RotatedSmithWaterman(so, n).run().sim_time
        return bt, ot

    def test_rotated_wins_at_mid_sizes(self):
        bt, ot = self._times(1500)
        assert bt > ot

    def test_oversubscription_cliff_on_baseline(self):
        bt_fit, _ = self._times(1000)
        # Per-cell cost at an oversubscribed size blows up vs a fitting one.
        session = make_session("intel-pascal", trace=False, materialize=False,
                               gpu_memory_bytes=int(2 * (1001 ** 2) * 4 * 0.9))
        bt_over = SmithWaterman(session, 1000).run().sim_time
        assert bt_over > 3 * bt_fit

    def test_rotated_immune_to_oversubscription(self):
        small_mem = int(2 * (1001 ** 2) * 4 * 0.9)
        s1 = make_session("intel-pascal", trace=False, materialize=False,
                          gpu_memory_bytes=self.GPU_MEM)
        t_fit = RotatedSmithWaterman(s1, 1000).run().sim_time
        s2 = make_session("intel-pascal", trace=False, materialize=False,
                          gpu_memory_bytes=small_mem)
        t_over = RotatedSmithWaterman(s2, 1000).run().sim_time
        assert t_over < 2 * t_fit

"""Tests for the Rodinia ports: functional results + Table II findings."""

import numpy as np
import pytest

from repro.analysis import AntiPattern, diagnose
from repro.workloads.base import make_session
from repro.workloads.rodinia import (
    Backprop,
    Cfd,
    Gaussian,
    Lud,
    NearestNeighbor,
    OverlappedPathfinder,
    Pathfinder,
    pathfinder_reference,
)


def run_and_diagnose(app_cls, **kw):
    session = make_session(trace=True, materialize=True)
    app = app_cls(session, **kw)
    run = app.run()
    d = diagnose(session.tracer, include_unnamed=True)
    return app, run, d


class TestBackprop:
    def test_unused_allocation_finding(self):
        _, _, d = run_and_diagnose(Backprop, input_size=4096)
        hits = d.of(AntiPattern.UNUSED_ALLOCATION)
        assert [f.name for f in hits] == ["output_hidden_cuda"]

    def test_roundtrip_of_unmodified_input_finding(self):
        _, _, d = run_and_diagnose(Backprop, input_size=4096)
        hits = d.of(AntiPattern.UNNECESSARY_TRANSFER_OUT)
        assert any(f.name == "input_cuda" for f in hits)

    def test_weights_roundtrip_is_legitimate(self):
        _, _, d = run_and_diagnose(Backprop, input_size=4096)
        assert not any(f.name == "input_hidden_cuda"
                       for f in d.of(AntiPattern.UNNECESSARY_TRANSFER_OUT))

    def test_invalid_size_rejected(self):
        session = make_session(trace=False)
        with pytest.raises(ValueError):
            Backprop(session, input_size=0)


class TestGaussian:
    def test_solves_the_system(self):
        app, run, _ = run_and_diagnose(Gaussian, size=64)
        assert run.stats["residual"] < 1e-3

    def test_m_cuda_overwritten_before_use_finding(self):
        _, _, d = run_and_diagnose(Gaussian, size=64)
        hits = d.of(AntiPattern.TRANSFER_OVERWRITTEN)
        assert any(f.name == "m_cuda" for f in hits)

    def test_eliminating_the_transfer_clears_the_finding(self):
        session = make_session(trace=True, materialize=True)
        app = Gaussian(session, size=64, eliminate_m_transfer=True)
        run = app.run()
        d = diagnose(session.tracer, include_unnamed=True)
        assert not d.of(AntiPattern.TRANSFER_OVERWRITTEN)
        assert run.stats["residual"] < 1e-3  # same numerics

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            Gaussian(make_session(trace=False), size=1)


class TestLud:
    def test_decomposition_is_correct(self):
        app, run, _ = run_and_diagnose(Lud, size=64)
        assert run.stats["decomposition_error"] < 1e-2

    def test_first_row_never_updated_finding(self):
        _, _, d = run_and_diagnose(Lud, size=64)
        hits = [f for f in d.of(AntiPattern.UNNECESSARY_TRANSFER_OUT)
                if f.name == "m_d"]
        assert hits
        (lo, hi), *_ = hits[0].ranges
        assert lo == 0 and hi >= 16  # the untouched first-row prefix

    def test_gpu_access_shrinks_across_iterations(self):
        session = make_session(trace=True, materialize=True)
        app = Lud(session, size=64, diagnose_each_iteration=True)
        run = app.run()
        touched = [dg.result.named("m_d").counts.accessed_words
                   for dg in run.diagnoses]
        assert touched[0] > touched[-1]  # fewer and fewer locations

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Lud(make_session(trace=False), size=20)  # not a multiple of 16


class TestCleanBenchmarks:
    def test_nn_has_no_findings(self):
        _, run, d = run_and_diagnose(NearestNeighbor, records=4096)
        assert d.findings == []
        assert np.isfinite(run.stats["nearest"])

    def test_cfd_has_no_findings(self):
        _, run, d = run_and_diagnose(Cfd, cells=2048)
        assert d.findings == []
        assert np.isfinite(run.stats["density_mean"])


class TestPathfinder:
    def test_matches_reference_dp(self):
        session = make_session(trace=False, materialize=True)
        pf = Pathfinder(session, cols=500, rows=26, pyramid_height=5)
        pf.run()
        assert np.array_equal(pf.result(), pathfinder_reference(pf.host_wall))

    def test_overlapped_matches_reference_dp(self):
        session = make_session(trace=False, materialize=True)
        pf = OverlappedPathfinder(session, cols=500, rows=26, pyramid_height=5)
        pf.run()
        assert np.array_equal(pf.result(), pathfinder_reference(pf.host_wall))

    def test_per_iteration_density_is_one_over_n(self):
        session = make_session(trace=True, materialize=True)
        pf = Pathfinder(session, cols=2048, rows=26, pyramid_height=5,
                        diagnose_each_iteration=True)
        run = pf.run()
        assert pf.iterations == 5
        # Epoch 0 also contains the full upfront copy (Fig 10a: the CPU
        # writes the whole wall); later epochs show the 100/N % pattern.
        assert run.diagnoses[0].result.named("gpuWall").density_pct == 100
        for dg in run.diagnoses[1:]:
            wall = dg.result.named("gpuWall")
            assert wall.density_pct == pytest.approx(20, abs=2)  # 100/N %

    def test_fig10_each_iteration_reads_its_own_fifth(self):
        session = make_session(trace=True, materialize=True)
        pf = Pathfinder(session, cols=2048, rows=26, pyramid_height=5,
                        diagnose_each_iteration=True)
        run = pf.run()
        w = 2048  # words per wall row (int32)
        for it, dg in enumerate(run.diagnoses):
            mask = dg.result.named("gpuWall").maps["gpu_read"].mask
            rows_touched = np.unique(np.flatnonzero(mask) // w)
            expect = np.arange(it * 5, it * 5 + 5)
            assert np.array_equal(rows_touched, expect)

    def test_unread_remainder_flagged_per_iteration(self):
        session = make_session(trace=True, materialize=True)
        pf = Pathfinder(session, cols=2048, rows=26, pyramid_height=5,
                        diagnose_each_iteration=True)
        run = pf.run()
        first = run.diagnoses[0]
        hits = [f for f in first.findings
                if f.pattern is AntiPattern.UNNECESSARY_TRANSFER_IN
                and f.name == "gpuWall"]
        assert hits  # 4/5 of the wall was transferred but not (yet) used

    def test_overlap_wins_on_pascal_loses_on_power9(self):
        def speedup(platform):
            s1 = make_session(platform, trace=False, materialize=False)
            bt = Pathfinder(s1, cols=200_000, rows=200,
                            pyramid_height=20).run().sim_time
            s2 = make_session(platform, trace=False, materialize=False)
            ot = OverlappedPathfinder(s2, cols=200_000, rows=200,
                                      pyramid_height=20).run().sim_time
            return bt / ot

        assert speedup("intel-pascal") > 1.0
        assert speedup("power9-volta") < 1.0

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Pathfinder(make_session(trace=False), cols=10, rows=1)

"""Property-based tests: workload implementations vs reference algorithms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import make_session
from repro.workloads.rodinia import Pathfinder, pathfinder_reference
from repro.workloads.smithwaterman import (
    RotatedSmithWaterman,
    SmithWaterman,
    sw_reference,
)


class TestSmithWatermanProperties:
    @given(n=st.integers(1, 18), m=st.integers(1, 18),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_baseline_matches_reference(self, n, m, seed):
        session = make_session(trace=False, materialize=True)
        sw = SmithWaterman(session, n, m, seed=seed)
        sw.run()
        assert np.array_equal(sw.score_matrix(),
                              sw_reference(sw.host_a, sw.host_b))

    @given(n=st.integers(1, 18), m=st.integers(1, 18),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_rotated_best_score_matches_baseline(self, n, m, seed):
        s1 = make_session(trace=False, materialize=True)
        base = SmithWaterman(s1, n, m, seed=seed)
        rb = base.run()
        s2 = make_session(trace=False, materialize=True)
        rot = RotatedSmithWaterman(s2, n, m, seed=seed)
        ro = rot.run()
        assert ro.stats["score"] == rb.stats["score"]

    @given(n=st.integers(2, 15), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None)
    def test_score_never_negative_and_monotone_under_extension(self, n, seed):
        session = make_session(trace=False, materialize=True)
        sw = SmithWaterman(session, n, n, seed=seed)
        run = sw.run()
        assert run.stats["score"] >= 0
        # Extending both strings can only keep or improve the best local
        # alignment (prefix inputs embed in extended ones).
        s2 = make_session(trace=False, materialize=True)
        big = SmithWaterman(s2, n + 4, n + 4, seed=seed)
        big.host_a[:n] = sw.host_a
        big.host_b[:n] = sw.host_b
        big._setup()
        run_big = big.run()
        assert run_big.stats["score"] >= run.stats["score"]


class TestPathfinderProperties:
    @given(cols=st.integers(4, 64), rows=st.integers(2, 20),
           pyramid=st.integers(1, 6), seed=st.integers(0, 2 ** 16))
    @settings(max_examples=25, deadline=None)
    def test_matches_reference_for_any_geometry(self, cols, rows, pyramid, seed):
        session = make_session(trace=False, materialize=True)
        pf = Pathfinder(session, cols=cols, rows=rows,
                        pyramid_height=pyramid, seed=seed)
        pf.run()
        assert np.array_equal(pf.result(),
                              pathfinder_reference(pf.host_wall))

    @given(cols=st.integers(4, 48), rows=st.integers(2, 12),
           seed=st.integers(0, 2 ** 16))
    @settings(max_examples=15, deadline=None)
    def test_result_bounded_by_row_extremes(self, cols, rows, seed):
        session = make_session(trace=False, materialize=True)
        pf = Pathfinder(session, cols=cols, rows=rows, pyramid_height=3,
                        seed=seed)
        pf.run()
        result = pf.result()
        wall = pf.host_wall.astype(np.int64)
        assert (result >= wall.min(axis=1).sum()).all()
        assert (result <= wall.max(axis=1).sum()).all()

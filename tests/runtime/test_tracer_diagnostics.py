"""Integration tests: tracer + diagnostics against the simulated runtime."""

import io

import numpy as np
import pytest

from repro.cudart import CudaRuntime, cudaMemcpyKind, cudaMemoryAdvise
from repro.memsim import Processor, intel_pascal
from repro.runtime import (
    Tracer,
    XplAllocData,
    expand_object,
    format_csv,
    format_text,
    trace_print,
)

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost


@pytest.fixture
def setup():
    rt = CudaRuntime(intel_pascal())
    tracer = Tracer().attach(rt)
    return rt, tracer


class TestObserverPath:
    def test_cpu_write_recorded(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        result = trace_print(tracer)
        assert result.named("x").counts.cpu_written == 16

    def test_gpu_kernel_access_recorded(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.arange(16, dtype=np.int32))
        rt.launch(lambda ctx, x: x.read(0, 16), 1, 16, v, name="reader")
        r = trace_print(tracer).named("x")
        assert r.counts.read_cg == 16         # GPU read CPU-origin values
        assert r.alternating == 16            # CPU wrote + GPU read

    def test_freed_allocation_still_reported_once(self, setup):
        rt, tracer = setup
        p = rt.malloc_managed(64, label="tmp")
        p.typed(np.int32).write(0, np.zeros(16, np.int32))
        rt.free(p)
        first = trace_print(tracer)
        assert first.named("tmp").freed
        second = trace_print(tracer)
        with pytest.raises(KeyError):
            second.named("tmp")

    def test_kernel_launches_logged(self, setup):
        rt, tracer = setup
        rt.launch(lambda ctx: None, 4, 64, name="k1")
        assert tracer.kernels[0].name == "k1"
        assert tracer.kernels[0].grid == 4

    def test_disabled_tracer_records_nothing(self):
        rt = CudaRuntime(intel_pascal())
        tracer = Tracer(enabled=False)
        tracer.attach(rt)
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        assert len(tracer.smt) == 0


class TestDirectApiPath:
    def test_traceR_returns_address(self, setup):
        rt, tracer = setup
        p = rt.malloc_managed(64, label="x")
        assert tracer.traceR(p.addr) == p.addr

    def test_untracked_address_ignored(self, setup):
        _, tracer = setup
        tracer.traceW(0xdeadbeef)  # must not raise

    def test_traceW_then_traceR_classifies_origin(self, setup):
        rt, tracer = setup
        p = rt.malloc_managed(64, label="x")
        # Writing via the direct API happens on the CPU context here.
        tracer.traceW(p.addr, 4)
        tracer.traceR(p.addr, 4)
        r = trace_print(tracer).named("x")
        # The observer path also recorded the on_alloc; counts combine.
        assert r.counts.read_cc >= 1

    def test_traceRW(self, setup):
        rt, tracer = setup
        p = rt.malloc_managed(64, label="x")
        tracer.traceRW(p.addr, 4)
        r = trace_print(tracer).named("x")
        assert r.counts.cpu_written == 1 and r.counts.read_cc == 1


class TestMemcpyConventions:
    def test_h2d_is_cpu_write_of_destination(self, setup):
        rt, tracer = setup
        d = rt.malloc(64, label="dev")
        rt.memcpy(d, np.zeros(64, np.uint8), 64, H2D)
        r = trace_print(tracer).named("dev")
        assert r.counts.cpu_written == 16
        assert tracer.transfers[0].direction == "H2D"

    def test_d2h_is_cpu_read_of_source(self, setup):
        rt, tracer = setup
        d = rt.malloc(64, label="dev")
        host = np.zeros(64, np.uint8)
        rt.memcpy(d, host, 64, H2D)
        rt.memcpy(host, d, 64, D2H)
        recs = [t.direction for t in tracer.transfers]
        assert recs == ["H2D", "D2H"]
        r = trace_print(tracer).named("dev")
        assert r.counts.read_cc == 16  # CPU read back its own values

    def test_managed_memcpy_has_no_transfer_record(self, setup):
        rt, tracer = setup
        m = rt.malloc_managed(64, label="m")
        rt.memcpy(m, np.zeros(64, np.uint8), 64, H2D)
        assert tracer.transfers == []


class TestAdviceTracking:
    def test_advice_folds_set_unset(self, setup):
        rt, tracer = setup
        m = rt.malloc_managed(4096, label="m")
        A = cudaMemoryAdvise
        rt.mem_advise(m, 4096, A.cudaMemAdviseSetReadMostly)
        assert A.cudaMemAdviseSetReadMostly in tracer.advice_for(m.alloc)
        rt.mem_advise(m, 4096, A.cudaMemAdviseUnsetReadMostly)
        assert tracer.advice_for(m.alloc) == set()


class TestExpansion:
    def test_expand_plain_pointer(self, setup):
        rt, _ = setup
        p = rt.malloc_managed(64, label="z")
        recs = expand_object(p, "z")
        assert len(recs) == 1 and recs[0].name == "z"

    def test_expand_object_with_pointer_members(self, setup):
        rt, _ = setup

        class Pair:
            def __init__(self):
                self.first = rt.malloc_managed(64, label="first")
                self.second = rt.malloc_managed(64, label="second")

        recs = expand_object(Pair(), "a")
        names = [r.name for r in recs]
        assert names == ["(a)->first", "(a)->second"]

    def test_expand_with_self_ptr_and_protocol(self, setup):
        rt, _ = setup

        class Domain:
            def __init__(self):
                self.self_ptr = rt.malloc_managed(4096, label="dom")
                self.m_p = rt.malloc_managed(64, label="m_p")

            def xpl_pointers(self):
                return [("m_p", self.m_p)]

        recs = expand_object(Domain(), "dom")
        assert [r.name for r in recs] == ["dom", "(dom)->m_p"]

    def test_type_repetition_guard(self, setup):
        rt, _ = setup

        class Node:
            def __init__(self, nxt=None):
                self.ptr = rt.malloc_managed(64)
                self.next = nxt

        chain = Node(Node(Node()))
        recs = expand_object(chain, "head")
        # Only the first Node's members expand; recursion stops on the
        # repeated type (paper's linked-list rule).
        assert len(recs) == 1

    def test_view_records_itemsize(self, setup):
        rt, _ = setup
        v = rt.malloc_managed(80, label="v").typed(np.float64)
        rec = expand_object(v, "v")[0]
        assert rec.elem_size == 8


class TestDiagnosticsOutput:
    def test_text_format_matches_fig4_shape(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(400, label="dom").typed(np.int32)
        v.write(0, np.zeros(27, np.int32))
        out = io.StringIO()
        trace_print(tracer, out=out)
        text = out.getvalue()
        assert "*** checking 1 named allocations" in text
        assert "write counts" in text and "write>read counts" in text
        assert "access density (in %):" in text
        assert "elements with alternating accesses" in text

    def test_named_descriptors_select_and_name(self, setup):
        rt, tracer = setup
        a = rt.malloc_managed(64, label="")
        b = rt.malloc_managed(64, label="")
        a.typed(np.int32).write(0, np.zeros(4, np.int32))
        descs = expand_object(a, "mine")
        result = trace_print(tracer, descriptors=descs)
        assert len(result.reports) == 1
        assert result.named("mine").counts.cpu_written == 4

    def test_include_unnamed_adds_rest(self, setup):
        rt, tracer = setup
        a = rt.malloc_managed(64, label="a")
        rt.malloc_managed(64, label="b")
        result = trace_print(tracer, descriptors=expand_object(a, "a"),
                             include_unnamed=True)
        assert {r.name for r in result.reports} == {"a", "b"}

    def test_reset_between_epochs(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        trace_print(tracer)
        result = trace_print(tracer)
        assert result.named("x").counts.cpu_written == 0
        assert result.epoch == 1

    def test_no_reset_accumulates(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(8, np.int32))
        trace_print(tracer, reset=False)
        v.write(8, np.zeros(8, np.int32))
        r = trace_print(tracer).named("x")
        assert r.counts.cpu_written == 16

    def test_maps_snapshot(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(400, label="x").typed(np.int32)
        v.write(0, np.zeros(10, np.int32))
        r = trace_print(tracer, include_maps=True).named("x")
        assert r.maps["cpu_write"].touched == 10

    def test_csv_format(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        v.write(0, np.zeros(16, np.int32))
        csv = format_csv(trace_print(tracer))
        lines = csv.strip().split("\n")
        assert lines[0].startswith("epoch,name,size")
        assert ",x," in lines[1]
        assert lines[1].split(",")[5] == "16"   # cpu_writes column

"""Unit tests for access maps and report formatting."""

import numpy as np
import pytest

from repro.runtime import AccessMap, overlap


def make_map(bits, name="m", cat="cpu_write"):
    return AccessMap(name, cat, np.array(bits, dtype=bool))


class TestAccessMap:
    def test_counts_and_density(self):
        m = make_map([1, 0, 1, 1])
        assert m.touched == 3
        assert m.words == 4
        assert m.density == pytest.approx(0.75)

    def test_as_grid_pads_last_row(self):
        m = make_map([1, 1, 1, 0, 1])
        grid = m.as_grid(2)
        assert grid.shape == (3, 2)
        assert not grid[2, 1]  # padding

    def test_ascii_rendering(self):
        m = make_map([1, 0, 0, 1])
        art = m.to_ascii(2)
        assert art == "#.\n.#"

    def test_custom_glyphs(self):
        m = make_map([1, 0])
        assert m.to_ascii(2, on="X", off="_") == "X_"

    def test_runs(self):
        m = make_map([1, 1, 0, 1, 0, 0, 1, 1, 1])
        assert m.runs() == [(0, 2), (3, 4), (6, 9)]
        assert make_map([0, 0]).runs() == []

    def test_csv(self):
        csv = make_map([1, 0]).to_csv()
        assert csv.splitlines() == ["word,accessed", "0,1", "1,0"]

    def test_csv_vectorized_matches_reference_on_large_map(self):
        rng = np.random.default_rng(42)
        mask = rng.integers(0, 2, size=200_003).astype(bool)
        amap = make_map(mask.tolist())
        reference = "\n".join(
            ["word,accessed"] + [f"{i},{int(v)}" for i, v in enumerate(mask)])
        assert amap.to_csv() == reference

    def test_csv_empty_map(self):
        assert make_map([]).to_csv() == "word,accessed"

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            make_map([1]).as_grid(0)


class TestOverlap:
    def test_intersection(self):
        a = make_map([1, 1, 0, 0], cat="cpu_write")
        b = make_map([0, 1, 1, 0], cat="gpu_read")
        both = overlap(a, b)
        assert list(both.mask) == [False, True, False, False]
        assert both.category == "cpu_write&gpu_read"

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            overlap(make_map([1]), make_map([1, 0]))

"""Unit tests for shadow flags and shadow blocks."""

import numpy as np
import pytest

from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.runtime import ShadowBlock
from repro.runtime import flags as F  # type: ignore[attr-defined]
from repro.runtime.flags import describe

CPU, GPU = Processor.CPU, Processor.GPU


@pytest.fixture
def block():
    space = AddressSpace()
    alloc = space.allocate(400, MemoryKind.MANAGED, label="buf")  # 100 words
    return ShadowBlock(alloc)


class TestGeometry:
    def test_one_shadow_byte_per_word(self, block):
        assert block.nwords == 100
        assert block.shadow.dtype == np.uint8

    def test_word_range_partial_words(self, block):
        assert block.word_range(0, 1) == (0, 1)
        assert block.word_range(3, 2) == (0, 2)   # straddles words 0 and 1
        assert block.word_range(4, 4) == (1, 2)
        assert block.word_range(4, 8) == (1, 3)

    def test_word_range_rejects_overrun(self, block):
        with pytest.raises(ValueError):
            block.word_range(396, 8)

    def test_odd_size_allocation_rounds_up(self):
        space = AddressSpace()
        alloc = space.allocate(5, MemoryKind.HOST)
        assert ShadowBlock(alloc).nwords == 2

    def test_wide_element_word_indices(self, block):
        idx = block.word_indices(0, 8, np.array([0, 2]))  # float64s 0 and 2
        assert list(idx) == [0, 1, 4, 5]

    def test_narrow_element_word_indices_deduplicate(self, block):
        idx = block.word_indices(0, 1, np.array([0, 1, 2, 3, 4]))  # bytes
        assert list(idx) == [0, 1]


class TestWriteRules:
    def test_cpu_write_sets_bit_and_origin(self, block):
        block.record_write(CPU, 0, 3)
        assert block.counts().cpu_written == 3
        assert not (block.shadow[:3] & F.LAST_WRITE_GPU).any()

    def test_gpu_write_sets_last_writer(self, block):
        block.record_write(GPU, 0, 2)
        assert (block.shadow[:2] & F.LAST_WRITE_GPU).all()

    def test_last_writer_flips(self, block):
        block.record_write(GPU, 0, 1)
        block.record_write(CPU, 0, 1)
        assert not (block.shadow[0] & F.LAST_WRITE_GPU)
        # Both write bits remain set for the epoch.
        c = block.counts()
        assert c.cpu_written == 1 and c.gpu_written == 1

    def test_multiple_writes_count_once(self, block):
        # Paper: "multiple writes to the same address by the same device
        # are counted as one."
        for _ in range(5):
            block.record_write(CPU, 0, 4)
        assert block.counts().cpu_written == 4

    def test_indexed_write(self, block):
        block.record_write(GPU, 0, 0, idx=np.array([1, 5, 9]))
        assert block.counts().gpu_written == 3


class TestReadRules:
    def test_unwritten_words_read_as_cpu_origin(self, block):
        block.record_read(GPU, 0, 4)
        c = block.counts()
        assert c.read_cg == 4 and c.read_gg == 0

    def test_read_classified_by_origin(self, block):
        block.record_write(GPU, 0, 2)   # words 0-1 now GPU origin
        block.record_read(CPU, 0, 4)    # CPU reads all four
        c = block.counts()
        assert c.read_gc == 2           # G>C for the GPU-written words
        assert c.read_cc == 2           # C>C for the untouched ones

    def test_each_category_counts_address_once(self, block):
        block.record_read(CPU, 0, 4)
        block.record_read(CPU, 0, 4)
        assert block.counts().read_cc == 4

    def test_all_four_categories_together(self, block):
        block.record_write(CPU, 0, 1)
        block.record_write(GPU, 1, 2)
        block.record_read(CPU, 0, 2)   # C>C on word0, G>C on word1
        block.record_read(GPU, 0, 2)   # C>G on word0, G>G on word1
        c = block.counts()
        assert (c.read_cc, c.read_gc, c.read_cg, c.read_gg) == (1, 1, 1, 1)

    def test_indexed_read(self, block):
        block.record_write(GPU, 0, 0, idx=np.array([3]))
        block.record_read(CPU, 0, 0, idx=np.array([2, 3]))
        c = block.counts()
        assert c.read_cc == 1 and c.read_gc == 1


class TestRmwRules:
    def test_rmw_reads_old_origin_then_takes_ownership(self, block):
        block.record_write(CPU, 0, 1)
        block.record_rmw(GPU, 0, 1)    # GPU increments a CPU value
        c = block.counts()
        assert c.read_cg == 1          # the read saw CPU origin
        assert c.gpu_written == 1
        assert block.shadow[0] & F.LAST_WRITE_GPU  # ownership moved


class TestEpochReset:
    def test_reset_clears_access_bits(self, block):
        block.record_write(GPU, 0, 4)
        block.record_read(CPU, 0, 4)
        block.reset()
        c = block.counts()
        assert c.accessed_words == 0
        assert c.cpu_written == c.gpu_written == 0

    def test_origin_survives_reset(self, block):
        # "The preceding write ... regardless if it occurred in the same
        # iteration or earlier."
        block.record_write(GPU, 0, 2)
        block.reset()
        block.record_read(CPU, 0, 2)
        assert block.counts().read_gc == 2


class TestAnalysisMasks:
    def test_alternating_requires_both_processors_and_a_write(self, block):
        block.record_write(CPU, 0, 2)   # words 0-1: CPU writes
        block.record_read(GPU, 1, 3)    # words 1-2: GPU reads
        # word 1 is CPU-written + GPU-read => alternating; word 2 is
        # read-only => not; word 0 is CPU-only => not.
        assert block.alternating_words() == 1

    def test_read_only_sharing_is_not_alternating(self, block):
        block.record_read(CPU, 0, 4)
        block.record_read(GPU, 0, 4)
        assert block.alternating_words() == 0

    def test_density(self, block):
        block.record_write(CPU, 0, 25)
        assert block.counts().density == pytest.approx(0.25)

    def test_category_masks_shapes(self, block):
        block.record_write(GPU, 0, 5)
        masks = block.category_masks()
        assert masks["gpu_write"][:5].all()
        assert not masks["cpu_write"].any()
        assert set(masks) >= {"cpu_write", "gpu_write", "cpu_read",
                              "gpu_read", "accessed"}


class TestDescribe:
    def test_describe_names_bits(self):
        assert describe(0) == "untouched"
        assert "Cw" in describe(int(F.CPU_WROTE))
        assert "C>G" in describe(int(F.READ_CG))

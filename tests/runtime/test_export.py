"""Tests for the CSV/SVG export module."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.cudart import CudaRuntime, cudaMemcpyKind
from repro.memsim import intel_pascal
from repro.runtime import (
    AccessMap,
    Tracer,
    access_maps_to_svg,
    epochs_to_csv,
    kernels_to_csv,
    trace_print,
    transfers_to_csv,
)


@pytest.fixture
def setup():
    rt = CudaRuntime(intel_pascal())
    tracer = Tracer().attach(rt)
    return rt, tracer


class TestCsvExports:
    def test_epochs_series(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(64, label="x").typed(np.int32)
        results = []
        for i in range(3):
            v.write(0, np.zeros(4 * (i + 1), np.int32))
            results.append(trace_print(tracer))
        csv = epochs_to_csv(results)
        lines = csv.strip().splitlines()
        assert lines[0].startswith("epoch,name")
        assert len(lines) == 4  # header + one row per epoch
        assert lines[1].split(",")[0] == "0"
        assert lines[3].split(",")[5] == "12"  # cpu_writes in epoch 2

    def test_transfers_csv(self, setup):
        rt, tracer = setup
        d = rt.malloc(64, label="dev")
        rt.memcpy(d, np.zeros(64, np.uint8), 64,
                  cudaMemcpyKind.cudaMemcpyHostToDevice)
        csv = transfers_to_csv(tracer)
        assert "dev,0,64,H2D" in csv

    def test_kernels_csv(self, setup):
        rt, tracer = setup
        rt.launch(lambda ctx: None, 4, 64, name="k1")
        csv = kernels_to_csv(tracer)
        assert "0,k1,4,64" in csv


class TestSvgExport:
    def make_maps(self):
        return [
            AccessMap("buf", "cpu_write",
                      np.array([1, 1, 0, 0, 1, 0, 1, 1], dtype=bool)),
            AccessMap("buf", "gpu_read",
                      np.array([0, 1, 1, 1, 0, 0, 0, 0], dtype=bool)),
        ]

    def test_valid_xml_with_panels(self):
        svg = access_maps_to_svg(self.make_maps(), width=4)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")
        texts = [e.text for e in root.iter() if e.tag.endswith("text")]
        assert any("cpu_write" in t for t in texts)
        assert any("gpu_read" in t for t in texts)

    def test_runs_are_coalesced_into_rects(self):
        svg = access_maps_to_svg(
            [AccessMap("m", "accessed",
                       np.array([1, 1, 1, 1], dtype=bool))], width=4)
        root = ET.fromstring(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        # background + one coalesced run
        assert len(rects) == 2

    def test_touched_cells_colored_by_category(self):
        svg = access_maps_to_svg(self.make_maps(), width=4)
        assert "#1f77b4" in svg  # cpu_write palette entry
        assert "#ff7f0e" in svg  # gpu_read palette entry

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            access_maps_to_svg(self.make_maps(), width=0)

    def test_end_to_end_from_diagnosis(self, setup):
        rt, tracer = setup
        v = rt.malloc_managed(4096, label="x").typed(np.int32)
        v.write(0, np.zeros(100, np.int32))
        result = trace_print(tracer, include_maps=True)
        maps = [result.named("x").maps["cpu_write"]]
        svg = access_maps_to_svg(maps, width=64)
        ET.fromstring(svg)  # must be well-formed

"""Unit tests for the shadow memory table."""

import pytest

from repro.memsim import AddressSpace, MemoryKind
from repro.runtime import LINEAR_SEARCH_LIMIT, ShadowMemoryTable


@pytest.fixture
def space():
    return AddressSpace()


def add(table, space, size=64, label=""):
    alloc = space.allocate(size, MemoryKind.MANAGED, label=label)
    table.insert(alloc)
    return alloc


class TestInsertLookup:
    def test_lookup_hits_interior(self, space):
        t = ShadowMemoryTable()
        a = add(t, space, 100)
        assert t.lookup(a.base + 50).alloc is a
        assert t.lookup(a.base + 100) is None

    def test_lookup_untracked_is_none(self, space):
        t = ShadowMemoryTable()
        add(t, space)
        assert t.lookup(0x10) is None

    def test_overlapping_insert_rejected(self, space):
        t = ShadowMemoryTable()
        a = add(t, space)
        with pytest.raises(ValueError):
            t.insert(a)

    def test_linear_regime_below_limit(self, space):
        t = ShadowMemoryTable()
        allocs = [add(t, space) for _ in range(LINEAR_SEARCH_LIMIT - 1)]
        t.lookup(allocs[-1].base)
        assert t.linear_lookups == 1

    def test_binary_regime_at_limit(self, space):
        t = ShadowMemoryTable()
        allocs = [add(t, space) for _ in range(LINEAR_SEARCH_LIMIT)]
        before = t.linear_lookups
        for a in allocs:
            assert t.lookup(a.base + 1).alloc is a
        assert t.linear_lookups == before  # all binary now

    def test_both_regimes_agree(self, space):
        linear, binary = ShadowMemoryTable(), ShadowMemoryTable()
        shared = AddressSpace()
        allocs = [shared.allocate(64, MemoryKind.MANAGED) for _ in range(100)]
        for a in allocs[:50]:
            linear.insert(a)
        for a in allocs:
            binary.insert(a)
        for a in allocs[:50]:
            assert linear.lookup(a.base + 10).alloc is a
            assert binary.lookup(a.base + 10).alloc is a


class TestFreeSemantics:
    def test_remove_parks_in_graveyard(self, space):
        t = ShadowMemoryTable()
        a = add(t, space)
        block = t.remove(a.base, epoch=3)
        assert block.freed_epoch == 3
        assert t.lookup(a.base) is None
        assert block in t.graveyard

    def test_graveyard_included_in_reports_until_flush(self, space):
        t = ShadowMemoryTable()
        a = add(t, space)
        t.remove(a.base, epoch=0)
        assert len(t.live_and_dead()) == 1
        t.flush_graveyard()
        assert len(t.live_and_dead()) == 0

    def test_remove_unknown_returns_none(self, space):
        t = ShadowMemoryTable()
        assert t.remove(0xdead, epoch=0) is None

    def test_reset_all_only_touches_live(self, space):
        from repro.memsim import Processor
        t = ShadowMemoryTable()
        a = add(t, space)
        b = add(t, space)
        blk_a = t.lookup(a.base)
        blk_a.record_write(Processor.CPU, 0, 4)
        t.remove(a.base, epoch=0)
        blk_b = t.lookup(b.base)
        blk_b.record_write(Processor.CPU, 0, 4)
        t.reset_all()
        # Dead block keeps its epoch data (for the pending diagnostic),
        # live block is cleared.
        assert blk_a.counts().cpu_written == 4
        assert blk_b.counts().cpu_written == 0

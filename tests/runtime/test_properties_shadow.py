"""Property-based tests (hypothesis) for shadow memory invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import AddressSpace, MemoryKind, Processor
from repro.runtime import ShadowBlock
from repro.runtime import flags as F

CPU, GPU = Processor.CPU, Processor.GPU

NWORDS = 32


def make_block() -> ShadowBlock:
    space = AddressSpace()
    return ShadowBlock(space.allocate(NWORDS * 4, MemoryKind.MANAGED))


#: One traced operation: (kind, processor, lo, span).
ops = st.tuples(
    st.sampled_from(["r", "w", "rw"]),
    st.sampled_from([CPU, GPU]),
    st.integers(0, NWORDS - 1),
    st.integers(1, 8),
)


def apply_ops(block: ShadowBlock, sequence) -> None:
    for kind, proc, lo, span in sequence:
        hi = min(NWORDS, lo + span)
        if hi <= lo:
            continue
        if kind == "r":
            block.record_read(proc, lo, hi)
        elif kind == "w":
            block.record_write(proc, lo, hi)
        else:
            block.record_rmw(proc, lo, hi)


class TestShadowInvariants:
    @given(st.lists(ops, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_counts_bounded_by_words(self, sequence):
        block = make_block()
        apply_ops(block, sequence)
        c = block.counts()
        for n in (c.cpu_written, c.gpu_written, c.read_cc, c.read_cg,
                  c.read_gc, c.read_gg, c.accessed_words):
            assert 0 <= n <= NWORDS
        assert 0.0 <= c.density <= 1.0

    @given(st.lists(ops, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_alternating_needs_both_sides_and_a_write(self, sequence):
        block = make_block()
        apply_ops(block, sequence)
        alt = block.alternating_words()
        both = (block.cpu_accessed() & block.gpu_accessed()).sum()
        written = block.written().sum()
        assert alt <= both
        assert alt <= written

    @given(st.lists(ops, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_accessed_is_union_of_categories(self, sequence):
        block = make_block()
        apply_ops(block, sequence)
        masks = block.category_masks()
        union = (masks["cpu_write"] | masks["gpu_write"]
                 | masks["cpu_read"] | masks["gpu_read"])
        assert (masks["accessed"] == union).all()

    @given(st.lists(ops, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_reset_clears_epoch_but_preserves_origin(self, sequence):
        block = make_block()
        apply_ops(block, sequence)
        origin_before = (block.shadow & F.LAST_WRITE_GPU).copy()
        block.reset()
        assert block.counts().accessed_words == 0
        assert (block.shadow & F.LAST_WRITE_GPU == origin_before).all()

    @given(st.lists(ops, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_last_writer_matches_final_write(self, sequence):
        block = make_block()
        apply_ops(block, sequence)
        last_writer = {}
        for kind, proc, lo, span in sequence:
            if kind in ("w", "rw"):
                for w in range(lo, min(NWORDS, lo + span)):
                    last_writer[w] = proc
        for w, proc in last_writer.items():
            bit = bool(block.shadow[w] & F.LAST_WRITE_GPU)
            assert bit == (proc is GPU)

    @given(st.lists(ops, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_matches_na_ive_reference_model(self, sequence):
        """Cross-check counts against a dict-based reference tracer."""
        block = make_block()
        apply_ops(block, sequence)

        origin = {}        # word -> last writer
        wrote = {CPU: set(), GPU: set()}
        reads = {("C", "C"): set(), ("C", "G"): set(),
                 ("G", "C"): set(), ("G", "G"): set()}
        for kind, proc, lo, span in sequence:
            for w in range(lo, min(NWORDS, lo + span)):
                if kind in ("r", "rw"):
                    src = "G" if origin.get(w) is GPU else "C"
                    reads[(src, proc.short)].add(w)
                if kind in ("w", "rw"):
                    wrote[proc].add(w)
                    origin[w] = proc
        c = block.counts()
        assert c.cpu_written == len(wrote[CPU])
        assert c.gpu_written == len(wrote[GPU])
        assert c.read_cc == len(reads[("C", "C")])
        assert c.read_cg == len(reads[("C", "G")])
        assert c.read_gc == len(reads[("G", "C")])
        assert c.read_gg == len(reads[("G", "G")])

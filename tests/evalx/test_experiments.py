"""Tests for the evaluation harness (fast experiments + CLI plumbing)."""

import pytest

from repro.evalx import EXPERIMENTS, fig4, fig5, fig7, fig8, fig10, tab2
from repro.evalx.figures import sw_scaled
from repro.evalx.runner import main


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "tab2", "tab3", "spatter",
        }

    def test_experiments_carry_titles(self):
        for fn in EXPERIMENTS.values():
            assert fn.title


class TestFastExperiments:
    def test_fig4_rows_match_paper(self):
        result = fig4()
        dom = next(r for r in result.rows if r["name"] == "dom")
        assert (dom["C"], dom["G"]) == (27, 0)
        assert dom["alternating"] == 18
        assert "write counts" in result.text

    def test_fig5_has_all_six_panels_plus_overlap(self):
        result = fig5()
        panels = {r["panel"] for r in result.rows}
        assert panels == {"a", "b", "c", "d", "e", "f", "overlap"}

    def test_fig7_boundary_only(self):
        result = fig7()
        b = next(r for r in result.rows if r["panel"] == "b")
        assert b["touched"] == 31

    def test_fig8_diagonals(self):
        result = fig8()
        a = next(r for r in result.rows if r["panel"] == "a")
        assert a["diagonals"] == [8]

    def test_fig10_fifths(self):
        result = fig10()
        d = next(r for r in result.rows if r["panel"] == "d")
        assert d["pct"] == pytest.approx(20, abs=2)

    def test_tab2_all_benchmarks_match(self):
        result = tab2()
        assert all(r["matches_paper"] for r in result.rows)

    def test_sw_scaling_keeps_the_crossover(self):
        sizes, mem = sw_scaled(10)
        h_p_bytes = 2 * 4 * (sizes[-1] + 1) ** 2
        assert h_p_bytes > mem            # 46000-equivalent exceeds
        h_p_bytes_fit = 2 * 4 * (sizes[-2] + 1) ** 2
        assert h_p_bytes_fit < mem        # 45000-equivalent fits


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "tab3" in out

    def test_unknown_id_rejected(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_runs_named_experiment(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "boundary" in out

"""Tests for the CLI's CSV export path."""

import csv
import io

from repro.evalx.base import ExperimentResult
from repro.evalx.runner import main, rows_to_csv


class TestRowsToCsv:
    def test_simple_rows(self):
        r = ExperimentResult("x", "t", rows=[
            {"a": 1, "b": 2.5}, {"a": 3, "b": 0.125},
        ])
        parsed = list(csv.DictReader(io.StringIO(rows_to_csv(r))))
        assert parsed[0]["a"] == "1"
        assert parsed[1]["b"] == "0.125"

    def test_heterogeneous_keys_merged(self):
        r = ExperimentResult("x", "t", rows=[{"a": 1}, {"a": 2, "b": 3}])
        parsed = list(csv.DictReader(io.StringIO(rows_to_csv(r))))
        assert parsed[0]["b"] == ""
        assert parsed[1]["b"] == "3"

    def test_sequences_joined(self):
        r = ExperimentResult("x", "t", rows=[{"diags": [7, 6]}])
        assert "6;7" in rows_to_csv(r)

    def test_empty_rows(self):
        assert rows_to_csv(ExperimentResult("x", "t")) == ""


class TestCliCsvFlag:
    def test_writes_per_experiment_files(self, tmp_path, capsys):
        assert main(["fig7", "--csv", str(tmp_path)]) == 0
        content = (tmp_path / "fig7.csv").read_text()
        parsed = list(csv.DictReader(io.StringIO(content)))
        panels = {row["panel"] for row in parsed}
        assert panels == {"a", "b"}


class TestTelemetryDir:
    def test_writes_per_experiment_artifacts(self, tmp_path, capsys):
        from repro.telemetry import context as telemetry_context

        assert main(["fig7", "--telemetry-dir", str(tmp_path)]) == 0
        exp_dir = tmp_path / "fig7"
        for artifact in ("timeline.json", "events.jsonl", "metrics.prom"):
            assert (exp_dir / artifact).stat().st_size > 0
        # The context must not leak into later runs.
        assert telemetry_context.current_recorder() is None

"""Terminal rendering of causal reports and diffs.

Plain fixed-width tables: deterministic, pipe-friendly, and readable in
CI logs.  Colour is limited to the diff flags and honours ``NO_COLOR``.
"""

from __future__ import annotations

import os
import sys
from typing import Any, Mapping

__all__ = ["render_report", "render_diff", "render_chain", "format_cost",
           "format_bytes"]

_GREEN = "\x1b[32m"
_RED = "\x1b[31m"
_DIM = "\x1b[2m"
_RESET = "\x1b[0m"


def _color_enabled(stream=None) -> bool:
    if os.environ.get("NO_COLOR"):
        return False
    stream = stream if stream is not None else sys.stdout
    return bool(getattr(stream, "isatty", lambda: False)())


def format_cost(seconds: float) -> str:
    """A simulated-cost figure with an adaptive unit."""
    if seconds == 0:
        return "0"
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6)):
        if abs(seconds) >= scale:
            return f"{seconds / scale:.3f}{unit}"
    return f"{seconds / 1e-9:.0f}ns"


def format_bytes(n: float) -> str:
    """A byte count with an adaptive binary unit."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.1f}{unit}" if unit != "B" else f"{int(n)}B"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover - loop always returns


def _table(rows: list[list[str]], header: list[str]) -> list[str]:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    fmt = "  ".join(f"{{:<{w}}}" for w in widths)
    lines = [fmt.format(*header), fmt.format(*("-" * w for w in widths))]
    lines += [fmt.format(*row) for row in rows]
    return lines


def _blame_section(title: str, rows: list[Mapping[str, Any]], key: str,
                   limit: int) -> list[str]:
    if not rows:
        return []
    body = [[str(r[key]), str(r["events"]), str(r["pages"]),
             format_bytes(r["bytes"]), format_bytes(r.get("moved", 0)),
             format_cost(r["cost"])]
            for r in rows[:limit]]
    lines = [f"{title} (top {min(limit, len(rows))} of {len(rows)} by cost)"]
    lines += _table(body, [key, "events", "pages", "bytes", "moved", "cost"])
    lines.append("")
    return lines


def render_chain(nodes: list[Mapping[str, Any]]) -> list[str]:
    """Fixed-width table lines for one cause chain (root first).

    ``nodes`` are chain-node dicts as produced by
    :meth:`~repro.causes.graph.CausalGraph.chain` /
    :meth:`~repro.causes.graph.CausalGraph.critical_path`.  Shared by the
    ``repro-why`` report and the interactive debugger's ``explain`` so
    both produce byte-identical chain formatting.
    """
    body = [[str(n["id"]), n["kind"], n["category"],
             str(n["pages"]), format_cost(n["cost"]),
             n["alloc"] or "-", n["site"] or n["kernel"] or "-"]
            for n in nodes]
    return _table(body, ["id", "kind", "category", "pages", "cost",
                         "alloc", "site/kernel"])


def render_report(report: Mapping[str, Any], *, limit: int = 10) -> str:
    """Human-oriented text rendering of a causal report."""
    t = report.get("totals", {})
    lines = [
        "causal blame report"
        + (f" -- {report['workload']}" if report.get("workload") else "")
        + (f" on {report['platform']}" if report.get("platform") else ""),
        f"  events={t.get('events', 0)} pages={t.get('pages', 0)} "
        f"bytes={format_bytes(t.get('bytes', 0))} "
        f"moved={format_bytes(t.get('moved', 0))} "
        f"cost={format_cost(t.get('cost', 0.0))}",
        "",
    ]
    lines += _blame_section("blame by source site", report.get("by_site", []),
                            "site", limit)
    lines += _blame_section("blame by allocation", report.get("by_alloc", []),
                            "alloc", limit)
    lines += _blame_section("blame by category", report.get("by_category", []),
                            "category", limit)
    lines += _blame_section("blame by kernel", report.get("by_kernel", []),
                            "kernel", limit)
    lines += _blame_section("blame by phase", report.get("by_phase", []),
                            "phase", limit)
    cp = report.get("critical_path", {})
    if cp.get("events"):
        lines.append(f"critical path: {format_cost(cp.get('cost', 0.0))} over "
                     f"{cp.get('length', 0)} causally linked events"
                     + (f" (showing last {len(cp['events'])})"
                        if cp.get("truncated") else ""))
        lines += render_chain(cp["events"])
    return "\n".join(lines).rstrip() + "\n"


def _paint(flag: str, text: str, color: bool) -> str:
    if not color:
        return text
    if flag == "improved":
        return f"{_GREEN}{text}{_RESET}"
    if flag == "regressed":
        return f"{_RED}{text}{_RESET}"
    return f"{_DIM}{text}{_RESET}"


def _fmt_delta(metric: str, d: Mapping[str, Any], color: bool) -> str:
    fmt = format_cost if metric == "cost" else (
        format_bytes if metric in ("bytes", "moved") else lambda v: str(int(v)))
    sign = "+" if d["delta"] > 0 else ""
    pct = f" ({sign}{d['pct']}%)" if d.get("pct") is not None else ""
    text = f"{fmt(d['a'])} -> {fmt(d['b'])} [{sign}{fmt(d['delta'])}{pct}]"
    return _paint(d["flag"], text, color)


def render_diff(diff: Mapping[str, Any], *, limit: int = 10,
                stream=None) -> str:
    """Human-oriented text rendering of a differential report."""
    color = _color_enabled(stream)
    runs = diff.get("runs", {})
    a, b = runs.get("a", {}), runs.get("b", {})
    lines = [
        f"causal diff: A={a.get('label', 'A')}"
        + (f" ({a.get('workload')})" if a.get("workload") else "")
        + f"  vs  B={b.get('label', 'B')}"
        + (f" ({b.get('workload')})" if b.get("workload") else ""),
        f"  threshold: {diff.get('threshold', 0) * 100:.1f}% relative change",
        "",
        "totals (A -> B):",
    ]
    for metric in ("events", "pages", "bytes", "moved", "cost"):
        d = diff["totals"][metric]
        lines.append(f"  {metric:<7} " + _fmt_delta(metric, d, color))
    lines.append("")
    for title, key in (("by allocation", "by_alloc"), ("by site", "by_site"),
                       ("by category", "by_category")):
        rows = diff.get(key, [])
        if not rows:
            continue
        shown = rows[:limit]
        lines.append(f"{title} (top {len(shown)} of {len(rows)} by |cost delta|)")
        for entry in shown:
            name = entry["alloc" if key == "by_alloc" else
                         "site" if key == "by_site" else "category"]
            presence = ("" if entry["in_a"] and entry["in_b"]
                        else " [only in A]" if entry["in_a"] else " [only in B]")
            lines.append(f"  {name}{presence}")
            if key == "by_alloc" and (entry.get("alloc_site_a")
                                      or entry.get("alloc_site_b")):
                site_a = entry.get("alloc_site_a") or "-"
                site_b = entry.get("alloc_site_b") or "-"
                site = site_a if site_a == site_b else f"{site_a} -> {site_b}"
                lines.append(f"    allocated at {site}")
            for metric in ("cost", "moved", "bytes", "pages", "events"):
                d = entry[metric]
                if d["flag"] == "unchanged" and d["delta"] == 0:
                    continue
                lines.append(f"    {metric:<7} " + _fmt_delta(metric, d, color))
        lines.append("")
    cp = diff.get("critical_path", {})
    if cp:
        lines.append("critical path cost: "
                     + _fmt_delta("cost", cp["cost"], color))
    s = diff.get("summary", {})
    lines.append(f"verdict: {s.get('verdict', '?')} "
                 f"({s.get('improved_keys', 0)} keys improved, "
                 f"{s.get('regressed_keys', 0)} regressed)")
    return "\n".join(lines).rstrip() + "\n"

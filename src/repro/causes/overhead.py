"""What does causal provenance cost on top of plain tracing?

Three configurations per workload, mirroring
:mod:`repro.telemetry.overhead`:

* ``traced``   -- tracer + full :class:`TelemetryRecorder`: the baseline
  every other observability layer is priced against.
* ``causes``   -- the same recorder with ``track_causes`` on and source-
  site stack walking enabled: the ``repro-why run`` configuration.  The
  acceptance bar is < 2x over ``traced``.
* ``causes_no_sites`` -- provenance without the per-API stack walk (the
  ``--no-sites`` capture): cause links and parent edges only.

Usage::

    python -m repro.causes.overhead --repeats 3
"""

from __future__ import annotations

import argparse
import io
import sys

from ..telemetry.events_jsonl import StringJsonl
from ..telemetry.overhead import OVERHEAD_WORKLOADS, _timed
from ..telemetry.recorder import TelemetryRecorder
from ..workloads.base import make_session

__all__ = ["measure_causes_overhead", "format_rows", "main"]


def measure_causes_overhead(
    workloads: tuple[str, ...] = ("sw",),
    *,
    platform: str = "intel-pascal",
    repeats: int = 3,
) -> list[dict]:
    """Time each workload traced vs causally tracked.

    Returns one row per workload with absolute times and the ratios
    ``causes_x`` / ``causes_no_sites_x`` against the traced run.
    """
    rows: list[dict] = []
    for name in workloads:
        runner = OVERHEAD_WORKLOADS[name]

        def run_config(track_causes: bool, sites: bool) -> None:
            session = make_session(platform, trace=True, materialize=False)
            recorder = TelemetryRecorder(jsonl=StringJsonl())
            recorder.attach(session.runtime, session.tracer,
                            track_causes=track_causes)
            session.platform.um.blame_sites = sites
            try:
                runner(session)
            finally:
                recorder.detach()

        traced_s = _timed(lambda: run_config(False, False), repeats)
        causes_s = _timed(lambda: run_config(True, True), repeats)
        no_sites_s = _timed(lambda: run_config(True, False), repeats)
        rows.append({
            "workload": name,
            "traced_s": traced_s,
            "causes_s": causes_s,
            "causes_no_sites_s": no_sites_s,
            "causes_x": causes_s / traced_s if traced_s else float("inf"),
            "causes_no_sites_x": (no_sites_s / traced_s if traced_s
                                  else float("inf")),
        })
    return rows


def format_rows(rows: list[dict]) -> str:
    """Render the overhead table as text."""
    out = io.StringIO()
    out.write(f"{'workload':14s}{'traced':>9s}{'causes':>9s}{'no-sites':>10s}"
              f"{'causes':>9s}{'no-sites':>10s}\n")
    for r in rows:
        out.write(
            f"{r['workload']:14s}"
            f"{r['traced_s']:8.3f}s{r['causes_s']:8.3f}s"
            f"{r['causes_no_sites_s']:9.3f}s"
            f"{r['causes_x']:8.2f}x{r['causes_no_sites_x']:9.2f}x\n")
    if rows:
        mean = sum(r["causes_x"] for r in rows) / len(rows)
        out.write(f"{'average causal overhead vs traced':40s}{mean:8.2f}x\n")
    return out.getvalue()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (``python -m repro.causes.overhead``)."""
    parser = argparse.ArgumentParser(
        prog="repro-why-overhead",
        description="Measure causal-provenance overhead vs plain tracing.")
    parser.add_argument("--workloads", nargs="*", default=["sw"],
                        choices=sorted(OVERHEAD_WORKLOADS),
                        help="workloads to time")
    parser.add_argument("--platform", default="intel-pascal",
                        help="platform preset (default: intel-pascal)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per configuration")
    args = parser.parse_args(argv)
    rows = measure_causes_overhead(tuple(args.workloads),
                                   platform=args.platform,
                                   repeats=args.repeats)
    sys.stdout.write(format_rows(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``python -m repro.causes`` == ``repro-why``."""

from .cli import main

raise SystemExit(main())

"""The causal graph: blame attribution and critical path over driver events.

A :class:`CausalGraph` is built either from a live
:class:`~repro.memsim.EventLog` or from a parsed ``events.jsonl`` stream
(schema v2+).  It answers the "why" questions XPlacer's diagnostics stop
short of:

* **blame rollups** -- simulated cost / bytes / pages attributed to the
  source site, allocation, kernel and anti-pattern *category* that caused
  each event;
* **critical path** -- the longest-cost chain of causally linked events
  (CPU write -> invalidation -> GPU fault -> migration -> ...), the
  driver-side story of where the run's memory time went;
* a deterministic :meth:`report` dict rendered by
  :mod:`repro.causes.render` and compared by :mod:`repro.causes.diff`.

Category classification mirrors the paper's Section V anti-patterns:
alternating accesses surface as ``ping_pong`` (a fault whose parent is a
migration or invalidation triggered from the other processor), capacity
problems as ``capacity_pressure`` / ``oversubscription_refault``, wasted
explicit copies as ``explicit_transfer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from ..memsim import EventLog

__all__ = ["CausalGraph", "CEvent", "REPORT_VERSION"]

#: Version stamp of :meth:`CausalGraph.report` dicts (bumped with shape).
REPORT_VERSION = 1

_ROUND = 9  # cost rounding for stable, readable JSON

#: Event kinds whose bytes physically cross the link (or leave the node):
#: the "transfer bytes" an advise experiment is trying to shrink.  Remote
#: accesses are *not* moves -- their payload stays put and is charged to
#: the plain ``bytes`` column only.
_MOVE_KINDS = frozenset({"migration", "transfer", "duplication", "eviction"})


@dataclass(frozen=True)
class CEvent:
    """One normalized driver event inside the graph."""

    id: int
    kind: str
    time: float
    proc: str
    pages: int
    nbytes: int
    cost: float
    detail: str
    site: str = ""
    kernel: str = ""
    api: str = ""
    alloc: str = ""
    parent: int = -1


def _totals() -> dict[str, float]:
    return {"events": 0, "pages": 0, "bytes": 0, "moved": 0, "cost": 0.0}


def _bump(bucket: dict[str, float], ev: CEvent) -> None:
    bucket["events"] += 1
    bucket["pages"] += ev.pages
    bucket["bytes"] += ev.nbytes
    if ev.kind in _MOVE_KINDS:
        bucket["moved"] += ev.nbytes
    bucket["cost"] += ev.cost


def _rows(table: Mapping[str, dict[str, float]], key_name: str,
          extra: Mapping[str, Mapping[str, Any]] | None = None) -> list[dict]:
    """Deterministic list form: by cost descending, then key ascending."""
    rows = []
    for key in sorted(table, key=lambda k: (-table[k]["cost"], k)):
        t = table[key]
        row = {key_name: key, "events": int(t["events"]),
               "pages": int(t["pages"]), "bytes": int(t["bytes"]),
               "moved": int(t["moved"]), "cost": round(t["cost"], _ROUND)}
        if extra is not None:
            row.update(extra.get(key, {}))
        rows.append(row)
    return rows


class CausalGraph:
    """Blame attribution over causally linked driver events."""

    def __init__(self, events: Iterable[CEvent],
                 alloc_sites: Mapping[str, str] | None = None) -> None:
        self.events = list(events)
        self.alloc_sites = dict(alloc_sites or {})
        self._by_id = {ev.id: ev for ev in self.events}
        self._categories: dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # construction

    @classmethod
    def from_log(cls, log: EventLog,
                 alloc_sites: Mapping[str, str] | None = None) -> "CausalGraph":
        """Build from a live event log (events recorded with causes)."""
        events = []
        for ev in log:
            c = ev.cause
            events.append(CEvent(
                id=ev.id, kind=ev.kind.value, time=ev.time,
                proc=ev.device.name, pages=ev.pages, nbytes=ev.nbytes,
                cost=ev.cost, detail=ev.detail,
                site=c.site if c else "", kernel=c.kernel if c else "",
                api=c.api if c else "", alloc=c.alloc if c else "",
                parent=c.parent if c else -1,
            ))
        return cls(events, alloc_sites)

    @classmethod
    def from_records(cls, records: Iterable[Mapping[str, Any]]) -> "CausalGraph":
        """Build from parsed ``events.jsonl`` records (schema v2+).

        Consumes ``driver_event`` records for the graph and ``alloc``
        records for the allocation-site table; everything else is ignored.
        """
        events = []
        alloc_sites: dict[str, str] = {}
        for rec in records:
            rtype = rec.get("type")
            if rtype == "alloc":
                label = rec.get("label", "")
                if label and rec.get("site"):
                    alloc_sites.setdefault(label, rec["site"])
            elif rtype == "driver_event":
                c = rec.get("cause") or {}
                events.append(CEvent(
                    id=int(rec.get("id", -1)), kind=rec["kind"],
                    time=float(rec.get("t", 0.0)), proc=rec.get("proc", ""),
                    pages=int(rec.get("pages", 0)),
                    nbytes=int(rec.get("bytes", 0)),
                    cost=float(rec.get("cost", 0.0)),
                    detail=rec.get("detail", ""),
                    site=c.get("site", ""), kernel=c.get("kernel", ""),
                    api=c.get("api", ""), alloc=c.get("alloc", ""),
                    parent=int(c.get("parent", -1)),
                ))
        return cls(events, alloc_sites)

    # ------------------------------------------------------------------ #
    # classification

    def category(self, ev: CEvent) -> str:
        """Anti-pattern category of one event (memoized)."""
        got = self._categories.get(ev.id)
        if got is None:
            got = self._classify(ev)
            self._categories[ev.id] = got
        return got

    def _classify(self, ev: CEvent) -> str:
        parent = self._by_id.get(ev.parent) if ev.parent >= 0 else None
        if ev.kind == "eviction":
            return "capacity_pressure"
        if ev.kind == "invalidation":
            return "read_mostly_write"
        if ev.kind == "transfer":
            return "explicit_transfer"
        if ev.kind == "duplication":
            return "read_duplication"
        if ev.kind == "remote_access":
            return "remote_access"
        if ev.kind == "page_fault":
            if ev.detail.startswith("first-touch"):
                return "first_touch"
            if parent is not None:
                if parent.kind == "eviction":
                    # The page was here; capacity pressure pushed it out.
                    return "oversubscription_refault"
                if parent.kind in ("migration", "invalidation"):
                    # The other processor took (or killed) the page since
                    # we last had it: the alternating-access anti-pattern.
                    return "ping_pong"
            return "demand_migration"
        if ev.kind == "migration":
            if ev.detail.startswith("prefetch"):
                return "prefetch"
            if parent is not None:
                # Inherit the triggering fault's story.
                return self.category(parent)
            return "demand_migration"
        return "setup"  # populate / map bookkeeping

    # ------------------------------------------------------------------ #
    # rollups

    def blame(self) -> dict[str, Any]:
        """All blame tables at once (single pass over the events).

        Runs recorded with live phase tracking carry ``phase`` marker
        events; those scope an additional ``by_phase`` table (which
        detected access-pattern phase each event's cost landed in) and
        are excluded from every other table -- they are annotations, not
        driver work.  Runs without markers get no ``by_phase`` key, so
        pre-phase reports are byte-identical.
        """
        by_site: dict[str, dict[str, float]] = {}
        by_alloc: dict[str, dict[str, float]] = {}
        by_kernel: dict[str, dict[str, float]] = {}
        by_category: dict[str, dict[str, float]] = {}
        by_phase: dict[str, dict[str, float]] = {}
        phase, saw_marker = "phase-0", False
        total = _totals()
        for ev in self.events:
            if ev.kind == "phase":
                saw_marker = True
                if ev.detail.startswith("phase_begin"):
                    for tok in ev.detail.split():
                        if tok.startswith("phase="):
                            phase = f"phase-{tok[len('phase='):]}"
                            break
                continue
            _bump(total, ev)
            _bump(by_site.setdefault(ev.site or "<unattributed>", _totals()), ev)
            _bump(by_alloc.setdefault(ev.alloc or "<anonymous>", _totals()), ev)
            if ev.kernel:
                _bump(by_kernel.setdefault(ev.kernel, _totals()), ev)
            _bump(by_category.setdefault(self.category(ev), _totals()), ev)
            _bump(by_phase.setdefault(phase, _totals()), ev)
        alloc_extra = {
            label: {"alloc_site": self.alloc_sites.get(label, "")}
            for label in by_alloc
        }
        out = {
            "totals": {"events": int(total["events"]),
                       "pages": int(total["pages"]),
                       "bytes": int(total["bytes"]),
                       "moved": int(total["moved"]),
                       "cost": round(total["cost"], _ROUND)},
            "by_site": _rows(by_site, "site"),
            "by_alloc": _rows(by_alloc, "alloc", alloc_extra),
            "by_kernel": _rows(by_kernel, "kernel"),
            "by_category": _rows(by_category, "category"),
        }
        if saw_marker:
            out["by_phase"] = _rows(by_phase, "phase")
        return out

    # ------------------------------------------------------------------ #
    # chains / critical path

    def _node(self, ev: CEvent) -> dict[str, Any]:
        """One event as a renderable chain-node dict."""
        return {
            "id": ev.id, "kind": ev.kind,
            "t": round(ev.time, _ROUND),
            "pages": ev.pages, "bytes": ev.nbytes,
            "cost": round(ev.cost, _ROUND),
            "alloc": ev.alloc, "site": ev.site,
            "kernel": ev.kernel,
            "category": self.category(ev),
        }

    def chain(self, event_id: int) -> list[dict[str, Any]]:
        """The full cause chain ending at ``event_id``, root first.

        Empty when the id is unknown (e.g. the event was evicted from a
        ring-bounded log).  Rendered by
        :func:`repro.causes.render.render_chain` -- the same node shape
        the critical path uses, so ``repro-debug explain`` and
        ``repro-why`` chains format identically.
        """
        nodes = []
        cursor = self._by_id.get(event_id)
        while cursor is not None:
            nodes.append(self._node(cursor))
            cursor = self._by_id.get(cursor.parent) if cursor.parent >= 0 \
                else None
        nodes.reverse()
        return nodes

    def critical_path(self, max_nodes: int = 50) -> dict[str, Any]:
        """The longest-cost chain of causally linked events.

        Every event has at most one parent, so chains are simple paths;
        the chain cost of an event is its own cost plus its parent's chain
        cost, computed in one forward pass (ids are recording order, so a
        parent always precedes its children).
        """
        chain_cost: dict[int, float] = {}
        best_id, best_cost = -1, -1.0
        for ev in self.events:
            c = ev.cost + chain_cost.get(ev.parent, 0.0)
            chain_cost[ev.id] = c
            if c > best_cost:
                best_id, best_cost = ev.id, c
        nodes = self.chain(best_id)
        truncated = max(0, len(nodes) - max_nodes)
        if truncated:
            nodes = nodes[-max_nodes:]
        return {
            "cost": round(max(best_cost, 0.0), _ROUND),
            "length": len(nodes) + truncated,
            "truncated": truncated,
            "events": nodes,
        }

    # ------------------------------------------------------------------ #
    # report

    def report(self, *, workload: str = "", platform: str = "") -> dict[str, Any]:
        """The full deterministic causal report (blame + critical path)."""
        out: dict[str, Any] = {
            "type": "causes_report",
            "report_version": REPORT_VERSION,
            "workload": workload,
            "platform": platform,
        }
        out.update(self.blame())
        out["critical_path"] = self.critical_path()
        return out

"""Causal "why" profiling over the unified-memory driver.

Layers (each usable on its own):

* :mod:`~repro.causes.graph` -- :class:`CausalGraph`: blame attribution
  per source site / allocation / kernel / anti-pattern category, and the
  critical path through causally linked driver events.
* :mod:`~repro.causes.capture` -- run workloads with provenance enabled
  (:func:`run_with_causes`, :func:`causal_capture`) and read captures
  back (:func:`load_report`), rejecting incompatible schema versions.
* :mod:`~repro.causes.diff` -- :func:`diff_reports`: align two runs and
  report improvements/regressions per key with threshold flags.
* :mod:`~repro.causes.render` / :mod:`~repro.causes.cli` -- terminal
  tables and the ``repro-why`` command.
"""

from .capture import (
    IncompatibleCaptureError,
    build_report,
    causal_capture,
    load_report,
    run_with_causes,
)
from .diff import DIFF_VERSION, diff_reports
from .graph import REPORT_VERSION, CausalGraph, CEvent
from .render import render_chain, render_diff, render_report

__all__ = [
    "CausalGraph",
    "CEvent",
    "REPORT_VERSION",
    "DIFF_VERSION",
    "IncompatibleCaptureError",
    "build_report",
    "causal_capture",
    "load_report",
    "run_with_causes",
    "diff_reports",
    "render_chain",
    "render_diff",
    "render_report",
]

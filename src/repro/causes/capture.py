"""Causal run capture: execute a workload with provenance tracking on.

The capture layer composes the pieces built elsewhere: it switches the
UM driver into ``track_causes`` mode, attaches a
:class:`~repro.telemetry.recorder.TelemetryRecorder` (so the run also
produces the standard timeline / JSONL / metrics artifacts, now with
cause links and flow arrows), executes the workload, and distils the
event stream into a :class:`~repro.causes.graph.CausalGraph` report.

``load_report`` is the reading counterpart used by ``repro-why diff``:
it rebuilds a report from a run directory's ``events.jsonl``, rejecting
captures whose schema version this reader does not understand.
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from ..analysis import diagnose
from ..memsim import Platform
from ..telemetry import context as telemetry_context
from ..telemetry.events_jsonl import SCHEMA_VERSION, JsonlWriter, read_jsonl
from ..telemetry.recorder import TelemetryRecorder
from ..workloads.base import make_session

from .graph import CausalGraph

__all__ = ["causal_capture", "run_with_causes", "load_report",
           "IncompatibleCaptureError"]


class IncompatibleCaptureError(RuntimeError):
    """A capture's schema version cannot be read by this build."""


@contextmanager
def causal_capture(platform: Platform, *, sites: bool = True) -> Iterator[Platform]:
    """Enable causal provenance on ``platform`` for the block's duration.

    :param sites: also walk the stack for triggering source sites (the
        expensive-but-actionable half of the cause link).
    """
    um = platform.um
    prev = (um.track_causes, um.blame_sites)
    um.track_causes = True
    um.blame_sites = sites
    try:
        yield platform
    finally:
        um.track_causes, um.blame_sites = prev


def run_with_causes(workload: str, platform: str, out_dir: str | Path,
                    *, materialize: bool = True, sites: bool = True,
                    diagnose_run: bool = True) -> dict[str, Any]:
    """Run ``workload`` with causal tracking; write artifacts to ``out_dir``.

    Produces the full telemetry bundle (``events.jsonl`` with cause
    blocks, ``timeline.json`` with flow arrows, ``metrics.prom``) plus
    ``causes.json``, the causal blame report.  Returns a dict with the
    artifact ``paths``, the ``report`` and the workload ``run``.
    """
    from ..telemetry.cli import PLATFORM_ALIASES, WORKLOADS

    preset = PLATFORM_ALIASES.get(platform, platform)
    runner = WORKLOADS[workload]
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    recorder = TelemetryRecorder(jsonl=JsonlWriter(out / "events.jsonl"))
    recorder.workload = workload
    recorder.config = {"platform": preset, "materialize": materialize,
                       "track_causes": True, "blame_sites": sites}
    telemetry_context.install(recorder, track_causes=True)
    try:
        session = make_session(preset, trace=True, materialize=materialize)
        session.platform.um.blame_sites = sites
        run = runner(session)
        if diagnose_run and session.tracer is not None:
            recorder.record_diagnosis(
                diagnose(session.tracer, include_unnamed=True))
        recorder.detach()
    finally:
        telemetry_context.uninstall()
    paths = recorder.flush(out)

    # Build the report from the stream just written: one code path no
    # matter whether the events come from a live log or a saved capture.
    report = build_report(out, workload=workload, platform=preset)
    report_path = out / "causes.json"
    _write_json(report_path, report)
    paths["causes"] = report_path
    return {"paths": paths, "report": report, "run": run}


def build_report(run_dir: str | Path, *, workload: str = "",
                 platform: str = "") -> dict[str, Any]:
    """Causal report for a run directory containing ``events.jsonl``."""
    records = _load_records(Path(run_dir))
    manifest = records[0]
    graph = CausalGraph.from_records(records)
    return graph.report(
        workload=workload or manifest.get("workload", ""),
        platform=platform or manifest.get("platform", {}).get("name", ""),
    )


def load_report(run_dir: str | Path) -> dict[str, Any]:
    """Load (or rebuild) the causal report of a captured run directory."""
    run_dir = Path(run_dir)
    causes = run_dir / "causes.json"
    if causes.exists():
        import json
        report = json.loads(causes.read_text())
        if report.get("report_version") != _report_version():
            raise IncompatibleCaptureError(
                f"{causes}: report_version {report.get('report_version')!r} "
                f"!= supported {_report_version()}")
        return report
    return build_report(run_dir)


def _report_version() -> int:
    from .graph import REPORT_VERSION
    return REPORT_VERSION


def _load_records(run_dir: Path) -> list[dict[str, Any]]:
    events = run_dir / "events.jsonl"
    if not events.exists():
        raise FileNotFoundError(f"{run_dir} has no events.jsonl capture")
    records = read_jsonl(events)
    if not records or records[0].get("type") != "manifest":
        raise IncompatibleCaptureError(
            f"{events}: stream does not start with a run manifest")
    version = records[0].get("schema_version")
    if not isinstance(version, int) or version < 2 or version > SCHEMA_VERSION:
        raise IncompatibleCaptureError(
            f"{events}: schema_version {version!r} is outside the supported "
            f"range [2, {SCHEMA_VERSION}] (v1 streams carry no event ids or "
            "cause links)")
    return records


def _write_json(path: Path, payload: dict[str, Any]) -> None:
    import json
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")

"""Differential run comparison: did my placement change actually help?

``diff_reports`` aligns two causal reports (run *A* = baseline, run *B* =
candidate) by allocation label, source site and anti-pattern category,
and emits a structured improvement/regression report: per-key deltas of
events / pages / bytes / cost, each flagged ``improved`` / ``regressed``
/ ``unchanged`` against a relative threshold.  This is the tool you run
after flipping a workload from plain managed memory to ``cudaMemAdvise``:
the transfer-byte reduction shows up against the advised allocation's
label and allocating source site.

Determinism: diffing a run against itself produces a report whose every
delta is zero and whose serialised form is byte-identical across
invocations (no timestamps, no unordered iteration).
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["diff_reports", "DIFF_VERSION", "METRICS"]

#: Version stamp of diff report dicts.
DIFF_VERSION = 1

#: Metrics compared for every aligned key.  ``moved`` is the subset of
#: ``bytes`` that physically crossed the link (migrations, transfers,
#: duplications, evictions) -- the headline number for advise experiments.
METRICS = ("events", "pages", "bytes", "moved", "cost")

_ROUND = 9


def _flag(delta: float, base: float, threshold: float) -> str:
    """Classify a delta: lower cost/bytes/counts is an improvement."""
    if delta == 0:
        return "unchanged"
    scale = max(abs(base), 1e-30)
    if abs(delta) / scale < threshold:
        return "unchanged"
    return "improved" if delta < 0 else "regressed"


def _metric_delta(a: float, b: float, threshold: float) -> dict[str, Any]:
    delta = b - a
    if isinstance(a, float) or isinstance(b, float):
        a, b, delta = round(a, _ROUND), round(b, _ROUND), round(delta, _ROUND)
    pct = round(100.0 * delta / a, 3) if a else (0.0 if not delta else None)
    return {"a": a, "b": b, "delta": delta, "pct": pct,
            "flag": _flag(delta, a, threshold)}


def _diff_table(rows_a: list[Mapping[str, Any]], rows_b: list[Mapping[str, Any]],
                key_name: str, threshold: float,
                carry: tuple[str, ...] = ()) -> list[dict[str, Any]]:
    """Align two rollup tables by key and diff every metric.

    Keys present on only one side are kept (the other side reads as
    zero) -- a freed-and-reallocated or renamed allocation still shows
    up rather than silently vanishing from the comparison.
    """
    index_a = {row[key_name]: row for row in rows_a}
    index_b = {row[key_name]: row for row in rows_b}
    out = []
    for key in sorted(set(index_a) | set(index_b)):
        ra, rb = index_a.get(key, {}), index_b.get(key, {})
        entry: dict[str, Any] = {
            key_name: key,
            "in_a": key in index_a,
            "in_b": key in index_b,
        }
        for field in carry:
            entry[f"{field}_a"] = ra.get(field, "")
            entry[f"{field}_b"] = rb.get(field, "")
        for metric in METRICS:
            entry[metric] = _metric_delta(ra.get(metric, 0), rb.get(metric, 0),
                                          threshold)
        out.append(entry)
    # Largest absolute cost movement first; key breaks ties.
    out.sort(key=lambda e: (-abs(e["cost"]["delta"]), e[key_name]))
    return out


def diff_reports(a: Mapping[str, Any], b: Mapping[str, Any],
                 *, threshold: float = 0.05,
                 label_a: str = "A", label_b: str = "B") -> dict[str, Any]:
    """Structured comparison of two causal reports (see module docs).

    :param threshold: relative change below which a delta is flagged
        ``unchanged`` (default 5%).
    """
    result: dict[str, Any] = {
        "type": "causes_diff",
        "diff_version": DIFF_VERSION,
        "threshold": threshold,
        "runs": {
            "a": {"label": label_a, "workload": a.get("workload", ""),
                  "platform": a.get("platform", "")},
            "b": {"label": label_b, "workload": b.get("workload", ""),
                  "platform": b.get("platform", "")},
        },
        "totals": {
            metric: _metric_delta(a.get("totals", {}).get(metric, 0),
                                  b.get("totals", {}).get(metric, 0), threshold)
            for metric in METRICS
        },
        "by_alloc": _diff_table(a.get("by_alloc", []), b.get("by_alloc", []),
                                "alloc", threshold, carry=("alloc_site",)),
        "by_site": _diff_table(a.get("by_site", []), b.get("by_site", []),
                               "site", threshold),
        "by_category": _diff_table(a.get("by_category", []),
                                   b.get("by_category", []),
                                   "category", threshold),
        "critical_path": {
            "cost": _metric_delta(
                a.get("critical_path", {}).get("cost", 0.0),
                b.get("critical_path", {}).get("cost", 0.0), threshold),
            "length": _metric_delta(
                a.get("critical_path", {}).get("length", 0),
                b.get("critical_path", {}).get("length", 0), threshold),
        },
    }
    improved = regressed = 0
    for table in (result["by_alloc"], result["by_site"], result["by_category"]):
        for entry in table:
            flags = {entry[m]["flag"] for m in METRICS}
            improved += "improved" in flags
            regressed += "regressed" in flags
    result["summary"] = {
        "improved_keys": improved,
        "regressed_keys": regressed,
        "verdict": ("improvement" if result["totals"]["cost"]["flag"] == "improved"
                    else "regression" if result["totals"]["cost"]["flag"] == "regressed"
                    else "neutral"),
    }
    return result

"""``repro-why``: capture causal runs and compare them.

Two subcommands::

    repro-why run  --workload sw --platform pcie --out runs/managed
    repro-why diff runs/managed runs/advised

``run`` replays a workload with causal provenance enabled and writes the
telemetry bundle plus ``causes.json`` (blame by site / allocation /
category, critical path).  ``diff`` aligns two captured runs and reports
what improved and what regressed -- the question every ``cudaMemAdvise``
experiment asks.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .capture import IncompatibleCaptureError, load_report, run_with_causes
from .diff import diff_reports
from .render import render_diff, render_report

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    from ..telemetry.cli import PLATFORM_ALIASES, WORKLOADS

    if args.list:
        print("workloads: " + ", ".join(sorted(WORKLOADS)))
        print("platforms: " + ", ".join(
            f"{alias}->{name}" for alias, name in sorted(PLATFORM_ALIASES.items())))
        return 0
    if args.out is None:
        print("repro-why run: --out is required (unless --list)",
              file=sys.stderr)
        return 2
    preset = PLATFORM_ALIASES.get(args.platform, args.platform)
    if preset not in {"intel-pascal", "intel-volta", "power9-volta"}:
        print(f"unknown platform {args.platform!r}; known: "
              + ", ".join(sorted(PLATFORM_ALIASES)), file=sys.stderr)
        return 2
    if args.workload not in WORKLOADS:
        print(f"unknown workload {args.workload!r}; known: "
              + ", ".join(sorted(WORKLOADS)), file=sys.stderr)
        return 2
    result = run_with_causes(args.workload, preset, args.out,
                             materialize=not args.footprint,
                             sites=not args.no_sites)
    if args.json:
        print(json.dumps(result["report"], indent=2))
    else:
        print(render_report(result["report"], limit=args.limit), end="")
        print("artifacts:")
        for name, path in sorted(result["paths"].items()):
            print(f"  {name:9s} {path}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    try:
        report_a = load_report(Path(args.run_a))
        report_b = load_report(Path(args.run_b))
    except (IncompatibleCaptureError, FileNotFoundError) as exc:
        print(f"repro-why diff: {exc}", file=sys.stderr)
        return 2
    diff = diff_reports(report_a, report_b, threshold=args.threshold,
                        label_a=str(args.run_a), label_b=str(args.run_b))
    if args.json:
        print(json.dumps(diff, indent=2))
    else:
        print(render_diff(diff, limit=args.limit), end="")
    if args.out is not None:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(diff, indent=2) + "\n")
    if args.fail_on_regression and diff["summary"]["verdict"] == "regression":
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-why`` / ``python -m repro.causes``."""
    parser = argparse.ArgumentParser(
        prog="repro-why",
        description="Causal 'why' profiler: blame attribution, critical "
                    "path and differential run comparison.")
    sub = parser.add_subparsers(dest="command")

    run = sub.add_parser("run", help="replay a workload with causal tracking")
    run.add_argument("--workload", default="sw",
                     help="workload to replay (default: sw)")
    run.add_argument("--platform", default="pcie",
                     help="platform preset or alias (default: pcie)")
    run.add_argument("--out", metavar="DIR",
                     help="run directory for the capture artifacts")
    run.add_argument("--footprint", action="store_true",
                     help="footprint-only allocations (no numpy backing)")
    run.add_argument("--no-sites", action="store_true",
                     help="skip source-site stack walking (cheaper capture)")
    run.add_argument("--json", action="store_true",
                     help="print the causes report as JSON instead of text")
    run.add_argument("--limit", type=int, default=10,
                     help="rows per blame table in text output")
    run.add_argument("--list", action="store_true",
                     help="list workloads and platforms, then exit")
    run.set_defaults(func=_cmd_run)

    diff = sub.add_parser("diff", help="compare two captured runs (A vs B)")
    diff.add_argument("run_a", help="baseline run directory")
    diff.add_argument("run_b", help="candidate run directory")
    diff.add_argument("--threshold", type=float, default=0.05,
                      help="relative change considered significant "
                           "(default: 0.05)")
    diff.add_argument("--json", action="store_true",
                      help="print the diff as JSON instead of text")
    diff.add_argument("--out", metavar="FILE",
                      help="also write the diff JSON to FILE")
    diff.add_argument("--limit", type=int, default=10,
                      help="rows per section in text output")
    diff.add_argument("--fail-on-regression", action="store_true",
                      help="exit 1 when total cost regresses")
    diff.set_defaults(func=_cmd_diff)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

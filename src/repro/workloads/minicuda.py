"""Bundled mini-CUDA programs: the interpreted-path workload catalogue.

The Session workloads (:mod:`.rodinia`, :mod:`.lulesh`, ...) drive the
simulated runtime from Python and never exercise the mini-CUDA
interpreter.  This module is the interpreter-path counterpart: small,
self-contained, byte-deterministic programs in the shapes the paper's
pipeline cares about -- Pathfinder's guarded wavefront relaxation,
LULESH-style double-precision RMW integration, a uniform-trip stencil,
and Spatter's strided/LCG-indirect gather -- sized so the kernel loops
dominate the host code.

They serve two roles:

* the differential oracle set for the codegen backends (every program
  must produce byte-identical output/shadow/heat under ``interp``,
  ``codegen`` and ``codegen-vec``), and
* the benchmark bodies for ``benchmarks/bench_codegen.py`` (the same
  builders at larger sizes).

All allocations happen before the first kernel launch on purpose: the
compiled backends skip the interpreter's per-thread stack cells, so a
mid-run ``cudaMallocManaged`` would see a different heap layout than the
tree-walker and the differential byte-comparisons would be meaningless.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..interp.interpreter import Interpreter
    from ..memsim import Platform
    from ..runtime import Tracer

__all__ = ["CATALOG", "catalog", "lulesh_source", "pathfinder_source",
           "run_minicuda", "spatter_lcg_source", "spatter_stride_source",
           "stencil_source"]

#: Replacement pragmas every catalogue program carries: without them
#: ``cudaMallocManaged`` never registers shadow blocks and tracing is a
#: silent no-op.
_HEADER = """\
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);
#pragma xpl replace kernel-launch
void traceKernelLaunch(int g, int b, int s, int st, ...);
"""


def pathfinder_source(cols: int = 192, rows: int = 24) -> str:
    """Pathfinder's dynamic-programming wavefront: one guarded kernel per
    row, three-way ternary min over the previous row (paper Fig. 1)."""
    return f"""\
{_HEADER}
__global__ void relax(int* dst, int* src, int* wall, int row, int cols) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < cols) {{
        int best = src[i];
        if (i > 0) {{
            int left = src[i - 1];
            best = left < best ? left : best;
        }}
        if (i < cols - 1) {{
            int right = src[i + 1];
            best = right < best ? right : best;
        }}
        dst[i] = wall[row * cols + i] + best;
    }}
}}

int main() {{
    int cols = {cols};
    int rows = {rows};
    int* wall;
    int* a;
    int* b;
    cudaMallocManaged((void**)&wall, rows * cols * sizeof(int));
    cudaMallocManaged((void**)&a, cols * sizeof(int));
    cudaMallocManaged((void**)&b, cols * sizeof(int));
    for (int i = 0; i < rows * cols; i++) {{
        wall[i] = (i * 7919 + 13) % 97;
    }}
    for (int i = 0; i < cols; i++) {{ a[i] = wall[i]; b[i] = 0; }}
    for (int row = 1; row < rows; row++) {{
        if (row % 2 == 1) {{
            relax<<<{max(1, -(-cols // 64))}, 64>>>(b, a, wall, row, cols);
        }} else {{
            relax<<<{max(1, -(-cols // 64))}, 64>>>(a, b, wall, row, cols);
        }}
    }}
    cudaDeviceSynchronize();
    int* last = rows % 2 == 0 ? b : a;
    int best = last[0];
    for (int i = 1; i < cols; i++) {{
        if (last[i] < best) {{ best = last[i]; }}
    }}
    printf("best=%d\\n", best);
    tracePrint(XplAllocData(wall, "wall", rows * cols * 4),
               XplAllocData(a, "a", cols * 4),
               XplAllocData(b, "b", cols * 4));
    return 0;
}}
"""


def lulesh_source(nelem: int = 256, steps: int = 12) -> str:
    """LULESH-style leapfrog: force gather then a double-precision
    ``+=`` position/velocity integration, many launches over one mesh."""
    grid = max(1, -(-nelem // 64))
    return f"""\
{_HEADER}
__global__ void force(double* f, double* x, int n) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {{
        double fi = 0.0 - x[i] * 0.5;
        if (i > 0) {{ fi += x[i - 1] * 0.25; }}
        if (i < n - 1) {{ fi += x[i + 1] * 0.25; }}
        f[i] = fi;
    }}
}}

__global__ void integrate(double* x, double* xd, double* f, double dt,
                          int n) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {{
        xd[i] += f[i] * dt;
        x[i] += xd[i] * dt;
    }}
}}

int main() {{
    int n = {nelem};
    double* x;
    double* xd;
    double* f;
    cudaMallocManaged((void**)&x, n * sizeof(double));
    cudaMallocManaged((void**)&xd, n * sizeof(double));
    cudaMallocManaged((void**)&f, n * sizeof(double));
    for (int i = 0; i < n; i++) {{
        x[i] = i % 17;
        xd[i] = 0.0;
        f[i] = 0.0;
    }}
    for (int step = 0; step < {steps}; step++) {{
        force<<<{grid}, 64>>>(f, x, n);
        integrate<<<{grid}, 64>>>(x, xd, f, 0.03125, n);
    }}
    cudaDeviceSynchronize();
    double sum = 0.0;
    for (int i = 0; i < n; i++) {{ sum += x[i]; }}
    printf("sum=%g\\n", sum);
    tracePrint(XplAllocData(x, "x", n * 8), XplAllocData(xd, "xd", n * 8),
               XplAllocData(f, "f", n * 8));
    return 0;
}}
"""


def stencil_source(n: int = 256, iters: int = 10, taps: int = 2) -> str:
    """Float stencil with a uniform-trip inner loop under a varying guard
    (the shape the vectorizer must prove loop-uniform to win)."""
    grid = max(1, -(-n // 64))
    return f"""\
{_HEADER}
__global__ void smooth(float* dst, float* src, int n, int taps) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i >= taps && i < n - taps) {{
        float acc = 0.0;
        for (int k = 0 - taps; k <= taps; k++) {{
            acc += src[i + k];
        }}
        dst[i] = acc / (2 * taps + 1);
    }}
}}

int main() {{
    int n = {n};
    float* a;
    float* b;
    cudaMallocManaged((void**)&a, n * sizeof(float));
    cudaMallocManaged((void**)&b, n * sizeof(float));
    for (int i = 0; i < n; i++) {{
        a[i] = (i * 31 + 7) % 129;
        b[i] = 0.0;
    }}
    for (int it = 0; it < {iters}; it++) {{
        if (it % 2 == 0) {{
            smooth<<<{grid}, 64>>>(b, a, n, {taps});
        }} else {{
            smooth<<<{grid}, 64>>>(a, b, n, {taps});
        }}
    }}
    cudaDeviceSynchronize();
    float sum = 0.0;
    for (int i = 0; i < n; i++) {{ sum += b[i]; }}
    printf("sum=%g\\n", sum);
    tracePrint(XplAllocData(a, "a", n * 4), XplAllocData(b, "b", n * 4));
    return 0;
}}
"""


def spatter_stride_source(stride: int = 8, count: int = 16) -> str:
    """Spatter's UNIFORM strided gather as a mini-CUDA program."""
    from .spatter import to_mini_cuda, uniform_stride
    return to_mini_cuda(uniform_stride(stride, count=count))


def spatter_lcg_source(length: int = 256, spread: int = 4096,
                       seed: int = 1) -> str:
    """Spatter's LCG indirection gather as a mini-CUDA program (the
    indirect-addressing stress case for the vectorizer)."""
    from .spatter import indirection, to_mini_cuda
    return to_mini_cuda(indirection(length=length, spread=spread, seed=seed))


#: name -> source builder at diagnosis-friendly sizes.
CATALOG = {
    "mc-pathfinder": pathfinder_source,
    "mc-lulesh": lulesh_source,
    "mc-stencil": stencil_source,
    "mc-spatter-stride": spatter_stride_source,
    "mc-spatter-lcg": spatter_lcg_source,
}


def catalog() -> dict[str, str]:
    """Every bundled program rendered at its default size."""
    return {name: build() for name, build in CATALOG.items()}


def run_minicuda(name: str, *, platform: "Platform | None" = None,
                 tracer: "Tracer | None" = None,
                 backend: str | None = None) -> "Interpreter":
    """Parse, instrument and run one catalogue program; returns the
    interpreter for inspection (stdout, tracer, heap state)."""
    from ..interp.interpreter import run_program
    return run_program(CATALOG[name](), platform=platform, tracer=tracer,
                       source_name=f"{name}.cu", backend=backend)

"""The optimized Smith-Waterman (paper §IV-B, "Optimizing Smith-Waterman").

Changes relative to the baseline, per the paper:

1. **boundary values initialized on the fly** -- the CPU no longer zeroes
   the matrices (the diagnosed unnecessary initialization);
2. **the matrix is rotated by 45 degrees** so each wavefront is one
   *contiguous* row: iteration ``k`` writes row ``k`` and reads rows
   ``k-1``/``k-2`` as contiguous ranges -- O(1) fault groups per
   iteration instead of one per touched page;
3. the score matrix is kept as a **three-row ring buffer** (the recurrence
   only looks two diagonals back; traceback needs only the path matrix
   and the running best), which is what actually "reduces the resident
   memory size on a GPU" and keeps the optimized version off the
   oversubscription cliff.

Rotated indexing: cell ``(i, j)`` with ``i + j = k`` lives at offset ``i``
of diagonal row ``k``; ``H`` keeps row ``k`` at ring slot ``k % 3``.
"""

from __future__ import annotations

import numpy as np

from ...analysis import diagnose
from ...cudart import cudaMemcpyKind
from ...cudart.advice import cudaMemoryAdvise
from ...memsim import GPU_DEVICE_ID
from ..base import Session, WorkloadRun
from .sw import GAP, MATCH, MISMATCH, SmithWaterman, _BLOCK

__all__ = ["RotatedSmithWaterman"]


class RotatedSmithWaterman(SmithWaterman):
    """45-degree-rotated layout with ring-buffer scores."""

    variant = "rotated"

    def __init__(self, session: Session, n: int, m: int | None = None,
                 *, set_preferred_gpu: bool = False,
                 diagnose_each_iteration: bool = False, seed: int = 7) -> None:
        self._set_preferred_gpu = set_preferred_gpu
        super().__init__(session, n, m,
                         diagnose_each_iteration=diagnose_each_iteration,
                         seed=seed)

    def _setup(self) -> None:
        rt = self.session.runtime
        # Replace the base class's row-major matrices with the rotated
        # geometry before anything touches them.
        rt.free(self.H)
        rt.free(self.P)
        self.geom.width = self.n + 1
        w = self.geom.width
        rows = self.n + self.m + 1
        self.H = rt.malloc_managed(4 * 3 * w, label="H")          # ring buffer
        self.P = rt.malloc_managed(4 * rows * w, label="P")       # full paths
        self.best = rt.malloc_managed(8, label="best")            # running max

        rt.memcpy(self.a, self.host_a, self.n,
                  cudaMemcpyKind.cudaMemcpyHostToDevice)
        rt.memcpy(self.b, self.host_b, self.m,
                  cudaMemcpyKind.cudaMemcpyHostToDevice)
        # No CPU zeroing of the matrices: boundaries are made on the fly.
        if self._set_preferred_gpu:
            # The paper sets setPreferredLocation(GPU) on the Intel+Pascal
            # system for all unified allocations (and not on IBM+Volta,
            # where it degraded the largest input).
            A = cudaMemoryAdvise.cudaMemAdviseSetPreferredLocation
            for ptr, nbytes in ((self.H, 4 * 3 * w), (self.P, 4 * rows * w),
                                (self.a, self.n), (self.b, self.m)):
                rt.mem_advise(ptr, nbytes, A, GPU_DEVICE_ID)

    def _ring(self, k: int) -> int:
        return (k % 3) * self.geom.width

    def _wavefront_kernel(self, ctx, hv, pv, av, bv, best, k: int) -> None:
        i, j = self._diag_cells(k)
        if len(i) == 0:
            return
        w = self.geom.width
        a_codes = av.gather(i - 1)
        b_codes = bv.gather(j - 1)
        i_lo, i_hi = int(i[0]), int(i[-1])
        # Contiguous reads of the two previous ring rows, contiguous write
        # of the current one.
        prev1 = hv.read(self._ring(k - 1) + i_lo - 1,
                        self._ring(k - 1) + i_hi + 1)
        prev2 = hv.read(self._ring(k - 2) + max(i_lo - 1, 0),
                        self._ring(k - 2) + i_hi + 1)
        if ctx.functional:
            def at(prev, base, ii):
                idx = ii - base
                out = np.zeros(len(ii), dtype=np.int64)
                ok = (idx >= 0) & (idx < len(prev))
                out[ok] = prev[idx[ok]]
                return out

            up = at(prev1, i_lo - 1, i - 1)               # (i-1, j)
            left = at(prev1, i_lo - 1, i)                 # (i, j-1)
            up_left = at(prev2, max(i_lo - 1, 0), i - 1)  # (i-1, j-1)
            # Ring rows hold stale diagonals from three iterations ago
            # wherever the wavefront did not refresh them.  Positions
            # outside the interior range of the source diagonal are
            # logical-boundary neighbours whose true value is zero.
            up[(i - 1) < max(1, (k - 1) - self.m)] = 0
            left[i > min(self.n, k - 2)] = 0
            up_left[((i - 1) < max(1, (k - 2) - self.m))
                    | ((i - 1) > min(self.n, k - 3))] = 0
            match = np.where(a_codes == b_codes, MATCH, MISMATCH)
            stack = np.stack([
                np.zeros(len(i), dtype=np.int64),
                up_left + match,
                up + GAP,
                left + GAP,
            ])
            vals = stack.max(axis=0)
            direction = stack.argmax(axis=0)
            hv.write(self._ring(k) + i_lo, vals.astype(np.int32))
            pv.write(k * w + i_lo, direction.astype(np.int32))
            with ctx.runtime.accessors(1):
                best.rmw(0, 1, lambda old: np.maximum(old, np.int32(vals.max())))
        else:
            hv.write(self._ring(k) + i_lo, None, hi=self._ring(k) + i_hi + 1)
            pv.write(k * w + i_lo, None, hi=k * w + i_hi + 1)
            with ctx.runtime.accessors(1):
                best.rmw(0, 1)

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        hv = self.H.typed(np.int32)
        pv = self.P.typed(np.int32)
        av = self.a.typed(np.uint8)
        bv = self.b.typed(np.uint8)
        best = self.best.typed(np.int32, 1)
        w = self.geom.width

        def init_boundary(ctx):
            hv.fill(0)            # the whole ring is only 3 rows
            best.fill(0)

        rt.launch(init_boundary, 1, _BLOCK, name="sw_init_boundary", work=3 * w)
        for k in range(2, self.n + self.m + 1):
            cells = len(self._diag_cells(k)[0])
            if cells == 0:
                continue
            grid = max(1, -(-cells // _BLOCK))
            rt.launch(self._wavefront_kernel, grid, _BLOCK,
                      hv, pv, av, bv, best, k,
                      name="sw_wavefront_rot", work=cells, ops_per_element=12.0)
            if self.diagnose_each_iteration and self.session.tracer is not None:
                self.diagnoses.append(diagnose(
                    self.session.tracer, self.descriptors()))
        score = self._read_best(best)
        return WorkloadRun(
            name="smithwaterman",
            variant=self.variant,
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            diagnoses=self.diagnoses,
            stats={
                "n": self.n, "m": self.m, "score": score,
                **self.session.platform.events.summary(),
            },
        )

    def _read_best(self, best) -> float:
        got = best.read(0, 1)
        self.session.runtime.cpu_compute(1)
        return float(got[0]) if got is not None else float("nan")

    def score_matrix(self) -> np.ndarray:
        raise NotImplementedError(
            "the rotated version keeps only a 3-row score ring; compare "
            "best scores (stats['score']) or the path matrix instead"
        )

    def path_matrix(self) -> np.ndarray:
        """Logical (n+1, m+1) path directions from the rotated P."""
        raw = self.P.typed(np.int32).raw.reshape(-1, self.geom.width)
        n, m = self.n, self.m
        P = np.zeros((n + 1, m + 1), dtype=np.int32)
        for i in range(n + 1):
            for j in range(m + 1):
                P[i, j] = raw[i + j, i]
        return P

"""Smith-Waterman workload (paper §IV-B): baseline and rotated variants."""

from .rotated import RotatedSmithWaterman
from .sw import GAP, MATCH, MISMATCH, SmithWaterman, random_strings, sw_reference

__all__ = [
    "GAP",
    "MATCH",
    "MISMATCH",
    "SmithWaterman",
    "RotatedSmithWaterman",
    "random_strings",
    "sw_reference",
]

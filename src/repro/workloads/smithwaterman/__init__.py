"""Smith-Waterman workload (paper §IV-B): baseline, advised and rotated."""

from .advised import AdvisedSmithWaterman
from .rotated import RotatedSmithWaterman
from .sw import GAP, MATCH, MISMATCH, SmithWaterman, random_strings, sw_reference

__all__ = [
    "GAP",
    "MATCH",
    "MISMATCH",
    "SmithWaterman",
    "AdvisedSmithWaterman",
    "RotatedSmithWaterman",
    "random_strings",
    "sw_reference",
]

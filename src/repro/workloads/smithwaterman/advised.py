"""Baseline Smith-Waterman plus ``cudaMemAdvise`` only (paper §V).

The pure managed-vs-advise contrast: identical allocation layout, kernels
and access order as :class:`~repro.workloads.smithwaterman.SmithWaterman`,
with one change -- ``cudaMemAdviseSetAccessedBy(GPU)`` on the score and
path matrices after the CPU initializes them.  The GPU then reaches the
CPU-resident pages through an established zero-copy mapping instead of
fault-migrating them one wavefront at a time, which removes nearly all of
the baseline's demand-migration traffic without touching the algorithm.

This is the pair ``repro-why diff`` is designed for: every byte the advice
saves is attributed to the advised allocations (``H``/``P``) and their
allocating source sites.
"""

from __future__ import annotations

from ...cudart.advice import cudaMemoryAdvise
from ...memsim import GPU_DEVICE_ID
from ..base import Session
from .sw import SmithWaterman

__all__ = ["AdvisedSmithWaterman"]


class AdvisedSmithWaterman(SmithWaterman):
    """Baseline layout with ``SetAccessedBy(GPU)`` on the matrices."""

    variant = "advised"

    def __init__(self, session: Session, n: int, m: int | None = None,
                 *, diagnose_each_iteration: bool = False, seed: int = 7) -> None:
        super().__init__(session, n, m,
                         diagnose_each_iteration=diagnose_each_iteration,
                         seed=seed)
        self._advise()

    def _advise(self) -> None:
        """Advise zero-copy GPU access to the CPU-initialized matrices."""
        rt = self.session.runtime
        accessed_by = cudaMemoryAdvise.cudaMemAdviseSetAccessedBy
        cells = 4 * (self.n + 1) * self.geom.width
        rt.mem_advise(self.H, cells, accessed_by, GPU_DEVICE_ID)
        rt.mem_advise(self.P, cells, accessed_by, GPU_DEVICE_ID)

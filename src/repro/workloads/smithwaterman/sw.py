"""Smith-Waterman local alignment on the simulated GPU (paper §IV-B).

The examined implementation allocates storage for the two input strings
and the score (``H``) and path (``P``) matrices with ``cudaMallocManaged``,
transfers the strings in, zeroes the matrices on the CPU, and then sweeps
anti-diagonals with one GPU kernel launch per wavefront.

The memory behaviour the paper diagnoses:

* the CPU initializes the **entire** H matrix, but only the boundary
  zeroes are ever read (Fig 7);
* each wavefront iteration touches one matrix cell per row -- scattered
  across pages, so "only three memory locations that are contiguous in
  memory are accessed in each iteration" is violated and large data sets
  page-fault heavily (Fig 8);
* data sets exceeding GPU memory fall off a performance cliff (the
  46000-character result in Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...analysis import Diagnosis, diagnose
from ...cudart import cudaMemcpyKind
from ...runtime import XplAllocData
from ..base import Session, WorkloadRun

__all__ = ["SmithWaterman", "sw_reference", "MATCH", "MISMATCH", "GAP"]

MATCH, MISMATCH, GAP = 3, -3, -2
_BLOCK = 128
_ALPHABET = 4  # ACGT as 0..3


def sw_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference Smith-Waterman score matrix (numpy, (n+1) x (m+1))."""
    n, m = len(a), len(b)
    H = np.zeros((n + 1, m + 1), dtype=np.int32)
    for i in range(1, n + 1):
        match = np.where(b == a[i - 1], MATCH, MISMATCH)
        for j in range(1, m + 1):
            H[i, j] = max(
                0,
                H[i - 1, j - 1] + match[j - 1],
                H[i - 1, j] + GAP,
                H[i, j - 1] + GAP,
            )
    return H


def random_strings(n: int, m: int, seed: int = 7) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic pseudo-random molecular strings as uint8 codes."""
    rng = np.random.default_rng(seed)
    return (rng.integers(0, _ALPHABET, n, dtype=np.uint8),
            rng.integers(0, _ALPHABET, m, dtype=np.uint8))


@dataclass
class _SwState:
    n: int
    m: int
    width: int  # row stride of H/P in elements


class SmithWaterman:
    """Baseline (row-major, anti-diagonal wavefront) Smith-Waterman."""

    variant = "baseline"

    def __init__(self, session: Session, n: int, m: int | None = None,
                 *, diagnose_each_iteration: bool = False, seed: int = 7) -> None:
        if n < 1:
            raise ValueError("string length must be positive")
        self.session = session
        self.n = n
        self.m = m if m is not None else n
        self.diagnose_each_iteration = diagnose_each_iteration
        self.diagnoses: list[Diagnosis] = []
        rt = session.runtime

        self.host_a, self.host_b = random_strings(n, self.m, seed)
        self.a = rt.malloc_managed(max(n, 1), label="a")
        self.b = rt.malloc_managed(max(self.m, 1), label="b")
        width = self.m + 1
        cells = (n + 1) * width
        self.H = rt.malloc_managed(4 * cells, label="H")
        self.P = rt.malloc_managed(4 * cells, label="P")
        self.geom = _SwState(n, self.m, width)
        self._setup()

    # ------------------------------------------------------------------ #

    def _setup(self) -> None:
        """Transfer inputs and zero the matrices from the CPU."""
        rt = self.session.runtime
        rt.memcpy(self.a, self.host_a, self.n,
                  cudaMemcpyKind.cudaMemcpyHostToDevice)
        rt.memcpy(self.b, self.host_b, self.m,
                  cudaMemcpyKind.cudaMemcpyHostToDevice)
        # The anti-pattern: the CPU zeroes out *all* of H and P although
        # only the boundary zeroes will ever be read.
        hv = self.H.typed(np.int32)
        pv = self.P.typed(np.int32)
        hv.fill(0)
        pv.fill(0)
        rt.cpu_compute(len(hv) + len(pv))

    def descriptors(self) -> list[XplAllocData]:
        """Named allocations for diagnostics."""
        return [
            XplAllocData(self.a.addr, "a", 1, self.a.alloc),
            XplAllocData(self.b.addr, "b", 1, self.b.alloc),
            XplAllocData(self.H.addr, "H", 4, self.H.alloc),
            XplAllocData(self.P.addr, "P", 4, self.P.alloc),
        ]

    def _diag_cells(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Row/col indices (1-based) of wavefront ``k`` (k = i + j)."""
        i_lo = max(1, k - self.m)
        i_hi = min(self.n, k - 1)
        i = np.arange(i_lo, i_hi + 1, dtype=np.int64)
        return i, k - i

    def _wavefront_kernel(self, ctx, hv, pv, av, bv, k: int) -> None:
        i, j = self._diag_cells(k)
        w = self.geom.width
        a_codes = av.gather(i - 1)
        b_codes = bv.gather(j - 1)
        up_left = hv.gather((i - 1) * w + (j - 1))
        up = hv.gather((i - 1) * w + j)
        left = hv.gather(i * w + (j - 1))
        if ctx.functional:
            match = np.where(a_codes == b_codes, MATCH, MISMATCH)
            best = np.maximum.reduce([
                np.zeros(len(i), dtype=np.int64),
                up_left.astype(np.int64) + match,
                up.astype(np.int64) + GAP,
                left.astype(np.int64) + GAP,
            ])
            direction = np.argmax(np.stack([
                np.zeros(len(i), dtype=np.int64),
                up_left.astype(np.int64) + match,
                up.astype(np.int64) + GAP,
                left.astype(np.int64) + GAP,
            ]), axis=0)
            hv.scatter(i * w + j, best.astype(np.int32))
            pv.scatter(i * w + j, direction.astype(np.int32))
        else:
            hv.scatter(i * w + j)
            pv.scatter(i * w + j)

    def run(self) -> WorkloadRun:
        """Sweep all anti-diagonals, then score lookup on the CPU."""
        rt = self.session.runtime
        start = self.session.platform.clock.now
        hv = self.H.typed(np.int32)
        pv = self.P.typed(np.int32)
        av = self.a.typed(np.uint8)
        bv = self.b.typed(np.uint8)
        for k in range(2, self.n + self.m + 1):
            cells = len(self._diag_cells(k)[0])
            grid = max(1, -(-cells // _BLOCK))
            rt.launch(self._wavefront_kernel, grid, _BLOCK,
                      hv, pv, av, bv, k,
                      name="sw_wavefront", work=cells, ops_per_element=12.0)
            if self.diagnose_each_iteration and self.session.tracer is not None:
                self.diagnoses.append(diagnose(
                    self.session.tracer, self.descriptors()))
        score = self._final_score(hv)
        return WorkloadRun(
            name="smithwaterman",
            variant=self.variant,
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            diagnoses=self.diagnoses,
            stats={
                "n": self.n, "m": self.m, "score": score,
                **self.session.platform.events.summary(),
            },
        )

    def _final_score(self, hv) -> float:
        """CPU reads the last row to report the best local score."""
        w = self.geom.width
        last_row = hv.read(self.n * w, self.n * w + w)
        self.session.runtime.cpu_compute(w)
        if last_row is None:
            return float("nan")
        return float(self.score_matrix().max())

    def score_matrix(self) -> np.ndarray:
        """The H matrix as (n+1, m+1) -- functional runs only, untraced."""
        return self.H.typed(np.int32).raw.reshape(self.n + 1, self.geom.width)

"""Shared workload scaffolding.

Every benchmark application in this package runs against a
:class:`~repro.cudart.CudaRuntime` in one of two regimes:

* **diagnosis** -- small problem sizes, materialized data, full XPlacer
  tracing, diagnostics at the pragma points (how the paper's figures 4, 5,
  7, 8 and 10 and Table II are produced);
* **timing** -- paper-scale problem sizes, footprint-only allocations,
  tracing optional, simulated time from the platform clock (figures 6, 9
  and 11; tracing *on* vs *off* gives Table III's overhead).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..analysis import Diagnosis
from ..cudart import CudaRuntime
from ..memsim import PLATFORMS, Platform
from ..runtime import Tracer
from ..telemetry import context as telemetry_context

__all__ = ["Session", "WorkloadRun", "make_session"]


@dataclass
class Session:
    """A runtime + optional tracer bound to one platform."""

    platform: Platform
    runtime: CudaRuntime
    tracer: Tracer | None

    @property
    def sim_time(self) -> float:
        """Simulated seconds elapsed on this session's clock."""
        return self.platform.clock.now


@dataclass
class WorkloadRun:
    """Outcome of one workload execution."""

    name: str
    variant: str
    platform: str
    sim_time: float
    diagnoses: list[Diagnosis] = field(default_factory=list)
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def last_diagnosis(self) -> Diagnosis:
        """The final diagnostic of the run."""
        if not self.diagnoses:
            raise ValueError(f"run {self.name}/{self.variant} collected no diagnoses")
        return self.diagnoses[-1]


def make_session(
    platform: Platform | str | Callable[[], Platform] = "intel-pascal",
    *,
    trace: bool = True,
    materialize: bool = True,
    gpu_memory_bytes: int | None = None,
    sample: int | str | None = None,
) -> Session:
    """Build a fresh simulated session.

    :param platform: a :class:`Platform`, a preset name, or a factory.
    :param trace: attach an XPlacer tracer.
    :param materialize: back allocations with real numpy buffers.
    :param gpu_memory_bytes: override GPU memory (oversubscription studies).
    :param sample: shadow-sampling stride (1-in-N words); ``None``/1 traces
        densely.  ``"auto"`` enables signature-guided adaptive sampling:
        full rate around detected phase changes, strided in steady state
        (needs a heat store attached to the tracer to take effect).  The
        tracer's effective rate and estimated fidelity are surfaced
        through :meth:`~repro.runtime.Tracer.sampling_info`.
    """
    if isinstance(platform, str):
        factory = PLATFORMS[platform]
        plat = factory(gpu_memory_bytes=gpu_memory_bytes) if gpu_memory_bytes \
            else factory()
    elif callable(platform) and not isinstance(platform, Platform):
        plat = platform()
    else:
        plat = platform
    runtime = CudaRuntime(plat, materialize=materialize)
    tracer = Tracer(sample=sample).attach(runtime) if trace else None
    recorder = telemetry_context.current_recorder()
    if recorder is not None:
        recorder.attach(runtime, tracer,
                        track_causes=telemetry_context.causes_requested())
    return Session(platform=plat, runtime=runtime, tracer=tracer)

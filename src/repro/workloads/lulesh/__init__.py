"""LULESH 2 proxy application (paper §II-C, §III-D, §IV-A)."""

from .domain import (
    ALL_FIELDS,
    DOMAIN_STRUCT_BYTES,
    PERSISTENT_FIELDS,
    TEMP_GRADIENTS,
    TEMP_KINEMATICS,
    Domain,
)
from .lulesh import VARIANTS, Lulesh, run_lulesh

__all__ = [
    "ALL_FIELDS",
    "DOMAIN_STRUCT_BYTES",
    "PERSISTENT_FIELDS",
    "TEMP_GRADIENTS",
    "TEMP_KINEMATICS",
    "Domain",
    "VARIANTS",
    "Lulesh",
    "run_lulesh",
]

"""The LULESH 2 proxy application (RAJA/CUDA structure) and its remedies.

The default (baseline) variant reproduces the paper's problem: all dynamic
memory in managed space with no hints, the domain object shared between
CPU (time-stepping control, temporary management) and GPU (all compute
kernels), temporaries allocated/freed twice per timestep *through* the
domain object.

Four remedy variants match §IV-A:

* ``read_mostly`` -- ``cudaMemAdviseSetReadMostly`` on the domain object
  (the paper's one-line change, 2.75x-3.1x on the Intel testbeds);
* ``preferred_cpu`` -- ``SetPreferredLocation(cpu)`` on the domain object;
* ``accessed_by`` -- ``SetAccessedBy`` for GPU and CPU on the domain object;
* ``duplicate`` -- two identical domain objects, each accessed exclusively
  by one processor, temporaries passed outside the object (the paper's
  best remedy, 3.1x-3.7x on Intel and 1.03x on IBM/NVLink).
"""

from __future__ import annotations

import sys
from typing import IO

import numpy as np

from ...analysis import Diagnosis, diagnose
from ...cudart import ArrayView, DevicePtr, cudaMemoryAdvise
from ...memsim import CPU_DEVICE_ID, GPU_DEVICE_ID
from ...runtime import expand_object
from ..base import Session, WorkloadRun, make_session
from . import kernels as K
from .domain import (
    DOMAIN_STRUCT_BYTES,
    PERSISTENT_FIELDS,
    TEMP_GRADIENTS,
    TEMP_KINEMATICS,
    Domain,
)

__all__ = ["Lulesh", "VARIANTS", "run_lulesh"]

VARIANTS = ("baseline", "read_mostly", "preferred_cpu", "accessed_by", "duplicate")

_BLOCK = 128
_OPS_PER_ELEMENT = 8.0  # simplified-hydro arithmetic intensity


class Lulesh:
    """One LULESH instance bound to a session."""

    def __init__(
        self,
        session: Session,
        size: int,
        *,
        variant: str = "baseline",
        diagnose_each_step: bool = False,
        out: IO[str] | None = None,
    ) -> None:
        if variant not in VARIANTS:
            raise ValueError(f"unknown variant {variant!r}; pick from {VARIANTS}")
        self.session = session
        self.size = size
        self.variant = variant
        self.diagnose_each_step = diagnose_each_step
        self.out = out
        self.dom = Domain(session, size)
        self.gpu_dom: Domain | None = None
        self.cycle = 0
        self.diagnoses: list[Diagnosis] = []
        rt = session.runtime
        self._reduce = rt.malloc_managed(16, label="m_dt_reduce").typed(np.float64, 2)
        self._init_arrays()
        self._apply_variant()

    # ------------------------------------------------------------------ #
    # setup

    def _init_arrays(self) -> None:
        """CPU-side mesh initialization (the Sedov problem setup)."""
        dom, rt = self.dom, self.session.runtime
        s = self.size
        functional = rt.materialize
        for name in PERSISTENT_FIELDS:
            view = dom.view(name)
            if not functional:
                view.write(0, None, hi=len(view))
                continue
            dtype, count = dom.field_geometry(name)
            if name in ("m_x", "m_y", "m_z"):
                axis = ("m_x", "m_y", "m_z").index(name)
                n1 = s + 1
                coords = np.indices((n1, n1, n1))[axis].ravel().astype(np.float64)
                view.write(0, coords / s)
            elif name in ("m_nodalMass", "m_volo", "m_v", "m_elemMass"):
                view.write(0, np.ones(count))
            elif name == "m_e":
                energy = np.zeros(count)
                energy[0] = 3.948746e7  # Sedov point blast at the origin
                view.write(0, energy)
            elif name == "m_nodelist":
                conn = (np.arange(count) % dom.numNode).astype(np.int32)
                view.write(0, conn)
            elif name in ("m_symmX", "m_symmY", "m_symmZ"):
                view.write(0, np.arange(count, dtype=np.int32))
            elif dtype == np.dtype(np.int32):
                view.write(0, np.zeros(count, np.int32))
            else:
                view.write(0, np.zeros(count))
        dom.write_scalar("time", 0.0)
        dom.write_scalar("deltatime", 1e-7)
        dom.write_scalar("dtcourant", 1e20)
        dom.write_scalar("dthydro", 1e20)
        dom.write_scalar("stoptime", 1e-2)
        rt.cpu_compute(dom.numNode * 3 + dom.numElem * 5)

    def _apply_variant(self) -> None:
        rt = self.session.runtime
        A = cudaMemoryAdvise
        ptr = self.dom.self_ptr
        if self.variant == "read_mostly":
            rt.mem_advise(ptr, DOMAIN_STRUCT_BYTES, A.cudaMemAdviseSetReadMostly)
        elif self.variant == "preferred_cpu":
            rt.mem_advise(ptr, DOMAIN_STRUCT_BYTES,
                          A.cudaMemAdviseSetPreferredLocation, CPU_DEVICE_ID)
        elif self.variant == "accessed_by":
            rt.mem_advise(ptr, DOMAIN_STRUCT_BYTES,
                          A.cudaMemAdviseSetAccessedBy, GPU_DEVICE_ID)
            rt.mem_advise(ptr, DOMAIN_STRUCT_BYTES,
                          A.cudaMemAdviseSetAccessedBy, CPU_DEVICE_ID)
        elif self.variant == "duplicate":
            self.gpu_dom = Domain(self.session, self.size,
                                  struct_label="dom_gpu",
                                  share_arrays_with=self.dom)

    # ------------------------------------------------------------------ #
    # the timestep

    @property
    def _kernel_dom(self) -> Domain:
        return self.gpu_dom if self.gpu_dom is not None else self.dom

    def _launch(self, fn, work: int, *args) -> None:
        grid = max(1, -(-work // _BLOCK))
        self.session.runtime.launch(
            fn, grid, _BLOCK, self._kernel_dom, *args,
            name=fn.__name__, work=work, ops_per_element=_OPS_PER_ELEMENT,
        )

    def _alloc_temps(self, names) -> dict[str, ArrayView] | None:
        """Allocate per-timestep temporaries.

        Baseline and advice variants store them *into the domain object*
        (the anti-pattern); the duplicate variant passes them directly.
        """
        if self.variant == "duplicate":
            rt = self.session.runtime
            temps: dict[str, ArrayView] = {}
            self._temp_ptrs: list[DevicePtr] = getattr(self, "_temp_ptrs", [])
            for name in names:
                dtype, count = self.dom.field_geometry(name)
                p = rt.malloc_managed(count * dtype.itemsize, label=name)
                self._temp_ptrs.append(p)
                temps[name] = p.typed(dtype, count)
            return temps
        self.dom.alloc_temps(names)
        return None

    def _free_temps(self, names, temps: dict[str, ArrayView] | None) -> None:
        if self.variant == "duplicate":
            rt = self.session.runtime
            for p in self._temp_ptrs:
                rt.free(p)
            self._temp_ptrs = []
        else:
            self.dom.free_temps(names)

    def step(self) -> None:
        """One Lagrange leapfrog timestep."""
        dom, rt = self.dom, self.session.runtime
        n, e = dom.numNode, dom.numElem

        # -- TimeIncrement: CPU reads constraints, writes new dt/time.
        scal = dom.read_scalars("time", "deltatime", "dtcourant", "dthydro")
        if scal is not None:
            time, dt, dtc, dth = scal
            dt = min(dt * 1.1, dtc / 2.0, dth / 2.0, 1e-7 * (self.cycle + 1))
        else:
            time, dt = 0.0, 1e-7
        dom.write_scalar("deltatime", float(dt))
        dom.write_scalar("time", float(time) + float(dt))
        dom.write_cycle(self.cycle)
        rt.cpu_compute(8)

        # Host code dereferences domain members to set up each launch
        # (RAJA lambdas capture them by value) -- on the baseline these
        # CPU reads keep pulling the object page back from the GPU.
        # -- LagrangeNodal.
        dom.load("m_fx", "m_fy", "m_fz", "m_nodalMass",
                 "m_xdd", "m_ydd", "m_zdd", "m_xd", "m_yd", "m_zd",
                 "m_x", "m_y", "m_z")
        self._launch(K.calc_force_for_nodes, e)
        self._launch(K.calc_acceleration_for_nodes, n)
        self._launch(K.apply_boundary_conditions, (self.size + 1) ** 2)
        self._launch(K.calc_velocity_for_nodes, n, float(dt))
        self._launch(K.calc_position_for_nodes, n, float(dt))

        # -- LagrangeElements, episode A: kinematics temporaries.
        temps_a = self._alloc_temps(TEMP_KINEMATICS)
        self._launch(K.calc_kinematics, e, float(dt), temps_a)
        self._free_temps(TEMP_KINEMATICS, temps_a)

        # -- episode B: monotonic Q gradient temporaries.
        temps_b = self._alloc_temps(TEMP_GRADIENTS)
        self._launch(K.calc_monotonic_q_gradient, e, temps_b)
        dom.load("m_elemBC", "m_qq", "m_ql")
        self._launch(K.calc_monotonic_q_region, e, temps_b)
        self._free_temps(TEMP_GRADIENTS, temps_b)

        # -- material update.
        dom.load("m_e", "m_p", "m_q", "m_delv", "m_ss", "m_vnew")
        self._launch(K.eval_eos, e)
        dom.load("m_vnew", "m_v")
        self._launch(K.update_volumes, e)
        dom.load("m_ss", "m_vdov", "m_arealg")

        # -- CalcTimeConstraints: GPU reduces into a side buffer, CPU
        #    copies the result into the domain scalars.
        self._launch(K.calc_time_constraints, e, self._reduce)
        constraints = self._reduce.read(0, 2)
        if constraints is not None:
            dom.write_scalar("dtcourant", float(constraints[0]))
            dom.write_scalar("dthydro", float(constraints[1]))
        else:
            dom.write_scalar("dtcourant", 1e-5)
            dom.write_scalar("dthydro", 1e-5)
        rt.cpu_compute(4)

        self.cycle += 1
        if self.diagnose_each_step and self.session.tracer is not None:
            self.diagnoses.append(diagnose(
                self.session.tracer,
                expand_object(self.dom, "dom"),
                self.out,
                include_unnamed=True,
            ))

    def run(self, iterations: int = 16) -> WorkloadRun:
        """Run ``iterations`` timesteps; returns timing and diagnoses."""
        start = self.session.platform.clock.now
        for _ in range(iterations):
            self.step()
        return WorkloadRun(
            name="lulesh",
            variant=self.variant,
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            diagnoses=self.diagnoses,
            stats={
                "size": self.size,
                "iterations": iterations,
                "kernel_launches": self.session.runtime.kernel_launches,
                **self.session.platform.events.summary(),
            },
        )

    # ------------------------------------------------------------------ #
    # verification helpers

    def energy(self) -> float:
        """Total element energy (functional runs only)."""
        return float(self.dom.view("m_e").raw.sum())


def run_lulesh(
    size: int = 8,
    iterations: int = 16,
    *,
    variant: str = "baseline",
    platform: str = "intel-pascal",
    trace: bool = False,
    materialize: bool = False,
    diagnose_each_step: bool = False,
    out: IO[str] | None = None,
) -> WorkloadRun:
    """Convenience one-call LULESH run (timing regime by default)."""
    session = make_session(platform, trace=trace, materialize=materialize)
    app = Lulesh(session, size, variant=variant,
                 diagnose_each_step=diagnose_each_step, out=out)
    return app.run(iterations)

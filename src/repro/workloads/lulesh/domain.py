"""The LULESH ``Domain`` singleton (paper §II-C and §IV-A).

LULESH encapsulates all simulation state in one ``Domain`` object holding
pointers to dynamically allocated arrays.  Both the object and the arrays
live in unified memory.  This port mirrors the memory structure exactly:

* a **3736-byte managed struct block** (the paper gives this size in
  Fig 5) whose first 50 slots hold the array pointers, followed by the
  time-stepping scalars;
* 40 persistent managed arrays (node-, element- and connectivity-
  centered), initialized by the CPU before the first timestep;
* 9 **temporary** arrays (``m_dxx``..``m_dzz`` and the six ``m_delx_*`` /
  ``m_delv_*`` gradients) that the CPU allocates, stores into the domain
  object, and frees again -- twice per timestep.  Those per-timestep
  pointer writes into the shared struct page are the root cause of the 3x
  slowdown the paper diagnoses: 9 pointers x 2 shadow words = the "18
  elements with alternating accesses" of Fig 4.

GPU kernels dereference arrays *through* the struct block: each kernel
first gathers the pointer slots it needs (a traced GPU read of the domain
page), then accesses the arrays.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

import numpy as np

from ...cudart import ArrayView, DevicePtr

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..base import Session

__all__ = [
    "Domain",
    "DOMAIN_STRUCT_BYTES",
    "NODE_FIELDS",
    "ELEM_FIELDS",
    "CONN_FIELDS",
    "SYMM_FIELDS",
    "REG_FIELDS",
    "TEMP_KINEMATICS",
    "TEMP_GRADIENTS",
    "PERSISTENT_FIELDS",
    "ALL_FIELDS",
]

#: Size of the domain object; Fig 5's caption: "the domain object has a
#: size of 3736 bytes".
DOMAIN_STRUCT_BYTES = 3736

#: Node-centered float64 arrays, (s+1)^3 entries each.
NODE_FIELDS = (
    "m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd",
    "m_xdd", "m_ydd", "m_zdd", "m_fx", "m_fy", "m_fz", "m_nodalMass",
)
#: Element-centered float64 arrays, s^3 entries each.
ELEM_FIELDS = (
    "m_e", "m_p", "m_q", "m_ql", "m_qq", "m_v", "m_volo",
    "m_vnew", "m_delv", "m_vdov", "m_arealg", "m_ss", "m_elemMass",
)
#: Connectivity / flags, int32.
CONN_FIELDS = (
    "m_nodelist",                      # 8 per element
    "m_lxim", "m_lxip", "m_letam", "m_letap", "m_lzetam", "m_lzetap",
    "m_elemBC",
)
#: Symmetry-plane node lists, int32, (s+1)^2 entries each.
SYMM_FIELDS = ("m_symmX", "m_symmY", "m_symmZ")
#: Region bookkeeping, int32, s^3 entries each.
REG_FIELDS = ("m_regNumList", "m_regElemlist")

#: Temporaries of CalcKinematicsForElems (alloc/free episode A).
TEMP_KINEMATICS = ("m_dxx", "m_dyy", "m_dzz")
#: Temporaries of CalcMonotonicQGradientsForElems (episode B).
TEMP_GRADIENTS = (
    "m_delx_xi", "m_delx_eta", "m_delx_zeta",
    "m_delv_xi", "m_delv_eta", "m_delv_zeta",
)

PERSISTENT_FIELDS = NODE_FIELDS + ELEM_FIELDS + CONN_FIELDS + SYMM_FIELDS + REG_FIELDS
ALL_FIELDS = PERSISTENT_FIELDS + TEMP_KINEMATICS + TEMP_GRADIENTS

# dom + 48 arrays + the reduction side-buffer = the paper's "50 allocations
# in unified space" reported by each diagnostic.
assert len(ALL_FIELDS) == 48

_SLOT_BYTES = 8  # one 64-bit pointer per slot

#: Scalar fields stored after the pointer slots (float64 each).
_SCALARS = ("time", "deltatime", "dtcourant", "dthydro", "stoptime")
_SCALAR_BASE = len(ALL_FIELDS) * _SLOT_BYTES
#: The int32 cycle counter sits right after the float scalars.
_CYCLE_OFFSET = _SCALAR_BASE + len(_SCALARS) * 8


class Domain:
    """The LULESH domain object over the simulated runtime.

    :param session: runtime session to allocate in.
    :param size: problem size ``s`` (mesh edge elements); the paper sweeps
        8..48.
    :param struct_label: diagnostic label of the struct block.
    """

    def __init__(self, session: "Session", size: int,
                 struct_label: str = "dom",
                 share_arrays_with: "Domain | None" = None) -> None:
        if size < 2:
            raise ValueError("LULESH problem size must be >= 2")
        self.session = session
        self.size = size
        self.numElem = size ** 3
        self.numNode = (size + 1) ** 3
        rt = session.runtime

        self.self_ptr: DevicePtr = rt.malloc_managed(
            DOMAIN_STRUCT_BYTES, label=struct_label)
        self._slots = self.self_ptr.typed(np.uint64, len(ALL_FIELDS))
        self._scalars = self.self_ptr.typed(
            np.float64, len(_SCALARS), offset_bytes=_SCALAR_BASE)
        self._slot_index = {name: i for i, name in enumerate(ALL_FIELDS)}
        self._pointers: dict[str, DevicePtr | None] = dict.fromkeys(ALL_FIELDS)
        self._dtypes: dict[str, np.dtype] = {}
        self._counts: dict[str, int] = {}

        if share_arrays_with is not None:
            # The "duplicate domain object" remedy: a second struct block
            # pointing at the *same* arrays, so each processor can keep an
            # exclusive copy of the object itself.
            if share_arrays_with.size != size:
                raise ValueError("shared domains must agree on problem size")
            for name in PERSISTENT_FIELDS:
                ptr = share_arrays_with._pointers[name]
                self._dtypes[name] = share_arrays_with._dtypes[name]
                self._counts[name] = share_arrays_with._counts[name]
                self.set_field(name, ptr)
        else:
            for name in PERSISTENT_FIELDS:
                dtype, count = self.field_geometry(name)
                ptr = rt.malloc_managed(count * dtype.itemsize, label=name)
                self._dtypes[name] = dtype
                self._counts[name] = count
                self.set_field(name, ptr)

    # ------------------------------------------------------------------ #
    # geometry

    def field_geometry(self, name: str) -> tuple[np.dtype, int]:
        """dtype and element count of field ``name`` for this size."""
        if name in NODE_FIELDS:
            return np.dtype(np.float64), self.numNode
        if name in ELEM_FIELDS or name in TEMP_KINEMATICS or name in TEMP_GRADIENTS:
            return np.dtype(np.float64), self.numElem
        if name == "m_nodelist":
            return np.dtype(np.int32), 8 * self.numElem
        if name in CONN_FIELDS or name in REG_FIELDS:
            return np.dtype(np.int32), self.numElem
        if name in SYMM_FIELDS:
            return np.dtype(np.int32), (self.size + 1) ** 2
        raise KeyError(name)

    # ------------------------------------------------------------------ #
    # struct-block traffic (all traced)

    def set_field(self, name: str, ptr: DevicePtr | None) -> None:
        """CPU-write a pointer slot in the domain object."""
        i = self._slot_index[name]
        addr = np.uint64(ptr.addr if ptr is not None else 0)
        self._slots.write(i, np.array([addr]))
        self._pointers[name] = ptr
        if ptr is not None:
            self._dtypes.setdefault(name, self.field_geometry(name)[0])
            self._counts.setdefault(name, self.field_geometry(name)[1])

    def load(self, *names: str) -> dict[str, ArrayView]:
        """Dereference fields through the struct block.

        Inside a kernel this counts as GPU reads of the domain page -- the
        access that page-faults when the CPU dirtied the object.
        """
        idx = np.array([self._slot_index[n] for n in names], dtype=np.int64)
        self._slots.gather(idx)
        views: dict[str, ArrayView] = {}
        for n in names:
            ptr = self._pointers[n]
            if ptr is None:
                raise RuntimeError(f"domain field {n} dereferenced while unset")
            views[n] = ptr.typed(self._dtypes[n], self._counts[n])
        return views

    def view(self, name: str) -> ArrayView:
        """Direct (still traced) view of a field, bypassing the struct
        pointer load -- what the 'duplicate domain' remedy uses for temps."""
        ptr = self._pointers[name]
        if ptr is None:
            raise RuntimeError(f"domain field {name} is unset")
        return ptr.typed(self._dtypes[name], self._counts[name])

    def read_scalars(self, *names: str) -> np.ndarray | None:
        """CPU-read time-stepping scalars from the struct block."""
        idx = np.array([_SCALARS.index(n) for n in names], dtype=np.int64)
        return self._scalars.gather(idx)

    def write_scalar(self, name: str, value: float) -> None:
        """CPU-write one time-stepping scalar."""
        i = _SCALARS.index(name)
        self._scalars.write(i, np.array([value]))

    def write_cycle(self, cycle: int) -> None:
        """CPU-write the int32 cycle counter (one shadow word)."""
        view = self.self_ptr.typed(np.int32, 1, offset_bytes=_CYCLE_OFFSET)
        view.write(0, np.array([cycle], np.int32))

    # ------------------------------------------------------------------ #
    # temporaries (the paper's problem pattern)

    def alloc_temps(self, names: Iterable[str]) -> list[DevicePtr]:
        """Allocate temporaries in managed memory and store them into the
        domain object (CPU writes to the shared struct page)."""
        rt = self.session.runtime
        ptrs = []
        for name in names:
            dtype, count = self.field_geometry(name)
            ptr = rt.malloc_managed(count * dtype.itemsize, label=name)
            self.set_field(name, ptr)
            ptrs.append(ptr)
        return ptrs

    def free_temps(self, names: Iterable[str]) -> None:
        """Free temporaries and clear their slots (more CPU struct writes)."""
        rt = self.session.runtime
        for name in names:
            ptr = self._pointers[name]
            if ptr is not None:
                rt.free(ptr)
                self.set_field(name, None)

    # ------------------------------------------------------------------ #
    # diagnostics expansion (paper's XplAllocData protocol)

    def xpl_pointers(self) -> list[tuple[str, DevicePtr]]:
        """Pointer members for ``expand_object`` -- live fields only."""
        return [(n, p) for n, p in self._pointers.items() if p is not None]

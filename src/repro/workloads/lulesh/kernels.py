"""LULESH GPU kernels (simplified physics, faithful memory structure).

Each kernel mirrors the memory behaviour of its RAJA/CUDA counterpart:
it dereferences the arrays it needs *through the domain object* (a traced
GPU read of the struct page -- the fault point the paper diagnoses), then
streams over node- or element-centered arrays.  The arithmetic is a
simplified but deterministic stand-in for the hydrodynamics, enough for
tests to check that state evolves and is conserved where it should be.

The ``temps`` argument lets the "duplicate domain" remedy pass temporary
storage directly instead of through the object, per §IV-A remedy (2).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ...cudart import ArrayView, KernelContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .domain import Domain

__all__ = [
    "calc_force_for_nodes",
    "calc_acceleration_for_nodes",
    "apply_boundary_conditions",
    "calc_velocity_for_nodes",
    "calc_position_for_nodes",
    "calc_kinematics",
    "calc_monotonic_q_gradient",
    "calc_monotonic_q_region",
    "eval_eos",
    "update_volumes",
    "calc_time_constraints",
]


def _views(dom: "Domain", temps: dict[str, ArrayView] | None,
           *names: str) -> dict[str, ArrayView]:
    """Resolve fields: explicit temps bypass the struct block."""
    if temps:
        via_struct = [n for n in names if n not in temps]
        out = dict(temps)
        if via_struct:
            out.update(dom.load(*via_struct))
        return {n: out[n] for n in names}
    return dom.load(*names)


def calc_force_for_nodes(ctx: KernelContext, dom: "Domain",
                         temps: dict[str, ArrayView] | None = None) -> None:
    """Stress + hourglass force accumulation (element -> node scatter)."""
    v = _views(dom, temps, "m_nodelist", "m_x", "m_y", "m_z",
               "m_p", "m_q", "m_fx", "m_fy", "m_fz")
    v["m_nodelist"].read()
    p = v["m_p"].read()
    q = v["m_q"].read()
    for c in ("m_x", "m_y", "m_z"):
        v[c].read()
    if ctx.functional:
        # Simplified: nodal force magnitude follows element (p + q).
        stress = (p + q).mean() if len(p) else 0.0
        n = len(v["m_fx"])
        v["m_fx"].write(0, np.full(n, -stress))
        v["m_fy"].write(0, np.full(n, -stress))
        v["m_fz"].write(0, np.full(n, -stress))
    else:
        for c in ("m_fx", "m_fy", "m_fz"):
            c_view = v[c]
            c_view.write(0, None, hi=len(c_view))


def calc_acceleration_for_nodes(ctx: KernelContext, dom: "Domain",
                                temps: dict[str, ArrayView] | None = None) -> None:
    """a = F / m for every node."""
    v = _views(dom, temps, "m_fx", "m_fy", "m_fz", "m_nodalMass",
               "m_xdd", "m_ydd", "m_zdd")
    mass = v["m_nodalMass"].read()
    for f, a in (("m_fx", "m_xdd"), ("m_fy", "m_ydd"), ("m_fz", "m_zdd")):
        force = v[f].read()
        if ctx.functional:
            v[a].write(0, force / np.maximum(mass, 1e-30))
        else:
            v[a].write(0, None, hi=len(v[a]))


def apply_boundary_conditions(ctx: KernelContext, dom: "Domain",
                              temps: dict[str, ArrayView] | None = None) -> None:
    """Zero accelerations on symmetry planes."""
    v = _views(dom, temps, "m_symmX", "m_symmY", "m_symmZ",
               "m_xdd", "m_ydd", "m_zdd")
    for plane, acc in (("m_symmX", "m_xdd"), ("m_symmY", "m_ydd"),
                       ("m_symmZ", "m_zdd")):
        nodes = v[plane].read()
        if ctx.functional and nodes is not None and len(nodes):
            v[acc].scatter(nodes.astype(np.int64), 0.0)
        elif not ctx.functional:
            n = min(len(v[plane]), len(v[acc]))
            v[acc].write(0, None, hi=n)


def calc_velocity_for_nodes(ctx: KernelContext, dom: "Domain", dt: float,
                            temps: dict[str, ArrayView] | None = None) -> None:
    """v += a * dt."""
    v = _views(dom, temps, "m_xd", "m_yd", "m_zd", "m_xdd", "m_ydd", "m_zdd")
    for vd, a in (("m_xd", "m_xdd"), ("m_yd", "m_ydd"), ("m_zd", "m_zdd")):
        acc = v[a].read()
        vel = v[vd].read()
        if ctx.functional:
            v[vd].write(0, vel + acc * dt)
        else:
            v[vd].write(0, None, hi=len(v[vd]))


def calc_position_for_nodes(ctx: KernelContext, dom: "Domain", dt: float,
                            temps: dict[str, ArrayView] | None = None) -> None:
    """x += v * dt."""
    v = _views(dom, temps, "m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd")
    for x, vd in (("m_x", "m_xd"), ("m_y", "m_yd"), ("m_z", "m_zd")):
        pos = v[x].read()
        vel = v[vd].read()
        if ctx.functional:
            v[x].write(0, pos + vel * dt)
        else:
            v[x].write(0, None, hi=len(v[x]))


def calc_kinematics(ctx: KernelContext, dom: "Domain", dt: float,
                    temps: dict[str, ArrayView] | None = None) -> None:
    """Volume/strain kinematics; writes the dxx/dyy/dzz *temporaries*."""
    v = _views(dom, temps, "m_nodelist", "m_x", "m_y", "m_z",
               "m_xd", "m_yd", "m_zd", "m_volo", "m_v",
               "m_vnew", "m_delv", "m_arealg", "m_dxx", "m_dyy", "m_dzz")
    v["m_nodelist"].read()
    for c in ("m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd"):
        v[c].read()
    volo = v["m_volo"].read()
    vold = v["m_v"].read()
    if ctx.functional:
        e = len(v["m_vnew"])
        strain = 1e-6 * dt
        vnew = vold * (1.0 - strain)
        v["m_vnew"].write(0, vnew)
        v["m_delv"].write(0, vnew - vold)
        v["m_arealg"].write(0, np.cbrt(np.maximum(volo, 1e-30)))
        for d in ("m_dxx", "m_dyy", "m_dzz"):
            v[d].write(0, np.full(e, -strain / 3.0))
    else:
        for n in ("m_vnew", "m_delv", "m_arealg", "m_dxx", "m_dyy", "m_dzz"):
            view = v[n]
            view.write(0, None, hi=len(view))


def calc_monotonic_q_gradient(ctx: KernelContext, dom: "Domain",
                              temps: dict[str, ArrayView] | None = None) -> None:
    """Velocity gradients; writes the six delx/delv *temporaries*."""
    v = _views(dom, temps, "m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd",
               "m_volo", "m_vnew",
               "m_delx_xi", "m_delx_eta", "m_delx_zeta",
               "m_delv_xi", "m_delv_eta", "m_delv_zeta")
    for c in ("m_x", "m_y", "m_z", "m_xd", "m_yd", "m_zd", "m_volo", "m_vnew"):
        v[c].read()
    for g in ("m_delx_xi", "m_delx_eta", "m_delx_zeta",
              "m_delv_xi", "m_delv_eta", "m_delv_zeta"):
        view = v[g]
        if ctx.functional:
            view.write(0, np.full(len(view), 1e-9))
        else:
            view.write(0, None, hi=len(view))


def calc_monotonic_q_region(ctx: KernelContext, dom: "Domain",
                            temps: dict[str, ArrayView] | None = None) -> None:
    """Artificial viscosity terms from the gradients."""
    v = _views(dom, temps, "m_delx_xi", "m_delx_eta", "m_delx_zeta",
               "m_delv_xi", "m_delv_eta", "m_delv_zeta",
               "m_elemBC", "m_qq", "m_ql")
    v["m_elemBC"].read()
    grads = [v[g].read() for g in (
        "m_delx_xi", "m_delx_eta", "m_delx_zeta",
        "m_delv_xi", "m_delv_eta", "m_delv_zeta")]
    if ctx.functional:
        q = sum(np.abs(g) for g in grads)
        v["m_qq"].write(0, q)
        v["m_ql"].write(0, 0.5 * q)
    else:
        for n in ("m_qq", "m_ql"):
            view = v[n]
            view.write(0, None, hi=len(view))


def eval_eos(ctx: KernelContext, dom: "Domain",
             temps: dict[str, ArrayView] | None = None) -> None:
    """Equation of state: update energy, pressure, sound speed."""
    v = _views(dom, temps, "m_e", "m_p", "m_q", "m_qq", "m_ql",
               "m_delv", "m_ss", "m_vnew")
    e = v["m_e"].read()
    qq = v["m_qq"].read()
    ql = v["m_ql"].read()
    delv = v["m_delv"].read()
    v["m_vnew"].read()
    if ctx.functional:
        e_new = np.maximum(e - 0.5 * delv * (e + qq), 0.0)
        p_new = (2.0 / 3.0) * e_new
        v["m_e"].write(0, e_new)
        v["m_p"].write(0, p_new)
        v["m_q"].write(0, qq + ql)
        v["m_ss"].write(0, np.sqrt(np.maximum(p_new, 1e-30)))
    else:
        for n in ("m_e", "m_p", "m_q", "m_ss"):
            view = v[n]
            view.write(0, None, hi=len(view))


def update_volumes(ctx: KernelContext, dom: "Domain",
                   temps: dict[str, ArrayView] | None = None) -> None:
    """Commit the new relative volumes."""
    v = _views(dom, temps, "m_vnew", "m_v")
    vnew = v["m_vnew"].read()
    if ctx.functional:
        v["m_v"].write(0, vnew)
    else:
        v["m_v"].write(0, None, hi=len(v["m_v"]))


def calc_time_constraints(ctx: KernelContext, dom: "Domain",
                          reduce_buf: ArrayView,
                          temps: dict[str, ArrayView] | None = None) -> None:
    """Courant/hydro constraint reduction into a small managed buffer
    (not into the domain object -- which is why Fig 4 shows zero GPU
    writes on ``dom``)."""
    v = _views(dom, temps, "m_ss", "m_vdov", "m_arealg")
    ss = v["m_ss"].read()
    v["m_vdov"].read()
    arealg = v["m_arealg"].read()
    # Only the final block writes the reduced result.
    with ctx.runtime.accessors(1):
        if ctx.functional:
            courant = float(np.min(arealg / np.maximum(ss, 1e-12)))
            hydro = 0.999 * courant
            reduce_buf.write(0, np.array([courant, hydro]))
        else:
            reduce_buf.write(0, None, hi=2)

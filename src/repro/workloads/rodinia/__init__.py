"""Rodinia CUDA benchmarks (paper §IV-C, Table II, Figs 10-11)."""

from .backprop import Backprop
from .cfd import Cfd
from .gaussian import Gaussian
from .lud import Lud
from .nn import NearestNeighbor
from .pathfinder import Pathfinder, pathfinder_reference
from .pathfinder_opt import OverlappedPathfinder

__all__ = [
    "Backprop",
    "Cfd",
    "Gaussian",
    "Lud",
    "NearestNeighbor",
    "Pathfinder",
    "pathfinder_reference",
    "OverlappedPathfinder",
]

"""Rodinia LUD -- LU decomposition (paper Table II).

Findings reproduced:

* ``m_d`` is initialized on the CPU, transferred to the GPU, recomputed
  in place and transferred back -- **but the first row is never updated**
  (L has an implicit unit diagonal; U's first row equals A's), so part of
  the return transfer carries unmodified data;
* the GPU touches most of the matrix in the first iteration and **fewer
  and fewer locations as the decomposition proceeds** (the trailing
  submatrix shrinks), an early-transfer-out opportunity.
"""

from __future__ import annotations

import numpy as np

from ...analysis import Diagnosis, diagnose
from ...cudart import cudaMemcpyKind
from ...runtime import XplAllocData
from ..base import Session, WorkloadRun

__all__ = ["Lud"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
_BLOCK = 16  # Rodinia's LUD tile size


class Lud:
    """Blocked in-place LU decomposition on the simulated GPU."""

    def __init__(self, session: Session, size: int = 64,
                 *, diagnose_each_iteration: bool = False, seed: int = 13) -> None:
        if size < _BLOCK or size % _BLOCK:
            raise ValueError(f"size must be a positive multiple of {_BLOCK}")
        self.session = session
        self.size = size
        self.diagnose_each_iteration = diagnose_each_iteration
        self.diagnoses: list[Diagnosis] = []
        rng = np.random.default_rng(seed)
        a = rng.random((size, size), dtype=np.float32)
        self.host_m = (a + np.eye(size, dtype=np.float32) * size)
        self.m_d = session.runtime.malloc(4 * size * size, label="m_d")

    def descriptors(self) -> list[XplAllocData]:
        return [XplAllocData(self.m_d.addr, "m_d", 4, self.m_d.alloc)]

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        s = self.size
        rt.memcpy(self.m_d, self.host_m, 4 * s * s, H2D)
        mv = self.m_d.typed(np.float32)

        def lud_step(ctx, m, t: int):
            """Eliminate panel ``t``: updates rows/cols > t only."""
            rows = np.arange(t + 1, s, dtype=np.int64)
            if len(rows) == 0:
                return
            pivot = m.gather(np.array([t * s + t]))
            pivot_row = m.read(t * s + t, t * s + s)
            col = m.gather(rows * s + t)
            if ctx.functional:
                lcol = col / pivot[0]
                m.scatter(rows * s + t, lcol)
                tail = m.read((t + 1) * s, s * s)
                tail = tail.reshape(len(rows), s)
                tail[:, t + 1:] -= np.outer(lcol, pivot_row[1:])
                m.write((t + 1) * s, tail.ravel())
            else:
                m.scatter(rows * s + t)
                m.write((t + 1) * s, None, hi=s * s)

        for t in range(s - 1):
            rows = s - t - 1
            grid = max(1, -(-rows // _BLOCK))
            rt.launch(lud_step, grid, _BLOCK, mv, t,
                      name="lud_internal", work=rows * (rows + 1))
            if self.diagnose_each_iteration and self.session.tracer is not None \
                    and t % _BLOCK == 0:
                self.diagnoses.append(diagnose(
                    self.session.tracer, self.descriptors()))

        back = np.empty(s * s, np.float32)
        rt.memcpy(back, self.m_d, 4 * s * s, D2H)

        return WorkloadRun(
            name="lud",
            variant="baseline",
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            diagnoses=self.diagnoses,
            stats={
                "size": s,
                "decomposition_error": self._check(back.reshape(s, s))
                if rt.materialize else float("nan"),
                **self.session.platform.events.summary(),
            },
        )

    def _check(self, lu: np.ndarray) -> float:
        """Max |L @ U - A| -- validates the in-place decomposition."""
        L = np.tril(lu.astype(np.float64), -1) + np.eye(self.size)
        U = np.triu(lu.astype(np.float64))
        return float(np.abs(L @ U - self.host_m).max())

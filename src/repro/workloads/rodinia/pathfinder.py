"""Rodinia Pathfinder (paper Table II, Figs 10 & 11).

Dynamic programming over a ``rows x cols`` cost grid: each iteration a
kernel advances the frontier by ``pyramid_height`` rows.  The memory
behaviour the paper diagnoses: ``gpuWall`` is produced on the CPU and
transferred to the GPU *in full* before computation begins, yet each
kernel only reads its own slab -- with ``N`` iterations, only ``100/N %``
of the array per iteration (Fig 10's access maps).

:class:`Pathfinder` is the baseline; :class:`OverlappedPathfinder` in
:mod:`.pathfinder_opt` transfers each slab just in time, overlapped with
the previous kernel (Fig 11).
"""

from __future__ import annotations

import numpy as np

from ...analysis import Diagnosis, diagnose
from ...cudart import cudaMemcpyKind
from ...runtime import XplAllocData
from ..base import Session, WorkloadRun

__all__ = ["Pathfinder", "pathfinder_reference"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
_BLOCK = 256


def pathfinder_reference(wall: np.ndarray) -> np.ndarray:
    """Reference bottom-up DP result for the full wall (numpy)."""
    result = wall[0].astype(np.int64)
    for r in range(1, len(wall)):
        left = np.concatenate(([result[0]], result[:-1]))
        right = np.concatenate((result[1:], [result[-1]]))
        result = wall[r] + np.minimum(result, np.minimum(left, right))
    return result


class Pathfinder:
    """Baseline pathfinder: full upfront transfer of ``gpuWall``."""

    variant = "baseline"

    def __init__(self, session: Session, cols: int = 100_000, rows: int = 100,
                 pyramid_height: int = 20,
                 *, diagnose_each_iteration: bool = False, seed: int = 31) -> None:
        if rows < 2 or cols < 1 or pyramid_height < 1:
            raise ValueError("invalid pathfinder geometry")
        self.session = session
        self.cols = cols
        self.rows = rows
        self.pyramid_height = pyramid_height
        self.diagnose_each_iteration = diagnose_each_iteration
        self.diagnoses: list[Diagnosis] = []
        rt = session.runtime
        if rt.materialize:
            rng = np.random.default_rng(seed)
            self.host_wall = rng.integers(0, 10, (rows, cols), dtype=np.int32)
        else:
            self.host_wall = np.empty(0, np.int32)
        # gpuWall holds rows 1..rows-1; row 0 seeds gpuResult.
        self.gpuWall = rt.malloc(4 * (rows - 1) * cols, label="gpuWall")
        self.gpuResult = [rt.malloc(4 * cols, label=f"gpuResult{i}")
                          for i in range(2)]

    @property
    def iterations(self) -> int:
        """Number of kernel launches."""
        return -(-(self.rows - 1) // self.pyramid_height)

    def descriptors(self) -> list[XplAllocData]:
        return [XplAllocData(self.gpuWall.addr, "gpuWall", 4, self.gpuWall.alloc)]

    # ------------------------------------------------------------------ #

    def _dynproc_kernel(self, ctx, wall, src, dst, start_row: int, height: int):
        """Advance the DP frontier over rows [start_row, start_row+height)."""
        lo = (start_row - 1) * self.cols
        hi = (start_row - 1 + height) * self.cols
        slab = wall.read(lo, hi)
        result = src.read(0, self.cols)
        if ctx.functional:
            res = result.astype(np.int64)
            rows = slab.reshape(height, self.cols)
            for r in range(height):
                left = np.concatenate(([res[0]], res[:-1]))
                right = np.concatenate((res[1:], [res[-1]]))
                res = rows[r] + np.minimum(res, np.minimum(left, right))
            dst.write(0, np.clip(res, np.iinfo(np.int32).min,
                                 np.iinfo(np.int32).max).astype(np.int32))
        else:
            dst.write(0, None, hi=self.cols)

    def _transfer_in(self) -> None:
        rt = self.session.runtime
        rt.memcpy(self.gpuWall,
                  self.host_wall[1:].ravel() if rt.materialize else None,
                  4 * (self.rows - 1) * self.cols, H2D)
        rt.memcpy(self.gpuResult[0],
                  self.host_wall[0] if rt.materialize else None,
                  4 * self.cols, H2D)

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        self._transfer_in()
        wall_v = self.gpuWall.typed(np.int32)
        res_v = [p.typed(np.int32) for p in self.gpuResult]
        grid = max(1, -(-self.cols // _BLOCK))

        src, dst = 0, 1
        row = 1
        while row < self.rows:
            height = min(self.pyramid_height, self.rows - row)
            rt.launch(self._dynproc_kernel, grid, _BLOCK,
                      wall_v, res_v[src], res_v[dst], row, height,
                      name="dynproc_kernel", work=height * self.cols,
                      ops_per_element=1.0)
            if self.diagnose_each_iteration and self.session.tracer is not None:
                self.diagnoses.append(diagnose(
                    self.session.tracer, self.descriptors(),
                    min_transfer_block_words=self.cols // 8))
            src, dst = dst, src
            row += height

        back = np.empty(self.cols, np.int32)
        rt.memcpy(back, self.gpuResult[src], 4 * self.cols, D2H)
        return WorkloadRun(
            name="pathfinder",
            variant=self.variant,
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            diagnoses=self.diagnoses,
            stats={
                "cols": self.cols, "rows": self.rows,
                "pyramid_height": self.pyramid_height,
                "checksum": float(back.sum()) if rt.materialize else float("nan"),
                **self.session.platform.events.summary(),
            },
        )

    def result(self) -> np.ndarray:
        """Final DP row (functional runs; after :meth:`run`)."""
        src = 0 if self.iterations % 2 == 0 else 1
        return self.gpuResult[src].typed(np.int32).raw.copy()

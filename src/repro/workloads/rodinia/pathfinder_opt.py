"""Overlap-optimized Pathfinder (paper §IV-C and Fig 11).

Instead of transferring ``gpuWall`` as a whole, the revised code only
transfers the array slab that the *next* kernel will access, on a copy
stream that overlaps the compute stream.  On the PCIe testbeds this hides
the kernels under the (dominant) transfer and wins up to ~1.13x; on the
Power9 node the much higher per-chunk stream/issue overhead makes the
revised version slower -- both directions reproduced here.
"""

from __future__ import annotations

import numpy as np

from ...cudart import cudaMemcpyKind
from ..base import WorkloadRun
from .pathfinder import Pathfinder, _BLOCK

__all__ = ["OverlappedPathfinder"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost


class OverlappedPathfinder(Pathfinder):
    """Pathfinder with just-in-time slab transfer on a second stream."""

    variant = "overlapped"

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        platform = self.session.platform
        start = platform.clock.now

        copy_s = rt.new_stream("copy")
        comp_s = rt.new_stream("compute")

        # Row 0 seeds the result vector (small, synchronous).
        rt.memcpy(self.gpuResult[0],
                  self.host_wall[0] if rt.materialize else None,
                  4 * self.cols, H2D)

        wall_v = self.gpuWall.typed(np.int32)
        res_v = [p.typed(np.int32) for p in self.gpuResult]
        grid = max(1, -(-self.cols // _BLOCK))

        src, dst = 0, 1
        row = 1
        while row < self.rows:
            height = min(self.pyramid_height, self.rows - row)
            # Just-in-time slab transfer on the copy stream.
            lo = (row - 1) * self.cols
            chunk = self.gpuWall + 4 * lo
            host_chunk = (self.host_wall[row:row + height].ravel()
                          if rt.materialize else None)
            rt.memcpy(chunk, host_chunk, 4 * height * self.cols, H2D,
                      stream=copy_s)
            copy_s.enqueue(platform.stream_op_overhead)
            chunk_ready = copy_s.ready

            # The kernel waits for its own slab, nothing else.
            comp_s.enqueue(0.0, after=chunk_ready)
            rt.launch(self._dynproc_kernel, grid, _BLOCK,
                      wall_v, res_v[src], res_v[dst], row, height,
                      name="dynproc_kernel", work=height * self.cols,
                      ops_per_element=1.0, stream=comp_s)
            src, dst = dst, src
            row += height

        rt.device_synchronize()
        back = np.empty(self.cols, np.int32)
        rt.memcpy(back, self.gpuResult[src], 4 * self.cols, D2H)
        return WorkloadRun(
            name="pathfinder",
            variant=self.variant,
            platform=platform.name,
            sim_time=platform.clock.now - start,
            stats={
                "cols": self.cols, "rows": self.rows,
                "pyramid_height": self.pyramid_height,
                "checksum": float(back.sum()) if rt.materialize else float("nan"),
                **platform.events.summary(),
            },
        )

"""Rodinia NN -- nearest neighbors (paper Table II: "no possible
improvements identified").

The clean benchmark: locations are copied in, every byte is used, the
result vector is fully written by the GPU and copied out.  The detectors
should stay silent.
"""

from __future__ import annotations

import numpy as np

from ...cudart import cudaMemcpyKind
from ..base import Session, WorkloadRun

__all__ = ["NearestNeighbor"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
_BLOCK = 256


class NearestNeighbor:
    """Distance of every record to a query point, then a host top-k."""

    def __init__(self, session: Session, records: int = 8192, k: int = 5,
                 seed: int = 17) -> None:
        if records < 1 or k < 1:
            raise ValueError("records and k must be positive")
        self.session = session
        self.records = records
        self.k = min(k, records)
        rng = np.random.default_rng(seed)
        self.host_locations = rng.random(2 * records, dtype=np.float32)
        rt = session.runtime
        self.d_locations = rt.malloc(4 * 2 * records, label="d_locations")
        self.d_distances = rt.malloc(4 * records, label="d_distances")

    def run(self, lat: float = 0.5, lng: float = 0.5) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        n = self.records
        rt.memcpy(self.d_locations, self.host_locations, 4 * 2 * n, H2D)
        locs = self.d_locations.typed(np.float32)
        dists = self.d_distances.typed(np.float32)

        def euclid(ctx, loc, out):
            xy = loc.read(0, 2 * n)
            if ctx.functional:
                pts = xy.reshape(n, 2)
                d = np.sqrt((pts[:, 0] - lat) ** 2 + (pts[:, 1] - lng) ** 2)
                out.write(0, d.astype(np.float32))
            else:
                out.write(0, None, hi=n)

        rt.launch(euclid, max(1, -(-n // _BLOCK)), _BLOCK, locs, dists,
                  name="euclid", work=n, ops_per_element=6.0)

        back = np.empty(n, np.float32)
        rt.memcpy(back, self.d_distances, 4 * n, D2H)
        rt.cpu_compute(n)  # host-side top-k scan
        nearest = np.argsort(back)[: self.k] if rt.materialize else None

        return WorkloadRun(
            name="nn",
            variant="baseline",
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            stats={
                "records": n,
                "nearest": float(nearest[0]) if nearest is not None else float("nan"),
                **self.session.platform.events.summary(),
            },
        )

"""Rodinia Backprop (paper Table II).

A two-layer neural-network training step.  The paper's findings, which
this port reproduces structurally:

* ``output_hidden_cuda`` is **allocated but never used**;
* ``input_cuda`` is copied CPU->GPU and then **back to the CPU although
  the GPU never modified it**.
"""

from __future__ import annotations

import numpy as np

from ...cudart import cudaMemcpyKind
from ..base import Session, WorkloadRun

__all__ = ["Backprop"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
_BLOCK = 256
_HIDDEN = 16


class Backprop:
    """Backprop forward + weight-adjust pass on the simulated GPU."""

    def __init__(self, session: Session, input_size: int = 65536,
                 seed: int = 11) -> None:
        if input_size < 1:
            raise ValueError("input_size must be positive")
        self.session = session
        self.n = input_size
        rng = np.random.default_rng(seed)
        self.host_input = rng.random(self.n + 1, dtype=np.float32)
        self.host_weights = rng.random((self.n + 1) * (_HIDDEN + 1),
                                       dtype=np.float32)
        rt = session.runtime
        f4 = np.dtype(np.float32).itemsize
        self.input_cuda = rt.malloc(f4 * (self.n + 1), label="input_cuda")
        self.input_hidden_cuda = rt.malloc(
            f4 * (self.n + 1) * (_HIDDEN + 1), label="input_hidden_cuda")
        # The paper's first finding: allocated, then never touched.
        self.output_hidden_cuda = rt.malloc(
            f4 * (_HIDDEN + 1), label="output_hidden_cuda")
        self.hidden_partial_sum = rt.malloc(
            f4 * max(1, (self.n // _BLOCK)) * _HIDDEN, label="hidden_partial_sum")
        self.input_prev_weights_cuda = rt.malloc(
            f4 * (self.n + 1) * (_HIDDEN + 1), label="input_prev_weights_cuda")

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        n, f4 = self.n, 4

        rt.memcpy(self.input_cuda, self.host_input, f4 * (n + 1), H2D)
        rt.memcpy(self.input_hidden_cuda, self.host_weights,
                  f4 * (n + 1) * (_HIDDEN + 1), H2D)
        rt.memcpy(self.input_prev_weights_cuda,
                  np.zeros((n + 1) * (_HIDDEN + 1), np.float32),
                  f4 * (n + 1) * (_HIDDEN + 1), H2D)

        iv = self.input_cuda.typed(np.float32)
        wv = self.input_hidden_cuda.typed(np.float32)
        pv = self.hidden_partial_sum.typed(np.float32)
        dv = self.input_prev_weights_cuda.typed(np.float32)

        def layerforward(ctx, inp, w, partial):
            x = inp.read(0, len(inp))
            weights = w.read(0, len(w))
            if ctx.functional:
                s = float(x.sum()) if x is not None else 0.0
                partial.write(0, np.full(len(partial), s, np.float32))
            else:
                partial.write(0, None, hi=len(partial))

        def adjust_weights(ctx, inp, w, prev):
            inp.read(0, len(inp))
            prev.read(0, len(prev))
            old = w.read(0, len(w))
            if ctx.functional:
                w.write(0, old * np.float32(0.999))
            else:
                w.write(0, None, hi=len(w))

        grid = max(1, -(-n // _BLOCK))
        rt.launch(layerforward, grid, _BLOCK, iv, wv, pv,
                  name="bpnn_layerforward", work=n * _HIDDEN)
        rt.launch(adjust_weights, grid, _BLOCK, iv, wv, dv,
                  name="bpnn_adjust_weights", work=n * _HIDDEN)

        # The paper's second finding: input_cuda comes back although the
        # GPU never wrote it.
        back = np.empty(n + 1, np.float32)
        rt.memcpy(back, self.input_cuda, f4 * (n + 1), D2H)
        weights_back = np.empty((n + 1) * (_HIDDEN + 1), np.float32)
        rt.memcpy(weights_back, self.input_hidden_cuda,
                  f4 * (n + 1) * (_HIDDEN + 1), D2H)

        return WorkloadRun(
            name="backprop",
            variant="baseline",
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            stats={"input_size": n,
                   **self.session.platform.events.summary()},
        )

"""Rodinia Gaussian elimination (paper Table II).

Finding reproduced: ``m_cuda`` (the multiplier matrix) is allocated on the
CPU and transferred to the GPU, but **the GPU overwrites all transferred
values before using them** -- the initial transfer can be eliminated.
"""

from __future__ import annotations

import numpy as np

from ...cudart import cudaMemcpyKind
from ..base import Session, WorkloadRun

__all__ = ["Gaussian"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
_BLOCK = 64


class Gaussian:
    """In-place Gaussian elimination ``a x = b`` on the simulated GPU."""

    def __init__(self, session: Session, size: int = 64,
                 *, eliminate_m_transfer: bool = False, seed: int = 5) -> None:
        if size < 2:
            raise ValueError("matrix size must be >= 2")
        self.session = session
        self.size = size
        self.eliminate_m_transfer = eliminate_m_transfer
        rng = np.random.default_rng(seed)
        # Diagonally dominant => numerically stable without pivoting.
        self.host_a = rng.random((size, size), dtype=np.float32) + \
            np.eye(size, dtype=np.float32) * size
        self.host_b = rng.random(size, dtype=np.float32)
        rt = session.runtime
        f4 = 4
        self.a_cuda = rt.malloc(f4 * size * size, label="a_cuda")
        self.b_cuda = rt.malloc(f4 * size, label="b_cuda")
        self.m_cuda = rt.malloc(f4 * size * size, label="m_cuda")

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        s, f4 = self.size, 4

        rt.memcpy(self.a_cuda, self.host_a, f4 * s * s, H2D)
        rt.memcpy(self.b_cuda, self.host_b, f4 * s, H2D)
        if not self.eliminate_m_transfer:
            # The diagnosed waste: every one of these zeroes is overwritten
            # by Fan1 before Fan2 reads it.
            rt.memcpy(self.m_cuda, np.zeros(s * s, np.float32), f4 * s * s, H2D)

        av = self.a_cuda.typed(np.float32)
        bv = self.b_cuda.typed(np.float32)
        mv = self.m_cuda.typed(np.float32)

        def fan1(ctx, a, m, t: int):
            """Compute column multipliers below the pivot row ``t``."""
            rows = np.arange(t + 1, s, dtype=np.int64)
            if len(rows) == 0:
                return
            pivot = a.gather(np.array([t * s + t]))
            col = a.gather(rows * s + t)
            if ctx.functional:
                m.scatter(rows * s + t, col / pivot[0])
            else:
                m.scatter(rows * s + t)

        def fan2(ctx, a, b, m, t: int):
            """Eliminate column ``t`` from all lower rows."""
            rows = np.arange(t + 1, s, dtype=np.int64)
            if len(rows) == 0:
                return
            mult = m.gather(rows * s + t)
            pivot_row = a.read(t * s, t * s + s)
            pivot_b = b.gather(np.array([t], dtype=np.int64))
            if ctx.functional:
                block = a.read((t + 1) * s, s * s)
                block = block.reshape(len(rows), s)
                block -= np.outer(mult, pivot_row)
                a.write((t + 1) * s, block.ravel())
                old_b = b.gather(rows)
                b.scatter(rows, old_b - mult * pivot_b[0])
            else:
                a.write((t + 1) * s, None, hi=s * s)
                b.scatter(rows)

        for t in range(s - 1):
            rows = s - t - 1
            grid = max(1, -(-rows // _BLOCK))
            rt.launch(fan1, grid, _BLOCK, av, mv, t,
                      name="Fan1", work=rows)
            rt.launch(fan2, grid, _BLOCK, av, bv, mv, t,
                      name="Fan2", work=rows * s)

        back_a = np.empty(s * s, np.float32)
        back_b = np.empty(s, np.float32)
        rt.memcpy(back_a, self.a_cuda, f4 * s * s, D2H)
        rt.memcpy(back_b, self.b_cuda, f4 * s, D2H)
        x = self._back_substitute(back_a.reshape(s, s), back_b) \
            if rt.materialize else None

        return WorkloadRun(
            name="gaussian",
            variant="no_m_transfer" if self.eliminate_m_transfer else "baseline",
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            stats={
                "size": s,
                "residual": self._residual(x),
                **self.session.platform.events.summary(),
            },
        )

    def _back_substitute(self, U: np.ndarray, c: np.ndarray) -> np.ndarray:
        self.session.runtime.cpu_compute(self.size ** 2)
        x = np.zeros(self.size, np.float64)
        for i in range(self.size - 1, -1, -1):
            x[i] = (c[i] - U[i, i + 1:] @ x[i + 1:]) / U[i, i]
        return x

    def _residual(self, x: np.ndarray | None) -> float:
        if x is None:
            return float("nan")
        return float(np.abs(self.host_a.astype(np.float64) @ x
                            - self.host_b).max())

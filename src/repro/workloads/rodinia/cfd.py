"""Rodinia CFD -- Euler3D solver (paper Table II: "no possible
improvements identified").

Structure: an unstructured-mesh flux computation where every array is
fully streamed each iteration.  All transfers are used, everything the
GPU writes is consumed -- the second clean benchmark for the detectors.
"""

from __future__ import annotations

import numpy as np

from ...cudart import cudaMemcpyKind
from ..base import Session, WorkloadRun

__all__ = ["Cfd"]

H2D = cudaMemcpyKind.cudaMemcpyHostToDevice
D2H = cudaMemcpyKind.cudaMemcpyDeviceToHost
_BLOCK = 192
_VARS = 5  # density, 3x momentum, energy


class Cfd:
    """Simplified Euler3D: per-cell flux accumulation + time integration."""

    def __init__(self, session: Session, cells: int = 4096,
                 iterations: int = 4, seed: int = 23) -> None:
        if cells < 2:
            raise ValueError("need at least two cells")
        self.session = session
        self.cells = cells
        self.iterations = iterations
        rng = np.random.default_rng(seed)
        self.host_variables = (rng.random(_VARS * cells, dtype=np.float32)
                               + np.float32(1.0))
        rt = session.runtime
        self.d_variables = rt.malloc(4 * _VARS * cells, label="variables")
        self.d_old = rt.malloc(4 * _VARS * cells, label="old_variables")
        self.d_fluxes = rt.malloc(4 * _VARS * cells, label="fluxes")
        self.d_step = rt.malloc(4 * cells, label="step_factors")

    def run(self) -> WorkloadRun:
        rt = self.session.runtime
        start = self.session.platform.clock.now
        n = self.cells
        rt.memcpy(self.d_variables, self.host_variables, 4 * _VARS * n, H2D)
        var = self.d_variables.typed(np.float32)
        old = self.d_old.typed(np.float32)
        flux = self.d_fluxes.typed(np.float32)
        step = self.d_step.typed(np.float32)
        grid = max(1, -(-n // _BLOCK))

        def copy_kernel(ctx, src, dst):
            data = src.read(0, len(src))
            dst.write(0, data if ctx.functional else None,
                      hi=None if ctx.functional else len(dst))

        def step_factor(ctx, v, s):
            data = v.read(0, _VARS * n)
            if ctx.functional:
                rho = data[:n]
                s.write(0, (0.5 / np.sqrt(np.maximum(rho, 1e-6))).astype(np.float32))
            else:
                s.write(0, None, hi=n)

        def compute_flux(ctx, v, f):
            data = v.read(0, _VARS * n)
            if ctx.functional:
                rolled = np.roll(data.reshape(_VARS, n), 1, axis=1)
                f.write(0, (0.1 * (rolled.ravel() - data)).astype(np.float32))
            else:
                f.write(0, None, hi=_VARS * n)

        def time_step(ctx, v, o, f, s):
            vd = v.read(0, _VARS * n)
            od = o.read(0, _VARS * n)
            fd = f.read(0, _VARS * n)
            sd = s.read(0, n)
            if ctx.functional:
                factors = np.tile(sd, _VARS)
                v.write(0, (od + factors * fd).astype(np.float32))
            else:
                v.write(0, None, hi=_VARS * n)

        for _ in range(self.iterations):
            rt.launch(copy_kernel, grid, _BLOCK, var, old,
                      name="cuda_copy", work=_VARS * n)
            rt.launch(step_factor, grid, _BLOCK, var, step,
                      name="compute_step_factor", work=n)
            rt.launch(compute_flux, grid, _BLOCK, var, flux,
                      name="compute_flux", work=_VARS * n, ops_per_element=12.0)
            rt.launch(time_step, grid, _BLOCK, var, old, flux, step,
                      name="time_step", work=_VARS * n)

        back = np.empty(_VARS * n, np.float32)
        rt.memcpy(back, self.d_variables, 4 * _VARS * n, D2H)

        return WorkloadRun(
            name="cfd",
            variant="baseline",
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            stats={
                "cells": n,
                "iterations": self.iterations,
                "density_mean": float(back[:n].mean()) if rt.materialize
                else float("nan"),
                **self.session.platform.events.summary(),
            },
        )

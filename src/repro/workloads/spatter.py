"""Spatter-style gather/scatter workload generator.

Spatter (Lavin et al., "Evaluating Gather and Scatter Performance on
CPUs and GPUs") drives memory systems with *pattern specs*: a base index
pattern applied ``count`` times at stride ``delta``, as a gather (sparse
read, dense write) or scatter (dense read, sparse write).  This module
reproduces that spec format over the simulated runtime:

* :class:`SpatterSpec` -- the JSON-compatible pattern description, plus
  builders for the three canonical families the paper sweeps: uniform
  stride, mostly-stride-1 (unit stride with a periodic jump) and
  indirection (pseudo-random indices read through an index buffer);
* :class:`SpatterWorkload` -- runs a spec against a
  :class:`~repro.workloads.base.Session` with full tracing, so shadow
  maps show exactly the sparse footprints the pattern implies;
* :func:`to_mini_cuda` -- emits the equivalent instrumentable mini-CUDA
  program, the bridge into ``repro-debug`` and the interpreter pipeline.

Index generation is a hand-rolled LCG, not :mod:`random` -- specs must
be bit-reproducible across sessions for deterministic transcripts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..analysis import Diagnosis, diagnose
from ..runtime import XplAllocData
from .base import Session, WorkloadRun

__all__ = ["SpatterSpec", "SpatterWorkload", "to_mini_cuda",
           "uniform_stride", "mostly_stride_1", "indirection"]

_BLOCK = 32

#: glibc's LCG constants; any fixed full-period choice works.
_LCG_A = 1103515245
_LCG_C = 12345
_LCG_M = 1 << 31


def _lcg_indices(n: int, bound: int, seed: int) -> np.ndarray:
    """``n`` deterministic pseudo-random indices in ``[0, bound)``."""
    out = np.empty(n, np.int64)
    x = (seed * 2 + 1) % _LCG_M
    for i in range(n):
        x = (_LCG_A * x + _LCG_C) % _LCG_M
        out[i] = (x >> 7) % bound
    return out


@dataclass(frozen=True)
class SpatterSpec:
    """One gather/scatter pattern spec (Spatter JSON compatible).

    The flattened index stream is ``pattern[j] + i * delta`` for each
    application ``i`` in ``range(count)`` -- exactly Spatter's semantics.
    """

    name: str
    kind: str                      #: ``gather`` | ``scatter``
    pattern: tuple[int, ...]
    delta: int
    count: int
    iterations: int = 2            #: kernel launches per run
    indirect: bool = False         #: indices read through a traced buffer
    seed: int = 1                  #: LCG seed (indirection patterns)

    def __post_init__(self) -> None:
        if self.kind not in ("gather", "scatter"):
            raise ValueError(f"kind must be gather|scatter, got {self.kind!r}")
        if not self.pattern or self.count < 1 or self.delta < 0:
            raise ValueError("pattern must be non-empty with count >= 1")
        if any(p < 0 for p in self.pattern):
            raise ValueError("pattern indices must be non-negative")

    # ------------------------------------------------------------------ #
    # geometry

    def flat_indices(self) -> np.ndarray:
        """The full index stream, one element per traced sparse access."""
        pat = np.asarray(self.pattern, np.int64)
        return (np.arange(self.count, dtype=np.int64)[:, None] * self.delta
                + pat).ravel()

    @property
    def n(self) -> int:
        """Accesses per kernel (length of the flat index stream)."""
        return self.count * len(self.pattern)

    @property
    def data_length(self) -> int:
        """Elements the sparse side must hold (max index + 1)."""
        return int(self.flat_indices().max()) + 1

    # ------------------------------------------------------------------ #
    # JSON

    @classmethod
    def from_json(cls, text: str) -> "SpatterSpec":
        """Parse a spec from JSON (accepts Spatter's ``kernel`` key too)."""
        raw = json.loads(text)
        if isinstance(raw, list):  # Spatter files hold a list of specs
            raw = raw[0]
        kind = str(raw.get("kind", raw.get("kernel", "gather"))).lower()
        return cls(
            name=str(raw.get("name", kind)),
            kind=kind,
            pattern=tuple(int(p) for p in raw["pattern"]),
            delta=int(raw.get("delta", len(raw["pattern"]))),
            count=int(raw.get("count", 1)),
            iterations=int(raw.get("iterations", 2)),
            indirect=bool(raw.get("indirect", False)),
            seed=int(raw.get("seed", 1)),
        )

    @classmethod
    def load(cls, path: str | Path) -> "SpatterSpec":
        return cls.from_json(Path(path).read_text())

    def to_json(self) -> str:
        return json.dumps({
            "name": self.name, "kind": self.kind,
            "pattern": list(self.pattern), "delta": self.delta,
            "count": self.count, "iterations": self.iterations,
            "indirect": self.indirect, "seed": self.seed,
        }, indent=2) + "\n"


# ---------------------------------------------------------------------- #
# canonical pattern families


def uniform_stride(stride: int, *, length: int = 8, count: int = 16,
                   kind: str = "gather") -> SpatterSpec:
    """Spatter's UNIFORM family: ``[0, s, 2s, ...]`` applied back to back."""
    pattern = tuple(i * stride for i in range(length))
    return SpatterSpec(name=f"uniform-{stride}", kind=kind, pattern=pattern,
                       delta=length * stride, count=count)


def mostly_stride_1(*, length: int = 16, jump: int = 64,
                    count: int = 16, kind: str = "gather") -> SpatterSpec:
    """Unit stride with one periodic jump outlier per pattern window.

    Models the "mostly stride-1" access shape: dense runs a prefetcher
    loves, punctured by one far access that drags in an extra page.
    """
    pattern = tuple(range(length - 1)) + (length - 1 + jump,)
    return SpatterSpec(name=f"ms1-{jump}", kind=kind, pattern=pattern,
                       delta=length + jump, count=count)


def indirection(*, length: int = 64, spread: int = 4096,
                count: int = 1, seed: int = 1,
                kind: str = "gather") -> SpatterSpec:
    """LCG-generated indirection pattern read through an index buffer."""
    pattern = tuple(int(v) for v in _lcg_indices(length, spread, seed))
    return SpatterSpec(name=f"indirect-{seed}", kind=kind, pattern=pattern,
                       delta=0, count=count, indirect=True, seed=seed)


# ---------------------------------------------------------------------- #
# simulated-runtime workload


class SpatterWorkload:
    """Run one :class:`SpatterSpec` against the simulated runtime.

    Three managed allocations mirror Spatter's buffers: ``data`` (the
    sparse side), ``idx`` (the index stream) and ``res`` (the dense
    side).  Each iteration launches one gather/scatter kernel, then the
    CPU touches the dense side -- the host half of the pipeline that
    makes placement interesting (and, for alternating touches, visible
    to the anti-pattern detectors).
    """

    def __init__(self, session: Session, spec: SpatterSpec) -> None:
        self.session = session
        self.spec = spec
        self.flat = spec.flat_indices()
        n = spec.n
        rt = session.runtime
        self.data = rt.malloc_managed(4 * spec.data_length, label="data")
        self.idx = rt.malloc_managed(4 * n, label="idx")
        self.res = rt.malloc_managed(4 * n, label="res")
        self.diagnoses: list[Diagnosis] = []

    @property
    def variant(self) -> str:
        kind = self.spec.kind
        return f"{kind}-indirect" if self.spec.indirect else kind

    def descriptors(self) -> list[XplAllocData]:
        return [
            XplAllocData(self.data.addr, "data", 4, self.data.alloc),
            XplAllocData(self.idx.addr, "idx", 4, self.idx.alloc),
            XplAllocData(self.res.addr, "res", 4, self.res.alloc),
        ]

    # ------------------------------------------------------------------ #

    def _gather_kernel(self, ctx, data, idx, res, n: int) -> None:
        if self.spec.indirect:
            idx.read(0, n)  # the indirection load itself is traced
        vals = data.gather(self.flat)
        res.write(0, vals, hi=n)

    def _scatter_kernel(self, ctx, data, idx, res, n: int) -> None:
        if self.spec.indirect:
            idx.read(0, n)
        vals = res.read(0, n)
        data.scatter(self.flat, vals)

    def run(self) -> WorkloadRun:
        spec = self.spec
        rt = self.session.runtime
        start = self.session.platform.clock.now
        n = spec.n
        data_v = self.data.typed(np.int32)
        idx_v = self.idx.typed(np.int32)
        res_v = self.res.typed(np.int32)

        # Host-side setup: all three buffers are born on the CPU.
        idx_v.write(0, self.flat.astype(np.int32), hi=n)
        if rt.materialize:
            data_v.write(0, np.arange(spec.data_length, dtype=np.int32))
        else:
            data_v.write(0, None, hi=spec.data_length)
        res_v.fill(0, 0, n)

        kernel = self._gather_kernel if spec.kind == "gather" \
            else self._scatter_kernel
        grid = max(1, -(-n // _BLOCK))
        for _ in range(spec.iterations):
            rt.launch(kernel, grid, _BLOCK, data_v, idx_v, res_v, n,
                      name=f"{spec.kind}_kernel", work=n,
                      ops_per_element=1.0)
            # The CPU consumes (gather) or refreshes (scatter) the dense
            # side between launches.
            if spec.kind == "gather":
                res_v.rmw(0, n, lambda v: v + 1)
            else:
                res_v.write(0, None, hi=n)

        if self.session.tracer is not None:
            self.diagnoses.append(diagnose(self.session.tracer,
                                           self.descriptors()))
        touched = np.unique(self.flat)
        return WorkloadRun(
            name="spatter",
            variant=f"{self.variant}:{spec.name}",
            platform=self.session.platform.name,
            sim_time=self.session.platform.clock.now - start,
            diagnoses=self.diagnoses,
            stats={
                "pattern_length": len(spec.pattern),
                "delta": spec.delta, "count": spec.count,
                "accesses_per_kernel": n,
                "iterations": spec.iterations,
                "data_elements": spec.data_length,
                "footprint_density": len(touched) / spec.data_length,
                **self.session.platform.events.summary(),
            },
        )


# ---------------------------------------------------------------------- #
# mini-CUDA emission

#: Largest index stream :func:`to_mini_cuda` embeds as literal statements.
_MAX_EMBED = 512


def to_mini_cuda(spec: SpatterSpec) -> str:
    """The spec as an instrumentable mini-CUDA program.

    The index stream is embedded as literal ``idx[k] = v;`` statements so
    the generated program is self-contained and byte-deterministic; the
    kernel performs the gather/scatter through the index buffer exactly
    like Spatter's CUDA backend.  Debuggable end to end with
    ``repro-debug --spatter spec.json``.
    """
    flat = spec.flat_indices()
    n = len(flat)
    if n > _MAX_EMBED:
        raise ValueError(
            f"pattern expands to {n} accesses; at most {_MAX_EMBED} can be"
            " embedded as a mini-CUDA program (shrink count/pattern)")
    grid = max(1, -(-n // _BLOCK))
    if spec.kind == "gather":
        body = "res[i] = data[idx[i]];"
        host_loop = "s += res[i];"
    else:
        body = "data[idx[i]] = res[i];"
        host_loop = "res[i] = i; s += data[idx[i]];"
    idx_lines = "\n".join(f"    idx[{k}] = {int(v)};"
                          for k, v in enumerate(flat))
    return f"""\
#pragma xpl replace cudaMallocManaged
cudaError_t trcMallocManaged(void** p, size_t sz);
#pragma xpl replace kernel-launch
void traceKernelLaunch(int g, int b, int s, int st, ...);

__global__ void {spec.kind}_kernel(int* data, int* idx, int* res, int n) {{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n) {{ {body} }}
}}

int main() {{
    int* data;
    int* idx;
    int* res;
    cudaMallocManaged((void**)&data, {4 * spec.data_length});
    cudaMallocManaged((void**)&idx, {4 * n});
    cudaMallocManaged((void**)&res, {4 * n});
    for (int i = 0; i < {spec.data_length}; i++) {{ data[i] = i; }}
{idx_lines}
    int s = 0;
    {spec.kind}_kernel<<<{grid}, {_BLOCK}>>>(data, idx, res, {n});
    for (int i = 0; i < {n}; i++) {{ {host_loop} }}
    {spec.kind}_kernel<<<{grid}, {_BLOCK}>>>(data, idx, res, {n});
#pragma xpl diagnostic tracePrint(out; data, idx, res)
    return s;
}}
"""

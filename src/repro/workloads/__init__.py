"""Benchmark applications ported to the simulated CUDA runtime."""

from .base import Session, WorkloadRun, make_session

__all__ = ["Session", "WorkloadRun", "make_session"]

"""Benchmark applications ported to the simulated CUDA runtime."""

from .base import Session, WorkloadRun, make_session
from .spatter import (
    SpatterSpec,
    SpatterWorkload,
    indirection,
    mostly_stride_1,
    to_mini_cuda,
    uniform_stride,
)

__all__ = [
    "Session",
    "WorkloadRun",
    "make_session",
    "SpatterSpec",
    "SpatterWorkload",
    "indirection",
    "mostly_stride_1",
    "to_mini_cuda",
    "uniform_stride",
]

"""Terminal heatmap renderer: intensity ramps with epoch scrubbing.

Each allocation renders as one strip per epoch -- a row of cells whose
intensity encodes combined access heat for that word bucket.  With color
enabled the ramp is a single-hue blue background ramp (256-color);
without (``NO_COLOR``, pipes, dumb terminals) it degrades to a pure
ASCII density ramp with no escape sequences at all.
"""

from __future__ import annotations

import io
import os
import sys
from typing import IO

import numpy as np

from .store import AllocationHeat, HeatStore

__all__ = ["render_alloc", "render_store", "render_strip", "supports_color"]

#: ASCII density ramp, low to high (space = untouched).
ASCII_RAMP = " .:-=+*#%@"

#: 256-color xterm background indices, one hue (blue), dark to bright.
ANSI_RAMP = (17, 18, 19, 20, 26, 32, 38, 44, 50, 87)

_RESET = "\x1b[0m"


def supports_color(stream: IO[str] | None = None) -> bool:
    """Honour ``NO_COLOR`` and only color real terminals."""
    if "NO_COLOR" in os.environ:
        return False
    stream = stream if stream is not None else sys.stdout
    return bool(getattr(stream, "isatty", lambda: False)())


def _levels(row: np.ndarray, peak: int, nlevels: int) -> np.ndarray:
    """Map counts to ramp levels 0..nlevels-1 (sqrt scale, 0 = no heat)."""
    if peak <= 0:
        return np.zeros(len(row), np.int64)
    scaled = np.sqrt(row / peak)
    lev = np.ceil(scaled * (nlevels - 1)).astype(np.int64)
    return np.clip(lev, 0, nlevels - 1)


def _strip(row: np.ndarray, peak: int, color: bool) -> str:
    if color:
        lev = _levels(row, peak, len(ANSI_RAMP) + 1)
        cells = []
        for v in lev:
            if v == 0:
                cells.append(" ")
            else:
                cells.append(f"\x1b[48;5;{ANSI_RAMP[v - 1]}m \x1b[49m")
        return "".join(cells) + _RESET
    lev = _levels(row, peak, len(ASCII_RAMP))
    return "".join(ASCII_RAMP[v] for v in lev)


def render_strip(row: np.ndarray, peak: int, *, color: bool = False) -> str:
    """One bucket row as an intensity strip (public single-row renderer).

    The strip the epoch rows of :func:`render_alloc` use, exposed for
    consumers that render live (not yet frozen) heat -- the interactive
    debugger's ``heat`` command and the stream monitor.
    """
    return _strip(row, peak, color)


def render_alloc(heat: AllocationHeat, *, color: bool = False,
                 epoch: int | None = None, sites: int = 3) -> str:
    """Render one allocation's heat strips (one row per epoch).

    :param epoch: only render this epoch number (scrubbing); ``None``
        renders the full history.
    :param sites: hottest-region attribution lines to append (0 = none).
    """
    out = io.StringIO()
    mat = heat.matrix()
    peak = int(mat.max()) if mat.size else 0
    out.write(f"{heat.label}  ({heat.size} bytes, {heat.nwords} words, "
              f"{heat.nbuckets} buckets, peak {peak})\n")
    for e in heat.epochs:
        if epoch is not None and e.epoch != epoch:
            continue
        out.write(f"  e{e.epoch:<4d}|{_strip(e.heat, peak, color)}"
                  f"| {e.total}\n")
    if sites:
        region = heat.hottest_region(k_sites=sites)
        if region is not None and region["sites"]:
            where = (f"epoch {region['epoch']}, words "
                     f"[{region['word_lo']},{region['word_hi']})")
            out.write(f"  hottest {where}:\n")
            for site, n in region["sites"]:
                out.write(f"    {site.label}  x{n}\n")
    return out.getvalue()


def render_store(store: HeatStore, *, color: bool | None = None,
                 epoch: int | None = None, sites: int = 3) -> str:
    """Render every touched allocation in ``store``.

    :param color: force color on/off; ``None`` auto-detects via
        :func:`supports_color`.
    """
    if color is None:
        color = supports_color()
    allocs = store.allocations()
    out = io.StringIO()
    head = f"=== temporal heatmap: {len(allocs)} allocation(s), " \
           f"{len(store.epochs_closed)} epoch(s)"
    if epoch is not None:
        head += f" [showing epoch {epoch}]"
    out.write(head + " ===\n")
    for heat in allocs:
        out.write(render_alloc(heat, color=color, epoch=epoch, sites=sites))
        out.write("\n")
    return out.getvalue()

"""``python -m repro.heatmap`` -> the ``repro-report`` CLI."""

from .cli import main

raise SystemExit(main())

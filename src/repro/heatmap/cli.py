"""``repro-report``: run a workload and emit a heat-profiled run report.

Builds on ``repro-trace``: the same telemetry artifacts plus per-epoch
access heat, and renders everything into a single self-contained
``report.html`` (plus ``heat.csv`` / ``heat.npz`` exports)::

    repro-report --workload pathfinder --platform pcie --out /tmp/r

``--ansi`` additionally prints the terminal heatmap (honours ``NO_COLOR``;
``--epoch N`` scrubs to one epoch).

Where ``repro-trace`` diagnoses once at the end, the report runners prefer
workload variants that diagnose *every iteration* so each epoch freezes
its own heat row -- that per-epoch sequence is the temporal axis of the
heatmaps.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Callable

from ..analysis import diagnose
from ..signature.tracker import PhaseTracker
from ..telemetry import context
from ..telemetry.cli import PLATFORM_ALIASES, WORKLOADS
from ..telemetry.events_jsonl import JsonlWriter
from ..telemetry.recorder import TelemetryRecorder
from ..workloads.base import Session, WorkloadRun, make_session

from .ansi import render_store, supports_color
from .html import build_report
from .store import HeatStore

__all__ = ["main", "REPORT_RUNNERS", "run_report"]


def _pathfinder(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Pathfinder
    return Pathfinder(session, cols=8192, rows=40, pyramid_height=8,
                      diagnose_each_iteration=True).run()


def _lulesh(session: Session) -> WorkloadRun:
    from ..workloads.lulesh import Lulesh
    return Lulesh(session, 8, diagnose_each_step=True).run(6)


def _sw(session: Session) -> WorkloadRun:
    from ..workloads.smithwaterman import SmithWaterman
    return SmithWaterman(session, 192, diagnose_each_iteration=True).run()


def _sw_rotated(session: Session) -> WorkloadRun:
    from ..workloads.smithwaterman import RotatedSmithWaterman
    return RotatedSmithWaterman(session, 192,
                                diagnose_each_iteration=True).run()


def _lud(session: Session) -> WorkloadRun:
    from ..workloads.rodinia import Lud
    return Lud(session, size=64, diagnose_each_iteration=True).run()


#: Per-iteration-diagnosing runners (epoch-rich heat).  Workloads absent
#: here fall back to the ``repro-trace`` runners, which diagnose once at
#: the end -- their heatmap collapses to a single epoch row.
REPORT_RUNNERS: dict[str, Callable[[Session], WorkloadRun]] = {
    "pathfinder": _pathfinder,
    "lulesh": _lulesh,
    "sw": _sw,
    "sw-rotated": _sw_rotated,
    "lud": _lud,
}


def run_report(workload: str, platform: str, out_dir: str | Path, *,
               buckets: int = 64, attribute: bool = True,
               materialize: bool = True, why: bool = False,
               sample: int | str | None = None) -> dict[str, Path]:
    """Run ``workload`` with heat recording and write the report bundle.

    Returns artifact paths: ``report`` (HTML) plus everything
    :meth:`TelemetryRecorder.flush` wrote (timeline, metrics, events,
    heat_csv, heat_npz), plus ``signature.json`` (the run's
    access-pattern signature; its detected phases render as the report's
    phase lane).  The :class:`HeatStore` rides along under the
    ``"store"`` key for programmatic callers (``--ansi``, tests).

    With ``why=True`` the run is captured with causal provenance: the
    report gains the causal-blame section and ``causes.json`` is written
    next to the other artifacts.

    With ``sample=N`` the tracer records 1-in-N words (``sample="auto"``
    enables signature-guided adaptive sampling); the effective rate and
    estimated fidelity land in the telemetry stream and as a report
    banner (results are estimates).  If any driver events fell out of
    retention un-spilled, the report leads with a data-loss warning.
    """
    preset = PLATFORM_ALIASES.get(platform, platform)
    runner = REPORT_RUNNERS.get(workload, WORKLOADS[workload])
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    heat = HeatStore(nbuckets=buckets, attribute=attribute)
    recorder = TelemetryRecorder(jsonl=JsonlWriter(out / "events.jsonl"),
                                 heat=heat)
    recorder.workload = workload
    recorder.config = {"platform": preset, "materialize": materialize,
                       "heat_buckets": buckets, "causes": why,
                       "sample": sample or 1}
    context.install(recorder, track_causes=why)
    try:
        session = make_session(preset, trace=True, materialize=materialize,
                               sample=sample)
        # Live phase tracking: markers land in the event log (and so in
        # events.jsonl / the Perfetto timeline / the causal rollups).
        tracker = PhaseTracker(
            log=session.platform.events,
            clock=lambda: session.platform.clock.now,
        ).attach(session.tracer, heat)
        run = runner(session)
        diagnoses = list(run.diagnoses)
        if session.tracer is not None:
            final = diagnose(session.tracer, include_unnamed=True)
            recorder.record_diagnosis(final)
            diagnoses.append(final)
        tracker.finish()
        recorder.detach()
    finally:
        context.uninstall()
    paths = recorder.flush(out)

    from ..signature.vector import signature_from_store

    heat.flush_current()
    sig = signature_from_store(heat, workload=workload, platform=preset)
    paths["signature"] = sig.save(out / "signature.json")

    causes = None
    if why:
        import json

        from ..causes.capture import build_report as build_causes

        causes = build_causes(out)
        (out / "causes.json").write_text(
            json.dumps(causes, indent=2, sort_keys=False) + "\n")
        paths["causes"] = out / "causes.json"

    stats = {k: v for k, v in run.stats.items()
             if isinstance(v, (int, float))}
    stats.setdefault("sim_time", run.sim_time)
    dropped = int(recorder.events_dropped_total)
    # The tracer's own sampling_info is preferred over the recorder's
    # attach-time snapshot: with sample="auto" the stride moves during
    # the run and only the tracer knows the measured rate.
    sampling = (session.tracer.sampling_info()
                if session.tracer is not None else recorder.sampling)
    backend = (session.tracer.backend_info()
               if session.tracer is not None else None)
    report = build_report(workload=workload, platform=preset, store=heat,
                          diagnoses=diagnoses,
                          metrics=recorder.metrics.snapshot(), stats=stats,
                          causes=causes,
                          stream={"events_dropped": dropped} if dropped
                          else None,
                          sampling=sampling,
                          backend=backend,
                          phases=sig.phases)
    report_path = out / "report.html"
    report_path.write_text(report)
    paths["report"] = report_path
    paths["store"] = heat  # type: ignore[assignment]
    return paths


def _sample_arg(value: str) -> "int | str":
    """``--sample`` accepts an integer stride or the literal ``auto``."""
    if value == "auto":
        return value
    return int(value)


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-report`` / ``python -m repro.heatmap``."""
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description="Replay a workload with temporal heat profiling and "
                    "render a self-contained HTML run report.")
    parser.add_argument("--workload", default="pathfinder",
                        choices=sorted(WORKLOADS),
                        help="workload to replay (default: pathfinder)")
    parser.add_argument("--platform", default="pcie",
                        help="platform preset or alias: "
                             + ", ".join(sorted(PLATFORM_ALIASES)))
    parser.add_argument("--out", metavar="DIR",
                        help="run directory for report.html + artifacts")
    parser.add_argument("--buckets", type=int, default=64,
                        help="word buckets per allocation (default: 64)")
    parser.add_argument("--no-attribution", action="store_true",
                        help="skip source-line attribution (lower overhead)")
    parser.add_argument("--footprint", action="store_true",
                        help="footprint-only allocations (no numpy backing)")
    parser.add_argument("--why", action="store_true",
                        help="capture causal provenance: adds the causal-"
                             "blame report section and writes causes.json")
    parser.add_argument("--sample", type=_sample_arg, default=None,
                        metavar="N|auto",
                        help="sampled tracing: record 1-in-N words, or "
                             "'auto' for signature-guided adaptive "
                             "sampling (full rate around phase changes, "
                             "strided in steady state); results are "
                             "estimates, flagged in the report")
    parser.add_argument("--ansi", action="store_true",
                        help="also print the terminal heatmap to stdout")
    parser.add_argument("--epoch", type=int, default=None,
                        help="with --ansi: show only this epoch (scrub)")
    parser.add_argument("--no-color", action="store_true",
                        help="with --ansi: force the plain ASCII ramp")
    parser.add_argument("--list", action="store_true",
                        help="list workloads and platform aliases, then exit")
    args = parser.parse_args(argv)

    if args.list:
        print("workloads: " + ", ".join(sorted(WORKLOADS)))
        print("per-iteration heat: " + ", ".join(sorted(REPORT_RUNNERS)))
        print("platforms: " + ", ".join(
            f"{alias}->{name}"
            for alias, name in sorted(PLATFORM_ALIASES.items())))
        return 0
    if args.out is None:
        parser.error("--out is required (unless --list)")
    preset = PLATFORM_ALIASES.get(args.platform, args.platform)
    if preset not in {"intel-pascal", "intel-volta", "power9-volta"}:
        print(f"unknown platform {args.platform!r}; known: "
              + ", ".join(sorted(PLATFORM_ALIASES)), file=sys.stderr)
        return 2

    paths = run_report(args.workload, preset, args.out,
                       buckets=args.buckets,
                       attribute=not args.no_attribution,
                       materialize=not args.footprint,
                       why=args.why, sample=args.sample)
    store: HeatStore = paths.pop("store")  # type: ignore[assignment]
    if args.ansi:
        color = False if args.no_color else supports_color()
        print(render_store(store, color=color, epoch=args.epoch))
    print(f"{args.workload} on {preset}: "
          f"{len(store.allocations())} allocation(s), "
          f"{len(store.epochs_closed)} epoch(s), "
          f"{store.total} word-accesses recorded")
    for name, path in sorted(paths.items()):
        print(f"  {name:9s} {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

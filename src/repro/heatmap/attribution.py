"""Source-line attribution: who made this access?

Two attribution paths feed :class:`~repro.heatmap.store.SourceSite`:

* **Instrumented path** -- the mini-CUDA interpreter threads the current
  statement's ``file:line`` straight into ``traceR``/``traceW``/``traceRW``
  (no stack inspection needed; the instrumenter knows the source).
* **Native path** -- Python workloads access memory through
  :class:`~repro.cudart.memory.ArrayView`; :func:`caller_site` walks the
  interpreter stack past the simulator's own frames to the first workload
  frame, exactly like a sampling profiler attributes a leaf sample.

Frame walking only runs while a heat store is attached (heat recording is
off by default), so the untraced hot path never pays for it.
"""

from __future__ import annotations

import sys
from types import FrameType

from .store import SourceSite

__all__ = ["caller_site", "site_from_frame", "SKIP_MODULES"]

#: Module prefixes treated as simulator internals: the attribution walk
#: skips frames whose module starts with any of these.  ``repro.workloads``
#: is deliberately absent -- workload code is exactly what we attribute to.
SKIP_MODULES = (
    "repro.heatmap",
    "repro.runtime",
    "repro.cudart",
    "repro.memsim",
    "repro.telemetry",
    "repro.causes",
)


def _shorten(path: str) -> str:
    """Last two path components -- stable, readable, environment-free."""
    parts = path.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


#: Per-code-object "belongs to a skipped module" memo.  A workload loop
#: walks the same frames millions of times; the module-name prefix test
#: only needs to run once per code object.  Only populated for the default
#: skip list (custom lists fall back to the direct test).
_SKIP_CACHE: dict = {}

#: (code, line) -> SourceSite memo; sites repeat for every access a given
#: source line makes, so construction and path shortening run once.
_SITE_CACHE: dict = {}


def site_from_frame(frame: FrameType) -> SourceSite:
    """A :class:`SourceSite` naming ``frame``'s current line."""
    code = frame.f_code
    key = (code, frame.f_lineno)
    site = _SITE_CACHE.get(key)
    if site is None:
        site = _SITE_CACHE[key] = SourceSite(
            _shorten(code.co_filename), frame.f_lineno, code.co_name)
    return site


def caller_site(skip: tuple[str, ...] = SKIP_MODULES,
                max_depth: int = 40) -> SourceSite | None:
    """The first stack frame outside the simulator, as a source site.

    Returns ``None`` when every frame within ``max_depth`` belongs to a
    skipped module (e.g. a synthetic access issued by the simulator
    itself).
    """
    frame: FrameType | None = sys._getframe(1)
    cache = _SKIP_CACHE if skip is SKIP_MODULES else None
    for _ in range(max_depth):
        if frame is None:
            return None
        if cache is not None:
            skipped = cache.get(frame.f_code)
            if skipped is None:
                mod = frame.f_globals.get("__name__", "")
                skipped = cache[frame.f_code] = mod.startswith(skip)
        else:
            mod = frame.f_globals.get("__name__", "")
            skipped = mod.startswith(skip)
        if not skipped:
            return site_from_frame(frame)
        frame = frame.f_back
    return None

"""Source-line attribution: who made this access?

Two attribution paths feed :class:`~repro.heatmap.store.SourceSite`:

* **Instrumented path** -- the mini-CUDA interpreter threads the current
  statement's ``file:line`` straight into ``traceR``/``traceW``/``traceRW``
  (no stack inspection needed; the instrumenter knows the source).
* **Native path** -- Python workloads access memory through
  :class:`~repro.cudart.memory.ArrayView`; :func:`caller_site` walks the
  interpreter stack past the simulator's own frames to the first workload
  frame, exactly like a sampling profiler attributes a leaf sample.

Frame walking only runs while a heat store is attached (heat recording is
off by default), so the untraced hot path never pays for it.
"""

from __future__ import annotations

import sys
from types import FrameType

from .store import SourceSite

__all__ = ["caller_site", "site_from_frame", "SKIP_MODULES"]

#: Module prefixes treated as simulator internals: the attribution walk
#: skips frames whose module starts with any of these.  ``repro.workloads``
#: is deliberately absent -- workload code is exactly what we attribute to.
SKIP_MODULES = (
    "repro.heatmap",
    "repro.runtime",
    "repro.cudart",
    "repro.memsim",
    "repro.telemetry",
    "repro.causes",
)


def _shorten(path: str) -> str:
    """Last two path components -- stable, readable, environment-free."""
    parts = path.replace("\\", "/").rsplit("/", 2)
    return "/".join(parts[-2:]) if len(parts) > 1 else path


def site_from_frame(frame: FrameType) -> SourceSite:
    """A :class:`SourceSite` naming ``frame``'s current line."""
    code = frame.f_code
    return SourceSite(_shorten(code.co_filename), frame.f_lineno, code.co_name)


def caller_site(skip: tuple[str, ...] = SKIP_MODULES,
                max_depth: int = 40) -> SourceSite | None:
    """The first stack frame outside the simulator, as a source site.

    Returns ``None`` when every frame within ``max_depth`` belongs to a
    skipped module (e.g. a synthetic access issued by the simulator
    itself).
    """
    frame: FrameType | None = sys._getframe(1)
    for _ in range(max_depth):
        if frame is None:
            return None
        mod = frame.f_globals.get("__name__", "")
        if not mod.startswith(skip):
            return site_from_frame(frame)
        frame = frame.f_back
    return None

"""The heat store: per-epoch access counts at word-bucket granularity.

One :class:`AllocationHeat` tracks one allocation.  Words are folded into
at most ``nbuckets`` equal-width buckets so the store's footprint is
independent of allocation size; within an epoch the store accumulates a
``(4, nbuckets)`` int64 matrix -- one row per channel (CPU read, CPU
write, GPU read, GPU write) -- plus a per-source-site bucket vector so
hot regions can name the code that made them hot.  A diagnostic epoch
reset (:meth:`HeatStore.advance_epoch`) freezes the accumulator into an
:class:`EpochHeat` snapshot; the sequence of snapshots is the temporal
heatmap the renderers draw.

All bucket updates are O(nbuckets) or O(len(indices)) numpy operations --
no per-word Python loops, matching the shadow-memory discipline.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..memsim import Allocation, Processor

__all__ = [
    "CHANNELS",
    "AllocationHeat",
    "EpochHeat",
    "HeatStore",
    "SourceSite",
    "OTHER_SITE",
]

#: Bytes per traced word (mirrors :data:`repro.runtime.flags.WORD_SIZE`;
#: duplicated here so the store never imports the runtime package).
WORD_SIZE = 4

#: Channel order of every ``counts`` matrix row.
CHANNELS = ("cpu_read", "cpu_write", "gpu_read", "gpu_write")


@dataclass(frozen=True, order=True)
class SourceSite:
    """One attributed call site (``file:line``, optionally a function)."""

    file: str
    line: int
    func: str = ""

    @property
    def label(self) -> str:
        """``file:line`` (plus the function when known)."""
        base = f"{self.file}:{self.line}" if self.line else self.file
        return f"{base} ({self.func})" if self.func else base


#: Bucket for sites beyond an allocation's ``max_sites`` budget.
OTHER_SITE = SourceSite("<other>", 0)


def _channel(proc: Processor, is_write: bool) -> int:
    gpu = proc is Processor.GPU
    return (2 if gpu else 0) + (1 if is_write else 0)


@dataclass(frozen=True)
class EpochHeat:
    """Frozen heat of one allocation over one closed epoch."""

    epoch: int
    counts: np.ndarray  #: ``(4, nbuckets)`` int64, rows per :data:`CHANNELS`
    sites: dict[SourceSite, np.ndarray] = field(default_factory=dict)

    @property
    def heat(self) -> np.ndarray:
        """Combined heat per bucket (all channels summed)."""
        return self.counts.sum(axis=0)

    @property
    def total(self) -> int:
        """Total word-accesses recorded this epoch."""
        return int(self.counts.sum())

    def channel(self, name: str) -> np.ndarray:
        """One channel's bucket vector by :data:`CHANNELS` name."""
        return self.counts[CHANNELS.index(name)]

    def top_sites(self, k: int = 5, lo: int = 0,
                  hi: int | None = None) -> list[tuple[SourceSite, int]]:
        """Top contributing sites over buckets ``[lo, hi)``."""
        totals = [(site, int(vec[lo:hi].sum())) for site, vec in self.sites.items()]
        totals = [(s, n) for s, n in totals if n > 0]
        totals.sort(key=lambda sn: (-sn[1], sn[0]))
        return totals[:k]


class AllocationHeat:
    """Heat history of one allocation (open accumulator + closed epochs)."""

    __slots__ = ("label", "base", "serial", "size", "nwords", "nbuckets",
                 "max_sites", "epochs", "_counts", "_sites",
                 "_starts", "_ends")

    def __init__(self, alloc: Allocation, *, nbuckets: int = 64,
                 max_sites: int = 32) -> None:
        self._init(alloc.label or f"alloc@{alloc.base:#x}", alloc.base,
                   alloc.serial, alloc.size, nbuckets, max_sites)

    @classmethod
    def from_meta(cls, label: str, base: int, serial: int, size: int, *,
                  nbuckets: int = 64,
                  max_sites: int = 32) -> "AllocationHeat":
        """Rebuild a record from serialized geometry (no live allocation).

        Used when reconstituting heat from on-disk stream segments
        (:mod:`repro.stream`): bucket geometry is a pure function of
        ``size`` and ``nbuckets``, so a rebuilt record bins identically
        to the live one it mirrors.
        """
        self = cls.__new__(cls)
        self._init(label, base, serial, size, nbuckets, max_sites)
        return self

    def _init(self, label: str, base: int, serial: int, size: int,
              nbuckets: int, max_sites: int) -> None:
        self.label = label
        self.base = base
        self.serial = serial
        self.size = size
        self.nwords = max(1, -(-size // WORD_SIZE))
        self.nbuckets = max(1, min(nbuckets, self.nwords))
        self.max_sites = max_sites
        self.epochs: list[EpochHeat] = []
        self._counts = np.zeros((len(CHANNELS), self.nbuckets), np.int64)
        self._sites: dict[SourceSite, np.ndarray] = {}
        # Fair-division bucket boundaries: bucket b covers words
        # [starts[b], ends[b]); word w lands in bucket w*nbuckets//nwords.
        b = np.arange(self.nbuckets + 1, dtype=np.int64)
        bounds = (b * self.nwords) // self.nbuckets
        self._starts = bounds[:-1]
        self._ends = bounds[1:]

    # ------------------------------------------------------------------ #
    # geometry

    def bucket_word_range(self, bucket: int) -> tuple[int, int]:
        """Word range ``[lo, hi)`` a bucket covers."""
        return int(self._starts[bucket]), int(self._ends[bucket])

    # ------------------------------------------------------------------ #
    # recording

    def add(self, channel: int, lo: int, hi: int,
            idx: np.ndarray | None = None,
            site: SourceSite | None = None) -> None:
        """Accumulate one access over words ``[lo, hi)`` (or ``idx``)."""
        if idx is not None:
            # Word w belongs to the bucket whose [start, end) span holds
            # it -- the same fair-division boundaries the span path clips
            # against, so scattered and contiguous records always agree.
            buckets = np.searchsorted(self._ends, idx, side="right")
            contrib = np.bincount(buckets, minlength=self.nbuckets)
        else:
            contrib = np.clip(np.minimum(hi, self._ends)
                              - np.maximum(lo, self._starts), 0, None)
        self._counts[channel] += contrib
        if site is not None:
            vec = self._sites.get(site)
            if vec is None:
                if len(self._sites) >= self.max_sites:
                    site = OTHER_SITE
                    vec = self._sites.get(site)
                if vec is None:
                    vec = self._sites[site] = np.zeros(self.nbuckets, np.int64)
            vec += contrib

    def freeze(self, epoch: int) -> EpochHeat | None:
        """Close the accumulator into an :class:`EpochHeat` (if non-empty)."""
        if not self._counts.any():
            self._sites.clear()
            return None
        snap = EpochHeat(epoch=epoch, counts=self._counts.copy(),
                         sites={s: v.copy() for s, v in
                                sorted(self._sites.items())})
        self.epochs.append(snap)
        self._counts[:] = 0
        self._sites.clear()
        return snap

    # ------------------------------------------------------------------ #
    # queries

    @property
    def touched(self) -> bool:
        """Whether any heat was ever recorded (closed or pending)."""
        return bool(self.epochs) or bool(self._counts.any())

    @property
    def total(self) -> int:
        """Word-accesses across all closed epochs."""
        return sum(e.total for e in self.epochs)

    def matrix(self, channel: str | None = None) -> np.ndarray:
        """``(n_epochs, nbuckets)`` heat matrix over closed epochs."""
        if not self.epochs:
            return np.zeros((0, self.nbuckets), np.int64)
        if channel is None:
            return np.stack([e.heat for e in self.epochs])
        return np.stack([e.channel(channel) for e in self.epochs])

    def current_heat(self) -> np.ndarray:
        """Combined per-bucket heat of the *open* (not yet frozen) epoch.

        The live counterpart of :attr:`EpochHeat.heat`, used by consumers
        that render mid-epoch state -- the interactive debugger's ``heat``
        command pairs it with the closed-epoch rows.
        """
        return self._counts.sum(axis=0)

    def current_top_sites(self, k: int = 5) -> list[tuple[SourceSite, int]]:
        """Top sites of the *open* accumulator (for diagnostics output)."""
        totals = [(s, int(v.sum())) for s, v in self._sites.items()]
        totals = [(s, n) for s, n in totals if n > 0]
        totals.sort(key=lambda sn: (-sn[1], sn[0]))
        return totals[:k]

    def hottest_region(self, k_sites: int = 5):
        """The hottest (epoch, word-range) and the sites that heated it.

        Returns ``None`` when no epoch recorded heat; otherwise a dict with
        ``epoch``, ``word_lo``/``word_hi``, ``peak`` (word-accesses in the
        peak bucket) and ``sites`` (top ``(SourceSite, count)`` pairs over
        the region).  The region is the contiguous bucket run around the
        global peak whose heat stays above half the peak.
        """
        best: tuple[int, int] | None = None
        peak = 0
        for ei, e in enumerate(self.epochs):
            h = e.heat
            b = int(h.argmax())
            if h[b] > peak:
                peak = int(h[b])
                best = (ei, b)
        if best is None or peak == 0:
            return None
        ei, b = best
        heat = self.epochs[ei].heat
        lo = b
        while lo > 0 and heat[lo - 1] * 2 >= peak:
            lo -= 1
        hi = b + 1
        while hi < self.nbuckets and heat[hi] * 2 >= peak:
            hi += 1
        return {
            "epoch": self.epochs[ei].epoch,
            "word_lo": int(self._starts[lo]),
            "word_hi": int(self._ends[hi - 1]),
            "bucket_lo": lo,
            "bucket_hi": hi,
            "peak": peak,
            "sites": self.epochs[ei].top_sites(k_sites, lo, hi),
        }


class HeatStore:
    """Per-allocation temporal heat for one traced run.

    :param nbuckets: word buckets per allocation (spatial resolution).
    :param max_sites: distinct source sites tracked per allocation per
        epoch; overflow folds into ``<other>``.
    :param attribute: when a record carries no explicit site, walk the
        Python stack for the first frame outside the simulator (the
        workload line that made the access).  Disable for minimum
        overhead heat-only profiling.
    """

    def __init__(self, *, nbuckets: int = 64, max_sites: int = 32,
                 attribute: bool = True) -> None:
        self.nbuckets = nbuckets
        self.max_sites = max_sites
        self.attribute = attribute
        self.epochs_closed: list[int] = []
        self.records = 0
        #: Called as ``listener(alloc_heat, epoch_heat)`` for every snapshot
        #: an :meth:`advance_epoch` freezes -- *before* a streaming store
        #: releases it, so live consumers (phase tracking, adaptive
        #: sampling telemetry) see every epoch even when heat spills to
        #: disk.
        self.epoch_listeners: list = []
        self._allocs: dict[tuple[int, int], AllocationHeat] = {}

    # ------------------------------------------------------------------ #
    # recording

    def track(self, alloc: Allocation) -> AllocationHeat:
        """The (lazily created) heat record for ``alloc``."""
        key = (alloc.base, alloc.serial)
        heat = self._allocs.get(key)
        if heat is None:
            heat = self._allocs[key] = AllocationHeat(
                alloc, nbuckets=self.nbuckets, max_sites=self.max_sites)
        return heat

    def peek(self, alloc: Allocation) -> AllocationHeat | None:
        """The heat record for ``alloc`` if it exists (never creates one)."""
        return self._allocs.get((alloc.base, alloc.serial))

    def adopt(self, heat: AllocationHeat) -> AllocationHeat:
        """Install a pre-built record (stream merge reconstruction)."""
        self._allocs[(heat.base, heat.serial)] = heat
        return heat

    def record(self, alloc: Allocation, proc: Processor, *, is_write: bool,
               lo: int = 0, hi: int = 0, idx: np.ndarray | None = None,
               site: SourceSite | None = None, n: int = 1) -> None:
        """Accumulate one traced access (word range or word indices).

        ``n`` lets a batched backend account one call as ``n`` logical
        accesses (one per grid lane), keeping ``records`` comparable
        across execution backends.
        """
        if site is None and self.attribute:
            from .attribution import caller_site
            site = caller_site()
        self.records += n
        self.track(alloc).add(_channel(proc, is_write), lo, hi, idx, site)

    def advance_epoch(self, closed_epoch: int) -> None:
        """Freeze every open accumulator as epoch ``closed_epoch``."""
        for heat in self._allocs.values():
            snap = heat.freeze(closed_epoch)
            if snap is not None and self.epoch_listeners:
                for listener in tuple(self.epoch_listeners):
                    listener(heat, snap)
        self.epochs_closed.append(closed_epoch)

    def flush_current(self) -> None:
        """Freeze residual heat that never saw a diagnostic reset."""
        epoch = (self.epochs_closed[-1] + 1) if self.epochs_closed else 0
        pending = [h for h in self._allocs.values() if h._counts.any()]
        if pending:
            self.advance_epoch(epoch)

    # ------------------------------------------------------------------ #
    # queries

    def allocations(self) -> list[AllocationHeat]:
        """Touched allocations, sorted by label then base (deterministic)."""
        return sorted((h for h in self._allocs.values() if h.touched),
                      key=lambda h: (h.label, h.base, h.serial))

    def __len__(self) -> int:
        return len(self._allocs)

    @property
    def total(self) -> int:
        """Word-accesses across every allocation's closed epochs."""
        return sum(h.total for h in self._allocs.values())

    # ------------------------------------------------------------------ #
    # exports

    def to_csv(self) -> str:
        """Long-form CSV: one row per (allocation, epoch, bucket)."""
        out = io.StringIO()
        out.write("allocation,epoch,bucket,word_lo,word_hi,"
                  + ",".join(CHANNELS) + ",top_site\n")
        for heat in self.allocations():
            for e in heat.epochs:
                tops = {}
                for site, vec in e.sites.items():
                    for b in np.flatnonzero(vec):
                        cur = tops.get(int(b))
                        if cur is None or vec[b] > cur[1] or \
                                (vec[b] == cur[1] and site < cur[0]):
                            tops[int(b)] = (site, int(vec[b]))
                for b in range(heat.nbuckets):
                    if not e.counts[:, b].any():
                        continue
                    lo, hi = heat.bucket_word_range(b)
                    vals = ",".join(str(int(v)) for v in e.counts[:, b])
                    site = tops.get(b)
                    out.write(f"{heat.label},{e.epoch},{b},{lo},{hi},{vals},"
                              f"{site[0].label if site else ''}\n")
        return out.getvalue()

    def to_npz(self, path: str | Path) -> Path:
        """Write all heat matrices to a compressed ``.npz`` archive.

        Keys: ``a<i>_counts`` (``(n_epochs, 4, nbuckets)`` int64),
        ``a<i>_epochs`` and one ``a<i>_<channel>`` array per
        :data:`CHANNELS` name (``(n_epochs, nbuckets)``, the same data
        split per channel under stable keys) per allocation, plus the
        ``labels``, ``nwords``, ``sizes``, ``bases``, ``serials`` and
        ``epochs_closed`` index arrays.  The per-channel arrays and the
        geometry index are what let access-pattern signatures
        (:func:`repro.signature.signature_from_npz`) -- and external
        tooling -- be rebuilt from the archive alone.
        """
        path = Path(path)
        allocs = self.allocations()
        arrays: dict[str, np.ndarray] = {
            "labels": np.array([h.label for h in allocs]),
            "nwords": np.array([h.nwords for h in allocs], np.int64),
            "sizes": np.array([h.size for h in allocs], np.int64),
            "bases": np.array([h.base for h in allocs], np.int64),
            "serials": np.array([h.serial for h in allocs], np.int64),
            "epochs_closed": np.array(self.epochs_closed, np.int64),
            "channels": np.array(CHANNELS),
        }
        for i, heat in enumerate(allocs):
            counts = (np.stack([e.counts for e in heat.epochs])
                      if heat.epochs else
                      np.zeros((0, len(CHANNELS), heat.nbuckets), np.int64))
            arrays[f"a{i}_counts"] = counts
            for c, name in enumerate(CHANNELS):
                arrays[f"a{i}_{name}"] = counts[:, c, :]
            arrays[f"a{i}_epochs"] = np.array(
                [e.epoch for e in heat.epochs], np.int64)
        np.savez_compressed(path, **arrays)
        return path

"""Temporal heat profiling: access-count heatmaps with source attribution.

Where the shadow memory (:mod:`repro.runtime.shadow`) freezes *boolean*
per-word masks per epoch, this package records **access-count heat**: how
often each region of an allocation was read and written, by which
processor, in which epoch -- and which source line did it.  The heat store
is the data model; three renderers sit on top:

* :mod:`repro.heatmap.ansi`   -- terminal heatmap strips (intensity ramp,
  epoch scrubbing, ``NO_COLOR``-aware),
* :mod:`repro.heatmap.html`   -- a self-contained single-file HTML run
  report (heat strips, anti-pattern overlays, metrics, Perfetto link),
* :func:`HeatStore.to_csv` / :func:`HeatStore.to_npz` -- machine-readable
  exports for external plotting.

Heat recording is **off by default**: it only happens when a
:class:`HeatStore` is handed to a :class:`~repro.runtime.tracer.Tracer`
(directly, or through ``TelemetryRecorder(heat=...)``).
"""

from .attribution import caller_site, site_from_frame
from .store import (
    CHANNELS,
    AllocationHeat,
    EpochHeat,
    HeatStore,
    SourceSite,
)

__all__ = [
    "CHANNELS",
    "AllocationHeat",
    "EpochHeat",
    "HeatStore",
    "SourceSite",
    "caller_site",
    "site_from_frame",
]

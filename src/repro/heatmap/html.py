"""Self-contained single-file HTML run reports.

:func:`build_report` turns one traced run -- heat store, anti-pattern
diagnoses, metrics snapshot -- into a single HTML string with zero
external resources: inline CSS, inline SVG heat strips, native
``<title>`` tooltips and ``<details>`` table views.  One artifact answers
*what happened, where, when, and why is it slow*.

Rendering is deterministic by construction: no timestamps, no random
ids, every collection sorted or insertion-ordered by the (deterministic)
simulation -- a fixed run produces byte-identical HTML.

Visual system: heat is a *sequential* encoding, so cells use a single
blue ramp (light step = near zero, receding into the surface; the dark
theme re-steps the same hue for the dark surface).  Anti-pattern
overlays use the reserved status palette and always pair color with an
icon + label, never color alone.
"""

from __future__ import annotations

import html as _html
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from .store import AllocationHeat, HeatStore

__all__ = ["build_report", "PATTERN_STYLE"]

#: Single-hue sequential ramp (blue 100..700), light-mode order.  The
#: dark theme reverses it so "near zero" still recedes into the surface.
_SEQ_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

#: Anti-pattern category -> (status color, icon, short label).  Status
#: colors are the reserved palette -- fixed across themes, never reused
#: for data series -- and always ship with the icon + label.
PATTERN_STYLE: dict[str, tuple[str, str, str]] = {
    "ALTERNATING_ACCESS": ("#d03b3b", "▲", "alternating access"),
    "LOW_ACCESS_DENSITY": ("#ec835a", "◆", "low access density"),
    "UNNECESSARY_TRANSFER_IN": ("#fab219", "●", "unnecessary transfer"),
    "TRANSFER_OVERWRITTEN": ("#fab219", "●", "unnecessary transfer"),
    "UNNECESSARY_TRANSFER_OUT": ("#fab219", "●", "unnecessary transfer"),
    "UNUSED_ALLOCATION": ("#fab219", "●", "unnecessary transfer"),
}

#: The paper's three anti-pattern groups, in report order.
_GROUPS = (
    ("alternating access", "▲", "#d03b3b",
     ("ALTERNATING_ACCESS",)),
    ("low access density", "◆", "#ec835a",
     ("LOW_ACCESS_DENSITY",)),
    ("unnecessary transfers", "●", "#fab219",
     ("UNNECESSARY_TRANSFER_IN", "TRANSFER_OVERWRITTEN",
      "UNNECESSARY_TRANSFER_OUT", "UNUSED_ALLOCATION")),
)

_CELL_W, _CELL_H, _GAP, _GUTTER = 10, 14, 2, 48

_CSS = """
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px 32px 48px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--ink);
  --page: #f9f9f7; --surface: #fcfcfb; --ink: #0b0b0b;
  --ink-2: #52514e; --muted: #898781; --grid: #e1e0d9;
  --border: rgba(11,11,11,0.10);
"""
_CSS_RAMP_LIGHT = "".join(
    f"  --h{i + 1}: {c};\n" for i, c in enumerate(_SEQ_RAMP))
_CSS_RAMP_DARK = "".join(
    f"  --h{i + 1}: {c};\n" for i, c in enumerate(reversed(_SEQ_RAMP)))
_CSS2 = """}
@media (prefers-color-scheme: dark) {
  body {
    --page: #0d0d0d; --surface: #1a1a19; --ink: #ffffff;
    --ink-2: #c3c2b7; --muted: #898781; --grid: #2c2c2a;
    --border: rgba(255,255,255,0.10);
""" + _CSS_RAMP_DARK + """  }
}
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 32px 0 8px; }
h3 { font-size: 14px; margin: 20px 0 6px; }
.sub { color: var(--ink-2); font-size: 13px; margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin: 20px 0; }
.tile {
  background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 120px;
}
.tile .label { font-size: 12px; color: var(--ink-2); }
.tile .value { font-size: 24px; font-weight: 600; margin-top: 2px; }
figure { margin: 0 0 24px; background: var(--surface);
  border: 1px solid var(--border); border-radius: 8px; padding: 14px 16px; }
figcaption { font-size: 13px; font-weight: 600; margin-bottom: 8px; }
figcaption small { color: var(--muted); font-weight: 400; }
.sites { font-size: 12px; color: var(--ink-2); margin-top: 8px; }
.sites code { font-family: ui-monospace, monospace; }
.legend { display: flex; align-items: center; gap: 6px;
  font-size: 11px; color: var(--muted); margin-top: 10px; }
.legend .swatch { width: 14px; height: 10px; border-radius: 2px; }
table { border-collapse: collapse; font-size: 12px; margin-top: 8px; }
th, td { padding: 3px 10px; text-align: right;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
td:first-child, th:first-child { text-align: left;
  font-family: ui-monospace, monospace; }
details summary { cursor: pointer; font-size: 12px; color: var(--ink-2); }
.finding { background: var(--surface); border: 1px solid var(--border);
  border-radius: 8px; padding: 8px 14px; margin: 6px 0; font-size: 13px; }
.finding .icon { font-size: 11px; margin-right: 6px; }
.finding .detail { color: var(--ink-2); font-size: 12px; margin-top: 2px; }
.finding .remedy { color: var(--muted); font-size: 12px; margin-top: 2px; }
.banner { border: 1px solid var(--border); border-left: 4px solid var(--h8);
  border-radius: 6px; background: var(--surface); padding: 8px 14px;
  margin: 10px 0; font-size: 13px; }
.banner.warn { border-left-color: #d03b3b; }
.banner .why { color: var(--ink-2); font-size: 12px; margin-top: 2px; }
.none { color: var(--muted); font-size: 13px; }
a { color: var(--h8); }
footer { margin-top: 40px; font-size: 11px; color: var(--muted); }
svg text { fill: var(--muted); font-size: 10px;
  font-family: system-ui, sans-serif; }
"""


def _esc(text: Any) -> str:
    return _html.escape(str(text), quote=True)


def _fmt(v: float) -> str:
    """Compact human number (1,284 / 12.9K / 4.2M)."""
    v = float(v)
    if abs(v) >= 1e9:
        return f"{v / 1e9:.1f}B"
    if abs(v) >= 1e6:
        return f"{v / 1e6:.1f}M"
    if abs(v) >= 1e4:
        return f"{v / 1e3:.1f}K"
    if v == int(v):
        return f"{int(v):,}"
    return f"{v:.4g}"


def _level(value: int, peak: int) -> int:
    """Ramp level 1..len(_SEQ_RAMP) for a non-zero count (sqrt scale)."""
    if peak <= 0 or value <= 0:
        return 0
    lev = int(np.ceil(np.sqrt(value / peak) * (len(_SEQ_RAMP) - 1)))
    return max(1, min(lev + 1, len(_SEQ_RAMP)))


def _metric_total(metrics: Mapping[str, Mapping[str, float]] | None,
                  suffix: str) -> float | None:
    if not metrics:
        return None
    for name, series in metrics.items():
        if name.endswith(suffix):
            return sum(series.values())
    return None


def _findings_by_alloc_epoch(diagnoses: Sequence[Any]):
    """Index findings as ``(alloc name, epoch) -> [finding, ...]``."""
    index: dict[tuple[str, int], list] = {}
    for diag in diagnoses:
        for f in getattr(diag, "findings", ()):
            index.setdefault((f.name, f.epoch), []).append(f)
    return index


def _word_to_bucket(word: int, heat: AllocationHeat) -> int:
    return min((word * heat.nbuckets) // heat.nwords, heat.nbuckets - 1)


def _alloc_svg(heat: AllocationHeat, findings_index: dict) -> str:
    """One allocation's temporal heat strip as inline SVG."""
    epochs = heat.epochs
    mat = heat.matrix()
    peak = int(mat.max()) if mat.size else 0
    step_x, step_y = _CELL_W + _GAP, _CELL_H + _GAP
    width = _GUTTER + heat.nbuckets * step_x
    height = len(epochs) * step_y + 18
    parts = [f'<svg width="{width}" height="{height}" '
             f'viewBox="0 0 {width} {height}" role="img" '
             f'aria-label="temporal heatmap of {_esc(heat.label)}">']
    for ei, e in enumerate(epochs):
        y = ei * step_y
        parts.append(f'<text x="{_GUTTER - 8}" y="{y + _CELL_H - 3}" '
                     f'text-anchor="end">e{e.epoch}</text>')
        hot = e.heat
        for b in range(heat.nbuckets):
            if hot[b] <= 0:
                continue
            lev = _level(int(hot[b]), peak)
            x = _GUTTER + b * step_x
            lo, hi = heat.bucket_word_range(b)
            tip = (f"epoch {e.epoch}, words [{lo},{hi}): "
                   f"cpu r/w {int(e.counts[0, b])}/{int(e.counts[1, b])}, "
                   f"gpu r/w {int(e.counts[2, b])}/{int(e.counts[3, b])}")
            top = e.top_sites(1, b, b + 1)
            if top:
                tip += f" — top site {top[0][0].label}"
            parts.append(
                f'<rect x="{x}" y="{y}" width="{_CELL_W}" '
                f'height="{_CELL_H}" rx="2" fill="var(--h{lev})">'
                f'<title>{_esc(tip)}</title></rect>')
        # Anti-pattern overlays: status-colored outline over the epoch
        # row region the finding fired on (icon + label ride the list
        # below -- never color alone).
        for f in findings_index.get((heat.label, e.epoch), ()):
            color, icon, label = PATTERN_STYLE.get(
                f.pattern.name, ("#fab219", "●", f.pattern.name))
            spans = [(0, heat.nbuckets)]
            if f.ranges:
                spans = [(_word_to_bucket(lo, heat),
                          _word_to_bucket(max(lo, hi - 1), heat) + 1)
                         for lo, hi in f.ranges]
            for blo, bhi in spans:
                x = _GUTTER + blo * step_x - 1
                w = (bhi - blo) * step_x - _GAP + 2
                parts.append(
                    f'<rect x="{x}" y="{y - 1}" width="{w}" '
                    f'height="{_CELL_H + 2}" rx="3" fill="none" '
                    f'stroke="{color}" stroke-width="2">'
                    f'<title>{_esc(f"{icon} {label}: {f.detail}")}'
                    f'</title></rect>')
    axis_y = len(epochs) * step_y + 12
    parts.append(f'<text x="{_GUTTER}" y="{axis_y}">word 0</text>')
    parts.append(f'<text x="{width - 2}" y="{axis_y}" text-anchor="end">'
                 f'word {heat.nwords}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _alloc_table(heat: AllocationHeat) -> str:
    """Per-epoch channel totals -- the table view of the strip."""
    rows = ["<table><tr><th>epoch</th><th>cpu reads</th><th>cpu writes</th>"
            "<th>gpu reads</th><th>gpu writes</th><th>total</th></tr>"]
    for e in heat.epochs:
        sums = e.counts.sum(axis=1)
        rows.append(
            "<tr><td>e{}</td>{}<td>{}</td></tr>".format(
                e.epoch,
                "".join(f"<td>{int(s):,}</td>" for s in sums),
                f"{e.total:,}"))
    rows.append("</table>")
    return "".join(rows)


def _alloc_figure(heat: AllocationHeat, findings_index: dict) -> str:
    region = heat.hottest_region()
    sites_html = ""
    if region is not None:
        where = (f"epoch {region['epoch']}, words "
                 f"[{region['word_lo']},{region['word_hi']})")
        if region["sites"]:
            listed = ", ".join(
                f"<code>{_esc(s.label)}</code> ×{n:,}"
                for s, n in region["sites"])
            sites_html = (f'<div class="sites">hottest region ({_esc(where)})'
                          f' &mdash; top sites: {listed}</div>')
        else:
            sites_html = (f'<div class="sites">hottest region: '
                          f'{_esc(where)}</div>')
    legend = (
        '<div class="legend"><span>0</span>'
        + "".join(f'<span class="swatch" style="background:var(--h{i})">'
                  '</span>'
                  for i in range(1, len(_SEQ_RAMP) + 1, 3))
        + f"<span>peak {_fmt(int(heat.matrix().max()) if heat.epochs else 0)}"
          " word-accesses / bucket (√ scale)</span></div>")
    return (
        "<figure>"
        f"<figcaption>{_esc(heat.label)} "
        f"<small>{heat.size:,} bytes &middot; {heat.nwords:,} words &middot; "
        f"{len(heat.epochs)} epoch(s)</small></figcaption>"
        + _alloc_svg(heat, findings_index)
        + sites_html + legend
        + "<details><summary>table view</summary>"
        + _alloc_table(heat) + "</details>"
        "</figure>")


def _findings_section(diagnoses: Sequence[Any]) -> str:
    all_findings = [f for d in diagnoses for f in getattr(d, "findings", ())]
    parts = ["<h2>Anti-pattern diagnoses</h2>"]
    for label, icon, color, patterns in _GROUPS:
        group = [f for f in all_findings if f.pattern.name in patterns]
        parts.append(f'<h3><span style="color:{color}">{icon}</span> '
                     f'{_esc(label)} <small>({len(group)})</small></h3>')
        if not group:
            parts.append('<div class="none">no findings</div>')
            continue
        for f in sorted(group, key=lambda f: (f.epoch, f.name,
                                              f.pattern.name)):
            remedy = (f'<div class="remedy">remedy: {_esc(f.remedies[0])}'
                      '</div>' if f.remedies else "")
            parts.append(
                f'<div class="finding">'
                f'<span class="icon" style="color:{color}">{icon}</span>'
                f'<strong>{_esc(f.name)}</strong> &middot; epoch {f.epoch}'
                f'<div class="detail">{_esc(f.detail)}</div>{remedy}</div>')
    return "".join(parts)


def _blame_table(rows: Sequence[Mapping[str, Any]], key: str,
                 limit: int = 10) -> str:
    from ..causes.render import format_bytes, format_cost

    out = [f"<table><tr><th>{_esc(key)}</th><th>events</th><th>pages</th>"
           "<th>bytes</th><th>moved</th><th>cost</th></tr>"]
    for r in rows[:limit]:
        out.append(
            f"<tr><td>{_esc(r[key])}</td><td>{r['events']:,}</td>"
            f"<td>{r['pages']:,}</td><td>{_esc(format_bytes(r['bytes']))}</td>"
            f"<td>{_esc(format_bytes(r.get('moved', 0)))}</td>"
            f"<td>{_esc(format_cost(r['cost']))}</td></tr>")
    out.append("</table>")
    return "".join(out)


def _causes_section(causes: Mapping[str, Any] | None) -> str:
    """Causal blame + critical path (from a ``repro.causes`` report)."""
    if not causes:
        return ""
    from ..causes.render import format_bytes, format_cost

    t = causes.get("totals", {})
    parts = [
        "<h2>Causal blame</h2>",
        f'<div class="sub">{t.get("events", 0):,} driver events &middot; '
        f'{_esc(format_bytes(t.get("moved", 0)))} moved across the link '
        f'&middot; {_esc(format_cost(t.get("cost", 0.0)))} attributed '
        "driver cost</div>",
    ]
    for title, key_name, rows_key in (
        ("by source site", "site", "by_site"),
        ("by allocation", "alloc", "by_alloc"),
        ("by anti-pattern category", "category", "by_category"),
        ("by kernel", "kernel", "by_kernel"),
        ("by phase", "phase", "by_phase"),
    ):
        rows = causes.get(rows_key, [])
        if not rows:
            continue
        parts.append(f"<h3>{_esc(title)}</h3>")
        parts.append(_blame_table(rows, key_name))
    cp = causes.get("critical_path", {})
    if cp.get("events"):
        parts.append(
            f"<h3>critical path</h3>"
            f'<div class="sub">{_esc(format_cost(cp.get("cost", 0.0)))} over '
            f'{cp.get("length", 0)} causally linked events</div>')
        parts.append(
            "<details><summary>path events</summary><table>"
            "<tr><th>event</th><th>kind</th><th>category</th><th>pages</th>"
            "<th>cost</th><th>alloc</th><th>site / kernel</th></tr>"
            + "".join(
                f"<tr><td>#{n['id']}</td><td>{_esc(n['kind'])}</td>"
                f"<td>{_esc(n['category'])}</td><td>{n['pages']:,}</td>"
                f"<td>{_esc(format_cost(n['cost']))}</td>"
                f"<td>{_esc(n['alloc'] or '-')}</td>"
                f"<td>{_esc(n['site'] or n['kernel'] or '-')}</td></tr>"
                for n in cp["events"])
            + "</table></details>")
    return "".join(parts)


def _metrics_section(metrics: Mapping[str, Mapping[str, float]] | None) -> str:
    if not metrics:
        return ""
    rows = ["<h2>Metrics</h2>",
            "<details><summary>full metrics table "
            f"({sum(len(s) for s in metrics.values())} series)</summary>",
            "<table><tr><th>series</th><th>value</th></tr>"]
    for name in sorted(metrics):
        for labels in sorted(metrics[name]):
            value = metrics[name][labels]
            rows.append(f"<tr><td>{_esc(name + labels)}</td>"
                        f"<td>{_fmt(value)}</td></tr>")
    rows.append("</table></details>")
    return "".join(rows)


def _tiles(store: HeatStore,
           metrics: Mapping[str, Mapping[str, float]] | None,
           stats: Mapping[str, Any] | None) -> str:
    tiles: list[tuple[str, str]] = []
    sim = (stats or {}).get("sim_time")
    if sim is None:
        sim = _metric_total(metrics, "sim_time_seconds")
    if sim is not None:
        tiles.append(("simulated time", f"{float(sim):.4g}s"))
    for label, suffix in (
        ("kernel launches", "kernel_launches_total"),
        ("fault groups", "page_fault_groups_total"),
        ("migrated pages", "migrated_pages_total"),
        ("memcpy bytes", "transfer_bytes_total"),
    ):
        v = _metric_total(metrics, suffix)
        if v is not None:
            tiles.append((label, _fmt(v)))
    tiles.append(("heat records", _fmt(store.records)))
    return ('<div class="tiles">'
            + "".join(f'<div class="tile"><div class="label">{_esc(l)}</div>'
                      f'<div class="value">{_esc(v)}</div></div>'
                      for l, v in tiles)
            + "</div>")


def _banners(stream: Mapping[str, Any] | None,
             sampling: Mapping[str, Any] | None,
             backend: Mapping[str, Any] | None = None) -> str:
    """Fidelity banners: data loss, spill/merge provenance, sampling,
    execution backend attribution."""
    parts: list[str] = []
    if backend:
        launches = backend.get("launches") or {}
        counts = ", ".join(f"{k} ×{launches[k]}" for k in sorted(launches))
        fallbacks = int(backend.get("fallbacks", 0))
        fb_html = ""
        if fallbacks:
            fb_html = (f'<div class="why">{fallbacks} backend tier '
                       "fallback(s): some launches ran on a slower tier "
                       "(unvectorizable control flow or unsupported "
                       "constructs); results are still exact.</div>")
        parts.append(
            '<div class="banner">execution backend '
            f'<strong>{_esc(str(backend.get("backend", "")))}</strong>'
            + (f" ({counts})" if counts else "") + "." + fb_html
            + "</div>")
    dropped = int((stream or {}).get("events_dropped", 0))
    if dropped:
        parts.append(
            '<div class="banner warn">&#9888; '
            f"<strong>{dropped:,} driver event(s) dropped</strong> from "
            "retention without a spill sink."
            '<div class="why">aggregate counters cover the full run, but '
            "the event stream and causal blame are missing those events; "
            "re-run with streaming spill (repro-agg run) or a larger "
            "event-log capacity.</div></div>")
    if stream:
        merged_from = stream.get("merged_from") or ()
        spilled = int(stream.get("events_spilled", 0))
        bits = []
        if merged_from:
            bits.append(f"merged from {len(merged_from)} shard(s)")
        if spilled:
            bits.append(f"{spilled:,} event(s) spilled to disk")
        if bits:
            warnings = stream.get("warnings") or ()
            warn_html = "".join(
                f'<div class="why">&#9888; {_esc(w)}</div>'
                for w in warnings)
            parts.append('<div class="banner">streamed run: '
                         + ", ".join(bits) + "." + warn_html + "</div>")
    if sampling:
        mode = str(sampling.get("mode", ""))
        label = ("adaptive (signature-guided) sampled tracing: steady-state "
                 "1-in-" if mode == "auto" else "sampled tracing: 1-in-")
        measured = sampling.get("measured_rate")
        measured_html = (f", measured rate {measured}"
                         if measured is not None else "")
        parts.append(
            f'<div class="banner">{label}'
            f'{int(sampling.get("sample", 1))} words '
            f'(effective rate {sampling.get("effective_rate")}'
            f'{measured_html}, '
            f'estimated fidelity {sampling.get("estimated_fidelity")}).'
            '<div class="why">heat counts and diagnostics are scaled '
            "estimates; dense runs are exact"
            + ("; phase transitions traced at full rate." if mode == "auto"
               else ".") + "</div></div>")
    return "".join(parts)


#: Phase lane fill ramp (alternating, from the sequential ramp).
_PHASE_FILLS = ("var(--h3)", "var(--h7)", "var(--h5)", "var(--h9)")


def _phases_section(phases: Sequence[Mapping[str, Any]] | None) -> str:
    """The phase lane: detected access-pattern phases over the epoch axis."""
    if not phases:
        return ""
    lo = min(int(p["start_epoch"]) for p in phases)
    hi = max(int(p["end_epoch"]) for p in phases)
    span = hi - lo + 1
    step_x = _CELL_W + _GAP
    width = _GUTTER + span * step_x
    lane_h = _CELL_H + 6
    parts = ["<h2>Access-pattern phases</h2>",
             f'<div class="sub">{len(phases)} phase(s) detected by online '
             "change-point segmentation of the per-epoch access-pattern "
             "vectors (cosine distance to the running phase centroid)</div>",
             "<figure><figcaption>phase lane "
             f"<small>epochs e{lo}&ndash;e{hi}</small></figcaption>",
             f'<svg width="{width}" height="{lane_h + 18}" '
             f'viewBox="0 0 {width} {lane_h + 18}" role="img" '
             'aria-label="detected phases over epochs">']
    for p in phases:
        x = _GUTTER + (int(p["start_epoch"]) - lo) * step_x
        w = (int(p["end_epoch"]) - int(p["start_epoch"]) + 1) * step_x - _GAP
        fill = _PHASE_FILLS[int(p["phase"]) % len(_PHASE_FILLS)]
        tip = (f"phase {p['phase']}: epochs "
               f"[{p['start_epoch']},{p['end_epoch']}], "
               f"{p['total']:,} word-accesses")
        if p.get("distance"):
            tip += f", entered at distance {p['distance']}"
        parts.append(
            f'<rect x="{x}" y="2" width="{max(w, _CELL_W)}" '
            f'height="{lane_h - 4}" rx="3" fill="{fill}">'
            f'<title>{_esc(tip)}</title></rect>')
        parts.append(
            f'<text x="{x + 3}" y="{lane_h - 7}">P{p["phase"]}</text>')
    axis_y = lane_h + 12
    parts.append(f'<text x="{_GUTTER}" y="{axis_y}">e{lo}</text>')
    parts.append(f'<text x="{width - 2}" y="{axis_y}" '
                 f'text-anchor="end">e{hi}</text>')
    parts.append("</svg>")
    parts.append("<table><tr><th>phase</th><th>epochs</th><th>count</th>"
                 "<th>word-accesses</th><th>entry distance</th></tr>")
    for p in phases:
        parts.append(
            f"<tr><td>P{p['phase']}</td>"
            f"<td>e{p['start_epoch']}&ndash;e{p['end_epoch']}</td>"
            f"<td>{p['epochs']:,}</td><td>{p['total']:,}</td>"
            f"<td>{p['distance'] if p.get('distance') else '&mdash;'}"
            "</td></tr>")
    parts.append("</table></figure>")
    return "".join(parts)


def build_report(
    *,
    workload: str,
    platform: str,
    store: HeatStore,
    diagnoses: Sequence[Any] = (),
    metrics: Mapping[str, Mapping[str, float]] | None = None,
    stats: Mapping[str, Any] | None = None,
    causes: Mapping[str, Any] | None = None,
    stream: Mapping[str, Any] | None = None,
    sampling: Mapping[str, Any] | None = None,
    backend: Mapping[str, Any] | None = None,
    phases: Sequence[Mapping[str, Any]] | None = None,
    artifacts: Iterable[str] = ("timeline.json", "events.jsonl",
                                "metrics.prom"),
) -> str:
    """Build the full self-contained HTML report (a single string).

    :param store: heat recorded for the run (epochs already frozen).
    :param diagnoses: the run's :class:`~repro.analysis.advisor.Diagnosis`
        passes; findings become overlays + the diagnoses section.
    :param metrics: :meth:`MetricsRegistry.snapshot` output.
    :param stats: the workload's numeric run stats (headline tiles).
    :param causes: a :meth:`repro.causes.CausalGraph.report` dict; adds
        the causal-blame section (runs captured with ``--why``).
    :param stream: streaming provenance: ``events_dropped`` raises the
        data-loss warning banner; ``merged_from`` / ``events_spilled`` /
        ``warnings`` describe a spill-and-merge run (``repro-agg``).
    :param sampling: :meth:`repro.runtime.Tracer.sampling_info` dict for
        sampled runs; adds the estimated-fidelity banner.
    :param backend: :meth:`repro.runtime.Tracer.backend_info` dict for
        compiled-backend runs; adds the backend-attribution banner (which
        backend executed each launch, and how many tier fallbacks).
    :param phases: detected access-pattern phases (``Phase.to_dict``
        rows, e.g. ``RunSignature.phases``); adds the phase-lane section.
    :param artifacts: sibling artifact file names to link.
    """
    findings_index = _findings_by_alloc_epoch(diagnoses)
    allocs = store.allocations()
    title = f"XPlacer run report — {workload} on {platform}"
    body = [f"<h1>{_esc(title)}</h1>",
            f'<div class="sub">{len(allocs)} traced allocation(s) &middot; '
            f'{len(store.epochs_closed)} epoch(s) &middot; '
            f'heat bucketed ×{store.nbuckets}</div>']
    body.append(_banners(stream, sampling, backend))
    body.append(_tiles(store, metrics, stats))
    body.append("<h2>Temporal heatmaps</h2>")
    if allocs:
        body.extend(_alloc_figure(h, findings_index) for h in allocs)
    else:
        body.append('<div class="none">no heat recorded '
                    '(was the heat store attached?)</div>')
    body.append(_phases_section(phases))
    body.append(_findings_section(diagnoses))
    body.append(_causes_section(causes))
    body.append(_metrics_section(metrics))
    links = " &middot; ".join(f"<code>{_esc(a)}</code>" for a in artifacts)
    body.append(
        "<h2>Timeline &amp; artifacts</h2>"
        '<div class="sub">open <a href="https://ui.perfetto.dev">'
        "ui.perfetto.dev</a> and load <code>timeline.json</code> from this "
        f"run directory for the interactive timeline. Artifacts: {links}."
        "</div>")
    body.append("<footer>generated by repro-report &middot; deterministic "
                "(fixed runs produce byte-identical reports)</footer>")
    return ("<!DOCTYPE html>\n<html lang=\"en\"><head>"
            '<meta charset="utf-8">'
            '<meta name="viewport" content="width=device-width, '
            'initial-scale=1">'
            f"<title>{_esc(title)}</title>"
            f"<style>{_CSS}{_CSS_RAMP_LIGHT}{_CSS2}</style>"
            "</head><body>"
            + "".join(body)
            + "</body></html>\n")

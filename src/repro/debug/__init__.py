"""``repro-debug``: interactive time-stepped debugging of the pipeline.

A gdb-style REPL over the instrumented mini-CUDA pipeline.  The engine
(:mod:`~repro.debug.engine`) turns the interpreter's hook interface, the
unified-memory event log and the tracer's diagnostic hooks into one pause
mechanism; breakpoints (:mod:`~repro.debug.breakpoints`) cover source
lines, kernel entries, page faults, evictions, named anti-patterns and
address/allocation watchpoints; inspection commands
(:mod:`~repro.debug.commands`) show live per-page residency, heat strips,
driver events and cause-chain explanations that reuse the
:mod:`repro.causes` renderers -- interactive blame matches ``repro-why``
byte for byte.
"""

from .breakpoints import Breakpoint, BreakpointTable, PATTERN_ALIASES
from .engine import DebugEngine, DebugQuit, DebugTracer, StopInfo
from .repl import DebugSession

__all__ = [
    "Breakpoint",
    "BreakpointTable",
    "PATTERN_ALIASES",
    "DebugEngine",
    "DebugQuit",
    "DebugTracer",
    "StopInfo",
    "DebugSession",
]

"""Command table for the ``repro-debug`` REPL.

Every command is a plain function taking ``(session, args, rest)`` --
``args`` the whitespace-split operands, ``rest`` the raw remainder for
expression commands.  Handlers either print via ``session.write`` and
return ``None`` (stay in the command loop) or return a resume action
string the loop hands back to the engine.
"""

from __future__ import annotations

from ..interp import InterpError

__all__ = ["HELP", "RESUME_ACTIONS", "execute"]

#: Actions the command loop forwards to the engine instead of handling.
RESUME_ACTIONS = frozenset({"step", "next", "continue", "finish", "quit",
                            "run"})

HELP = """\
execution
  run                     start the program (stops at breakpoints)
  step | s                execute one statement (steps into calls)
  next | n                execute one statement (steps over calls)
  finish                  run until the current function returns
  continue | c            resume until the next stop
  quit | q                end the session
breakpoints
  break LINE              stop at a source line
  break kernel NAME       stop when kernel NAME starts executing
  break fault [N]         stop at the Nth page fault (every fault if no N)
  break evict             stop at the first eviction
  break pattern NAME      stop when an anti-pattern fires at a tracePrint
                          (alternating, ping-pong, low-density, transfer-in,
                          transfer-overwritten, transfer-out, unused)
  watch LABEL             stop on any traced access to an allocation
  watch ADDR SIZE         stop on traced accesses overlapping [ADDR,ADDR+SIZE)
  delete ID               remove a breakpoint
  info break              list breakpoints
  info allocs             list traced allocations
inspection
  res LABEL               per-page CPU/GPU residency of an allocation
  heat LABEL              heat strips (closed epochs + live accumulator)
  events [K]              last K driver events (default 10)
  bt                      interpreter backtrace with kernel thread coords
  explain [SPEC]          cause chain of an event: id, 'last', a category
                          (e.g. ping-pong), an event kind, or an allocation
  blame [LIMIT]           full causal blame report for the run so far
  p EXPR                  evaluate a C expression in the paused scope"""


def execute(session, line: str) -> str | None:
    """Run one command line; returns a resume action or ``None``."""
    parts = line.split()
    if not parts:
        return None
    name, args = parts[0], parts[1:]
    rest = line[len(parts[0]):].strip()
    handler = _COMMANDS.get(name)
    if handler is None:
        session.write(f"undefined command {name!r} -- try 'help'")
        return None
    try:
        return handler(session, args, rest)
    except (ValueError, KeyError, IndexError, InterpError) as exc:
        session.write(str(exc) or type(exc).__name__)
        return None


# ---------------------------------------------------------------------- #
# handlers

def _cmd_help(session, args, rest):
    session.write(HELP)


def _resume(action):
    def handler(session, args, rest):
        return action
    return handler


def _cmd_break(session, args, rest):
    bps = session.engine.breakpoints
    if not args:
        session.write("break what? -- try 'help'")
        return None
    kind = args[0]
    if kind.isdigit():
        bp = bps.add_line(int(kind))
    elif kind == "kernel":
        if len(args) < 2:
            session.write("break kernel needs a kernel name")
            return None
        bp = bps.add_kernel(args[1])
    elif kind == "fault":
        nth = int(args[1]) if len(args) > 1 else 0
        bp = bps.add_fault(nth)
    elif kind in ("evict", "eviction"):
        bp = bps.add_eviction()
    elif kind == "pattern":
        if len(args) < 2:
            session.write("break pattern needs an anti-pattern name")
            return None
        bp = bps.add_pattern(args[1])
    else:
        session.write(f"cannot parse breakpoint spec {rest!r} -- try 'help'")
        return None
    session.write(f"breakpoint {bp.bid}: {bp.describe}")


def _cmd_watch(session, args, rest):
    engine = session.engine
    bps = engine.breakpoints
    if not args:
        session.write("watch what? -- an allocation label or ADDR SIZE")
        return None
    if len(args) >= 2:
        lo = int(args[0], 0)
        hi = lo + int(args[1], 0)
        bp = bps.add_watch(lo=lo, hi=hi)
    else:
        label = args[0]
        bp = bps.add_watch(label=label)
        alloc = engine.find_alloc(label)
        if alloc is not None:
            bps.resolve_watch_labels(label, alloc.base,
                                     alloc.base + alloc.size)
        else:
            session.write(f"(allocation {label!r} not traced yet -- the "
                          "watchpoint binds when it appears)")
    session.write(f"watchpoint {bp.bid}: {bp.describe}")


def _cmd_delete(session, args, rest):
    if not args:
        session.write("delete which breakpoint id?")
        return None
    bid = int(args[0])
    if session.engine.breakpoints.remove(bid):
        session.write(f"deleted breakpoint {bid}")
    else:
        session.write(f"no breakpoint {bid}")


def _cmd_info(session, args, rest):
    what = args[0] if args else "break"
    if what in ("break", "breakpoints", "b"):
        _write_lines(session, session.engine.break_lines())
    elif what in ("allocs", "allocations"):
        _write_lines(session, session.engine.alloc_lines())
    else:
        session.write("info what? -- 'break' or 'allocs'")


def _cmd_res(session, args, rest):
    if not args:
        session.write("res which allocation? (see 'info allocs')")
        return None
    _write_lines(session, session.engine.residency_lines(args[0]))


def _cmd_heat(session, args, rest):
    if not args:
        session.write("heat which allocation? (see 'info allocs')")
        return None
    _write_lines(session, session.engine.heat_lines(
        args[0], color=session.color))


def _cmd_events(session, args, rest):
    k = int(args[0]) if args else 10
    _write_lines(session, session.engine.event_lines(k))


def _cmd_bt(session, args, rest):
    _write_lines(session, session.engine.backtrace_lines())


def _cmd_explain(session, args, rest):
    _write_lines(session, session.engine.explain_lines(rest or "last"))


def _cmd_blame(session, args, rest):
    limit = int(args[0]) if args else 10
    session.out.write(session.engine.blame_text(limit=limit))


def _cmd_print(session, args, rest):
    if not rest:
        session.write("p what? -- a C expression")
        return None
    value = session.engine.eval_expr(rest)
    session.write(f"= {value}")


def _write_lines(session, lines):
    for line in lines:
        session.write(line)


_COMMANDS = {
    "help": _cmd_help,
    "run": _resume("run"), "r": _resume("run"),
    "step": _resume("step"), "s": _resume("step"),
    "next": _resume("next"), "n": _resume("next"),
    "finish": _resume("finish"),
    "continue": _resume("continue"), "c": _resume("continue"),
    "quit": _resume("quit"), "q": _resume("quit"), "exit": _resume("quit"),
    "break": _cmd_break, "b": _cmd_break,
    "watch": _cmd_watch,
    "delete": _cmd_delete, "d": _cmd_delete,
    "info": _cmd_info,
    "res": _cmd_res,
    "heat": _cmd_heat,
    "events": _cmd_events,
    "bt": _cmd_bt, "where": _cmd_bt,
    "explain": _cmd_explain, "why": _cmd_explain,
    "blame": _cmd_blame,
    "p": _cmd_print, "print": _cmd_print,
}

"""Breakpoint and watchpoint tables for the interactive debugger.

Five breakpoint kinds map onto the pipeline's pause points:

* ``line`` / ``kernel`` fire from the interpreter's statement and
  kernel-entry hooks;
* ``fault`` / ``eviction`` fire from the unified-memory driver's event
  log (deferred: the engine pauses at the next hook point after the
  event is recorded);
* ``pattern`` fires when a named anti-pattern is found at a
  ``tracePrint`` diagnostic.

Watchpoints are address ranges checked against every instrumented trace
call; ``watch <label>`` resolves lazily when the allocation appears.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis import AntiPattern, Finding
from ..memsim import Event, EventKind

__all__ = ["Breakpoint", "BreakpointTable", "PATTERN_ALIASES"]

#: Friendly ``break pattern <name>`` spellings -> detector patterns.
#: ``ping-pong`` is the causes-layer name for what the detectors call
#: alternating access; both spellings reach the same detector.
PATTERN_ALIASES = {
    "alternating": AntiPattern.ALTERNATING_ACCESS,
    "ping-pong": AntiPattern.ALTERNATING_ACCESS,
    "low-density": AntiPattern.LOW_ACCESS_DENSITY,
    "transfer-in": AntiPattern.UNNECESSARY_TRANSFER_IN,
    "transfer-overwritten": AntiPattern.TRANSFER_OVERWRITTEN,
    "transfer-out": AntiPattern.UNNECESSARY_TRANSFER_OUT,
    "unused": AntiPattern.UNUSED_ALLOCATION,
}


@dataclass
class Breakpoint:
    """One breakpoint or watchpoint."""

    bid: int
    kind: str          #: ``line|kernel|fault|eviction|pattern|watch``
    describe: str      #: display text for ``info break`` and stop banners
    line: int = 0
    name: str = ""     #: kernel name, pattern alias, or watch label
    nth: int = 0       #: fault ordinal (0 = every fault)
    lo: int = 0        #: watch range [lo, hi); 0,0 = unresolved label
    hi: int = 0
    enabled: bool = True
    hits: int = 0


@dataclass
class BreakpointTable:
    """Ordered table of breakpoints with kind-specific matchers."""

    _next: int = 1
    table: dict[int, Breakpoint] = field(default_factory=dict)

    def _add(self, bp: Breakpoint) -> Breakpoint:
        self.table[bp.bid] = bp
        self._next += 1
        return bp

    # ------------------------------------------------------------------ #
    # creation

    def add_line(self, line: int) -> Breakpoint:
        return self._add(Breakpoint(self._next, "line",
                                    f"line {line}", line=line))

    def add_kernel(self, name: str) -> Breakpoint:
        return self._add(Breakpoint(self._next, "kernel",
                                    f"kernel {name}", name=name))

    def add_fault(self, nth: int = 0) -> Breakpoint:
        what = f"page fault #{nth}" if nth else "every page fault"
        return self._add(Breakpoint(self._next, "fault", what, nth=nth))

    def add_eviction(self) -> Breakpoint:
        return self._add(Breakpoint(self._next, "eviction", "eviction"))

    def add_pattern(self, name: str) -> Breakpoint:
        if name not in PATTERN_ALIASES:
            known = ", ".join(sorted(PATTERN_ALIASES))
            raise ValueError(f"unknown anti-pattern {name!r} (known: {known})")
        return self._add(Breakpoint(self._next, "pattern",
                                    f"anti-pattern {name}", name=name))

    def add_watch(self, *, label: str = "", lo: int = 0,
                  hi: int = 0) -> Breakpoint:
        what = (f"watch {label}" if label
                else f"watch [{lo:#x},{hi:#x})")
        return self._add(Breakpoint(self._next, "watch", what,
                                    name=label, lo=lo, hi=hi))

    def remove(self, bid: int) -> bool:
        return self.table.pop(bid, None) is not None

    # ------------------------------------------------------------------ #
    # queries

    def __iter__(self):
        return iter(sorted(self.table.values(), key=lambda b: b.bid))

    def __len__(self) -> int:
        return len(self.table)

    def _enabled(self, kind: str):
        return (b for b in self if b.enabled and b.kind == kind)

    def match_line(self, line: int) -> Breakpoint | None:
        for bp in self._enabled("line"):
            if bp.line == line:
                return bp
        return None

    def match_kernel(self, name: str) -> Breakpoint | None:
        for bp in self._enabled("kernel"):
            if bp.name == name:
                return bp
        return None

    def match_event(self, ev: Event, fault_ordinal: int) -> Breakpoint | None:
        """A fault/eviction breakpoint matching driver event ``ev``.

        :param fault_ordinal: 1-based count of PAGE_FAULT events so far
            (including ``ev`` itself when it is a fault).
        """
        if ev.kind is EventKind.PAGE_FAULT:
            for bp in self._enabled("fault"):
                if bp.nth in (0, fault_ordinal):
                    return bp
        elif ev.kind is EventKind.EVICTION:
            for bp in self._enabled("eviction"):
                return bp
        return None

    def match_pattern(self, findings: list[Finding]
                      ) -> tuple[Breakpoint | None, list[Finding]]:
        """The first pattern breakpoint any finding satisfies."""
        for bp in self._enabled("pattern"):
            want = PATTERN_ALIASES[bp.name]
            hits = [f for f in findings if f.pattern is want]
            if hits:
                return bp, hits
        return None, []

    def match_watch(self, addr: int, size: int) -> Breakpoint | None:
        for bp in self._enabled("watch"):
            if bp.hi > bp.lo and addr < bp.hi and addr + size > bp.lo:
                return bp
        return None

    def resolve_watch_labels(self, label: str, lo: int, hi: int) -> None:
        """Bind any pending ``watch <label>`` entries to a live range."""
        for bp in self.table.values():
            if bp.kind == "watch" and bp.name == label and bp.hi <= bp.lo:
                bp.lo, bp.hi = lo, hi

"""``repro-debug``: the interactive mini-CUDA debugger command line.

::

    repro-debug prog.cu                         # interactive session
    repro-debug prog.cu --script cmds.txt       # deterministic scripted run
    repro-debug --spatter pattern.json --script cmds.txt --transcript t.txt

Scripted sessions echo every prompt+command into the output, and the
whole pipeline is simulated (no wall clock, no randomness), so two runs
of the same script produce byte-identical transcripts -- the property CI
asserts.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from ..heatmap.ansi import supports_color
from ..memsim import PLATFORMS
from .engine import DebugEngine
from .repl import DebugSession

__all__ = ["main"]

#: Accepted ``--platform`` spellings (mirrors the telemetry CLI).
PLATFORM_ALIASES = {
    "pcie": "intel-pascal",
    "pcie-pascal": "intel-pascal",
    "pcie-volta": "intel-volta",
    "nvlink": "power9-volta",
    **{name: name for name in PLATFORMS},
}


def _build_platform(name: str, gpu_mem: int):
    resolved = PLATFORM_ALIASES.get(name)
    if resolved is None:
        known = ", ".join(sorted(PLATFORM_ALIASES))
        raise SystemExit(f"unknown platform {name!r} (known: {known})")
    factory = PLATFORMS[resolved]
    if gpu_mem:
        return factory(gpu_memory_bytes=gpu_mem)
    return factory()


def _load_script(path: str) -> list[str]:
    return Path(path).read_text().splitlines()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-debug",
        description="Interactive time-stepped debugger over the instrumented"
                    " mini-CUDA pipeline: breakpoints on lines, kernels, page"
                    " faults, evictions and anti-patterns; live residency and"
                    " heat inspection; cause-link explanations.")
    parser.add_argument("source", nargs="?",
                        help="mini-CUDA source file to debug")
    parser.add_argument("--spatter", metavar="SPEC",
                        help="generate the program from a Spatter gather/"
                             "scatter pattern spec (JSON) instead of SOURCE")
    parser.add_argument("--script", metavar="FILE",
                        help="read debugger commands from FILE"
                             " (non-interactive; '#' lines are comments)")
    parser.add_argument("--transcript", metavar="FILE",
                        help="write the session transcript to FILE instead"
                             " of stdout")
    parser.add_argument("--platform", default="intel-pascal",
                        help="platform preset or alias (default:"
                             " intel-pascal; aliases: pcie, pcie-volta,"
                             " nvlink)")
    parser.add_argument("--entry", default="main",
                        help="entry function (default: main)")
    parser.add_argument("--gpu-mem", type=int, default=0, metavar="BYTES",
                        help="override GPU memory size (small values force"
                             " eviction pressure)")
    parser.add_argument("--buckets", type=int, default=48,
                        help="heat buckets per allocation (default: 48)")
    parser.add_argument("--dump-source", action="store_true",
                        help="print the (generated) program and exit")
    args = parser.parse_args(argv)

    if args.spatter:
        from ..workloads.spatter import SpatterSpec, to_mini_cuda
        spec = SpatterSpec.load(args.spatter)
        source = to_mini_cuda(spec)
        source_name = f"spatter-{spec.name}.cu"
    elif args.source:
        source = Path(args.source).read_text()
        source_name = Path(args.source).name
    else:
        parser.error("either SOURCE or --spatter is required")
    if args.dump_source:
        sys.stdout.write(source)
        return 0

    platform = _build_platform(args.platform, args.gpu_mem)
    engine = DebugEngine(source, source_name=source_name, platform=platform,
                         nbuckets=args.buckets)
    engine.entry = args.entry

    script = _load_script(args.script) if args.script else None
    sink = None
    out = sys.stdout
    if args.transcript:
        sink = open(args.transcript, "w")
        out = sink
    color = False if (script or sink) else supports_color(out)
    session = DebugSession(engine, out=out, script=script, color=color)
    try:
        session.interact()
    finally:
        if sink is not None:
            sink.close()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""The debug engine: the instrumented pipeline wired for interactive control.

A :class:`DebugEngine` owns one parse->instrument->interpret pipeline and
threads the interpreter's :class:`~repro.interp.InterpHooks`, the event
log's listeners and the tracer's diagnostic hooks into a single pause
mechanism: when anything matches a breakpoint, the engine calls
``on_pause`` *synchronously on the interpreter's stack* and the front end
(:mod:`repro.debug.repl`) runs its command loop inside that callback.
Whatever resume action the loop returns (``step``/``next``/``continue``/
``finish``) becomes the stepping mode; ``quit`` raises :class:`DebugQuit`
to unwind the whole program.

Driver events (faults, evictions) are recorded *inside* a trace call, so
their breakpoints pause **deferred**: the engine notes a pending stop and
pauses at the next hook point -- right after the faulting access
completes, matching how a hardware debugger reports an asynchronous
fault.

Because the interpreter's memory is host-backed, the plain mini-CUDA
pipeline never enters the unified-memory driver.  :class:`DebugTracer`
closes that gap: every instrumented access to a *managed* allocation is
forwarded to :meth:`~repro.memsim.UnifiedMemoryDriver.access` with a
blame context naming the interpreted source line, so the debugger sees
the same faults, migrations and cause links the Python workloads produce
-- and ``explain`` agrees with ``repro-why``.
"""

from __future__ import annotations

import io
from dataclasses import dataclass

import numpy as np

from ..analysis import (
    Finding,
    detect_alternating,
    detect_low_density,
    detect_unnecessary_transfers,
)
from ..causes import CausalGraph
from ..causes.render import format_bytes, format_cost, render_chain, \
    render_report
from ..heatmap.ansi import render_strip
from ..heatmap.store import HeatStore, SourceSite
from ..interp import Interpreter, InterpHooks
from ..memsim import (
    PAGE_SIZE,
    Allocation,
    Event,
    EventKind,
    MemoryKind,
    Platform,
    Processor,
)
from ..runtime import Tracer

__all__ = ["DebugEngine", "DebugQuit", "DebugTracer", "StopInfo"]

#: Trace wrapper name -> access verb for watchpoint banners.
_RW = {"traceR": "read", "traceW": "write", "traceRW": "rmw"}


class DebugQuit(Exception):
    """Unwinds the interpreted program when the user quits mid-run."""


@dataclass(frozen=True)
class StopInfo:
    """Why and where the engine paused."""

    reason: str  #: ``breakpoint|kernel|event|pattern|watchpoint|step|next|finish``
    line: int
    site: SourceSite
    thread: tuple[int, int] | None  #: (blockIdx.x, threadIdx.x) in kernels
    kernel: str = ""
    bp: object = None          #: the matched Breakpoint, when any
    event: Event | None = None
    findings: tuple[Finding, ...] = ()
    detail: str = ""


class DebugTracer(Tracer):
    """Tracer that also drives the UM driver from interpreted trace calls.

    ``batch=False`` by default so shadow state is exact in program order
    at every pause point.  Only MANAGED allocations enter the driver
    (host memory has no driver involvement; device memory would fault on
    the interpreter's CPU-side setup loops).
    """

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("batch", False)
        super().__init__(**kwargs)
        #: Called with each newly registered allocation (engine bookkeeping).
        self.alloc_hook = None

    def trc_register(self, alloc: Allocation):
        block = super().trc_register(alloc)
        hook = self.alloc_hook
        if hook is not None:
            hook(alloc)
        return block

    def _drive_um(self, addr: int, size: int, is_write: bool,
                  site: SourceSite | None) -> None:
        rt = self._runtime
        if rt is None or not self.enabled:
            return
        block = self.smt.lookup(addr)
        if block is None:
            return
        alloc = block.alloc
        if alloc.kind is not MemoryKind.MANAGED:
            return
        um = rt.platform.um
        if um.track_causes:
            um.blame.set(site=site.label if site else "",
                         kernel=rt._current_kernel, api="access",
                         alloc=alloc.label or "")
        out = um.access_bytes(alloc, addr - alloc.base, size,
                              rt.current_proc, is_write=is_write,
                              accessors=rt._accessors)
        if out.cost:
            # Same cost attribution as the observer path: kernel-side
            # memory time folds into the launch, host-side advances now.
            if rt._kernel_depth > 0:
                rt._kernel_mem_cost += out.cost
            else:
                rt.platform.clock.advance(out.cost)

    def traceR(self, addr: int, size: int = 4, site=None) -> int:
        self._drive_um(addr, size, False, site)
        return super().traceR(addr, size, site)

    def traceW(self, addr: int, size: int = 4, site=None) -> int:
        self._drive_um(addr, size, True, site)
        return super().traceW(addr, size, site)

    def traceRW(self, addr: int, size: int = 4, site=None) -> int:
        self._drive_um(addr, size, True, site)
        return super().traceRW(addr, size, site)


class _EngineHooks(InterpHooks):
    """Thin delegation so the interpreter never imports the debugger."""

    __slots__ = ("engine",)

    def __init__(self, engine: "DebugEngine") -> None:
        self.engine = engine

    def on_stmt(self, interp, stmt, env) -> None:
        self.engine._on_stmt(interp, stmt, env)

    def on_trace(self, interp, fn, addr, size, site) -> None:
        self.engine._on_trace(interp, fn, addr, size, site)

    def on_kernel_entry(self, interp, fn, grid, block) -> None:
        self.engine._on_kernel_entry(interp, fn, grid, block)


class DebugEngine:
    """One debuggable run of an instrumented mini-CUDA program."""

    def __init__(self, source: str, *, source_name: str = "prog.cu",
                 platform: Platform | None = None, nbuckets: int = 48,
                 out=None) -> None:
        from ..debug.breakpoints import BreakpointTable
        from ..instrument import instrument, parse

        self.source = source
        self.source_name = source_name
        self._source_lines = source.splitlines()
        unit = parse(source)
        instrument(unit)
        self.heat = HeatStore(nbuckets=nbuckets, attribute=False)
        self.tracer = DebugTracer(heat=self.heat)
        self.tracer.alloc_hook = self._on_alloc
        self.interp = Interpreter(unit, platform=platform, tracer=self.tracer,
                                  out=out or io.StringIO(),
                                  source_name=source_name)
        self.platform = self.interp.platform
        self.runtime = self.interp.runtime
        self.log = self.platform.events
        # Cause links on, Python-stack site attribution off: blame sites
        # are the interpreted program's own file:line labels.
        self.platform.um.track_causes = True
        self.platform.um.blame_sites = False
        self.breakpoints = BreakpointTable()
        self.allocs: dict[str, Allocation] = {}
        self.alloc_sites: dict[str, str] = {}
        self.interp.hooks = _EngineHooks(self)
        self.log.add_listener(self._on_event)
        self.tracer.diagnostic_hooks.append(self._on_diagnostic)
        #: ``on_pause(engine, stop) -> resume action`` -- the front end's
        #: command loop.  ``None`` means never pause (free run).
        self.on_pause = None
        #: Entry function ``run()`` executes by default (CLI ``--entry``).
        self.entry = "main"
        self.last_stop: StopInfo | None = None
        self.last_findings: tuple[Finding, ...] = ()
        self.finished = False
        self.running = False
        self.exit_value = None
        self._mode = "continue"
        self._target_depth = 0
        self._pending: StopInfo | None = None
        self._fault_no = 0
        self._env = None

    # ------------------------------------------------------------------ #
    # execution

    def run(self, entry: str | None = None):
        """Execute ``entry`` (default :attr:`entry`) under debugger control;
        returns its value."""
        entry = entry or self.entry
        if self.finished:
            raise RuntimeError("program has already exited")
        self.running = True
        try:
            value = self.interp.run(entry)
        finally:
            self.running = False
        self.finished = True
        self.exit_value = value
        self.tracer.flush_trace()
        return value

    def source_line(self, line: int) -> str:
        """Source text of 1-based ``line`` (empty when out of range)."""
        if 1 <= line <= len(self._source_lines):
            return self._source_lines[line - 1]
        return ""

    # ------------------------------------------------------------------ #
    # hook plumbing

    def _stop(self, reason: str, *, bp=None, event: Event | None = None,
              findings: tuple = (), detail: str = "") -> StopInfo:
        interp = self.interp
        t = interp._thread
        thread = (t.get("blockIdx_x", 0), t.get("threadIdx_x", 0)) if t \
            else None
        kernel = self.runtime._current_kernel \
            if self.runtime._kernel_depth else ""
        return StopInfo(reason=reason, line=interp._line,
                        site=SourceSite(self.source_name, interp._line),
                        thread=thread, kernel=kernel, bp=bp, event=event,
                        findings=tuple(findings), detail=detail)

    def _do_pause(self, stop: StopInfo) -> None:
        self._mode = "continue"
        self.last_stop = stop
        handler = self.on_pause
        if handler is None:
            return
        action = handler(self, stop) or "continue"
        if action == "quit":
            raise DebugQuit()
        if action in ("next", "finish"):
            self._target_depth = len(self.interp.call_stack)
        self._mode = action if action in ("step", "next", "finish") \
            else "continue"

    def _on_stmt(self, interp, stmt, env) -> None:
        self._env = env
        pending = self._pending
        if pending is not None:
            self._pending = None
            self._do_pause(pending)
            return
        bp = self.breakpoints.match_line(interp._line)
        if bp is not None:
            bp.hits += 1
            self._do_pause(self._stop("breakpoint", bp=bp))
            return
        mode = self._mode
        if mode == "continue":
            return
        depth = len(interp.call_stack)
        if mode == "step" \
                or (mode == "next" and depth <= self._target_depth) \
                or (mode == "finish" and depth < self._target_depth):
            self._do_pause(self._stop(mode))

    def _on_trace(self, interp, fn: str, addr: int, size: int, site) -> None:
        pending = self._pending
        if pending is not None:
            self._pending = None
            self._do_pause(pending)
        bp = self.breakpoints.match_watch(addr, size)
        if bp is not None:
            bp.hits += 1
            rw = _RW.get(fn, fn)
            self._do_pause(self._stop(
                "watchpoint", bp=bp,
                detail=f"{rw} {self.describe_addr(addr)} ({size} B)"))

    def _on_kernel_entry(self, interp, fn, grid: int, block: int) -> None:
        bp = self.breakpoints.match_kernel(fn.name)
        if bp is not None:
            bp.hits += 1
            self._do_pause(self._stop(
                "kernel", bp=bp, detail=f"{fn.name}<<<{grid},{block}>>>"))

    def _on_event(self, ev: Event) -> None:
        if ev.kind is EventKind.PAGE_FAULT:
            self._fault_no += 1
        if self._pending is None:
            bp = self.breakpoints.match_event(ev, self._fault_no)
            if bp is not None:
                bp.hits += 1
                self._pending = self._stop("event", bp=bp, event=ev)

    def _on_diagnostic(self, result) -> None:
        findings = (detect_alternating(result, self.tracer)
                    + detect_low_density(result)
                    + detect_unnecessary_transfers(result, self.tracer))
        self.last_findings = tuple(findings)
        bp, hits = self.breakpoints.match_pattern(findings)
        if bp is not None:
            bp.hits += 1
            self._do_pause(self._stop("pattern", bp=bp,
                                      findings=tuple(hits)))

    def _on_alloc(self, alloc: Allocation) -> None:
        label = alloc.label or f"alloc@{alloc.base:#x}"
        self.allocs[label] = alloc
        self.alloc_sites.setdefault(
            label, SourceSite(self.source_name, self.interp._line).label)
        self.breakpoints.resolve_watch_labels(
            label, alloc.base, alloc.base + alloc.size)

    # ------------------------------------------------------------------ #
    # inspection

    def describe_addr(self, addr: int) -> str:
        """``label+offset`` for a traced address, else hex."""
        block = self.tracer.smt.lookup(addr)
        if block is None:
            return f"{addr:#x}"
        alloc = block.alloc
        label = alloc.label or f"alloc@{alloc.base:#x}"
        return f"{label}+{addr - alloc.base}"

    def find_alloc(self, label: str) -> Allocation | None:
        return self.allocs.get(label)

    def backtrace_lines(self) -> list[str]:
        """gdb-style frames, innermost first, with kernel thread coords."""
        interp = self.interp
        frames = list(interp.call_stack)
        if not frames:
            return ["no frames (program not running)"]
        t = interp._thread
        lines = []
        for k in range(len(frames)):
            name = frames[-1 - k][0]
            line = interp._line if k == 0 else frames[-k][1]
            suffix = ""
            if k == 0 and t:
                suffix = (f"  [blockIdx.x={t.get('blockIdx_x', 0)}"
                          f" threadIdx.x={t.get('threadIdx_x', 0)}]")
            lines.append(f"#{k}  {name} at {self.source_name}:{line}{suffix}")
        return lines

    def residency_lines(self, label: str) -> list[str]:
        """Per-page residency map of one allocation from live UM state."""
        alloc = self.find_alloc(label)
        if alloc is None:
            return [f"no traced allocation {label!r} (see 'info allocs')"]
        npages = -(-alloc.size // PAGE_SIZE)
        head = (f"{label}: {alloc.kind.name.lower()}, {alloc.size} bytes, "
                f"{npages} page(s)")
        if alloc.kind is not MemoryKind.MANAGED:
            return [head + " -- no UM residency (not managed memory)"]
        st = self.platform.um.state_of(alloc)
        cpu = st.present[Processor.CPU]
        gpu = st.present[Processor.GPU]
        both = cpu & gpu
        lines = [head + f"  cpu={int((cpu & ~gpu).sum())}"
                        f" gpu={int((gpu & ~cpu).sum())}"
                        f" both={int(both.sum())}"
                        f" absent={int((~cpu & ~gpu).sum())}"]
        chars = np.where(both, "B", np.where(gpu, "g",
                         np.where(cpu, "c", ".")))
        text = "".join(chars)
        for off in range(0, len(text), 64):
            lines.append(f"  page {off:>4} |{text[off:off + 64]}|")
        lines.append("  legend: c=CPU g=GPU B=both .=absent")
        rm = int(st.read_mostly.sum())
        if rm:
            lines.append(f"  read-mostly pages: {rm}")
        return lines

    def heat_lines(self, label: str, *, color: bool = False,
                   epochs: int = 3) -> list[str]:
        """Heat strips: last closed epochs plus the live accumulator."""
        alloc = self.find_alloc(label)
        if alloc is None:
            return [f"no traced allocation {label!r} (see 'info allocs')"]
        heat = self.heat.peek(alloc)
        if heat is None or not heat.touched:
            return [f"{label}: no heat recorded yet"]
        closed = heat.epochs[-epochs:] if epochs else []
        live = heat.current_heat()
        peak = max([1, int(live.max())]
                   + [int(e.heat.max()) for e in closed])
        lines = [f"{label} heat ({heat.nbuckets} buckets over "
                 f"{heat.nwords} words, peak {peak}/bucket)"]
        for e in closed:
            lines.append(f"  e{e.epoch:<3d} |"
                         f"{render_strip(e.heat, peak, color=color)}|"
                         f" {e.total}")
        lines.append(f"  live |{render_strip(live, peak, color=color)}|"
                     f" {int(live.sum())}")
        top = heat.current_top_sites(3)
        if top:
            lines.append("  live top sites: "
                         + ", ".join(f"{s.label} x{n}" for s, n in top))
        return lines

    def event_lines(self, k: int = 10) -> list[str]:
        evs = list(self.log)[-k:]
        if not evs:
            return ["no driver events recorded"]
        lines = [f"last {len(evs)} of {len(self.log)} driver event(s):"]
        for ev in evs:
            c = ev.cause
            src = (c.site or c.kernel) if c else ""
            lines.append(
                f"  #{ev.id:<4d} {ev.kind.value:<13s} {ev.device.name:<3s}"
                f" pages={ev.pages:<3d} cost={format_cost(ev.cost):<9s}"
                f" {ev.detail}" + (f"  <- {src}" if src else ""))
        return lines

    def alloc_lines(self) -> list[str]:
        if not self.allocs:
            return ["no traced allocations yet"]
        lines = ["traced allocations:"]
        for label, alloc in sorted(self.allocs.items(),
                                   key=lambda kv: kv[1].base):
            site = self.alloc_sites.get(label, "")
            lines.append(f"  {label:<12s} {alloc.kind.name.lower():<8s}"
                         f" {alloc.size:>8d} B  base {alloc.base:#x}"
                         + (f"  ({site})" if site else ""))
        return lines

    def break_lines(self) -> list[str]:
        if not len(self.breakpoints):
            return ["no breakpoints set"]
        lines = ["breakpoints:"]
        for bp in self.breakpoints:
            state = "" if bp.enabled else "  [disabled]"
            lines.append(f"  {bp.bid}: {bp.describe}  hits={bp.hits}{state}")
        return lines

    # ------------------------------------------------------------------ #
    # causal explanations

    def graph(self) -> CausalGraph:
        """A fresh causal graph over the run's events so far."""
        return CausalGraph.from_log(self.log, self.alloc_sites)

    def _pick_event(self, graph: CausalGraph, spec: str):
        spec = spec.strip() or "last"
        if spec == "last":
            return graph.events[-1]
        if spec.lstrip("-").isdigit():
            want = int(spec)
            return next((e for e in graph.events if e.id == want), None)
        cat = spec.replace("-", "_")
        cands = [e for e in graph.events if graph.category(e) == cat]
        if not cands:
            cands = [e for e in graph.events if e.kind == cat]
        if not cands:
            cands = [e for e in graph.events if e.alloc == spec]
        if not cands:
            return None
        return max(cands, key=lambda e: (e.cost, e.id))

    def explain_lines(self, spec: str = "last") -> list[str]:
        """Walk one event's cause links back to source lines.

        ``spec`` is an event id, ``last``, an anti-pattern category
        (``ping_pong``/``ping-pong``, ``oversubscription_refault``, ...),
        an event kind, or an allocation label; non-id specs pick the
        costliest matching event.  Chain formatting is the shared
        :func:`~repro.causes.render.render_chain`, byte-identical to the
        ``repro-why`` critical-path table.
        """
        graph = self.graph()
        if not graph.events:
            return ["no driver events to explain"]
        ev = self._pick_event(graph, spec)
        if ev is None:
            return [f"no event matches {spec!r} (try an id from 'events',"
                    " 'last', a category, or an allocation label)"]
        nodes = graph.chain(ev.id)
        total = sum(n["cost"] for n in nodes)
        cat = graph.category(ev)
        lines = [f"event #{ev.id} {ev.kind}: cause chain of {len(nodes)}"
                 f" event(s), {format_cost(total)} along the chain"]
        lines += render_chain(nodes)
        rollup = next((r for r in graph.blame()["by_category"]
                       if r["category"] == cat), None)
        if rollup is not None:
            lines.append(
                f"category {cat} this run: {rollup['events']} event(s),"
                f" {rollup['pages']} page(s),"
                f" {format_bytes(rollup['moved'])} moved,"
                f" {format_cost(rollup['cost'])}")
        return lines

    def blame_text(self, limit: int = 10) -> str:
        """The full ``repro-why``-style blame report for the run so far."""
        report = self.graph().report(workload=self.source_name,
                                     platform=self.platform.name)
        return render_report(report, limit=limit)

    # ------------------------------------------------------------------ #
    # expression evaluation

    def eval_expr(self, text: str):
        """Evaluate a C expression in the paused scope (globals when idle)."""
        from ..instrument.lexer import tokenize
        from ..instrument.parser import Parser

        expr = Parser(tokenize(text)).parse_expression()
        env = self._env if self._env is not None else self.interp.globals
        value, _ = self.interp.eval(expr, env)
        return value

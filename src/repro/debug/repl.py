"""The ``repro-debug`` session: prompt loop, stop banners, transcripts.

A :class:`DebugSession` owns one :class:`~repro.debug.engine.DebugEngine`
and installs itself as its ``on_pause`` handler, so the command loop runs
*inside* the interpreter's pause callback -- no threads, and every
command sees the program frozen mid-statement.

Two input modes share all code paths:

* **interactive** -- commands come from stdin with a prompt;
* **scripted** (``--script``) -- commands come from a list and every
  prompt+command is echoed into the output, producing a deterministic
  transcript (the simulation has no wall-clock or randomness, so two
  runs of the same script byte-match).
"""

from __future__ import annotations

import sys
from typing import IO

from ..interp import InterpError
from . import commands
from .engine import DebugEngine, DebugQuit, StopInfo

__all__ = ["DebugSession"]


class DebugSession:
    """One interactive (or scripted) debugging session."""

    def __init__(self, engine: DebugEngine, *, out: IO[str] | None = None,
                 script: list[str] | None = None, color: bool = False,
                 prompt: str = "(repro-debug) ") -> None:
        self.engine = engine
        self.out = out if out is not None else sys.stdout
        self.color = color
        self.prompt = prompt
        self._script = list(script) if script is not None else None
        self._script_pos = 0
        engine.on_pause = self._on_pause

    # ------------------------------------------------------------------ #
    # I/O

    def write(self, text: str = "") -> None:
        self.out.write(text + "\n")

    def _read(self) -> str | None:
        """The next command line, or ``None`` on end of input."""
        if self._script is not None:
            while self._script_pos < len(self._script):
                line = self._script[self._script_pos]
                self._script_pos += 1
                stripped = line.strip()
                if not stripped or stripped.startswith("#"):
                    continue  # blank/comment script lines are not echoed
                self.out.write(self.prompt + stripped + "\n")
                return stripped
            return None
        self.out.write(self.prompt)
        try:
            self.out.flush()
        except (OSError, ValueError):  # pragma: no cover - closed sink
            pass
        line = sys.stdin.readline()
        if not line:
            self.out.write("\n")
            return None
        return line.strip()

    # ------------------------------------------------------------------ #
    # top-level loop

    def interact(self) -> None:
        """Read commands until quit / end of input.

        Resume commands before ``run`` (and after exit) are rejected with
        a message, like gdb; ``run`` executes the program with the pause
        machinery live.
        """
        while True:
            line = self._read()
            if line is None:
                return
            action = commands.execute(self, line)
            if action is None:
                continue
            if action == "quit":
                return
            if action == "run":
                if self._run():
                    return
                continue
            self.write("the program is not being run -- 'run' starts it")

    def _run(self) -> bool:
        """Execute the program; returns True when the session should end."""
        engine = self.engine
        if engine.finished:
            self.write("the program has already exited -- "
                       "restart repro-debug to rerun")
            return False
        try:
            value = engine.run()
        except DebugQuit:
            self.write("[session ended by quit; program not finished]")
            return True
        except InterpError as exc:
            self.write(f"[program error: {exc}]")
            return False
        self.write(f"[program exited with value {value}]")
        return False

    # ------------------------------------------------------------------ #
    # pause handling

    def _on_pause(self, engine: DebugEngine, stop: StopInfo) -> str:
        self._banner(stop)
        while True:
            line = self._read()
            if line is None:
                return "quit"
            action = commands.execute(self, line)
            if action is None:
                continue
            if action == "run":
                self.write("the program is already running")
                continue
            return action

    def _banner(self, stop: StopInfo) -> None:
        engine = self.engine
        loc = f"{engine.source_name}:{stop.line}"
        if stop.thread is not None:
            loc += (f" [blockIdx.x={stop.thread[0]}"
                    f" threadIdx.x={stop.thread[1]}]")
        bp = stop.bp
        if stop.reason == "breakpoint":
            self.write(f"breakpoint {bp.bid} ({bp.describe}) at {loc}")
        elif stop.reason == "kernel":
            self.write(f"breakpoint {bp.bid}: entering {stop.detail}"
                       f" at {loc}")
        elif stop.reason == "event":
            ev = stop.event
            self.write(f"breakpoint {bp.bid} ({bp.describe}):"
                       f" {ev.kind.value} on {ev.device.name},"
                       f" {ev.pages} page(s), {ev.detail} at {loc}")
        elif stop.reason == "pattern":
            self.write(f"breakpoint {bp.bid} ({bp.describe}) fired at {loc}")
            for f in stop.findings:
                self.write(f"  {f.pattern.value}: {f.name} -- {f.detail}")
        elif stop.reason == "watchpoint":
            self.write(f"watchpoint {bp.bid} ({bp.describe}):"
                       f" {stop.detail} at {loc}")
        else:  # step / next / finish
            self.write(f"stopped at {loc}")
        text = engine.source_line(stop.line)
        if text:
            self.write(f"  {stop.line:>4}  {text}")

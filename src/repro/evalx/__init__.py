"""Evaluation harness: one experiment per paper figure/table.

Use ``python -m repro.evalx`` (or the ``xplacer-eval`` script) to
regenerate everything, or import the experiment functions directly::

    from repro.evalx import EXPERIMENTS
    result = EXPERIMENTS["fig6"]()
    for row in result.rows: ...
"""

from . import figures, tables  # noqa: F401  (registration side effects)
from .base import EXPERIMENTS, ExperimentResult
from .figures import fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11
from .tables import TABLE2_EXPECTED, tab2, tab3

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "TABLE2_EXPECTED", "tab2", "tab3",
]

"""``python -m repro.evalx`` entry point."""

from .runner import main

raise SystemExit(main())

"""CLI for the evaluation harness: ``python -m repro.evalx [ids...]``.

Running with no arguments regenerates every figure and table.  Each
experiment prints the rows/series the paper reports; ``--list`` shows the
catalogue with the paper artifact each id corresponds to.
"""

from __future__ import annotations

import argparse
import csv
import io
import sys
from pathlib import Path

from . import figures, spatter, tables  # noqa: F401  (importing registers experiments)
from .base import EXPERIMENTS, ExperimentResult

__all__ = ["main", "rows_to_csv", "PLACEMENT_PAIRS"]

#: Experiments comparing two placement variants of one workload:
#: experiment id -> (baseline workload, optimized/advised workload), both
#: names from :data:`repro.telemetry.cli.WORKLOADS`.  ``--why`` captures
#: each variant with causal provenance and auto-diffs the pair.
PLACEMENT_PAIRS: dict[str, tuple[str, str]] = {
    "fig9": ("sw", "sw-advised"),
    "fig11": ("pathfinder", "pathfinder-opt"),
}


def _run_why(name: str, why_dir: Path) -> None:
    """Capture + diff the placement pair behind experiment ``name``."""
    from ..causes.capture import run_with_causes
    from ..causes.diff import diff_reports
    from ..causes.render import render_diff

    pair = PLACEMENT_PAIRS.get(name)
    if pair is None:
        print(f"why: {name} has no placement pair; "
              f"known: {', '.join(sorted(PLACEMENT_PAIRS))}")
        return
    base, cand = pair
    exp_dir = why_dir / name
    result_a = run_with_causes(base, "pcie", exp_dir / base)
    result_b = run_with_causes(cand, "pcie", exp_dir / cand)
    diff = diff_reports(result_a["report"], result_b["report"],
                        label_a=base, label_b=cand)
    import json
    (exp_dir / "why_diff.json").write_text(
        json.dumps(diff, indent=2, sort_keys=False) + "\n")
    print(f"why: {name} ({base} vs {cand}) -> {exp_dir / 'why_diff.json'}")
    print(render_diff(diff, limit=5), end="")


def rows_to_csv(result: ExperimentResult) -> str:
    """Render an experiment's rows as CSV (for external plotting)."""
    if not result.rows:
        return ""
    fields: list[str] = []
    for row in result.rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields)
    writer.writeheader()
    for row in result.rows:
        writer.writerow({k: _cell(v) for k, v in row.items()})
    return buf.getvalue()


def _cell(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    if isinstance(value, (list, tuple, set)):
        return ";".join(str(v) for v in sorted(value, key=str))
    return value


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="xplacer-eval",
        description="Regenerate the XPlacer paper's figures and tables "
                    "on the simulated platforms.",
    )
    parser.add_argument("ids", nargs="*",
                        help="experiment ids (fig4..fig11, tab2, tab3); "
                             "default: all")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments and exit")
    parser.add_argument("--quick", action="store_true",
                        help="smaller configurations (tab3)")
    parser.add_argument("--csv", metavar="DIR",
                        help="also write each experiment's rows as "
                             "DIR/<id>.csv")
    parser.add_argument("--telemetry-dir", metavar="DIR",
                        help="record telemetry for every session an "
                             "experiment opens; writes DIR/<id>/"
                             "{timeline.json,events.jsonl,metrics.prom}")
    parser.add_argument("--report", action="store_true",
                        help="with --telemetry-dir: also record access "
                             "heat and render DIR/<id>/report.html")
    parser.add_argument("--why", metavar="DIR",
                        help="for experiments with a placement pair "
                             "(fig9, fig11): capture both variants with "
                             "causal provenance and write DIR/<id>/"
                             "why_diff.json plus the diff summary")
    from ..codegen import BACKENDS
    parser.add_argument("--backend", default="auto", choices=BACKENDS,
                        help="execution backend for any mini-CUDA program "
                             "an experiment interprets: auto (default) "
                             "vectorizes when provable, falling back to "
                             "per-thread codegen, then interp; Session "
                             "workloads run native Python regardless")
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in EXPERIMENTS.items():
            print(f"{name:8s} {fn.title}")
        return 0

    ids = args.ids or list(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}; "
              f"known: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2

    from ..codegen import default_backend, set_default_backend
    prev_backend = default_backend()
    set_default_backend(args.backend)
    try:
        return _run(args, ids)
    finally:
        set_default_backend(prev_backend)


def _run(args: argparse.Namespace, ids: list[str]) -> int:
    """Execute the selected experiments (backend default already set)."""

    csv_dir = None
    if args.csv:
        csv_dir = Path(args.csv)
        csv_dir.mkdir(parents=True, exist_ok=True)

    telemetry_dir = Path(args.telemetry_dir) if args.telemetry_dir else None
    if args.report and telemetry_dir is None:
        parser.error("--report requires --telemetry-dir")

    for name in ids:
        kwargs = {"quick": True} if (args.quick and name == "tab3") else {}
        recorder = None
        heat = None
        if telemetry_dir is not None:
            from ..telemetry import JsonlWriter, TelemetryRecorder
            from ..telemetry import context as telemetry_context

            exp_dir = telemetry_dir / name
            if args.report:
                from ..heatmap.store import HeatStore
                heat = HeatStore()
            recorder = TelemetryRecorder(
                jsonl=JsonlWriter(exp_dir / "events.jsonl"), heat=heat)
            recorder.workload = name
            recorder.config = dict(kwargs)
            telemetry_context.install(recorder)
        try:
            result = EXPERIMENTS[name](**kwargs)
        finally:
            if recorder is not None:
                telemetry_context.uninstall()
                recorder.detach()
                paths = recorder.flush(exp_dir)
                if heat is not None:
                    from ..heatmap.html import build_report

                    report = build_report(
                        workload=name, platform="(per experiment)",
                        store=heat, metrics=recorder.metrics.snapshot())
                    (exp_dir / "report.html").write_text(report)
                print(f"telemetry: {paths['timeline'].parent}")
        print(result)
        if csv_dir is not None:
            (csv_dir / f"{name}.csv").write_text(rows_to_csv(result))
        if args.why is not None:
            _run_why(name, Path(args.why))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Experiment scaffolding for the evaluation harness.

Every paper artifact (figure or table) has one experiment function that
regenerates it.  Experiments return an :class:`ExperimentResult` holding
both machine-readable rows and the formatted text the CLI prints; the
``benchmarks/`` suite wraps the same functions in pytest-benchmark cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["ExperimentResult", "EXPERIMENTS", "experiment"]


@dataclass
class ExperimentResult:
    """Output of one experiment."""

    name: str
    title: str
    rows: list[dict] = field(default_factory=list)
    text: str = ""

    def __str__(self) -> str:
        header = f"== {self.name}: {self.title} =="
        return f"{header}\n{self.text}"


#: Registry: experiment id (fig4..fig11, tab2, tab3) -> callable.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {}


def experiment(name: str, title: str):
    """Register an experiment function under ``name``."""

    def wrap(fn):
        def run(**kwargs) -> ExperimentResult:
            return fn(ExperimentResult(name=name, title=title), **kwargs)

        run.__name__ = fn.__name__
        run.__doc__ = fn.__doc__
        run.title = title
        EXPERIMENTS[name] = run
        return run

    return wrap

"""Experiments regenerating the paper's tables (Table II and Table III)."""

from __future__ import annotations

import io
import time

from ..analysis import AntiPattern, diagnose
from ..workloads.base import make_session
from ..workloads.lulesh import Lulesh
from ..workloads.rodinia import Backprop, Cfd, Gaussian, Lud, NearestNeighbor, Pathfinder
from ..workloads.smithwaterman import SmithWaterman

from .base import ExperimentResult, experiment

__all__ = ["tab2", "tab3"]

#: What Table II reports per benchmark (pattern, allocation substring).
TABLE2_EXPECTED = {
    "backprop": [
        (AntiPattern.UNUSED_ALLOCATION, "output_hidden_cuda"),
        (AntiPattern.UNNECESSARY_TRANSFER_OUT, "input_cuda"),
    ],
    "cfd": [],
    "gaussian": [(AntiPattern.TRANSFER_OVERWRITTEN, "m_cuda")],
    "lud": [(AntiPattern.UNNECESSARY_TRANSFER_OUT, "m_d")],
    "nn": [],
    "pathfinder": [(AntiPattern.UNNECESSARY_TRANSFER_IN, "gpuWall")],
}


@experiment("tab2", "Findings in a subset of the Rodinia benchmarks")
def tab2(result: ExperimentResult) -> ExperimentResult:
    """Run the six Rodinia ports under XPlacer; list detector findings."""
    out = io.StringIO()

    def run_whole(name, app_cls, **kw):
        session = make_session(trace=True, materialize=True)
        app_cls(session, **kw).run()
        return name, diagnose(session.tracer, include_unnamed=True).findings

    def run_pathfinder():
        # The pathfinder pattern is per-iteration (like the paper's
        # "where applicable, we ran the analysis after each iteration").
        session = make_session(trace=True, materialize=True)
        app = Pathfinder(session, cols=2048, rows=26, pyramid_height=5,
                         diagnose_each_iteration=True)
        run = app.run()
        return "pathfinder", [f for d in run.diagnoses for f in d.findings]

    cases = [
        run_whole("backprop", Backprop, input_size=8192),
        run_whole("cfd", Cfd, cells=2048),
        run_whole("gaussian", Gaussian, size=64),
        run_whole("lud", Lud, size=64),
        run_whole("nn", NearestNeighbor, records=4096),
        run_pathfinder(),
    ]
    for bench, findings in cases:
        expected = TABLE2_EXPECTED[bench]
        found = {(f.pattern, f.name) for f in findings}
        matched = all(any(p is fp and sub in fn for fp, fn in found)
                      for p, sub in expected)
        clean_expected = not expected
        clean_found = not findings
        status = "MATCH" if (matched and (not clean_expected or clean_found)) \
            else "DIFFERS"
        out.write(f"{bench:12s} [{status}]\n")
        if not findings:
            out.write("    no possible improvements identified.\n")
        seen = set()
        for f in findings:
            key = (f.pattern, f.name)
            if key in seen:
                continue
            seen.add(key)
            out.write(f"    {f.pattern.value}: {f.name}\n")
        result.rows.append({
            "benchmark": bench,
            "findings": sorted({(f.pattern.name, f.name) for f in findings}),
            "matches_paper": status == "MATCH",
        })
    result.text = out.getvalue()
    return result


#: Table III configurations: (label, runner) where runner(trace) -> None.
def _tab3_cases(quick: bool):
    lulesh_sizes = (8, 16) if quick else (8, 48, 96)
    sw_sizes = (200,) if quick else (1000, 2000)
    cases = []
    for size in lulesh_sizes:
        def run_lul(trace, size=size):
            session = make_session("intel-pascal", trace=trace,
                                   materialize=False)
            Lulesh(session, size).run(4 if size > 32 else 16)
        cases.append((f"LULESH 2 (size={size})", run_lul))
    for n in sw_sizes:
        def run_sw(trace, n=n):
            session = make_session("intel-pascal", trace=trace,
                                   materialize=False)
            SmithWaterman(session, n).run()
        cases.append((f"Smith-Waterman ({n}x{n})", run_sw))

    def run_bp(trace):
        session = make_session("intel-pascal", trace=trace, materialize=True)
        Backprop(session, input_size=65536 if not quick else 8192).run()
    cases.append(("Backprop", run_bp))

    def run_ga(trace):
        session = make_session("intel-pascal", trace=trace, materialize=True)
        Gaussian(session, size=128 if not quick else 48).run()
    cases.append(("Gaussian", run_ga))
    return cases


@experiment("tab3", "Runtime overhead of XPlacer instrumentation")
def tab3(result: ExperimentResult, *, quick: bool = False,
         repeats: int = 3) -> ExperimentResult:
    """Wall-clock ratio of traced vs untraced runs.

    The paper measures compiled instrumented binaries (5x-20x, ~15x
    average); here the ratio measures the tracer + shadow-memory layer of
    the Python runtime -- the same *kind* of overhead on the same code
    paths, reported the same way.
    """
    out = io.StringIO()
    out.write(f"{'benchmark':28s}{'plain':>10s}{'traced':>10s}{'overhead':>10s}\n")
    for label, runner in _tab3_cases(quick):
        def best(trace: bool) -> float:
            times = []
            for _ in range(repeats):
                t0 = time.perf_counter()
                runner(trace)
                times.append(time.perf_counter() - t0)
            return min(times)

        plain = best(False)
        traced = best(True)
        ratio = traced / plain if plain > 0 else float("inf")
        result.rows.append({"benchmark": label, "plain_s": plain,
                            "traced_s": traced, "overhead_x": ratio})
        out.write(f"{label:28s}{plain:9.3f}s{traced:9.3f}s{ratio:9.1f}x\n")
    mean = sum(r["overhead_x"] for r in result.rows) / len(result.rows)
    out.write(f"{'average':28s}{'':10s}{'':10s}{mean:9.1f}x\n")
    result.text = out.getvalue()
    return result

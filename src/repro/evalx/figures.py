"""Experiments regenerating the paper's figures (Fig 4 through Fig 11)."""

from __future__ import annotations

import io

import numpy as np

from ..memsim import PLATFORMS
from ..runtime import AccessMap, format_text, overlap
from ..workloads.base import make_session
from ..workloads.lulesh import VARIANTS, Lulesh
from ..workloads.rodinia import OverlappedPathfinder, Pathfinder
from ..workloads.smithwaterman import RotatedSmithWaterman, SmithWaterman

from .base import ExperimentResult, experiment

__all__ = ["fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11"]

#: The paper's Smith-Waterman input lengths and its 16 GB-class GPU.
SW_PAPER_SIZES = (5000, 25000, 45000, 46000)
SW_PAPER_GPU_MEMORY = 16.6e9


def sw_scaled(scale: int) -> tuple[tuple[int, ...], int]:
    """Paper SW sizes scaled by ``1/scale`` with GPU memory scaled by
    ``1/scale^2`` (matrix areas scale quadratically), so the 45000->46000
    oversubscription crossover lands in the same place."""
    sizes = tuple(s // scale for s in SW_PAPER_SIZES)
    return sizes, int(SW_PAPER_GPU_MEMORY / scale ** 2)


@experiment("fig4", "LULESH 2: partial XPlacer output after the second iteration")
def fig4(result: ExperimentResult, *, size: int = 8) -> ExperimentResult:
    """Diagnostic table for ``dom`` and ``(dom)->m_p``, Fig 4 layout."""
    session = make_session("intel-pascal", trace=True, materialize=True)
    app = Lulesh(session, size, diagnose_each_step=True)
    run = app.run(2)
    diag = run.diagnoses[1].result
    out = io.StringIO()
    out.write(f"*** checking {len(diag.reports)} named allocations\n")
    shown = [r for r in diag.reports if r.name in ("dom", "(dom)->m_p")]
    sub = type(diag)(epoch=diag.epoch, reports=shown)
    out.write(format_text(sub).split("\n", 1)[1])
    out.write(f"[{len(diag.reports) - len(shown)} more entries omitted]\n")
    for r in shown:
        c = r.counts
        result.rows.append({
            "name": r.name, "C": c.cpu_written, "G": c.gpu_written,
            "C>C": c.read_cc, "C>G": c.read_cg, "G>C": c.read_gc,
            "G>G": c.read_gg, "density_pct": r.density_pct,
            "alternating": r.alternating,
        })
    result.text = out.getvalue()
    return result


@experiment("fig5", "LULESH 2: access maps of the domain object")
def fig5(result: ExperimentResult, *, size: int = 8, width: int = 72) -> ExperimentResult:
    """Six maps: CPU writes/reads and GPU reads, init+iter1 vs iter2."""
    session = make_session("intel-pascal", trace=True, materialize=True)
    app = Lulesh(session, size, diagnose_each_step=True)
    run = app.run(2)
    out = io.StringIO()
    panels = (("a", 0, "cpu_write", "CPU writes"),
              ("b", 0, "cpu_read", "CPU reads"),
              ("c", 0, "gpu_read", "GPU reads"),
              ("d", 1, "cpu_write", "CPU writes"),
              ("e", 1, "cpu_read", "CPU reads"),
              ("f", 1, "gpu_read", "GPU reads"))
    for tag, epoch, cat, label in panels:
        report = run.diagnoses[epoch].result.named("dom")
        amap = report.maps[cat]
        phase = "init + iteration 1" if epoch == 0 else "iteration 2"
        out.write(f"(5{tag}) dom {label} -- {phase} "
                  f"({amap.touched}/{amap.words} words)\n")
        out.write(amap.to_ascii(width) + "\n\n")
        result.rows.append({"panel": tag, "epoch": epoch, "category": cat,
                            "touched": amap.touched, "words": amap.words})
    # The Fig 5e/5f story: where GPU reads overlap CPU writes in steady state.
    rep = run.diagnoses[1].result.named("dom")
    both = overlap(rep.maps["cpu_write"], rep.maps["gpu_read"])
    out.write(f"overlap of CPU writes and GPU reads in iteration 2: "
              f"{both.touched} words (the temporary-pointer slots)\n")
    result.rows.append({"panel": "overlap", "epoch": 1,
                        "category": "cpu_write&gpu_read",
                        "touched": both.touched, "words": both.words})
    result.text = out.getvalue()
    return result


@experiment("fig6", "LULESH 2: speedup over the baseline (3 platforms x 4 remedies)")
def fig6(result: ExperimentResult, *, sizes=(8, 16, 32, 48),
         iterations: int = 16) -> ExperimentResult:
    """Remedy speedups per platform and problem size."""
    out = io.StringIO()
    out.write(f"{'platform':14s}{'size':>5s}{'baseline':>11s}"
              + "".join(f"{v:>14s}" for v in VARIANTS[1:]) + "\n")
    for plat in PLATFORMS:
        for size in sizes:
            times = {}
            for variant in VARIANTS:
                session = make_session(plat, trace=False, materialize=False)
                run = Lulesh(session, size, variant=variant).run(iterations)
                times[variant] = run.sim_time
            base = times["baseline"]
            row = {"platform": plat, "size": size, "baseline_s": base}
            row.update({v: base / times[v] for v in VARIANTS[1:]})
            result.rows.append(row)
            out.write(f"{plat:14s}{size:5d}{base:10.4f}s"
                      + "".join(f"{base / times[v]:13.2f}x" for v in VARIANTS[1:])
                      + "\n")
    result.text = out.getvalue()
    return result


@experiment("fig7", "Smith-Waterman 20x10: H initialization vs actually-used boundary")
def fig7(result: ExperimentResult) -> ExperimentResult:
    """CPU writes the whole matrix; only boundary zeroes are ever read."""
    from ..analysis import diagnose
    session = make_session("intel-pascal", trace=True, materialize=True)
    sw = SmithWaterman(session, 20, 10)
    sw.run()
    diag = diagnose(session.tracer, sw.descriptors())
    h = diag.result.named("H")
    w = sw.geom.width
    out = io.StringIO()
    cpu_init = AccessMap("H", "cpu_write", h.maps["cpu_write"].mask[: (sw.n + 1) * w])
    used = AccessMap("H", "gpu_read_cpu_origin",
                     h.maps["gpu_read_cpu_origin"].mask[: (sw.n + 1) * w])
    out.write(f"(7a) H values written by the CPU "
              f"({cpu_init.touched}/{cpu_init.words} words)\n")
    out.write(cpu_init.to_ascii(w) + "\n\n")
    out.write(f"(7b) initial values actually read by the GPU "
              f"({used.touched}/{used.words} words -- the boundary)\n")
    out.write(used.to_ascii(w) + "\n")
    result.rows.append({"panel": "a", "touched": cpu_init.touched,
                        "words": cpu_init.words})
    result.rows.append({"panel": "b", "touched": used.touched,
                        "words": used.words})
    result.text = out.getvalue()
    return result


@experiment("fig8", "Smith-Waterman 20x10: GPU accesses to H in iteration 8")
def fig8(result: ExperimentResult) -> ExperimentResult:
    """GPU writes diag 8; reads GPU values of diags 6 and 7."""
    session = make_session("intel-pascal", trace=True, materialize=True)
    sw = SmithWaterman(session, 20, 10, diagnose_each_iteration=True)
    run = sw.run()
    diag = run.diagnoses[6]  # wavefront k = 8
    h = diag.result.named("H")
    w = sw.geom.width
    out = io.StringIO()
    for tag, cat, label in (("a", "gpu_write", "values written by the GPU"),
                            ("b", "gpu_read_gpu_origin",
                             "values read (produced by the GPU in the "
                             "previous two iterations)")):
        amap = AccessMap("H", cat, h.maps[cat].mask[: (sw.n + 1) * w])
        out.write(f"(8{tag}) {label} ({amap.touched} words)\n")
        out.write(amap.to_ascii(w) + "\n\n")
        diags = {int(off // w) + int(off % w)
                 for off in np.flatnonzero(amap.mask)}
        result.rows.append({"panel": tag, "touched": amap.touched,
                            "diagonals": sorted(diags)})
    result.text = out.getvalue()
    return result


@experiment("fig9", "Smith-Waterman: speedup of the rotated version")
def fig9(result: ExperimentResult, *, scale: int = 10) -> ExperimentResult:
    """Rotated-vs-baseline across sizes, including the oversubscribed one.

    Sizes are the paper's 5000/25000/45000/46000 scaled by ``1/scale``,
    with GPU memory scaled by ``1/scale^2`` (areas scale quadratically),
    so the largest input exceeds simulated GPU memory as in the paper.
    """
    sizes, gpu_memory = sw_scaled(scale)
    out = io.StringIO()
    out.write(f"sizes {sizes} = paper sizes / {scale}; "
              f"GPU memory {gpu_memory / 1e6:.0f} MB = 16.6 GB / {scale}^2\n")
    out.write(f"{'platform':14s}{'n':>7s}{'baseline':>12s}{'rotated':>12s}"
              f"{'speedup':>9s}\n")
    for plat in ("intel-pascal", "power9-volta"):
        preferred = plat == "intel-pascal"  # paper's per-platform choice
        for n in sizes:
            sb = make_session(plat, trace=False, materialize=False,
                              gpu_memory_bytes=gpu_memory)
            base = SmithWaterman(sb, n).run()
            so = make_session(plat, trace=False, materialize=False,
                              gpu_memory_bytes=gpu_memory)
            opt = RotatedSmithWaterman(so, n, set_preferred_gpu=preferred).run()
            speedup = base.sim_time / opt.sim_time
            result.rows.append({
                "platform": plat, "n": n,
                "baseline_ms": base.sim_time * 1e3,
                "rotated_ms": opt.sim_time * 1e3,
                "speedup": speedup,
                "baseline_fault_groups": base.stats["fault_groups"],
                "oversubscribed": n == sizes[-1],
            })
            out.write(f"{plat:14s}{n:7d}{base.sim_time * 1e3:10.1f}ms"
                      f"{opt.sim_time * 1e3:10.1f}ms{speedup:8.2f}x\n")
    result.text = out.getvalue()
    return result


@experiment("fig10", "Pathfinder: gpuWall access maps")
def fig10(result: ExperimentResult, *, cols: int = 2048, rows: int = 26,
          pyramid_height: int = 5, width: int = 64) -> ExperimentResult:
    """Copied-in wall; iterations 1, 2 and 5 read one fifth each."""
    session = make_session("intel-pascal", trace=True, materialize=True)
    pf = Pathfinder(session, cols=cols, rows=rows,
                    pyramid_height=pyramid_height,
                    diagnose_each_iteration=True)
    run = pf.run()
    out = io.StringIO()
    copied = run.diagnoses[0].result.named("gpuWall").maps["cpu_write"]
    out.write(f"(10a) gpuWall initialized by the CPU and copied to the GPU "
              f"({copied.touched}/{copied.words} words)\n")
    out.write(copied.to_ascii(width) + "\n\n")
    result.rows.append({"panel": "a", "touched": copied.touched,
                        "words": copied.words})
    for tag, it in (("b", 1), ("c", 2), ("d", 5)):
        amap = run.diagnoses[it - 1].result.named("gpuWall").maps["gpu_read"]
        pct = 100.0 * amap.touched / amap.words
        out.write(f"(10{tag}) GPU reads, iteration {it} "
                  f"({pct:.0f}% of the array)\n")
        out.write(amap.to_ascii(width) + "\n\n")
        result.rows.append({"panel": tag, "iteration": it,
                            "touched": amap.touched, "words": amap.words,
                            "pct": pct})
    result.text = out.getvalue()
    return result


@experiment("fig11", "Pathfinder: speedup of the overlapped-transfer version")
def fig11(result: ExperimentResult, *, cols: int = 1_000_000,
          rows=(200, 600, 1000), pyramid_height: int = 20) -> ExperimentResult:
    """Overlap wins on PCIe, loses on the Power9 node."""
    out = io.StringIO()
    out.write(f"{'platform':14s}{'rows':>6s}{'baseline':>12s}{'overlap':>12s}"
              f"{'speedup':>9s}\n")
    for plat in ("intel-pascal", "power9-volta"):
        for r in rows:
            s1 = make_session(plat, trace=False, materialize=False)
            base = Pathfinder(s1, cols=cols, rows=r,
                              pyramid_height=pyramid_height).run()
            s2 = make_session(plat, trace=False, materialize=False)
            opt = OverlappedPathfinder(s2, cols=cols, rows=r,
                                       pyramid_height=pyramid_height).run()
            speedup = base.sim_time / opt.sim_time
            result.rows.append({"platform": plat, "rows": r,
                                "baseline_ms": base.sim_time * 1e3,
                                "overlap_ms": opt.sim_time * 1e3,
                                "speedup": speedup})
            out.write(f"{plat:14s}{r:6d}{base.sim_time * 1e3:10.1f}ms"
                      f"{opt.sim_time * 1e3:10.1f}ms{speedup:8.3f}x\n")
    result.text = out.getvalue()
    return result

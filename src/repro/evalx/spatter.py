"""Spatter pattern sweep: access density and movement vs pattern shape.

Not a figure from the XPlacer paper -- a companion experiment driving the
tracer with Spatter-style gather/scatter specs (Lavin et al.), showing
how shadow-map density and unified-memory traffic degrade as patterns go
from unit stride through large strides to full indirection.
"""

from __future__ import annotations

from ..workloads.base import make_session
from ..workloads.spatter import (
    SpatterWorkload,
    indirection,
    mostly_stride_1,
    uniform_stride,
)
from .base import ExperimentResult, experiment

__all__ = ["spatter_sweep"]


def _specs():
    return [
        uniform_stride(1, length=16, count=32),
        uniform_stride(8, length=16, count=32),
        uniform_stride(64, length=16, count=32),
        mostly_stride_1(length=16, jump=256, count=32),
        indirection(length=128, spread=32768),
    ]


@experiment("spatter", "Spatter gather/scatter pattern sweep")
def spatter_sweep(result: ExperimentResult, *,
                  platform: str = "intel-pascal") -> ExperimentResult:
    lines = [f"{'pattern':<14} {'n/kernel':>8} {'density':>8} "
             f"{'faults':>7} {'pages':>6} {'sim_time':>10}"]
    for spec in _specs():
        session = make_session(platform)
        run = SpatterWorkload(session, spec).run()
        s = run.stats
        row = {
            "pattern": spec.name,
            "kind": spec.kind,
            "indirect": spec.indirect,
            "accesses_per_kernel": int(s["accesses_per_kernel"]),
            "footprint_density": round(float(s["footprint_density"]), 4),
            "fault_groups": int(s.get("fault_groups", 0)),
            "migrated_pages": int(s.get("migrated_pages", 0)),
            "sim_time": run.sim_time,
        }
        result.rows.append(row)
        lines.append(f"{row['pattern']:<14} {row['accesses_per_kernel']:>8} "
                     f"{row['footprint_density']:>8.4f} "
                     f"{row['fault_groups']:>7} {row['migrated_pages']:>6} "
                     f"{run.sim_time:>10.6f}")

    # Cross-family signature similarity: each pattern family re-run under
    # heat tracing, fingerprinted, and compared pairwise.  Same family ->
    # ~1.0 on the diagonal; different families separate well below the
    # repro-sig match threshold.
    from ..analysis import diagnose
    from ..heatmap.store import HeatStore
    from ..signature.vector import run_similarity, signature_from_store

    sigs = []
    for spec in _specs():
        session = make_session(platform, trace=True)
        session.tracer.heat = HeatStore(nbuckets=64, attribute=False)
        SpatterWorkload(session, spec).run()
        diagnose(session.tracer, include_unnamed=True)
        session.tracer.heat.flush_current()
        sigs.append((spec.name, signature_from_store(
            session.tracer.heat, workload=f"spatter-{spec.name}",
            platform=platform)))
    lines.append("")
    lines.append("access-pattern signature similarity (cosine):")
    lines.append(f"{'':<14}" + "".join(f"{name:>14}" for name, _ in sigs))
    for name_a, sig_a in sigs:
        cells = []
        sim_row = {"pattern": name_a, "similarity": {}}
        for name_b, sig_b in sigs:
            sim = run_similarity(sig_a, sig_b)["similarity"]
            sim_row["similarity"][name_b] = sim
            cells.append(f"{sim:>14.4f}")
        result.rows.append(sim_row)
        lines.append(f"{name_a:<14}" + "".join(cells))
    result.text = "\n".join(lines) + "\n"
    return result

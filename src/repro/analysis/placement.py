"""Automatic placement recommendations -- closing the diagnose->fix loop.

The paper stops at *reporting* anti-patterns and leaves the fix to "skilled
programmers" (§III-D), pointing to RTHMS [25] for rule-based automatic
placement and to future work for a smarter runtime.  This module provides
that step for the simulated runtime: given a diagnosis epoch, it derives a
``cudaMemAdvise`` plan per allocation from the observed access mix, and
can apply the plan directly.

Rules (derived from §II-B semantics and the §IV-A findings):

* written by one processor only, read by the other   -> ``SetReadMostly``
  *only if* writes are rare relative to cross reads (otherwise the
  invalidation churn makes it a loss, as the paper measured on NVLink);
* alternating with frequent writes, CPU-heavy        -> ``SetPreferredLocation(CPU)``
  plus ``SetAccessedBy(GPU)`` so the GPU maps instead of migrating;
* alternating with frequent writes, GPU-heavy        -> ``SetPreferredLocation(GPU)``
  plus ``SetAccessedBy(CPU)``;
* touched by a single processor                      -> ``SetPreferredLocation``
  there (pins the data where it lives; harmless and fault-free);
* untouched allocations                              -> no advice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cudart.advice import cudaMemoryAdvise
from ..cudart.api import CudaRuntime
from ..cudart.memory import DevicePtr
from ..memsim import CPU_DEVICE_ID, GPU_DEVICE_ID, Allocation, MemoryKind

from .advisor import Diagnosis

__all__ = ["PlacementAction", "PlacementPlan", "recommend_placement",
           "apply_plan"]

A = cudaMemoryAdvise


@dataclass(frozen=True)
class PlacementAction:
    """One ``cudaMemAdvise`` call to issue."""

    alloc: Allocation
    advice: cudaMemoryAdvise
    device_id: int
    reason: str

    def __str__(self) -> str:
        dev = {CPU_DEVICE_ID: "cpu", GPU_DEVICE_ID: "gpu"}.get(
            self.device_id, str(self.device_id))
        return (f"{self.advice.name}({self.alloc.label or hex(self.alloc.base)}"
                f", {dev})  # {self.reason}")


@dataclass
class PlacementPlan:
    """The full set of recommended advice for one diagnosis."""

    actions: list[PlacementAction] = field(default_factory=list)

    def __iter__(self):
        return iter(self.actions)

    def __len__(self) -> int:
        return len(self.actions)

    def for_allocation(self, label: str) -> list[PlacementAction]:
        """Actions targeting the allocation labelled/named ``label``."""
        return [a for a in self.actions if a.alloc.label == label]

    def summary(self) -> str:
        """Human-readable plan listing."""
        if not self.actions:
            return "no placement changes recommended\n"
        return "".join(f"  {a}\n" for a in self.actions)


def recommend_placement(diagnosis: Diagnosis, *,
                        write_share_threshold: float = 0.125) -> PlacementPlan:
    """Derive a ``cudaMemAdvise`` plan from one diagnosis epoch.

    :param write_share_threshold: above this ratio of written words to
        cross-processor-read words, ``SetReadMostly`` is considered
        counter-productive and a preferred-location pin is used instead.
    """
    plan = PlacementPlan()
    seen: set[int] = set()
    for report in diagnosis.result.reports:
        alloc = report.alloc
        if alloc.kind is not MemoryKind.MANAGED or alloc.freed:
            continue
        if alloc.base in seen:
            continue
        seen.add(alloc.base)
        c = report.counts
        cpu_side = c.cpu_written + c.read_cc + c.read_gc
        gpu_side = c.gpu_written + c.read_cg + c.read_gg
        if cpu_side == 0 and gpu_side == 0:
            continue  # untouched this epoch: leave alone

        shared = cpu_side > 0 and gpu_side > 0
        if not shared:
            # Exclusive access: pin the data where its user lives.
            proc_id = GPU_DEVICE_ID if gpu_side > cpu_side else CPU_DEVICE_ID
            where = "gpu" if proc_id == GPU_DEVICE_ID else "cpu"
            plan.actions.append(PlacementAction(
                alloc, A.cudaMemAdviseSetPreferredLocation, proc_id,
                f"accessed only via the {where.upper()} this epoch"))
            continue

        writes = c.cpu_written + c.gpu_written
        cross_reads = c.read_cg + c.read_gc
        if writes <= max(1, int(cross_reads * write_share_threshold)):
            plan.actions.append(PlacementAction(
                alloc, A.cudaMemAdviseSetReadMostly, GPU_DEVICE_ID,
                f"shared but rarely written ({writes} written words vs "
                f"{cross_reads} cross reads)"))
            continue

        # Frequently-written shared data: keep it at the heavier writer and
        # let the other side map it remotely instead of migrating.
        cpu_writes, gpu_writes = c.cpu_written, c.gpu_written
        if cpu_writes >= gpu_writes:
            home, visitor = CPU_DEVICE_ID, GPU_DEVICE_ID
            tag = "CPU-written, GPU-read"
        else:
            home, visitor = GPU_DEVICE_ID, CPU_DEVICE_ID
            tag = "GPU-written, CPU-read"
        plan.actions.append(PlacementAction(
            alloc, A.cudaMemAdviseSetPreferredLocation, home,
            f"alternating, {tag}: pin at the writer"))
        plan.actions.append(PlacementAction(
            alloc, A.cudaMemAdviseSetAccessedBy, visitor,
            "map for the visitor to avoid the fault storm"))
    return plan


def apply_plan(runtime: CudaRuntime, plan: PlacementPlan) -> int:
    """Issue every action of ``plan`` through the runtime.

    Returns the number of ``cudaMemAdvise`` calls issued.  Actions whose
    allocation has been freed since diagnosis are skipped.
    """
    issued = 0
    for action in plan:
        if action.alloc.freed:
            continue
        ptr = DevicePtr(runtime, action.alloc)
        runtime.mem_advise(ptr, action.alloc.size, action.advice,
                           action.device_id)
        issued += 1
    return issued

"""Anti-pattern findings (paper §III-A).

The three anti-patterns the paper targets, plus two refinements of the
"unnecessary data transfers" pattern that the Table II case studies rely
on (an allocation that is never used at all, and data transferred in but
overwritten before any read).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..memsim import Allocation

__all__ = ["AntiPattern", "Finding"]


class AntiPattern(enum.Enum):
    """The detected anti-pattern categories."""

    ALTERNATING_ACCESS = "alternating CPU/GPU accesses in managed memory"
    LOW_ACCESS_DENSITY = "low access density"
    UNNECESSARY_TRANSFER_IN = "data transferred to GPU but never accessed"
    TRANSFER_OVERWRITTEN = "data transferred to GPU but overwritten before use"
    UNNECESSARY_TRANSFER_OUT = "unmodified data transferred back to CPU"
    UNUSED_ALLOCATION = "allocation never accessed"


@dataclass(frozen=True)
class Finding:
    """One diagnosed anti-pattern instance.

    :param pattern: which anti-pattern fired.
    :param name: diagnostic name of the allocation.
    :param alloc: the allocation itself.
    :param metric: the pattern's headline number (alternating word count,
        density fraction, wasted bytes, ...).
    :param detail: human-readable explanation with concrete numbers.
    :param remedies: the paper's suggested fixes for this pattern.
    :param epoch: diagnostic epoch the finding belongs to.
    :param ranges: contiguous word ranges supporting the finding (for the
        transfer patterns).
    """

    pattern: AntiPattern
    name: str
    alloc: Allocation
    metric: float
    detail: str
    remedies: tuple[str, ...] = ()
    epoch: int = 0
    ranges: tuple[tuple[int, int], ...] = ()

    def __str__(self) -> str:
        return f"[{self.pattern.name}] {self.name}: {self.detail}"


#: Remedy catalogue, straight from §III-A.
REMEDIES: dict[AntiPattern, tuple[str, ...]] = {
    AntiPattern.ALTERNATING_ACCESS: (
        "provide appropriate memory access hints (cudaMemAdvise) for "
        "individual memory regions",
        "if the accesses are to disjoint regions, split the object into a "
        "CPU part and a GPU part to avoid false-sharing-like page faults",
    ),
    AntiPattern.LOW_ACCESS_DENSITY: (
        "partition the data transfer to overlap computation and communication",
        "optimize the data layout to transfer less data",
        "replace cudaMalloc with cudaMallocManaged",
    ),
    AntiPattern.UNNECESSARY_TRANSFER_IN: (
        "revise the algorithm to eliminate transfers of memory that is "
        "never accessed on the GPU",
    ),
    AntiPattern.TRANSFER_OVERWRITTEN: (
        "eliminate the initial transfer: the GPU overwrites the data "
        "before using it",
    ),
    AntiPattern.UNNECESSARY_TRANSFER_OUT: (
        "revise the algorithm to eliminate transfers of memory that was "
        "not altered on the GPU",
    ),
    AntiPattern.UNUSED_ALLOCATION: (
        "remove the allocation: it is never accessed",
    ),
}


def remedies_for(pattern: AntiPattern) -> tuple[str, ...]:
    """The paper's suggested fixes for ``pattern``."""
    return REMEDIES[pattern]

"""Detector: low access density (§III-A #2).

For each traced allocation that was touched this epoch, compute

.. math::

    \\frac{\\sum_{addr} accessed(addr)}{size(block)} \\le threshold

at a user-defined block granularity: with the default block size of the
whole allocation this is the paper's Fig 4 "access density (in %)" line;
smaller block sizes localize the sparse region (which pages of a matrix a
wavefront actually touches, as in Smith-Waterman).
"""

from __future__ import annotations

import numpy as np

from ..memsim import MemoryKind
from ..runtime.diagnostics import DiagnosticResult
from .patterns import AntiPattern, Finding, remedies_for

__all__ = ["detect_low_density", "block_densities"]


def block_densities(mask: np.ndarray, block_words: int) -> np.ndarray:
    """Per-block access density of a word mask (last block padded)."""
    if block_words <= 0:
        raise ValueError("block_words must be positive")
    nblocks = -(-len(mask) // block_words)
    padded = np.zeros(nblocks * block_words, dtype=np.float64)
    padded[: len(mask)] = mask
    dens = padded.reshape(nblocks, block_words).mean(axis=1)
    # The tail block's density is over its real words, not the padding.
    tail = len(mask) - (nblocks - 1) * block_words
    if tail != block_words and nblocks > 0:
        dens[-1] = mask[(nblocks - 1) * block_words:].sum() / tail
    return dens


def detect_low_density(
    result: DiagnosticResult,
    *,
    threshold: float = 0.5,
    block_words: int | None = None,
) -> list[Finding]:
    """Findings for touched allocations whose density is below threshold.

    Applies to managed memory and to ``cudaMalloc`` memory that received a
    transfer (both arms of the paper's pattern description).  Host-heap
    allocations are exempt -- the pattern is about transferred bytes.

    :param block_words: analyze at this sub-block granularity; ``None``
        treats the whole allocation as one block.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("threshold must be in (0, 1]")
    findings: list[Finding] = []
    for report in result.reports:
        if report.alloc.kind is MemoryKind.HOST:
            continue
        if not report.touched:
            continue  # paper: needs "at least one access"
        density = report.counts.density
        sparse_blocks: tuple[tuple[int, int], ...] = ()
        if block_words is not None:
            if "accessed" not in report.maps:
                raise ValueError(
                    "block-granular density needs trace_print(include_maps=True)"
                )
            mask = report.maps["accessed"].mask
            dens = block_densities(mask, block_words)
            touched_blocks = [
                i for i, d in enumerate(dens)
                if d > 0 and d <= threshold
            ]
            if not touched_blocks and density > threshold:
                continue
            sparse_blocks = tuple(
                (i * block_words, min((i + 1) * block_words, len(mask)))
                for i in touched_blocks
            )
        if density > threshold and not sparse_blocks:
            continue
        findings.append(Finding(
            pattern=AntiPattern.LOW_ACCESS_DENSITY,
            name=report.name,
            alloc=report.alloc,
            metric=density,
            detail=(
                f"access density {density:.1%} "
                f"({report.counts.accessed_words} of "
                f"{report.counts.total_words} words) "
                f"is at or below the {threshold:.0%} threshold"
                + (f"; {len(sparse_blocks)} sparse blocks" if sparse_blocks else "")
            ),
            remedies=remedies_for(AntiPattern.LOW_ACCESS_DENSITY),
            epoch=result.epoch,
            ranges=sparse_blocks,
        ))
    return findings

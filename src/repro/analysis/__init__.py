"""Anti-pattern detection (paper §III-A): the analysis half of XPlacer."""

from .advisor import Diagnosis, diagnose, format_findings
from .alternating import detect_alternating
from .density import block_densities, detect_low_density
from .patterns import AntiPattern, Finding, remedies_for
from .placement import (
    PlacementAction,
    PlacementPlan,
    apply_plan,
    recommend_placement,
)
from .transfers import detect_unnecessary_transfers

__all__ = [
    "Diagnosis",
    "diagnose",
    "format_findings",
    "detect_alternating",
    "block_densities",
    "detect_low_density",
    "AntiPattern",
    "Finding",
    "remedies_for",
    "PlacementAction",
    "PlacementPlan",
    "apply_plan",
    "recommend_placement",
    "detect_unnecessary_transfers",
]

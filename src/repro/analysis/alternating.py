"""Detector: alternating CPU/GPU accesses in managed memory (§III-A #1).

Fires for managed allocations where CPU and GPU both touched the same
words and at least one of the accesses was a write, *and* the advice
currently applied does not already match the observed behaviour (e.g.
``SetReadMostly`` on data that both processors only read is consistent;
``SetReadMostly`` on data that is being written every epoch is a
mismatch and still fires).
"""

from __future__ import annotations

from ..cudart.advice import cudaMemoryAdvise
from ..memsim import MemoryKind
from ..runtime.diagnostics import AllocationReport, DiagnosticResult
from ..runtime.tracer import Tracer

from .patterns import AntiPattern, Finding, remedies_for

__all__ = ["detect_alternating"]


def _advice_matches(report: AllocationReport, advice: set[cudaMemoryAdvise]) -> bool:
    """Whether existing advice already addresses the observed pattern."""
    c = report.counts
    A = cudaMemoryAdvise
    if A.cudaMemAdviseSetReadMostly in advice:
        # ReadMostly matches when writes are rare relative to cross reads;
        # re-written-every-epoch data under ReadMostly is still a problem.
        writes = c.cpu_written + c.gpu_written
        cross_reads = c.read_cg + c.read_gc
        return writes <= max(1, cross_reads // 8)
    if A.cudaMemAdviseSetPreferredLocation in advice:
        return True  # placement was chosen deliberately; faults are mapped
    if A.cudaMemAdviseSetAccessedBy in advice:
        return True  # mappings suppress the fault storm
    return False


def detect_alternating(
    result: DiagnosticResult,
    tracer: Tracer,
    *,
    min_words: int = 1,
) -> list[Finding]:
    """Findings for every managed allocation with alternating accesses.

    :param min_words: minimum alternating word count to report.
    """
    findings: list[Finding] = []
    for report in result.reports:
        if report.alloc.kind is not MemoryKind.MANAGED:
            continue
        if report.alternating < min_words:
            continue
        advice = tracer.advice_for(report.alloc)
        if _advice_matches(report, advice):
            continue
        findings.append(Finding(
            pattern=AntiPattern.ALTERNATING_ACCESS,
            name=report.name,
            alloc=report.alloc,
            metric=float(report.alternating),
            detail=(
                f"{report.alternating} words accessed by both CPU and GPU "
                f"with at least one write "
                f"(C writes={report.counts.cpu_written}, "
                f"G writes={report.counts.gpu_written}, "
                f"C>G reads={report.counts.read_cg}, "
                f"G>C reads={report.counts.read_gc})"
            ),
            remedies=remedies_for(AntiPattern.ALTERNATING_ACCESS),
            epoch=result.epoch,
        ))
    return findings

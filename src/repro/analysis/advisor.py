"""The analysis facade: run all detectors over one diagnostic.

:func:`diagnose` is what workloads and the evaluation harness call at each
``#pragma xpl diagnostic`` point: it computes the diagnostic (with maps),
runs the three anti-pattern detectors, and returns both the structured
result and the findings.  :func:`format_findings` renders them like the
advisory lines under the Fig 4 tables.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import IO, Sequence

from ..runtime.alloc_data import XplAllocData
from ..runtime.diagnostics import DiagnosticResult, trace_print
from ..runtime.tracer import Tracer

from .alternating import detect_alternating
from .density import detect_low_density
from .patterns import AntiPattern, Finding
from .transfers import detect_unnecessary_transfers

__all__ = ["Diagnosis", "diagnose", "format_findings"]


@dataclass
class Diagnosis:
    """One diagnostic pass plus its anti-pattern findings."""

    result: DiagnosticResult
    findings: list[Finding]

    def of(self, pattern: AntiPattern) -> list[Finding]:
        """Findings of one pattern."""
        return [f for f in self.findings if f.pattern is pattern]

    def for_allocation(self, name: str) -> list[Finding]:
        """Findings naming one allocation."""
        return [f for f in self.findings if f.name == name]


def diagnose(
    tracer: Tracer,
    descriptors: Sequence[XplAllocData] | None = None,
    out: IO[str] | None = None,
    *,
    density_threshold: float = 0.5,
    density_block_words: int | None = None,
    min_transfer_block_words: int = 16,
    min_alternating_words: int = 1,
    include_unnamed: bool = False,
    reset: bool = True,
) -> Diagnosis:
    """Run a full diagnostic + anti-pattern analysis epoch."""
    result = trace_print(
        tracer, descriptors, out,
        include_maps=True, include_unnamed=include_unnamed, reset=reset,
    )
    findings: list[Finding] = []
    findings += detect_alternating(result, tracer, min_words=min_alternating_words)
    findings += detect_low_density(
        result, threshold=density_threshold, block_words=density_block_words,
    )
    findings += detect_unnecessary_transfers(
        result, tracer, min_block_words=min_transfer_block_words,
    )
    if out is not None and findings:
        out.write(format_findings(findings))
    return Diagnosis(result=result, findings=findings)


def format_findings(findings: Sequence[Finding]) -> str:
    """Human-readable advisory block for a set of findings."""
    buf = io.StringIO()
    buf.write(f"--- {len(findings)} anti-pattern finding(s)\n")
    for f in findings:
        buf.write(f"  {f.pattern.value}: {f.name}\n")
        buf.write(f"    {f.detail}\n")
        for r in f.remedies:
            buf.write(f"    remedy: {r}\n")
    return buf.getvalue()

"""Detector: unnecessary data transfers (§III-A #3, refined per Table II).

Operates on ``cudaMalloc`` allocations and the explicit-transfer records
the tracer collected from ``cudaMemcpy``:

* **transfer in, never accessed** -- a contiguous chunk of an H2D transfer
  that the GPU never touched (Pathfinder's ``gpuWall`` per-iteration view,
  Backprop's over-wide copies);
* **transfer in, overwritten before use** -- the GPU wrote the words but
  never read the CPU-origin values, so the initial transfer carried dead
  data (Gaussian's ``m_cuda``);
* **transfer out, unmodified** -- a D2H transfer of words the GPU never
  wrote (Backprop's ``input_cuda`` round trip, LUD's first row);
* **unused allocation** -- never accessed at all this epoch (Backprop's
  ``output_hidden_cuda``).

The minimum contiguous block size is parametrizable, per the paper.
"""

from __future__ import annotations

import numpy as np

from ..memsim import MemoryKind
from ..runtime import flags as F
from ..runtime.diagnostics import AllocationReport, DiagnosticResult
from ..runtime.tracer import Tracer, TransferRecord

from .patterns import AntiPattern, Finding, remedies_for

__all__ = ["detect_unnecessary_transfers"]


def _runs(mask: np.ndarray, min_words: int) -> list[tuple[int, int]]:
    idx = np.flatnonzero(mask)
    if len(idx) == 0:
        return []
    breaks = np.flatnonzero(np.diff(idx) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks + 1, [len(idx)]))
    return [
        (int(idx[a]), int(idx[b - 1]) + 1)
        for a, b in zip(starts, stops)
        if idx[b - 1] + 1 - idx[a] >= min_words
    ]


def _transfer_mask(report: AllocationReport, transfers: list[TransferRecord],
                   direction: str) -> np.ndarray:
    mask = np.zeros(report.counts.total_words, dtype=bool)
    for t in transfers:
        if t.direction != direction or t.alloc.base != report.alloc.base:
            continue
        lo = t.offset // F.WORD_SIZE
        hi = (t.offset + t.nbytes - 1) // F.WORD_SIZE + 1
        mask[lo:hi] = True
    return mask


def detect_unnecessary_transfers(
    result: DiagnosticResult,
    tracer: Tracer,
    *,
    min_block_words: int = 16,
    current_epoch_only: bool = True,
) -> list[Finding]:
    """Findings for wasted explicit transfers (needs ``include_maps=True``)."""
    findings: list[Finding] = []
    transfers = [
        t for t in tracer.transfers
        if not current_epoch_only or t.epoch == result.epoch
    ]
    for report in result.reports:
        if report.alloc.kind is not MemoryKind.DEVICE:
            continue
        if not report.maps:
            raise ValueError(
                "transfer analysis needs trace_print(include_maps=True)"
            )

        if not report.touched:
            findings.append(Finding(
                pattern=AntiPattern.UNUSED_ALLOCATION,
                name=report.name,
                alloc=report.alloc,
                metric=float(report.alloc.size),
                detail=f"{report.alloc.size} bytes allocated but never accessed",
                remedies=remedies_for(AntiPattern.UNUSED_ALLOCATION),
                epoch=result.epoch,
            ))
            continue

        gpu_write = report.maps["gpu_write"].mask
        gpu_read_cpu_origin = report.maps["gpu_read_cpu_origin"].mask
        gpu_read = report.maps["gpu_read"].mask
        gpu_touched = gpu_write | gpu_read

        h2d = _transfer_mask(report, transfers, "H2D")
        d2h = _transfer_mask(report, transfers, "D2H")

        cases = (
            (AntiPattern.UNNECESSARY_TRANSFER_IN,
             h2d & ~gpu_touched,
             "copied to the GPU but never accessed there"),
            (AntiPattern.TRANSFER_OVERWRITTEN,
             h2d & gpu_write & ~gpu_read_cpu_origin,
             "copied to the GPU, then overwritten before any read of the "
             "transferred values"),
            (AntiPattern.UNNECESSARY_TRANSFER_OUT,
             d2h & ~gpu_write,
             "copied back to the CPU although the GPU never wrote them"),
        )
        for pattern, mask, what in cases:
            runs = _runs(mask, min_block_words)
            if not runs:
                continue
            nbytes = sum(hi - lo for lo, hi in runs) * F.WORD_SIZE
            where = ", ".join(f"[{lo},{hi})" for lo, hi in runs[:4])
            if len(runs) > 4:
                where += f", ... ({len(runs)} ranges)"
            findings.append(Finding(
                pattern=pattern,
                name=report.name,
                alloc=report.alloc,
                metric=float(nbytes),
                detail=f"words {where} ({nbytes} bytes) were {what}",
                remedies=remedies_for(pattern),
                epoch=result.epoch,
                ranges=tuple(runs),
            ))
    return findings

"""Per-allocation page state kept by the unified-memory driver.

State is stored as numpy arrays indexed ``[processor, page]`` so the driver
can classify thousands of pages per access with boolean masks instead of
Python loops (footprint runs touch ~10^5 pages per kernel).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .devices import Processor

__all__ = ["NO_PREFERENCE", "PageState", "contiguous_runs"]

#: Sentinel in the ``preferred`` array meaning "no preferred location set".
NO_PREFERENCE: int = -2


@dataclass
class PageState:
    """Residency and policy state for one managed allocation.

    Arrays (all length ``npages`` on the page axis):

    * ``present[p, i]`` -- processor ``p`` holds a valid copy of page ``i``.
      Without ReadMostly at most one row is true per page; with ReadMostly
      both may be (read duplication).
    * ``mapped[p, i]`` -- page ``i`` is mapped in ``p``'s page tables, so
      ``p`` can access it (locally or remotely) without faulting.
    * ``read_mostly[i]`` -- ``cudaMemAdviseSetReadMostly`` applies.
    * ``preferred[i]`` -- preferred location (:data:`NO_PREFERENCE`,
      ``Processor.CPU`` or ``Processor.GPU``).
    * ``accessed_by[p, i]`` -- ``cudaMemAdviseSetAccessedBy(p)`` applies;
      the driver keeps ``p``'s mapping up to date across migrations.
    * ``last_use[i]`` -- logical LRU tick of the last GPU access (drives
      capacity eviction).
    * ``displaced_by[i]`` -- id of the driver event (migration, invalidation
      or eviction) that last removed page ``i`` from a processor, or -1.
      Lets a later re-fault name the event that made it necessary; only
      maintained when the driver runs with ``track_causes``.

    The ``gen`` counter stamps every mutation of residency or policy state
    (see :meth:`touch`); the driver caches a generation-stamped residency
    summary per allocation so steady-state accesses (every page already
    resident locally) skip the full mask classification entirely.
    """

    npages: int
    present: np.ndarray = field(init=False)
    mapped: np.ndarray = field(init=False)
    read_mostly: np.ndarray = field(init=False)
    preferred: np.ndarray = field(init=False)
    accessed_by: np.ndarray = field(init=False)
    last_use: np.ndarray = field(init=False)
    displaced_by: np.ndarray = field(init=False)
    #: Mutation stamp: bumped on every residency/advice change.
    gen: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.npages <= 0:
            raise ValueError("npages must be positive")
        n = self.npages
        self.present = np.zeros((2, n), dtype=bool)
        self.mapped = np.zeros((2, n), dtype=bool)
        self.read_mostly = np.zeros(n, dtype=bool)
        self.preferred = np.full(n, NO_PREFERENCE, dtype=np.int8)
        self.accessed_by = np.zeros((2, n), dtype=bool)
        self.last_use = np.zeros(n, dtype=np.int64)
        self.displaced_by = np.full(n, -1, dtype=np.int64)
        #: Lazily built ``np.arange(npages)`` the driver slices per access
        #: instead of allocating a fresh index array every call.
        self._page_index: np.ndarray | None = None
        #: Generation-stamped residency summary
        #: ``(gen, cpu_full, gpu_full, cpu_any, gpu_any)`` or ``None``.
        self._summary: tuple[int, bool, bool, bool, bool] | None = None

    def touch(self) -> None:
        """Invalidate cached residency summaries after a state mutation."""
        self.gen += 1

    @property
    def page_index(self) -> np.ndarray:
        """Cached full-span page-index array (``np.arange(npages)``)."""
        idx = self._page_index
        if idx is None:
            idx = self._page_index = np.arange(self.npages)
        return idx

    def residency_summary(self) -> tuple[int, bool, bool, bool, bool]:
        """``(gen, cpu_full, gpu_full, cpu_any, gpu_any)`` for this state.

        ``*_full`` means every page has a valid copy on that processor;
        ``*_any`` means at least one page does.  Recomputed only when
        ``gen`` moved since the last call.
        """
        s = self._summary
        if s is None or s[0] != self.gen:
            cpu, gpu = self.present[0], self.present[1]
            s = (self.gen, bool(cpu.all()), bool(gpu.all()),
                 bool(cpu.any()), bool(gpu.any()))
            self._summary = s
        return s

    def populated(self) -> np.ndarray:
        """Mask of pages that have been touched at least once."""
        return self.present.any(axis=0)

    def resident_pages(self, proc: Processor) -> int:
        """Number of pages with a valid copy on ``proc``."""
        return int(self.present[proc].sum())

    def sole_copy_on(self, proc: Processor) -> np.ndarray:
        """Mask of pages whose only valid copy is on ``proc``."""
        return self.present[proc] & ~self.present[proc.other]


def contiguous_runs(indices: np.ndarray) -> list[tuple[int, int]]:
    """Split a sorted index array into half-open ``(start, stop)`` runs.

    Used to turn a set of faulting pages into *fault groups*: contiguous
    pages fault and migrate together (one service event, one DMA), while
    scattered pages each pay their own group -- the mechanism behind the
    Smith-Waterman diagonal-access penalty in the paper.
    """
    if len(indices) == 0:
        return []
    breaks = np.flatnonzero(np.diff(indices) != 1)
    starts = np.concatenate(([0], breaks + 1))
    stops = np.concatenate((breaks + 1, [len(indices)]))
    return [(int(indices[a]), int(indices[b - 1]) + 1) for a, b in zip(starts, stops)]

"""Simulated time.

The simulator keeps a single logical timeline (:class:`SimClock`) plus
lightweight :class:`Stream` objects for modelling asynchronous overlap
(``cudaMemcpyAsync`` on one stream while a kernel runs on another).  A
stream is just a "ready time": scheduling work on it advances that stream's
ready time, and synchronisation points fold stream ready times back into
the global clock with ``max``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SimClock", "Stream"]


class SimClock:
    """A monotonically advancing simulated clock (seconds)."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by negative time {seconds!r}")
        self._now += seconds
        return self._now

    def advance_to(self, t: float) -> float:
        """Move the clock forward to absolute time ``t`` (no-op if in the past)."""
        if t > self._now:
            self._now = t
        return self._now

    def reset(self) -> None:
        """Rewind to t=0 (used between independent experiment runs)."""
        self._now = 0.0


@dataclass
class Stream:
    """An asynchronous work queue with its own completion horizon.

    ``ready`` is the simulated time at which all work enqueued so far has
    completed.  New work on the stream starts no earlier than both the
    stream's own horizon and the issuing clock's ``now`` (host code cannot
    enqueue work before it reaches the enqueue point).
    """

    clock: SimClock
    name: str = "stream"
    ready: float = field(default=0.0)

    def enqueue(self, duration: float, *, after: float | None = None) -> float:
        """Schedule ``duration`` seconds of work; return its completion time.

        :param after: optional extra dependency (absolute time) the work
            must wait for, e.g. completion of a transfer on another stream.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(self.ready, self.clock.now)
        if after is not None:
            start = max(start, after)
        self.ready = start + duration
        return self.ready

    def synchronize(self) -> float:
        """Block the host until the stream drains; advances the clock."""
        return self.clock.advance_to(self.ready)

"""CPU<->GPU interconnect models.

Two families matter for reproducing the paper's platform-dependent results:

* **PCIe** (the Intel testbeds): moderate bandwidth, no hardware coherence.
  A GPU access to a non-resident managed page must either fault-and-migrate
  the page or go through an explicitly established zero-copy mapping with a
  high per-byte cost.
* **NVLink 2.0** (the IBM Power9 testbed): high bandwidth *and* cache
  coherence with address translation services.  The GPU can access host
  memory through a mapping at a small per-access penalty, so fault storms
  on shared pages largely disappear -- which is exactly why the paper's
  LULESH remedies barely help (1.03x) or even hurt (ReadMostly: 0.8x)
  on that machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Link", "LinkStats", "pcie3", "nvlink2"]


@dataclass
class LinkStats:
    """Accumulated traffic through one :class:`Link` (telemetry hook).

    Every cost query corresponds to one simulated DMA batch or remote
    access batch, so the counters double as utilization metrics: the
    telemetry layer snapshots them into gauges/counters without the link
    needing to know anything about the metrics registry.
    """

    transfers: int = 0
    transfer_bytes: int = 0
    transfer_time: float = 0.0
    remote_accesses: int = 0
    remote_bytes: int = 0
    remote_time: float = 0.0

    def reset(self) -> None:
        """Zero all counters (between independent runs)."""
        self.transfers = 0
        self.transfer_bytes = 0
        self.transfer_time = 0.0
        self.remote_accesses = 0
        self.remote_bytes = 0
        self.remote_time = 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat mapping for metric emission."""
        return {
            "transfers": self.transfers,
            "transfer_bytes": self.transfer_bytes,
            "transfer_time": self.transfer_time,
            "remote_accesses": self.remote_accesses,
            "remote_bytes": self.remote_bytes,
            "remote_time": self.remote_time,
        }


@dataclass(frozen=True)
class Link:
    """A bidirectional CPU-GPU link.

    :param name: label used in reports.
    :param bandwidth: payload bandwidth in bytes/second.
    :param latency: fixed per-transfer latency in seconds.
    :param coherent: whether the link supports cache-coherent remote access
        (NVLink on Power9).  Coherent links serve remote accesses at
        ``remote_access_time`` cost without migrating pages.
    :param remote_byte_time: seconds per byte for remote (non-migrating)
        access through a mapping.  On non-coherent links this models
        zero-copy/pinned access over PCIe and is comparatively expensive.
    :param remote_access_overhead: fixed seconds per remote access batch.
    """

    name: str
    bandwidth: float
    latency: float
    coherent: bool
    remote_byte_time: float
    remote_access_overhead: float
    #: Telemetry accumulator; mutable and excluded from equality so two
    #: identically configured links still compare equal.
    stats: LinkStats = field(default_factory=LinkStats, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if min(self.latency, self.remote_byte_time, self.remote_access_overhead) < 0:
            raise ValueError("times must be non-negative")

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` as one DMA transfer."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        cost = self.latency + nbytes / self.bandwidth
        self.stats.transfers += 1
        self.stats.transfer_bytes += nbytes
        self.stats.transfer_time += cost
        return cost

    def remote_access_time(self, nbytes: int) -> float:
        """Time for a processor to touch ``nbytes`` of remote memory in place."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        cost = self.remote_access_overhead + nbytes * self.remote_byte_time
        self.stats.remote_accesses += 1
        self.stats.remote_bytes += nbytes
        self.stats.remote_time += cost
        return cost


def pcie3(*, lanes: int = 16) -> Link:
    """PCIe gen3 xN link (x16 ~ 12 GB/s effective payload bandwidth)."""
    bw = 12e9 * lanes / 16
    return Link(
        name=f"PCIe3 x{lanes}",
        bandwidth=bw,
        latency=10e-6,
        coherent=False,
        # Uncached remote access over PCIe costs roughly an order of
        # magnitude more per byte than a streamed DMA.
        remote_byte_time=10.0 / bw,
        remote_access_overhead=1.5e-6,
    )


def nvlink2(*, bricks: int = 3) -> Link:
    """NVLink 2.0 with ``bricks`` links ganged (3 bricks ~ 75 GB/s per
    direction on Power9/Volta nodes; we use a conservative 60 GB/s)."""
    bw = 20e9 * bricks
    return Link(
        name=f"NVLink2 x{bricks}",
        bandwidth=bw,
        latency=2e-6,
        coherent=True,
        # Coherent remote access is close to local HBM latency-wise for
        # streaming reads; charge ~3x the DMA per-byte cost.
        remote_byte_time=3.0 / bw,
        remote_access_overhead=0.3e-6,
    )

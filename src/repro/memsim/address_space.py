"""Virtual address space and allocator for the simulated node.

All simulated memory -- host heap, device memory (``cudaMalloc``) and
managed/unified memory (``cudaMallocManaged``) -- lives in one flat 64-bit
virtual address space so that an address alone identifies an allocation,
exactly as XPlacer's shadow-memory table assumes.  Each kind is carved out
of its own region, which makes addresses self-describing in diagnostics
and guarantees the regions never collide.

Allocations may be *materialized* (backed by a real numpy buffer, used by
functional workload runs and the mini-CUDA interpreter) or *footprint-only*
(no backing; only page-state and timing are simulated, used for large
performance sweeps).
"""

from __future__ import annotations

import bisect
import enum
import itertools
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MemoryKind", "Allocation", "AddressSpace", "PAGE_SIZE"]

#: Simulated page size in bytes (CUDA UM migrates in units of at least 4 KiB).
PAGE_SIZE = 4096

#: Region bases, 1 TiB apart. Host pointers start low, like a real heap.
_REGION_BASE = {
    "host": 0x0000_1000_0000,
    "device": 0x0100_0000_0000,
    "managed": 0x0200_0000_0000,
}
_REGION_SPAN = 0x0100_0000_0000


class MemoryKind(enum.Enum):
    """Which allocator produced an allocation."""

    HOST = "host"          # malloc/new: CPU-only memory
    DEVICE = "device"      # cudaMalloc: GPU-only memory
    MANAGED = "managed"    # cudaMallocManaged: unified memory


@dataclass
class Allocation:
    """One live (or freed-but-remembered) allocation.

    :param base: first byte's virtual address.
    :param size: size in bytes.
    :param kind: host / device / managed.
    :param label: name for diagnostics (set by ``XplAllocData`` expansion
        or the allocating workload).
    :param data: optional backing buffer (``size`` bytes) when materialized.
    :param freed: set when the allocation has been released; the metadata
        survives until the next diagnostic (paper: the ``cudaFree`` wrapper
        "delays freeing the shadow memory until the next diagnostic").
    :param site: source site (``file:line (func)``) of the allocating call,
        captured by the runtime when causal tracking is on; empty otherwise.
    """

    base: int
    size: int
    kind: MemoryKind
    label: str = ""
    data: np.ndarray | None = None
    freed: bool = False
    serial: int = field(default=0)
    site: str = ""

    @property
    def end(self) -> int:
        """One past the last byte."""
        return self.base + self.size

    @property
    def num_pages(self) -> int:
        """Pages spanned (allocations are page-aligned for device/managed)."""
        return max(1, -(-self.size // PAGE_SIZE))

    @property
    def materialized(self) -> bool:
        """Whether a real backing buffer exists."""
        return self.data is not None

    def contains(self, addr: int) -> bool:
        """Whether ``addr`` falls inside this allocation."""
        return self.base <= addr < self.end

    def offset_of(self, addr: int) -> int:
        """Byte offset of ``addr`` within the allocation."""
        if not self.contains(addr):
            raise ValueError(f"address {addr:#x} outside allocation {self.label or self.base:#x}")
        return addr - self.base

    def page_range(self, addr: int, nbytes: int) -> tuple[int, int]:
        """Half-open page-index range covering ``[addr, addr+nbytes)``."""
        off = self.offset_of(addr)
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        if off + nbytes > self.size:
            raise ValueError("range extends past end of allocation")
        return off // PAGE_SIZE, (off + nbytes - 1) // PAGE_SIZE + 1

    def view(self, dtype: np.dtype | str, offset: int = 0, count: int | None = None) -> np.ndarray:
        """Typed numpy view into the backing buffer (materialized only)."""
        if self.data is None:
            raise RuntimeError(
                f"allocation {self.label or hex(self.base)} is footprint-only; "
                "no data view available"
            )
        dt = np.dtype(dtype)
        buf = self.data[offset:]
        if count is not None:
            buf = buf[: count * dt.itemsize]
        return buf.view(dt)


class AddressSpace:
    """Flat address space with per-kind bump allocators and address lookup.

    Lookup by address is the hot path (every traced access resolves its
    allocation), so live allocations are kept in a sorted list of base
    addresses and searched with :func:`bisect.bisect_right`.
    """

    def __init__(self) -> None:
        self._cursor = dict(_REGION_BASE)
        self._bases: list[int] = []           # sorted bases of live allocations
        self._allocs: list[Allocation] = []   # parallel to _bases
        self._serial = itertools.count(1)
        self.all_allocations: list[Allocation] = []  # includes freed, in order
        self._hit: Allocation | None = None   # last find() result (hot loops
        #                                       resolve the same block)

    def __len__(self) -> int:
        return len(self._allocs)

    def allocate(
        self,
        size: int,
        kind: MemoryKind,
        *,
        label: str = "",
        materialize: bool = True,
    ) -> Allocation:
        """Create a new allocation of ``size`` bytes.

        Device and managed allocations are page-aligned and padded to whole
        pages in the address map (their ``size`` stays exact), mirroring
        the page-granular behaviour of the CUDA allocators.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        region = "host" if kind is MemoryKind.HOST else kind.value
        base = self._cursor[region]
        span = size
        if kind is not MemoryKind.HOST:
            span = -(-size // PAGE_SIZE) * PAGE_SIZE
        else:
            span = -(-size // 16) * 16  # 16-byte aligned host heap
        if base + span > _REGION_BASE[region] + _REGION_SPAN:
            raise MemoryError(f"simulated {region} region exhausted")
        self._cursor[region] = base + span
        data = np.zeros(size, dtype=np.uint8) if materialize else None
        alloc = Allocation(
            base=base, size=size, kind=kind, label=label, data=data,
            serial=next(self._serial),
        )
        idx = bisect.bisect_right(self._bases, base)
        self._bases.insert(idx, base)
        self._allocs.insert(idx, alloc)
        self.all_allocations.append(alloc)
        return alloc

    def free(self, base: int) -> Allocation:
        """Release the allocation starting at ``base``.

        The :class:`Allocation` object is returned with ``freed`` set; the
        caller (the UM driver / XPlacer runtime) decides how long to keep
        its metadata around.
        """
        idx = bisect.bisect_right(self._bases, base) - 1
        if idx < 0 or self._bases[idx] != base:
            raise ValueError(f"free of unknown base address {base:#x}")
        alloc = self._allocs.pop(idx)
        self._bases.pop(idx)
        alloc.freed = True
        alloc.data = None
        if self._hit is alloc:
            self._hit = None
        return alloc

    def find(self, addr: int) -> Allocation | None:
        """Live allocation containing ``addr``, or ``None``.

        Untracked addresses are not an error: XPlacer ignores accesses to
        memory it has not seen allocated.
        """
        hit = self._hit
        if hit is not None and hit.base <= addr < hit.base + hit.size:
            return hit
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx < 0:
            return None
        alloc = self._allocs[idx]
        if alloc.base <= addr < alloc.base + alloc.size:
            self._hit = alloc
            return alloc
        return None

    def live_allocations(self) -> list[Allocation]:
        """All live allocations in address order."""
        return list(self._allocs)

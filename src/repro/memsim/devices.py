"""Processor and device models for the simulated heterogeneous node.

The simulator models a two-socket picture of a heterogeneous HPC node: a
host CPU with large DRAM and a discrete GPU with its own device memory,
connected by an interconnect (PCIe or NVLink).  Device behaviour that the
XPlacer paper reasons about -- page residency, on-demand migration,
read-duplication -- lives in :mod:`repro.memsim.unified_memory`; this module
only describes the processors themselves and their raw compute throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "Processor",
    "CPU_DEVICE_ID",
    "GPU_DEVICE_ID",
    "DeviceSpec",
]


class Processor(enum.IntEnum):
    """The two processor kinds of the simulated node.

    The integer values double as row indices into the per-page state
    matrices kept by the unified-memory driver, so they must stay ``0``
    and ``1``.
    """

    CPU = 0
    GPU = 1

    @property
    def other(self) -> "Processor":
        """The peer processor (CPU<->GPU)."""
        return Processor.GPU if self is Processor.CPU else Processor.CPU

    @property
    def short(self) -> str:
        """One-letter tag used in diagnostic tables (``C`` or ``G``)."""
        return "C" if self is Processor.CPU else "G"


#: CUDA uses ``cudaCpuDeviceId == -1`` for the host in ``cudaMemAdvise``.
CPU_DEVICE_ID = -1
#: Device id of the (single) simulated GPU.
GPU_DEVICE_ID = 0


def processor_from_device_id(device_id: int) -> Processor:
    """Map a CUDA-style device id to a :class:`Processor`.

    ``-1`` (``cudaCpuDeviceId``) selects the CPU; ``0`` the GPU.  Any other
    id is rejected -- the simulator models a single-GPU node.
    """
    if device_id == CPU_DEVICE_ID:
        return Processor.CPU
    if device_id == GPU_DEVICE_ID:
        return Processor.GPU
    raise ValueError(f"unknown device id {device_id!r} (single-GPU node)")


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one processor.

    Parameters are mechanistic knobs of the timing model, not calibration
    against any particular testbed:

    :param name: human-readable device name (e.g. ``"Nvidia Pascal P100"``).
    :param processor: which :class:`Processor` this spec describes.
    :param memory_bytes: capacity of the device's local memory.  For the
        GPU this bounds resident managed pages and drives LRU eviction.
    :param element_time: simulated seconds of compute per element-operation
        *after* accounting for the device's parallelism (i.e. effective
        throughput, not single-lane latency).
    :param launch_overhead: fixed simulated seconds charged per kernel
        launch (GPU) or per parallel-region entry (CPU).
    """

    name: str
    processor: Processor
    memory_bytes: int
    element_time: float
    launch_overhead: float = 0.0

    def __post_init__(self) -> None:
        if self.memory_bytes <= 0:
            raise ValueError("memory_bytes must be positive")
        if self.element_time <= 0:
            raise ValueError("element_time must be positive")
        if self.launch_overhead < 0:
            raise ValueError("launch_overhead must be non-negative")

    def compute_time(self, elements: int, ops_per_element: float = 1.0) -> float:
        """Simulated time to process ``elements`` work items."""
        if elements < 0:
            raise ValueError("elements must be non-negative")
        return self.launch_overhead + elements * ops_per_element * self.element_time

"""The unified-memory driver: faults, migration, advice, eviction.

This is the simulator's heart.  It models what the CUDA UM driver does for
managed allocations at page granularity:

* **first touch** populates a page at the accessing processor;
* an access to a page resident elsewhere raises a **page fault**; the
  driver then either *migrates* the page, serves it through an established
  **remote mapping** (AccessedBy advice, preferred-location mapping, or any
  access over a coherent NVLink), or -- for reads under
  ``cudaMemAdviseSetReadMostly`` -- creates a local **duplicate**;
* a write to a read-duplicated page **invalidates** all other copies;
* GPU residency is bounded by device memory; exceeding it triggers **LRU
  eviction** back to the host (the oversubscription behaviour behind the
  Smith-Waterman 46000-character result).

Each action charges simulated time through the platform's cost parameters
and records an event.  Faulting pages are grouped into contiguous *fault
groups*; a group pays one service latency plus a per-faulting-block replay
penalty, which is what makes alternating CPU/GPU access to a hot page so
expensive on PCIe platforms (the LULESH anti-pattern).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

import numpy as np

from .address_space import PAGE_SIZE, Allocation, MemoryKind
from .clock import SimClock
from .devices import Processor
from .events import CauseLink, Event, EventKind, EventLog
from .interconnect import Link
from .pages import NO_PREFERENCE, PageState, contiguous_runs

__all__ = [
    "UMCostParams",
    "UnifiedMemoryDriver",
    "AccessOutcome",
    "MetricsHook",
    "BlameContext",
]

#: Signature of the driver's metric emission hook: ``hook(name, value,
#: labels)``.  Kept as a plain callable so :mod:`repro.memsim` stays free
#: of any dependency on the telemetry package.
MetricsHook = Callable[[str, float, Mapping[str, str]], None]


@dataclass(frozen=True)
class UMCostParams:
    """Mechanistic cost knobs of the driver (seconds unless noted).

    :param fault_service: driver/OS time to service one fault group.
    :param replay_per_block: extra stall charged per concurrently faulting
        accessor (GPU thread block) in a fault group -- models the replay
        storm when a whole grid trips over the same page.
    :param populate_time: first-touch population cost per page.
    :param invalidation_time: cost to invalidate one duplicated page copy.
    :param map_time: cost to (lazily) establish one page mapping.
    :param eviction_service: fixed cost per eviction batch.
    :param max_replay_blocks: cap on accessors counted for replay (a real
        GPU coalesces replays once the fault is in flight).
    :param remote_per_accessor: extra cost per concurrently accessing unit
        on a remote (non-migrating) access -- models each thread block
        issuing its own uncached loads over the link.  Pipelined, so far
        cheaper per block than a fault replay.
    :param pressure_factor: multiplier on GPU fault service while the node
        is *oversubscribed* (total device+managed allocation exceeds GPU
        memory).  Models the driver's slow path once every fault-in must
        synchronously make room -- the paper's "GPU page fault groups"
        blow-up when the Smith-Waterman data set exceeds GPU memory.
    :param eviction_block_pages: eviction granularity; the driver frees
        aligned runs of this many pages around the LRU page (CUDA evicts
        in large chunks, not single pages).
    """

    fault_service: float = 20e-6
    replay_per_block: float = 0.15e-6
    populate_time: float = 0.05e-6
    invalidation_time: float = 2.0e-6
    map_time: float = 1.0e-6
    eviction_service: float = 30e-6
    max_replay_blocks: int = 100_000
    remote_per_accessor: float = 0.0
    pressure_factor: float = 8.0
    eviction_block_pages: int = 512


@dataclass
class BlameContext:
    """Who is currently driving the UM driver (set by the runtime).

    The CUDA runtime fills this in around each driver entry point
    (``access``/``memcpy``/``prefetch``/``advise``) when ``track_causes``
    is on; the driver copies it into the :class:`~.events.CauseLink` of
    every event it records, so a migration can later be blamed on the
    kernel and source line whose access triggered it.
    """

    site: str = ""
    kernel: str = ""
    api: str = ""
    alloc: str = ""

    def set(self, *, site: str = "", kernel: str = "", api: str = "",
            alloc: str = "") -> None:
        """Replace the whole context in one call (hot path, no kwargs loop)."""
        self.site = site
        self.kernel = kernel
        self.api = api
        self.alloc = alloc

    def clear(self) -> None:
        self.set()


@dataclass
class AccessOutcome:
    """What one :meth:`UnifiedMemoryDriver.access` call did and cost."""

    cost: float = 0.0
    fault_groups: int = 0
    migrated_pages: int = 0
    duplicated_pages: int = 0
    remote_bytes: int = 0
    invalidated_pages: int = 0
    populated_pages: int = 0
    evicted_pages: int = 0


#: Shared zero-cost outcome returned by the resident fast path.  Callers
#: only ever read outcome fields, so one immutable-by-convention instance
#: avoids constructing a dataclass per steady-state access.
_ZERO_OUTCOME = AccessOutcome()


class UnifiedMemoryDriver:
    """Page-granular unified-memory state machine with a timing model."""

    def __init__(
        self,
        link: Link,
        gpu_memory_bytes: int,
        clock: SimClock,
        log: EventLog,
        params: UMCostParams | None = None,
    ) -> None:
        self.link = link
        self.gpu_capacity_pages = max(1, gpu_memory_bytes // PAGE_SIZE)
        self.clock = clock
        self.log = log
        self.params = params or UMCostParams()
        #: Resident fast path: when every page of an allocation already has
        #: a valid local copy (and, for writes, no stale remote copy), the
        #: access is a plain hit and skips mask classification entirely.
        #: The gate is a generation-stamped residency summary per
        #: allocation (see :meth:`PageState.residency_summary`), so the
        #: check costs one dict hit and a tuple compare.  Disable to force
        #: the full state machine (differential testing).
        self.fast_path = True
        #: Optional telemetry tap (see :data:`MetricsHook`); ``None`` keeps
        #: the access path free of any telemetry cost.
        self.metrics_hook: MetricsHook | None = None
        #: When True, every recorded event carries a :class:`CauseLink`
        #: built from :attr:`blame` plus per-page displacement history
        #: (see ``PageState.displaced_by``).  Off by default: plain traced
        #: runs stay byte-identical to pre-provenance behaviour.
        self.track_causes = False
        #: Sub-flag of ``track_causes``: also walk the Python stack for the
        #: triggering source site.  Sites make blame actionable but cost a
        #: frame walk per runtime entry; disable for cheap causal runs.
        self.blame_sites = True
        #: Triggering-context scratchpad the runtime fills in around each
        #: driver call while ``track_causes`` is enabled.
        self.blame = BlameContext()
        self._states: dict[int, PageState] = {}       # managed alloc base -> state
        self._managed: dict[int, Allocation] = {}
        self._device_pages = 0                        # cudaMalloc residency
        self._gpu_managed_pages = 0                   # managed pages resident on GPU
        self._tick = 0                                # logical LRU clock
        self._gpu_visible_pages = 0                   # total device+managed footprint

    # ------------------------------------------------------------------ #
    # registration

    def register(self, alloc: Allocation) -> None:
        """Start tracking a managed or device allocation."""
        if alloc.kind is MemoryKind.MANAGED:
            self._states[alloc.base] = PageState(alloc.num_pages)
            self._managed[alloc.base] = alloc
            self._gpu_visible_pages += alloc.num_pages
        elif alloc.kind is MemoryKind.DEVICE:
            if self._device_pages + alloc.num_pages > self.gpu_capacity_pages:
                raise MemoryError(
                    f"cudaMalloc of {alloc.size} bytes exceeds simulated GPU memory"
                )
            self._device_pages += alloc.num_pages
            self._gpu_visible_pages += alloc.num_pages
        # HOST allocations need no driver state.

    def unregister(self, alloc: Allocation) -> None:
        """Stop tracking ``alloc`` (its pages release GPU residency)."""
        if alloc.kind is MemoryKind.MANAGED:
            state = self._states.pop(alloc.base, None)
            self._managed.pop(alloc.base, None)
            if state is not None:
                self._gpu_managed_pages -= state.resident_pages(Processor.GPU)
                self._gpu_visible_pages -= alloc.num_pages
        elif alloc.kind is MemoryKind.DEVICE:
            self._device_pages -= alloc.num_pages
            self._gpu_visible_pages -= alloc.num_pages

    def state_of(self, alloc: Allocation) -> PageState:
        """Page state for a managed allocation (raises for others)."""
        try:
            return self._states[alloc.base]
        except KeyError:
            raise KeyError(
                f"allocation at {alloc.base:#x} is not managed/registered"
            ) from None

    @property
    def gpu_pages_in_use(self) -> int:
        """GPU-resident pages (managed + device allocations)."""
        return self._gpu_managed_pages + self._device_pages

    @property
    def oversubscribed(self) -> bool:
        """Whether the GPU-visible footprint exceeds device memory."""
        return self._gpu_visible_pages > self.gpu_capacity_pages

    # ------------------------------------------------------------------ #
    # advice (cudaMemAdvise semantics)

    def set_read_mostly(self, alloc: Allocation, lo: int, hi: int, value: bool) -> None:
        """Apply or revert ``cudaMemAdviseSetReadMostly`` to pages [lo, hi)."""
        st = self.state_of(alloc)
        st.read_mostly[lo:hi] = value
        st.touch()
        if not value:
            # Collapse duplicated pages to a single copy; keep the GPU copy
            # when both exist (deterministic, documented choice).
            both = st.present[Processor.CPU, lo:hi] & st.present[Processor.GPU, lo:hi]
            if both.any():
                dropped = int(both.sum())
                st.present[Processor.CPU, lo:hi] &= ~both
                ev = self.log.record(Event(
                    EventKind.INVALIDATION, self.clock.now, Processor.CPU,
                    pages=dropped, detail=f"unset-read-mostly {alloc.label}",
                    cause=self._cause(alloc=alloc),
                ))
                self._mark_displaced(st, np.flatnonzero(both) + lo, ev.id)

    def set_preferred_location(
        self, alloc: Allocation, lo: int, hi: int, proc: Processor | None
    ) -> None:
        """Set/unset preferred location.  Does not move data (per the API)."""
        st = self.state_of(alloc)
        st.preferred[lo:hi] = NO_PREFERENCE if proc is None else int(proc)
        st.touch()

    def set_accessed_by(
        self, alloc: Allocation, lo: int, hi: int, proc: Processor, value: bool
    ) -> None:
        """Set/unset AccessedBy: keep ``proc``'s mapping established."""
        st = self.state_of(alloc)
        st.accessed_by[proc, lo:hi] = value
        st.touch()
        if value:
            # Map whatever is populated now; future migrations keep it fresh.
            pop = st.populated()[lo:hi]
            newly = pop & ~st.mapped[proc, lo:hi]
            n = int(newly.sum())
            if n:
                st.mapped[proc, lo:hi] |= pop
                cost = n * self.params.map_time
                self.clock.advance(cost)
                self.log.record(Event(
                    EventKind.MAP, self.clock.now, proc, pages=n, cost=cost,
                    detail=f"accessed-by {alloc.label}",
                    cause=self._cause(alloc=alloc),
                ))
        else:
            st.mapped[proc, lo:hi] &= st.present[proc, lo:hi]

    # ------------------------------------------------------------------ #
    # prefetch

    def prefetch(self, alloc: Allocation, lo: int, hi: int, proc: Processor) -> float:
        """``cudaMemPrefetchAsync``: bulk-migrate pages without fault storms.

        Returns the simulated cost (one DMA per contiguous run of moved
        pages, no fault service or replay).
        """
        st = self.state_of(alloc)
        idx = np.flatnonzero(~st.present[proc, lo:hi] & st.present[proc.other, lo:hi]) + lo
        cost = 0.0
        moved = 0
        for a, b in contiguous_runs(idx):
            npages = b - a
            cost += self.link.transfer_time(npages * PAGE_SIZE)
            moved += npages
        if moved:
            self._move_pages(st, idx, proc)
            ev = self.log.record(Event(
                EventKind.MIGRATION, self.clock.now, proc, pages=moved,
                nbytes=moved * PAGE_SIZE, cost=cost,
                detail=f"prefetch {alloc.label}",
                cause=self._cause(alloc=alloc),
            ))
            self._mark_displaced(st, idx, ev.id)
        # Populate untouched pages at the destination too (cudaMemPrefetch
        # backs unpopulated pages at the target).
        fresh = np.flatnonzero(~st.populated()[lo:hi]) + lo
        if len(fresh):
            self._populate(st, fresh, proc)
            cost += len(fresh) * self.params.populate_time
        return cost

    # ------------------------------------------------------------------ #
    # the access state machine

    def access_bytes(
        self,
        alloc: Allocation,
        byte_offset: int,
        nbytes: int,
        proc: Processor,
        *,
        is_write: bool,
        accessors: int = 1,
        pages: np.ndarray | None = None,
    ) -> AccessOutcome:
        """Span-granular driver entry: one byte span, any length.

        Converts ``[byte_offset, byte_offset + nbytes)`` within ``alloc``
        to the covering page range and runs :meth:`access` once -- the
        single-call shape batched backends and per-statement tracers both
        funnel through, so fault grouping and migration costs are decided
        by the *span*, never by how many accesses composed it.
        """
        lo, hi = alloc.page_range(alloc.base + byte_offset, max(1, nbytes))
        return self.access(alloc, lo, hi, proc, is_write=is_write,
                           nbytes=nbytes, accessors=accessors, pages=pages)

    def access(
        self,
        alloc: Allocation,
        lo_page: int,
        hi_page: int,
        proc: Processor,
        *,
        is_write: bool,
        nbytes: int | None = None,
        accessors: int = 1,
        pages: np.ndarray | None = None,
    ) -> AccessOutcome:
        """Process an access by ``proc`` to pages ``[lo_page, hi_page)``.

        :param nbytes: bytes actually touched (defaults to the full page
            span); used to charge remote accesses by payload.
        :param accessors: concurrently accessing units (GPU thread blocks);
            scales the fault replay penalty.
        :param pages: optional sorted, unique array of page indices for
            scattered (gather/scatter) accesses; overrides the span, which
            must still bound it.
        :returns: an :class:`AccessOutcome` with the total simulated cost.
        """
        if alloc.kind is MemoryKind.HOST:
            return AccessOutcome()  # plain host memory: no driver involvement
        if alloc.kind is MemoryKind.DEVICE:
            if proc is Processor.CPU:
                raise RuntimeError(
                    f"CPU cannot dereference cudaMalloc memory {alloc.label or hex(alloc.base)}"
                )
            return AccessOutcome()  # device-local: no UM cost
        if not (0 <= lo_page < hi_page <= alloc.num_pages):
            raise ValueError(f"page range [{lo_page},{hi_page}) out of bounds")

        st = self.state_of(alloc)

        # --- resident fast path ----------------------------------------- #
        # Steady state: every page of the allocation already has a valid
        # copy here (so fresh/remote/faulting masks are all empty), and for
        # writes no page has a copy on the other processor (so there is no
        # duplicate to invalidate).  Present implies mapped throughout the
        # driver, so residency alone decides.  Only the LRU refresh and the
        # logical tick remain -- both must still happen, exactly as the
        # slow path would do them, or eviction ordering (and thus cost)
        # diverges between the paths.
        if self.fast_path:
            _, cpu_full, gpu_full, cpu_any, gpu_any = st.residency_summary()
            full_here = gpu_full if proc is Processor.GPU else cpu_full
            if full_here and not (is_write and (gpu_any if proc is Processor.CPU
                                                else cpu_any)):
                if pages is not None and len(pages) == 0:
                    return _ZERO_OUTCOME
                self._tick += 1
                if proc is Processor.GPU:
                    if pages is None:
                        st.last_use[lo_page:hi_page] = self._tick
                    else:
                        st.last_use[pages] = self._tick
                if self.metrics_hook is not None:
                    self._emit_outcome(_ZERO_OUTCOME, proc)
                return _ZERO_OUTCOME

        out = AccessOutcome()
        p = self.params
        page_idx = (st.page_index[lo_page:hi_page] if pages is None
                    else np.asarray(pages))
        if len(page_idx) == 0:
            return out
        span_bytes = len(page_idx) * PAGE_SIZE if nbytes is None else nbytes
        bytes_per_page = max(1, span_bytes // len(page_idx))

        self._tick += 1
        here = st.present[proc, page_idx]
        there = st.present[proc.other, page_idx]
        mapped_here = st.mapped[proc, page_idx]

        # --- first touch: populate locally ------------------------------ #
        # CPU first touch is an ordinary OS minor fault (cheap).  GPU
        # first touch is a real UM fault: each contiguous group pays the
        # service latency, and the pressured slow path applies when the
        # node is oversubscribed -- this is where the paper's optimized
        # Smith-Waterman still loses ~12s to "GPU page fault groups".
        fresh = ~here & ~there
        n_fresh = int(fresh.sum())
        if n_fresh:
            fresh_idx = page_idx[fresh]
            self._populate(st, fresh_idx, proc)
            cost = n_fresh * p.populate_time
            if proc is Processor.GPU:
                # First-touch faults never migrate data, so they skip the
                # pressured evict+DMA slow path.
                service = p.fault_service
                groups = contiguous_runs(fresh_idx)
                cost += len(groups) * service
                out.fault_groups += len(groups)
                self.log.record(Event(
                    EventKind.PAGE_FAULT, self.clock.now, proc,
                    pages=n_fresh, detail=f"first-touch {alloc.label}",
                    cause=self._cause(alloc=alloc),
                ))
            out.cost += cost
            out.populated_pages += n_fresh
            self.log.record(Event(
                EventKind.POPULATE, self.clock.now, proc, pages=n_fresh,
                cost=cost, detail=alloc.label,
                cause=self._cause(alloc=alloc),
            ))
            here = st.present[proc, page_idx]  # refreshed view

        # --- remote: not here, but mapped (AccessedBy / prior mapping) -- #
        remote = ~here & there & mapped_here
        # Writes through a remote mapping to a read-mostly page would
        # invalidate; treat them as migrating instead (handled below).
        if is_write:
            remote &= ~st.read_mostly[page_idx]
        remote_units = min(accessors, p.max_replay_blocks)
        n_remote = int(remote.sum())
        if n_remote:
            rbytes = n_remote * bytes_per_page
            cost = (self.link.remote_access_time(rbytes)
                    + remote_units * p.remote_per_accessor)
            out.cost += cost
            out.remote_bytes += rbytes
            st.last_use[page_idx[remote]] = self._tick
            self.log.record(Event(
                EventKind.REMOTE_ACCESS, self.clock.now, proc, pages=n_remote,
                nbytes=rbytes, cost=cost, detail=alloc.label,
                cause=self._cause(alloc=alloc),
            ))

        # --- faulting pages: not here, not served remotely -------------- #
        faulting = ~here & there & ~remote
        fault_idx = page_idx[faulting]

        if len(fault_idx):
            rm = st.read_mostly[fault_idx]
            pref_other = st.preferred[fault_idx] == int(proc.other)

            if not is_write:
                # Reads of read-mostly pages duplicate rather than migrate.
                dup_idx = fault_idx[rm]
                if len(dup_idx):
                    out.cost += self._duplicate(st, dup_idx, proc, alloc, out, accessors)
                fault_idx = fault_idx[~rm]
                pref_other = pref_other[~rm]

            # Pages preferred at the *other* processor: establish a mapping
            # and access remotely instead of migrating ("the faulting
            # processor will try to directly establish a mapping").
            map_idx = fault_idx[pref_other]
            if len(map_idx) and self._can_map_remotely(proc):
                cost = len(map_idx) * p.map_time
                cost += (self.link.remote_access_time(len(map_idx) * bytes_per_page)
                         + remote_units * p.remote_per_accessor)
                st.mapped[proc, map_idx] = True
                st.last_use[map_idx] = self._tick
                out.cost += cost
                out.remote_bytes += len(map_idx) * bytes_per_page
                out.fault_groups += 1
                self.log.record(Event(
                    EventKind.PAGE_FAULT, self.clock.now, proc,
                    pages=len(map_idx), cost=0.0, detail=f"mapped {alloc.label}",
                    cause=self._cause(self._displacer(st, map_idx), alloc),
                ))
                self.log.record(Event(
                    EventKind.MAP, self.clock.now, proc, pages=len(map_idx),
                    cost=cost, detail=alloc.label,
                    cause=self._cause(alloc=alloc),
                ))
                fault_idx = fault_idx[~pref_other]
            elif self.link.coherent and not is_write:
                # Coherent link (NVLink): serve read faults remotely with a
                # lazy mapping -- no migration storm on the Power9 testbed.
                cost = len(fault_idx) * p.map_time
                cost += (self.link.remote_access_time(len(fault_idx) * bytes_per_page)
                         + remote_units * p.remote_per_accessor)
                st.mapped[proc, fault_idx] = True
                st.last_use[fault_idx] = self._tick
                out.cost += cost
                out.remote_bytes += len(fault_idx) * bytes_per_page
                out.fault_groups += 1
                self.log.record(Event(
                    EventKind.PAGE_FAULT, self.clock.now, proc,
                    pages=len(fault_idx), detail=f"coherent {alloc.label}",
                    cause=self._cause(self._displacer(st, fault_idx), alloc),
                ))
                self.log.record(Event(
                    EventKind.REMOTE_ACCESS, self.clock.now, proc,
                    pages=len(fault_idx),
                    nbytes=len(fault_idx) * bytes_per_page, cost=cost,
                    detail=alloc.label,
                    cause=self._cause(alloc=alloc),
                ))
                fault_idx = fault_idx[:0]

            # Whatever remains migrates, one fault group per contiguous run.
            if len(fault_idx):
                out.cost += self._migrate(st, fault_idx, proc, alloc, out, accessors)

        # --- write to a duplicated read-mostly page: invalidate copies -- #
        if is_write:
            dup = st.present[proc, page_idx] & st.present[proc.other, page_idx]
            n_dup = int(dup.sum())
            if n_dup:
                self._drop_copies(st, page_idx[dup], keep=proc)
                cost = n_dup * p.invalidation_time
                out.cost += cost
                out.invalidated_pages += n_dup
                ev = self.log.record(Event(
                    EventKind.INVALIDATION, self.clock.now, proc, pages=n_dup,
                    cost=cost, detail=alloc.label,
                    cause=self._cause(alloc=alloc),
                ))
                self._mark_displaced(st, page_idx[dup], ev.id)

        # --- plain hits: refresh LRU --------------------------------- #
        if proc is Processor.GPU:
            st.last_use[page_idx[st.present[proc, page_idx]]] = self._tick

        if self.metrics_hook is not None:
            self._emit_outcome(out, proc)
        return out

    def _emit_outcome(self, out: AccessOutcome, proc: Processor) -> None:
        """Forward one access outcome to the metrics hook."""
        hook = self.metrics_hook
        assert hook is not None
        labels = {"proc": proc.name}
        for name, value in (
            ("um_fault_groups", out.fault_groups),
            ("um_migrated_pages", out.migrated_pages),
            ("um_duplicated_pages", out.duplicated_pages),
            ("um_remote_bytes", out.remote_bytes),
            ("um_invalidated_pages", out.invalidated_pages),
            ("um_populated_pages", out.populated_pages),
            ("um_evicted_pages", out.evicted_pages),
        ):
            if value:
                hook(name, float(value), labels)
        if out.cost:
            hook("um_access_cost_seconds", out.cost, labels)
        hook("um_gpu_pages_in_use", float(self.gpu_pages_in_use), {})

    # ------------------------------------------------------------------ #
    # internals

    def _cause(self, parent: int = -1,
               alloc: Allocation | None = None) -> CauseLink | None:
        """Cause link for the event being recorded (None when not tracking).

        ``alloc`` overrides the blame context's allocation label -- the
        driver knows the touched allocation more precisely than the runtime
        for per-allocation events; evictions keep the context's label (the
        *incoming* allocation that created the pressure).
        """
        if not self.track_causes:
            return None
        b = self.blame
        label = b.alloc if alloc is None else (alloc.label or b.alloc)
        return CauseLink(site=b.site, kernel=b.kernel, api=b.api,
                         alloc=label, parent=parent)

    def _mark_displaced(self, st: PageState, idx: np.ndarray,
                        event_id: int) -> None:
        """Remember that ``event_id`` removed pages ``idx`` from somewhere."""
        if self.track_causes and len(idx):
            st.displaced_by[idx] = event_id

    def _displacer(self, st: PageState, idx: np.ndarray) -> int:
        """Most recent event that displaced any page in ``idx`` (-1 if none)."""
        if not self.track_causes or len(idx) == 0:
            return -1
        return int(st.displaced_by[idx].max())

    def _can_map_remotely(self, proc: Processor) -> bool:
        # The GPU can map host memory on any link (zero-copy over PCIe,
        # coherent over NVLink); the CPU can only map GPU memory on a
        # coherent link.
        return proc is Processor.GPU or self.link.coherent

    def _populate(self, st: PageState, idx: np.ndarray, proc: Processor) -> None:
        st.touch()
        st.present[proc, idx] = True
        st.mapped[proc, idx] = True
        st.last_use[idx] = self._tick
        for other in (proc.other,):
            ab = st.accessed_by[other, idx]
            st.mapped[other, idx] |= ab
        if proc is Processor.GPU:
            self._gpu_managed_pages += len(idx)
            self._ensure_capacity(exclude=(st, idx))

    def _move_pages(self, st: PageState, idx: np.ndarray, proc: Processor) -> None:
        """Flip residency of pages ``idx`` to ``proc`` and fix mappings."""
        if len(idx) == 0:
            return
        st.touch()
        was_gpu = st.present[Processor.GPU, idx]
        st.present[proc.other, idx] = False
        st.present[proc, idx] = True
        st.mapped[proc, idx] = True
        # AccessedBy keeps the other processor's mapping updated; otherwise
        # the old mapping is torn down by the migration.
        keep = st.accessed_by[proc.other, idx]
        st.mapped[proc.other, idx] = keep
        st.last_use[idx] = self._tick
        if proc is Processor.GPU:
            self._gpu_managed_pages += int((~was_gpu).sum())
            self._ensure_capacity(exclude=(st, idx))
        else:
            self._gpu_managed_pages -= int(was_gpu.sum())

    def _migrate(
        self,
        st: PageState,
        idx: np.ndarray,
        proc: Processor,
        alloc: Allocation,
        out: AccessOutcome,
        accessors: int,
    ) -> float:
        p = self.params
        runs = contiguous_runs(idx)
        cost = 0.0
        replay_units = min(accessors, p.max_replay_blocks)
        service = p.fault_service
        if proc is Processor.GPU and self.oversubscribed:
            service *= p.pressure_factor
        first_fault = -1
        for a, b in runs:
            npages = b - a
            group_cost = (
                service
                + self.link.transfer_time(npages * PAGE_SIZE)
                + replay_units * p.replay_per_block
            )
            cost += group_cost
            out.fault_groups += 1
            # The fault's parent is whatever event last removed one of these
            # pages from the faulting processor (migration the other way,
            # invalidation, eviction) -- the "why did we fault again" link.
            parent = int(st.displaced_by[a:b].max()) if self.track_causes else -1
            ev = self.log.record(Event(
                EventKind.PAGE_FAULT, self.clock.now, proc, pages=npages,
                cost=group_cost, detail=alloc.label,
                cause=self._cause(parent, alloc),
            ))
            if first_fault < 0:
                first_fault = ev.id
        self._move_pages(st, idx, proc)
        out.migrated_pages += len(idx)
        mig = self.log.record(Event(
            EventKind.MIGRATION, self.clock.now, proc, pages=len(idx),
            nbytes=len(idx) * PAGE_SIZE, detail=alloc.label,
            cause=self._cause(first_fault, alloc),
        ))
        self._mark_displaced(st, idx, mig.id)
        return cost

    def _duplicate(
        self,
        st: PageState,
        idx: np.ndarray,
        proc: Processor,
        alloc: Allocation,
        out: AccessOutcome,
        accessors: int,
    ) -> float:
        p = self.params
        cost = 0.0
        for a, b in contiguous_runs(idx):
            npages = b - a
            # Read-duplication services the fault once and leaves the home
            # copy valid, so there is no replay storm -- the asymmetry that
            # makes SetReadMostly so effective on PCIe platforms.
            cost += p.fault_service + self.link.transfer_time(npages * PAGE_SIZE)
            out.fault_groups += 1
        st.touch()
        st.present[proc, idx] = True
        st.mapped[proc, idx] = True
        st.last_use[idx] = self._tick
        if proc is Processor.GPU:
            self._gpu_managed_pages += len(idx)
            self._ensure_capacity(exclude=(st, idx))
        out.duplicated_pages += len(idx)
        self.log.record(Event(
            EventKind.DUPLICATION, self.clock.now, proc, pages=len(idx),
            nbytes=len(idx) * PAGE_SIZE, cost=cost, detail=alloc.label,
            cause=self._cause(self._displacer(st, idx), alloc),
        ))
        return cost

    def _drop_copies(self, st: PageState, idx: np.ndarray, keep: Processor) -> None:
        st.touch()
        was_gpu = st.present[Processor.GPU, idx]
        st.present[keep.other, idx] = False
        st.mapped[keep.other, idx] = st.accessed_by[keep.other, idx]
        if keep is Processor.CPU:
            self._gpu_managed_pages -= int(was_gpu.sum())

    def _ensure_capacity(self, exclude: tuple[PageState, np.ndarray]) -> None:
        """Evict GPU pages until residency fits device memory.

        Eviction is block-granular: the driver locates the globally
        least-recently-used GPU page and writes back the whole aligned
        ``eviction_block_pages`` run around it (CUDA reclaims memory in
        large chunks).  Pages of the access currently being served are
        pinned.
        """
        if self.gpu_pages_in_use <= self.gpu_capacity_pages:
            return
        ex_state, ex_idx = exclude
        pinned = np.zeros(ex_state.npages, dtype=bool)
        pinned[ex_idx] = True
        block = self.params.eviction_block_pages

        total_evicted = 0
        cost = self.params.eviction_service
        victim_batches: list[tuple[PageState, np.ndarray]] = []
        while self.gpu_pages_in_use > self.gpu_capacity_pages:
            # Find the global LRU GPU-resident, unpinned page.
            best: tuple[int, PageState, int] | None = None
            for st in self._states.values():
                mask = st.present[Processor.GPU].copy()
                if st is ex_state:
                    mask &= ~pinned
                idx = np.flatnonzero(mask)
                if len(idx) == 0:
                    continue
                k = idx[np.argmin(st.last_use[idx])]
                age = int(st.last_use[k])
                if best is None or age < best[0]:
                    best = (age, st, int(k))
            if best is None:
                raise MemoryError("GPU memory exhausted with all pages pinned")
            _, st, page = best
            lo = (page // block) * block
            hi = min(lo + block, st.npages)
            window = st.page_index[lo:hi]
            victim_mask = st.present[Processor.GPU, window]
            if st is ex_state:
                victim_mask &= ~pinned[window]
            victims = window[victim_mask]
            # Write back to host: pages leave the GPU, host copy revalidated.
            st.touch()
            st.present[Processor.GPU, victims] = False
            st.mapped[Processor.GPU, victims] = st.accessed_by[Processor.GPU, victims]
            st.present[Processor.CPU, victims] = True
            st.mapped[Processor.CPU, victims] = True
            cost += self.link.transfer_time(len(victims) * PAGE_SIZE)
            total_evicted += len(victims)
            self._gpu_managed_pages -= len(victims)
            if self.track_causes:
                victim_batches.append((st, victims))
        self.clock.advance(cost)
        # The eviction's blame stays on the *incoming* access (the blame
        # context): the allocation being faulted in created the pressure.
        ev = self.log.record(Event(
            EventKind.EVICTION, self.clock.now, Processor.GPU,
            pages=total_evicted, nbytes=total_evicted * PAGE_SIZE, cost=cost,
            detail="lru-block-eviction",
            cause=self._cause(),
        ))
        for vst, victims in victim_batches:
            self._mark_displaced(vst, victims, ev.id)
        if self.metrics_hook is not None:
            self.metrics_hook("um_evicted_pages", float(total_evicted),
                              {"proc": Processor.GPU.name})
            self.metrics_hook("um_eviction_cost_seconds", cost,
                              {"proc": Processor.GPU.name})

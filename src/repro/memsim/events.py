"""Event log for the unified-memory driver.

Every observable driver action (page fault, migration, duplication,
invalidation, eviction, explicit transfer, remote access) is recorded here.
The log serves two purposes: tests assert on driver behaviour through it,
and the evaluation harness derives fault/migration statistics from it
(e.g. the "GPU page fault groups" the paper attributes Smith-Waterman's
slow runs to).

Since the causal-provenance work every event also carries a **stable id**
(its position in the recording sequence) and an optional **cause link**
(:class:`CauseLink`): which source line / kernel / API call triggered the
work, and the id of the upstream event that made it necessary -- e.g. a
GPU fault whose ``parent`` is the CPU-triggered migration that stole the
page.  :mod:`repro.causes` builds blame tables and critical paths from
these links.
"""

from __future__ import annotations

import enum
from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Iterator

from .devices import Processor

__all__ = ["EventKind", "Event", "EventLog", "CauseLink"]


class EventKind(enum.Enum):
    """Kinds of driver events."""

    PAGE_FAULT = "page_fault"          # a fault group (one per faulting access)
    MIGRATION = "migration"            # pages moved between memories
    DUPLICATION = "duplication"        # read-mostly copy created
    INVALIDATION = "invalidation"      # read-mostly copies dropped on write
    EVICTION = "eviction"              # GPU pages evicted to host (capacity)
    TRANSFER = "transfer"              # explicit cudaMemcpy traffic
    REMOTE_ACCESS = "remote_access"    # access served over the link w/o migration
    POPULATE = "populate"              # first-touch page population
    MAP = "map"                        # page mapped into a processor's tables
    PHASE = "phase"                    # access-pattern phase begin/end marker


@dataclass(frozen=True)
class CauseLink:
    """Why one driver event happened.

    :param site: source site (``file:line (func)``) of the triggering
        access/API call, when attribution is enabled.
    :param kernel: kernel executing when the work was triggered (empty for
        host-side work).
    :param api: runtime verb that entered the driver: ``access``,
        ``memcpy``, ``memset``, ``prefetch`` or ``advise``.
    :param alloc: label of the allocation whose access triggered the work
        (for evictions this is the *incoming* allocation that created the
        capacity pressure, not the victim).
    :param parent: id of the upstream event that made this work necessary
        (-1 when none): a re-fault's parent is the migration, invalidation
        or eviction that removed the page.
    """

    site: str = ""
    kernel: str = ""
    api: str = ""
    alloc: str = ""
    parent: int = -1


@dataclass(frozen=True)
class Event:
    """One driver event.

    :param kind: what happened.
    :param time: simulated time at which it happened.
    :param device: the processor whose access caused the event.
    :param pages: number of pages involved (0 for byte-granular events).
    :param nbytes: bytes moved/touched, when meaningful.
    :param cost: simulated seconds charged for the event.
    :param detail: free-form annotation (allocation label etc.).
    :param cause: optional provenance link (see :class:`CauseLink`).
    :param id: stable sequence id, assigned by :meth:`EventLog.record`
        (-1 until recorded).
    """

    kind: EventKind
    time: float
    device: Processor
    pages: int = 0
    nbytes: int = 0
    cost: float = 0.0
    detail: str = ""
    cause: CauseLink | None = None
    id: int = -1


class EventLog:
    """Append-only sequence of :class:`Event` with aggregate counters.

    Retention: with ``ring=False`` (default) the log stops retaining
    events beyond ``capacity`` and degrades to counters-only, preserving
    the oldest window.  With ``ring=True`` the log keeps the *most recent*
    ``capacity`` events instead (plus up to ``capacity`` per kind in the
    kind index), so unbounded runs can stream forever at a fixed
    footprint.  Aggregate counters always cover the full run either way.

    Overflow is never silent: every event that falls out of retention --
    a ring eviction or a non-ring record beyond ``capacity`` -- is either
    handed to the :attr:`spill` sink (evict-to-disk, see
    :mod:`repro.stream`) or counted in :attr:`dropped` and announced to
    the drop listeners, so telemetry can surface the loss.
    """

    def __init__(self, *, keep_events: bool = True, capacity: int = 1_000_000,
                 ring: bool = False) -> None:
        """:param keep_events: if False, only counters are kept (cheap mode
            for large footprint runs).
        :param capacity: bound on retained events; beyond it the log either
            degrades to counters-only (``ring=False``) or drops the oldest
            events (``ring=True``) rather than exhausting memory.
        :param ring: retain the newest ``capacity`` events instead of the
            oldest.
        """
        self._keep = keep_events
        self._capacity = capacity
        self._ring = ring
        if ring:
            self._events: deque[Event] | list[Event] = deque(maxlen=capacity)
        else:
            self._events = []
        self._by_kind: dict[EventKind, deque[Event] | list[Event]] = {}
        self._next_id = 0
        self._listeners: list[Callable[[Event], None]] = []
        self._drop_listeners: list[Callable[[Event], None]] = []
        #: Events that fell out of retention *without* being spilled,
        #: by kind.  Deliberate counters-only mode (``keep_events=False``)
        #: retains nothing by design and is not counted here.
        self.dropped: Counter[EventKind] = Counter()
        #: Evict-to-disk sink: when set, overflowed events are handed here
        #: instead of being dropped (and ``dropped`` stays untouched).
        self.spill: Callable[[Event], None] | None = None
        self.counts: Counter[EventKind] = Counter()
        self.pages: Counter[EventKind] = Counter()
        self.bytes: Counter[EventKind] = Counter()
        self.costs: dict[EventKind, float] = {k: 0.0 for k in EventKind}

    def record(self, event: Event) -> Event:
        """Append ``event``, assign its id and update aggregates.

        Returns the event (now carrying its stable ``id``) so callers can
        reference it in later cause links.
        """
        object.__setattr__(event, "id", self._next_id)
        self._next_id += 1
        self.counts[event.kind] += 1
        self.pages[event.kind] += event.pages
        self.bytes[event.kind] += event.nbytes
        self.costs[event.kind] += event.cost
        if self._keep:
            if self._ring:
                if self._capacity > 0 and len(self._events) >= self._capacity:
                    self._overflow(self._events[0])
                self._events.append(event)
                self._index(event)
            elif len(self._events) < self._capacity:
                self._events.append(event)
                self._index(event)
            else:
                # Beyond capacity in oldest-window mode: the event is never
                # retained -- spill it or count the loss.
                self._overflow(event)
        if self._listeners:
            for cb in tuple(self._listeners):
                cb(event)
        return event

    def _index(self, event: Event) -> None:
        index = self._by_kind.get(event.kind)
        if index is None:
            index = deque(maxlen=self._capacity) if self._ring else []
            self._by_kind[event.kind] = index
        index.append(event)

    def _overflow(self, victim: Event) -> None:
        """Route one event falling out of retention (spill or drop)."""
        if self.spill is not None:
            self.spill(victim)
            return
        self.dropped[victim.kind] += 1
        for cb in tuple(self._drop_listeners):
            cb(victim)

    def configure_retention(self, *, capacity: int | None = None,
                            ring: bool | None = None) -> None:
        """Re-bound retention in place (streaming runs shrink the window).

        Already-retained events beyond the new bound are routed through
        the normal overflow path (spilled or counted as dropped), never
        silently discarded.  Counters and the id sequence are untouched.
        """
        if capacity is not None:
            self._capacity = max(0, int(capacity))
        if ring is not None:
            self._ring = bool(ring)
        retained = list(self._events)
        overflow: list[Event] = []
        if self._capacity and len(retained) > self._capacity:
            if self._ring:
                overflow = retained[:-self._capacity]
                retained = retained[-self._capacity:]
            else:
                overflow = retained[self._capacity:]
                retained = retained[:self._capacity]
        self._events = deque(retained, maxlen=self._capacity or None) \
            if self._ring else retained
        self._by_kind.clear()
        for event in retained:
            self._index(event)
        for event in overflow:
            self._overflow(event)

    # ------------------------------------------------------------------ #
    # live taps (telemetry)

    def add_listener(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback(event)`` on every future :meth:`record`.

        Listeners are the live-streaming counterpart of the retained event
        list: the telemetry recorder subscribes here so driver activity can
        be exported even in counters-only (``keep_events=False``) runs.
        """
        if callback not in self._listeners:
            self._listeners.append(callback)

    def remove_listener(self, callback: Callable[[Event], None]) -> None:
        """Detach a previously added listener (no-op if absent)."""
        if callback in self._listeners:
            self._listeners.remove(callback)

    def add_drop_listener(self, callback: Callable[[Event], None]) -> None:
        """Invoke ``callback(event)`` whenever retention drops an event.

        Fires only for true losses: events overflowing retention with no
        :attr:`spill` sink installed.  Telemetry subscribes here to emit
        the ``repro_events_dropped_total`` counter.
        """
        if callback not in self._drop_listeners:
            self._drop_listeners.append(callback)

    def remove_drop_listener(self, callback: Callable[[Event], None]) -> None:
        """Detach a previously added drop listener (no-op if absent)."""
        if callback in self._drop_listeners:
            self._drop_listeners.remove(callback)

    @property
    def dropped_total(self) -> int:
        """Events lost from retention (not spilled), across all kinds."""
        return sum(self.dropped.values())

    def __len__(self) -> int:
        return sum(self.counts.values())

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: EventKind) -> list[Event]:
        """All retained events of ``kind`` in order (O(k) via the index)."""
        return list(self._by_kind.get(kind, ()))

    @property
    def fault_groups(self) -> int:
        """Number of page-fault groups recorded so far."""
        return self.counts[EventKind.PAGE_FAULT]

    @property
    def migrated_pages(self) -> int:
        """Total pages migrated (demand migration only, not eviction)."""
        return self.pages[EventKind.MIGRATION]

    def total_cost(self) -> float:
        """Simulated seconds charged across all memory-system events."""
        return sum(self.costs.values())

    def clear(self) -> None:
        """Drop all events, counters and the id sequence."""
        self._events.clear()
        self._by_kind.clear()
        self._next_id = 0
        self.counts.clear()
        self.pages.clear()
        self.bytes.clear()
        self.dropped.clear()
        self.costs = {k: 0.0 for k in EventKind}

    def summary(self) -> dict[str, float]:
        """Compact dict of headline statistics (used by reports/tests)."""
        return {
            "fault_groups": self.fault_groups,
            "migrated_pages": self.migrated_pages,
            "duplicated_pages": self.pages[EventKind.DUPLICATION],
            "invalidations": self.counts[EventKind.INVALIDATION],
            "evicted_pages": self.pages[EventKind.EVICTION],
            "transfer_bytes": self.bytes[EventKind.TRANSFER],
            "remote_accesses": self.counts[EventKind.REMOTE_ACCESS],
            "memory_time": self.total_cost(),
        }

"""Platform presets: the paper's three testbeds as simulator configurations.

The paper evaluates on:

* an Intel E5-2695 v4 + Nvidia **Pascal** over PCIe,
* an Intel E5-2698 v3 + Nvidia **Volta** over PCIe,
* an IBM **Power9** + Nvidia Volta connected by **NVLink**.

Each preset wires the devices, link, unified-memory driver, clock and event
log into one :class:`Platform`.  The parameters are mechanistic (per-element
throughputs, link speeds, fault latencies), not fitted to the paper's
absolute runtimes; the relative shapes of the evaluation figures emerge
from the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .address_space import AddressSpace
from .clock import SimClock, Stream
from .devices import DeviceSpec, Processor
from .events import EventLog
from .interconnect import Link, nvlink2, pcie3
from .unified_memory import UMCostParams, UnifiedMemoryDriver

__all__ = ["Platform", "intel_pascal", "intel_volta", "power9_volta", "PLATFORMS"]


@dataclass
class Platform:
    """A fully wired simulated heterogeneous node."""

    name: str
    cpu: DeviceSpec
    gpu: DeviceSpec
    link: Link
    um_params: UMCostParams = field(default_factory=UMCostParams)
    keep_events: bool = True
    #: Host-side cost of issuing one async copy + event sync on a stream
    #: (pageable staging, driver call, event wait).  Markedly higher on
    #: the Power9 stack -- the reason Fig 11's overlap optimization loses
    #: there while winning on the Intel nodes.
    stream_op_overhead: float = 0.12e-3

    def __post_init__(self) -> None:
        self.clock = SimClock()
        self.events = EventLog(keep_events=self.keep_events)
        self.address_space = AddressSpace()
        self.um = UnifiedMemoryDriver(
            self.link, self.gpu.memory_bytes, self.clock, self.events, self.um_params
        )

    def device(self, proc: Processor) -> DeviceSpec:
        """The :class:`DeviceSpec` for ``proc``."""
        return self.cpu if proc is Processor.CPU else self.gpu

    def new_stream(self, name: str = "stream") -> Stream:
        """Create an asynchronous stream bound to this platform's clock."""
        return Stream(self.clock, name=name)

    def reset_time(self) -> None:
        """Reset clock and event log (memory state is preserved)."""
        self.clock.reset()
        self.events.clear()


def _cpu(name: str, element_time: float) -> DeviceSpec:
    return DeviceSpec(
        name=name,
        processor=Processor.CPU,
        memory_bytes=256 << 30,
        element_time=element_time,
        launch_overhead=0.2e-6,
    )


def _gpu(name: str, element_time: float, memory_bytes: int) -> DeviceSpec:
    return DeviceSpec(
        name=name,
        processor=Processor.GPU,
        memory_bytes=memory_bytes,
        element_time=element_time,
        launch_overhead=15e-6,  # kernel launch latency incl. RAJA dispatch
    )


def intel_pascal(*, gpu_memory_bytes: int = 16 << 30) -> Platform:
    """Intel E5-2695 v4 (2.1 GHz) + Nvidia Pascal P100, PCIe gen3 x16."""
    return Platform(
        name="intel-pascal",
        cpu=_cpu("Intel E5-2695 v4", element_time=1.2e-9),
        gpu=_gpu("Nvidia Pascal P100", element_time=0.045e-9, memory_bytes=gpu_memory_bytes),
        link=pcie3(),
        um_params=UMCostParams(fault_service=25e-6, replay_per_block=0.70e-6,
                               remote_per_accessor=0.08e-6),
    )


def intel_volta(*, gpu_memory_bytes: int = 16 << 30) -> Platform:
    """Intel E5-2698 v3 (2.3 GHz) + Nvidia Volta V100, PCIe gen3 x16."""
    return Platform(
        name="intel-volta",
        cpu=_cpu("Intel E5-2698 v3", element_time=1.1e-9),
        gpu=_gpu("Nvidia Volta V100", element_time=0.030e-9, memory_bytes=gpu_memory_bytes),
        link=pcie3(),
        um_params=UMCostParams(fault_service=22e-6, replay_per_block=0.65e-6,
                               remote_per_accessor=0.08e-6),
    )


def power9_volta(*, gpu_memory_bytes: int = 16 << 30) -> Platform:
    """IBM Power9 (2.3 GHz) + Nvidia Volta V100 over NVLink 2.0."""
    return Platform(
        name="power9-volta",
        cpu=_cpu("IBM Power9", element_time=1.0e-9),
        gpu=_gpu("Nvidia Volta V100", element_time=0.030e-9, memory_bytes=gpu_memory_bytes),
        link=nvlink2(),
        # ATS-mediated faults on Power9 are not cheap -- NVLink wins by
        # avoiding them via coherent mappings, not by faulting faster.
        um_params=UMCostParams(fault_service=60e-6, replay_per_block=0.02e-6,
                               remote_per_accessor=0.002e-6),
        stream_op_overhead=0.7e-3,
    )


#: Factory registry keyed by the names used throughout the eval harness.
PLATFORMS = {
    "intel-pascal": intel_pascal,
    "intel-volta": intel_volta,
    "power9-volta": power9_volta,
}

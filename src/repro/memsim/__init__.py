"""Simulated heterogeneous CPU/GPU node (the paper's hardware substrate).

Public surface:

* :class:`~repro.memsim.devices.Processor`, :class:`~repro.memsim.devices.DeviceSpec`
* :class:`~repro.memsim.address_space.AddressSpace`, :class:`~repro.memsim.address_space.Allocation`, :data:`~repro.memsim.address_space.PAGE_SIZE`
* :class:`~repro.memsim.unified_memory.UnifiedMemoryDriver` and :class:`~repro.memsim.unified_memory.UMCostParams`
* :class:`~repro.memsim.platform.Platform` plus the three paper-testbed presets
* :class:`~repro.memsim.events.EventLog` / :class:`~repro.memsim.events.EventKind`
"""

from .address_space import PAGE_SIZE, AddressSpace, Allocation, MemoryKind
from .clock import SimClock, Stream
from .devices import (
    CPU_DEVICE_ID,
    GPU_DEVICE_ID,
    DeviceSpec,
    Processor,
    processor_from_device_id,
)
from .events import CauseLink, Event, EventKind, EventLog
from .interconnect import Link, LinkStats, nvlink2, pcie3
from .pages import NO_PREFERENCE, PageState, contiguous_runs
from .platform import PLATFORMS, Platform, intel_pascal, intel_volta, power9_volta
from .unified_memory import (
    AccessOutcome,
    BlameContext,
    MetricsHook,
    UMCostParams,
    UnifiedMemoryDriver,
)

__all__ = [
    "PAGE_SIZE",
    "AddressSpace",
    "Allocation",
    "MemoryKind",
    "SimClock",
    "Stream",
    "CPU_DEVICE_ID",
    "GPU_DEVICE_ID",
    "DeviceSpec",
    "Processor",
    "processor_from_device_id",
    "CauseLink",
    "Event",
    "EventKind",
    "EventLog",
    "Link",
    "LinkStats",
    "MetricsHook",
    "nvlink2",
    "pcie3",
    "NO_PREFERENCE",
    "PageState",
    "contiguous_runs",
    "PLATFORMS",
    "Platform",
    "intel_pascal",
    "intel_volta",
    "power9_volta",
    "AccessOutcome",
    "BlameContext",
    "UMCostParams",
    "UnifiedMemoryDriver",
]

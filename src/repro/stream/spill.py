"""Spill-and-merge collection: bounded memory, everything on disk.

Two pieces turn the in-memory observability stores into streaming ones:

* :class:`SpillingHeatStore` -- a :class:`~repro.heatmap.store.HeatStore`
  whose epoch snapshots are handed to a sink as they freeze and (by
  default) immediately released, so heat memory stays flat no matter how
  many epochs a run closes.
* :class:`StreamSpiller` -- wires one session into a
  :class:`~repro.stream.segments.SegmentWriter`: the event log's ring
  retention becomes *evict-to-disk* (the :attr:`EventLog.spill` sink),
  frozen heat epochs buffer up, and every closed tracing epoch -- or an
  event-buffer watermark, whichever comes first -- flushes one framed
  segment and republishes the manifest rollup that ``repro-top`` tails.

Because ring eviction is FIFO and the final flush drains the still-
retained tail in order, the concatenated segments contain *every* driver
event exactly once, in recording order -- the property the merge algebra
(:mod:`repro.stream.merge`) relies on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from ..cudart.observer import ObserverBase
from ..heatmap.store import CHANNELS, AllocationHeat, EpochHeat, HeatStore, SourceSite
from ..memsim import Event
from ..telemetry.events_jsonl import encode_driver_event

from .segments import SegmentWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..workloads.base import Session

__all__ = ["SpillingHeatStore", "StreamSpiller",
           "encode_heat_epoch", "decode_heat_epoch", "encode_alloc_meta"]


def encode_alloc_meta(heat: AllocationHeat) -> dict[str, Any]:
    """Geometry record for one allocation (written before its heat)."""
    return {"type": "alloc_meta", "label": heat.label, "base": heat.base,
            "serial": heat.serial, "size": heat.size,
            "nwords": heat.nwords, "nbuckets": heat.nbuckets}


def encode_heat_epoch(heat: AllocationHeat, snap: EpochHeat) -> dict[str, Any]:
    """One frozen epoch of one allocation as a segment record."""
    return {
        "type": "heat_epoch",
        "base": heat.base,
        "serial": heat.serial,
        "label": heat.label,
        "epoch": snap.epoch,
        "counts": snap.counts.tolist(),
        "sites": [[s.file, s.line, s.func, vec.tolist()]
                  for s, vec in snap.sites.items()],
    }


def decode_heat_epoch(rec: Mapping[str, Any], nbuckets: int) -> EpochHeat:
    """Rebuild an :class:`EpochHeat` from its segment record."""
    import numpy as np

    counts = np.asarray(rec["counts"], np.int64)
    if counts.shape != (len(CHANNELS), nbuckets):
        raise ValueError(
            f"heat_epoch counts shape {counts.shape} != "
            f"({len(CHANNELS)}, {nbuckets})")
    sites = {SourceSite(file, int(line), func): np.asarray(vec, np.int64)
             for file, line, func, vec in rec.get("sites", ())}
    return EpochHeat(epoch=int(rec["epoch"]), counts=counts, sites=sites)


class SpillingHeatStore(HeatStore):
    """A heat store whose frozen epochs stream out instead of piling up.

    :param sink: called as ``sink(alloc_heat, epoch_heat)`` for every
        snapshot frozen by :meth:`advance_epoch`; installed by
        :meth:`StreamSpiller.attach` when created standalone.
    :param retain: also keep the snapshots in memory (diagnostic runs
        that want both the stream and the in-process renderers).  Off by
        default: spilled epochs are released and memory stays flat.
    """

    def __init__(self, *, sink=None, retain: bool = False, **kwargs) -> None:
        super().__init__(**kwargs)
        self.sink = sink
        self.retain = retain
        self.epochs_spilled = 0

    def advance_epoch(self, closed_epoch: int) -> None:
        """Freeze accumulators, stream the snapshots, release the memory."""
        for heat in self._allocs.values():
            snap = heat.freeze(closed_epoch)
            if snap is None:
                continue
            # Live listeners (phase tracking) see every snapshot before
            # the store releases it to the spill sink.
            if self.epoch_listeners:
                for listener in tuple(self.epoch_listeners):
                    listener(heat, snap)
            if self.sink is not None:
                self.sink(heat, snap)
                self.epochs_spilled += 1
                if not self.retain:
                    heat.epochs.pop()
        self.epochs_closed.append(closed_epoch)


class StreamSpiller(ObserverBase):
    """Bridges one live session onto an on-disk segment stream.

    :param out_dir: stream directory to write (see :mod:`.segments`).
    :param shard: shard identity (unique per concurrent process).
    :param workload: manifest metadata.
    :param platform: manifest metadata (preset name).
    :param config: manifest metadata.
    :param watermark_events: buffered-event count that forces an early
        segment flush between epoch boundaries (the memory watermark).
    """

    def __init__(self, out_dir, *, shard: str = "shard-0",
                 workload: str = "", platform: str = "",
                 config: Mapping[str, Any] | None = None,
                 watermark_events: int = 16384) -> None:
        self.writer = SegmentWriter(out_dir, shard=shard, workload=workload,
                                    platform=platform, config=config)
        self.watermark_events = max(1, watermark_events)
        self.heat: SpillingHeatStore | None = None
        self.segments_written = 0
        self.events_spilled = 0
        self.heat_epochs_spilled = 0
        self._pending: list[dict[str, Any]] = []
        self._pending_events = 0
        self._meta_written: set[tuple[int, int]] = set()
        self._alloc_totals: dict[str, int] = {}
        self._session: "Session | None" = None
        self._prev_spill = None
        self._epoch_hook = None
        self._closed = False
        #: Optional :class:`~repro.signature.tracker.PhaseTracker`; when
        #: set, its live state rides the manifest rollup (``repro-top``'s
        #: phase line) and its markers land in the event stream like any
        #: other driver event.
        self.phase_source = None

    # ------------------------------------------------------------------ #
    # wiring

    def attach(self, session: "Session",
               heat: SpillingHeatStore | None = None) -> "StreamSpiller":
        """Wire into ``session``: event-log spill sink, epoch hook, heat.

        The session's event log keeps its configured retention; what the
        ring would have dropped now lands in the stream instead.  Returns
        self.
        """
        if self._session is not None:
            raise RuntimeError("StreamSpiller is already attached")
        self._session = session
        log = session.platform.events
        self._prev_spill = log.spill
        log.spill = self._spill_event
        session.runtime.subscribe(self)
        if heat is not None:
            self.heat = heat
        if self.heat is not None and self.heat.sink is None:
            self.heat.sink = self._on_heat_epoch
        tracer = session.tracer
        if tracer is not None:
            if self.heat is not None and tracer.heat is None:
                tracer.heat = self.heat

            def epoch_hook(closed: int) -> None:
                self._on_epoch(closed)

            self._epoch_hook = epoch_hook
            tracer.epoch_hooks.append(epoch_hook)
        return self

    def close(self) -> dict[str, Any]:
        """Drain retained state, finalize the manifest, unwire.

        Residual heat that never saw a diagnostic reset is frozen first;
        the events still held by the ring flush in order after everything
        the ring already evicted, so the stream ends complete.  Returns
        the final manifest dict.
        """
        if self._closed:
            return self.writer.manifest()
        session = self._session
        if session is not None:
            if self.heat is not None:
                self.heat.flush_current()
            log = session.platform.events
            for event in log:
                self._append(encode_driver_event(event))
                self.events_spilled += 1
            if self.heat is not None and self.heat.sink == self._on_heat_epoch:
                info = _sampling_info(session)
                if info is not None:
                    self._append(info)
            self._flush_segment()
            log.spill = self._prev_spill
            session.runtime.unsubscribe(self)
            tracer = session.tracer
            if tracer is not None and self._epoch_hook in tracer.epoch_hooks:
                tracer.epoch_hooks.remove(self._epoch_hook)
        manifest_path_rollup = self._rollup()
        self.writer.finalize(manifest_path_rollup)
        self._closed = True
        self._session = None
        return self.writer.manifest()

    # ------------------------------------------------------------------ #
    # sinks

    def _append(self, record: dict[str, Any]) -> None:
        self._pending.append(record)

    def _spill_event(self, event: Event) -> None:
        """EventLog evict-to-disk sink (replaces silent ring drops)."""
        self._append(encode_driver_event(event))
        self.events_spilled += 1
        self._pending_events += 1
        if self._pending_events >= self.watermark_events:
            self._flush_segment()

    def _on_heat_epoch(self, heat: AllocationHeat, snap: EpochHeat) -> None:
        key = (heat.base, heat.serial)
        if key not in self._meta_written:
            self._meta_written.add(key)
            self._append(encode_alloc_meta(heat))
        self._append(encode_heat_epoch(heat, snap))
        self.heat_epochs_spilled += 1
        self._alloc_totals[heat.label] = \
            self._alloc_totals.get(heat.label, 0) + snap.total

    def _on_epoch(self, closed: int) -> None:
        """Tracer epoch hook: every closed epoch lands one segment.

        The heat store froze (and sank) this epoch's snapshots before the
        hooks fired, so the marker always follows its epoch's heat.
        """
        t = self._session.platform.clock.now if self._session else 0.0
        self._append({"type": "epoch", "epoch": closed, "t": t})
        self._flush_segment()

    def on_alloc(self, alloc) -> None:  # noqa: D102 (observer callback)
        self._append({"type": "alloc", "label": alloc.label,
                      "base": alloc.base, "bytes": alloc.size,
                      "kind": alloc.kind.value,
                      "site": getattr(alloc, "site", "")})

    # ------------------------------------------------------------------ #
    # segment output

    def _flush_segment(self) -> None:
        if not self._pending:
            # No new records, but republish the rollup so tailing
            # monitors still see counter movement through quiet epochs.
            self.writer.publish_rollup(self._rollup())
            return
        self.writer.write_segment(self._pending, rollup=self._rollup())
        self.segments_written += 1
        self._pending = []
        self._pending_events = 0

    def _rollup(self) -> dict[str, Any]:
        session = self._session
        rollup: dict[str, Any] = {
            "events_spilled": self.events_spilled,
            "heat_epochs_spilled": self.heat_epochs_spilled,
            "segments": len(self.writer.segments),
            "allocs": [{"label": label, "total": total}
                       for label, total in sorted(self._alloc_totals.items())],
        }
        if self.heat is not None:
            rollup["epochs_closed"] = len(self.heat.epochs_closed)
            rollup["heat_records"] = self.heat.records
        if session is not None:
            log = session.platform.events
            rollup["summary"] = {k: float(v) if isinstance(v, float) else int(v)
                                 for k, v in log.summary().items()}
            rollup["events_dropped"] = log.dropped_total
            rollup["sim_time"] = session.platform.clock.now
            rollup["gpu_pages_in_use"] = session.platform.um.gpu_pages_in_use
            info = _sampling_info(session)
            if info is not None:
                rollup["sampling"] = {k: v for k, v in info.items()
                                      if k != "type"}
        if self.phase_source is not None:
            rollup["phase"] = self.phase_source.rollup()
        return rollup


def _sampling_info(session: "Session") -> dict[str, Any] | None:
    tracer = session.tracer
    if tracer is None:
        return None
    info = tracer.sampling_info()
    if info is None:
        return None
    return {"type": "sampling", **info}

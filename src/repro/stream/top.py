"""``repro-top``: live terminal monitor over stream directories.

Tails the manifests (and latest segments) of one or more shard stream
directories and redraws a compact dashboard every interval::

    repro-top /tmp/run/shard-* --interval 1

Panels:

* **run header** -- workload/platform, shards seen, complete flags;
* **counters** -- events spilled/dropped, segments, epochs, the driver's
  headline summary (faults, migrated/evicted pages, transfer bytes);
* **residency & rates** -- GPU pages in use, simulated time, and the
  fault/migration *rates* over the last refresh window;
* **heat strips** -- each allocation's latest spilled epoch as an
  intensity strip (same ramps as the ``--ansi`` report renderer);
* **drill-down** (``--alloc LABEL``) -- that allocation's recent epochs.

Everything is read-side only and crash-tolerant: a truncated final
segment (the producer died or is mid-write) is simply skipped, and a
directory with no manifest yet renders as "waiting".  Scripted mode
(``--frames N --interval 0``) renders N frames and exits -- that is what
the tests and CI drive.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..heatmap.ansi import ANSI_RAMP, ASCII_RAMP, _levels, supports_color

from .segments import (
    TruncatedSegmentError,
    load_manifest,
    read_segment,
    segment_files,
)

__all__ = ["Monitor", "main"]

_CLEAR = "\x1b[H\x1b[2J"
_RESET = "\x1b[0m"

#: Rollup summary keys shown in the counters panel, with short labels.
_SUMMARY_ROWS = (
    ("fault_groups", "faults"),
    ("migrated_pages", "migrated pg"),
    ("evicted_pages", "evicted pg"),
    ("duplicated_pages", "dup pg"),
    ("invalidations", "invalidations"),
    ("transfer_bytes", "memcpy B"),
    ("remote_accesses", "remote"),
)


def _fmt(v: float) -> str:
    v = float(v)
    if abs(v) >= 1e9:
        return f"{v / 1e9:.1f}B"
    if abs(v) >= 1e6:
        return f"{v / 1e6:.1f}M"
    if abs(v) >= 1e4:
        return f"{v / 1e3:.1f}K"
    if v == int(v):
        return f"{int(v):,}"
    return f"{v:.4g}"


def _strip(row: np.ndarray, peak: int, color: bool, width: int) -> str:
    """One heat vector as a fixed-width intensity strip."""
    if len(row) > width:
        # Fold buckets down to the display width (sum preserves heat).
        edges = (np.arange(width + 1) * len(row)) // width
        row = np.add.reduceat(row, edges[:-1])
        peak = max(peak, int(row.max()) if row.size else 0)
    if color:
        lev = _levels(row, peak, len(ANSI_RAMP) + 1)
        cells = [f"\x1b[48;5;{ANSI_RAMP[v - 1]}m \x1b[49m" if v else " "
                 for v in lev]
        return "".join(cells) + _RESET
    lev = _levels(row, peak, len(ASCII_RAMP))
    return "".join(ASCII_RAMP[v] for v in lev)


class _ShardView:
    """Read-side state of one stream directory between frames."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.manifest: dict[str, Any] | None = None
        self.error = ""
        #: Latest heat vector and epoch per allocation label.
        self.heat: dict[str, tuple[int, np.ndarray]] = {}
        #: label -> [(epoch, vector), ...] recent history (drill-down).
        self.history: dict[str, list[tuple[int, np.ndarray]]] = {}
        self._read_segments = 0

    def refresh(self, *, history_depth: int = 8) -> None:
        """Re-read the manifest and any segments written since last time."""
        try:
            self.manifest = load_manifest(self.path)
            self.error = ""
        except FileNotFoundError:
            self.manifest = None
            self.error = "waiting for manifest"
            return
        except Exception as exc:  # unreadable manifest mid-replace etc.
            self.error = str(exc)
            return
        files = segment_files(self.path)
        for seg in files[self._read_segments:]:
            try:
                records = read_segment(seg)
            except TruncatedSegmentError:
                # Mid-write or crashed tail: retry it next frame.
                break
            self._read_segments += 1
            for rec in records:
                if rec.get("type") != "heat_epoch":
                    continue
                label = rec["label"]
                vec = np.asarray(rec["counts"], np.int64).sum(axis=0)
                epoch = int(rec["epoch"])
                known = self.heat.get(label)
                if known is None or epoch >= known[0]:
                    self.heat[label] = (epoch, vec)
                hist = self.history.setdefault(label, [])
                hist.append((epoch, vec))
                del hist[:-history_depth]

    @property
    def rollup(self) -> Mapping[str, Any]:
        return (self.manifest or {}).get("rollup", {})


class Monitor:
    """Renders dashboard frames over N stream directories."""

    def __init__(self, dirs, *, color: bool = False, width: int = 48,
                 alloc: str | None = None, history_depth: int = 8) -> None:
        self.views = [_ShardView(Path(d)) for d in dirs]
        self.color = color
        self.width = max(8, width)
        self.alloc = alloc
        self.history_depth = history_depth
        self._prev: dict[str, float] = {}
        self.frames_rendered = 0

    # ------------------------------------------------------------------ #
    # aggregation

    def _totals(self) -> dict[str, float]:
        """Sum the tailed rollups across shards (plus rate deltas)."""
        totals: dict[str, float] = {
            "events_spilled": 0, "events_dropped": 0, "segments": 0,
            "epochs_closed": 0, "heat_records": 0,
            "gpu_pages_in_use": 0, "sim_time": 0.0,
        }
        for key, _ in _SUMMARY_ROWS:
            totals[key] = 0
        for view in self.views:
            r = view.rollup
            for key in ("events_spilled", "events_dropped", "segments",
                        "epochs_closed", "heat_records", "gpu_pages_in_use"):
                totals[key] += float(r.get(key, 0))
            totals["sim_time"] = max(totals["sim_time"],
                                     float(r.get("sim_time", 0.0)))
            summary = r.get("summary", {})
            for key, _ in _SUMMARY_ROWS:
                totals[key] += float(summary.get(key, 0))
        return totals

    # ------------------------------------------------------------------ #
    # rendering

    def render_frame(self) -> str:
        """Refresh every shard and render one dashboard frame."""
        for view in self.views:
            view.refresh(history_depth=self.history_depth)
        totals = self._totals()
        lines: list[str] = []
        lines.extend(self._header_lines())
        lines.extend(self._counter_lines(totals))
        lines.extend(self._heat_lines())
        if self.alloc is not None:
            lines.extend(self._drilldown_lines(self.alloc))
        self._prev = totals
        self.frames_rendered += 1
        return "\n".join(lines) + "\n"

    def _header_lines(self) -> list[str]:
        workload = platform = ""
        complete = 0
        for view in self.views:
            m = view.manifest or {}
            workload = workload or m.get("workload", "")
            platform = platform or m.get("platform", "")
            complete += 1 if m.get("complete") else 0
        head = (f"repro-top — {workload or '?'} on {platform or '?'} — "
                f"{len(self.views)} shard(s), {complete} complete")
        lines = [head, "=" * min(len(head), self.width + 30)]
        for view in self.views:
            m = view.manifest
            if m is None or view.error:
                lines.append(f"  {view.path}: {view.error or 'waiting'}")
            else:
                state = "done" if m.get("complete") else "live"
                lines.append(
                    f"  {m.get('shard', view.path.name):12s} {state:4s}  "
                    f"{len(m.get('segments', []))} segment(s)")
        return lines

    def _counter_lines(self, totals: dict[str, float]) -> list[str]:
        sampling = None
        phase = None
        for view in self.views:
            sampling = view.rollup.get("sampling") or sampling
            p = view.rollup.get("phase")
            # The freshest shard (highest closed epoch) owns the live view.
            if p and (phase is None or p.get("epoch", -1)
                      > phase.get("epoch", -1)):
                phase = p
        dt = totals["sim_time"] - self._prev.get("sim_time", 0.0)
        parts = [
            f"events {_fmt(totals['events_spilled'])}",
            f"dropped {_fmt(totals['events_dropped'])}",
            f"segments {_fmt(totals['segments'])}",
            f"epochs {_fmt(totals['epochs_closed'])}",
        ]
        lines = ["", "counters   " + "  ".join(parts)]
        parts = [f"{label} {_fmt(totals[key])}"
                 for key, label in _SUMMARY_ROWS if totals[key]]
        if parts:
            lines.append("driver     " + "  ".join(parts))
        rate_parts = [f"sim time {totals['sim_time']:.4g}s",
                      f"gpu pages {_fmt(totals['gpu_pages_in_use'])}"]
        if dt > 0:
            for key, label in (("fault_groups", "faults/s"),
                               ("migrated_pages", "migr pg/s")):
                delta = totals[key] - self._prev.get(key, 0.0)
                if delta >= 0:
                    rate_parts.append(f"{label} {_fmt(delta / dt)}")
        lines.append("residency  " + "  ".join(rate_parts))
        if phase:
            lines.append(
                f"phase      #{phase.get('current', 0)} "
                f"(epoch {phase.get('epoch', -1)}, "
                f"{phase.get('changes', 0)} change(s))")
        if sampling:
            mode = f", {sampling['mode']}" if sampling.get("mode") else ""
            lines.append(
                f"sampling   1-in-{sampling.get('sample')} words{mode} "
                f"(est. fidelity {sampling.get('estimated_fidelity')})")
        if totals["events_dropped"]:
            lines.append(f"!! {_fmt(totals['events_dropped'])} event(s) "
                         "dropped from retention (no spill sink)")
        return lines

    def _merged_heat(self) -> dict[str, tuple[int, np.ndarray]]:
        """Latest epoch per label, heat summed across shards at that epoch."""
        merged: dict[str, tuple[int, np.ndarray]] = {}
        for view in self.views:
            for label, (epoch, vec) in view.heat.items():
                known = merged.get(label)
                if known is None or epoch > known[0]:
                    merged[label] = (epoch, vec.copy())
                elif epoch == known[0] and len(vec) == len(known[1]):
                    merged[label] = (epoch, known[1] + vec)
        return merged

    def _heat_lines(self) -> list[str]:
        merged = self._merged_heat()
        if not merged:
            return ["", "heat       (no spilled epochs yet)"]
        lines = ["", "heat       latest spilled epoch per allocation"]
        peak = max(int(vec.max()) for _, vec in merged.values()) or 1
        for label in sorted(merged):
            epoch, vec = merged[label]
            lines.append(f"  {label[:14]:14s} e{epoch:<3d} "
                         f"|{_strip(vec, peak, self.color, self.width)}| "
                         f"{_fmt(int(vec.sum()))}")
        return lines

    def _drilldown_lines(self, label: str) -> list[str]:
        rows: dict[int, np.ndarray] = {}
        for view in self.views:
            for epoch, vec in view.history.get(label, ()):
                cur = rows.get(epoch)
                rows[epoch] = cur + vec if cur is not None \
                    and len(cur) == len(vec) else vec.copy()
        lines = ["", f"drill-down {label}"]
        if not rows:
            lines.append("  (no heat spilled for this allocation)")
            return lines
        peak = max(int(v.max()) for v in rows.values()) or 1
        for epoch in sorted(rows)[-self.history_depth:]:
            vec = rows[epoch]
            lines.append(f"  e{epoch:<4d}|"
                         f"{_strip(vec, peak, self.color, self.width)}| "
                         f"{_fmt(int(vec.sum()))}")
        return lines


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-top`` / ``python -m repro.stream.top``."""
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live terminal monitor over streaming run directories "
                    "(tails segment manifests + spilled heat).")
    parser.add_argument("dirs", nargs="+", metavar="DIR",
                        help="stream (shard) directories to tail")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between refreshes (default: 1)")
    parser.add_argument("--frames", type=int, default=None,
                        help="render N frames then exit (scripted mode; "
                             "default: run until interrupted)")
    parser.add_argument("--alloc", metavar="LABEL",
                        help="drill into one allocation's recent epochs")
    parser.add_argument("--width", type=int, default=48,
                        help="heat strip width in cells (default: 48)")
    parser.add_argument("--no-color", action="store_true",
                        help="force the plain ASCII ramp")
    parser.add_argument("--no-clear", action="store_true",
                        help="do not clear the screen between frames")
    args = parser.parse_args(argv)

    color = False if args.no_color else supports_color()
    monitor = Monitor(args.dirs, color=color, width=args.width,
                      alloc=args.alloc)
    clear = not args.no_clear and args.frames is None
    try:
        while True:
            frame = monitor.render_frame()
            sys.stdout.write((_CLEAR if clear else "") + frame)
            sys.stdout.flush()
            if args.frames is not None \
                    and monitor.frames_rendered >= args.frames:
                break
            if all((v.manifest or {}).get("complete")
                   for v in monitor.views) and args.frames is None:
                break
            time.sleep(max(0.0, args.interval))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""``repro-agg``: produce, split and merge streaming run shards.

Three subcommands cover the spill-and-merge lifecycle::

    # one streaming shard run (bounded memory, segments on disk)
    repro-agg run --workload pathfinder --platform pcie --out /tmp/s0

    # redistribute a finished stream into K round-robin shards
    repro-agg split /tmp/s0 --out /tmp/shards -k 4

    # merge N shard directories into one run bundle
    repro-agg merge /tmp/shards/shard-* --out /tmp/merged

``merge`` writes the same artifact set as ``repro-report --why``
(``report.html``, ``events.jsonl``, ``heat.csv``, ``heat.npz``,
``metrics.prom``, ``causes.json``) -- the merged ``events.jsonl`` feeds
``repro-why`` unchanged.  Truncated final segments (a shard that crashed
mid-write) are skipped with a warning; ``--strict`` makes them fatal.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .merge import merge_shards
from .segments import IncompatibleStreamError, TruncatedSegmentError
from .shard import run_streaming, split_stream

__all__ = ["main"]


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_streaming(
        args.workload, args.platform, args.out, shard=args.shard,
        buckets=args.buckets, materialize=not args.footprint,
        why=not args.no_why, sample=args.sample,
        log_capacity=args.log_capacity,
        watermark_events=args.watermark)
    manifest = result["manifest"]
    rollup = manifest.get("rollup", {})
    print(f"{args.workload} on {manifest.get('platform')}: "
          f"{len(manifest.get('segments', []))} segment(s), "
          f"{rollup.get('events_spilled', 0)} event(s) spilled, "
          f"{rollup.get('heat_epochs_spilled', 0)} heat epoch(s), "
          f"sim time {result['sim_time']:.4g}s -> {args.out}")
    return 0


def _cmd_split(args: argparse.Namespace) -> int:
    shard_dirs = split_stream(args.src, args.out, args.k)
    for path in shard_dirs:
        print(f"  {path}")
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    def warn(message: str) -> None:
        print(f"warning: {message}", file=sys.stderr)

    try:
        merged = merge_shards(args.dirs, strict=args.strict, on_warning=warn)
    except (TruncatedSegmentError, IncompatibleStreamError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    paths = merged.write(args.out, report=not args.no_report,
                         why=not args.no_why)
    s = merged.summary
    print(f"merged {len(merged.shards)} shard(s) of "
          f"{merged.workload or '?'} on {merged.platform or '?'}: "
          f"{len(merged.events)} event(s), "
          f"{len(merged.store.allocations())} allocation(s), "
          f"{len(merged.store.epochs_closed)} epoch(s)")
    print(f"  faults {s['fault_groups']}, migrated {s['migrated_pages']} pg, "
          f"evicted {s['evicted_pages']} pg, "
          f"memory time {s['memory_time']:.4g}s")
    if merged.events_dropped:
        print(f"  !! {merged.events_dropped} event(s) were dropped before "
              "spilling was enabled", file=sys.stderr)
    for name, path in sorted(paths.items()):
        print(f"  {name:9s} {path}")
    return 1 if (args.strict and merged.warnings) else 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for ``repro-agg`` / ``python -m repro.stream``."""
    parser = argparse.ArgumentParser(
        prog="repro-agg",
        description="Streaming observability: run shards with spill-to-"
                    "disk, split streams, and merge shard directories "
                    "into one run report.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser(
        "run", help="run one workload in streaming (spill) mode")
    p_run.add_argument("--workload", default="pathfinder",
                       help="workload to replay (default: pathfinder)")
    p_run.add_argument("--platform", default="pcie",
                       help="platform preset or alias (default: pcie)")
    p_run.add_argument("--out", required=True, metavar="DIR",
                       help="stream directory to write")
    p_run.add_argument("--shard", default="shard-0",
                       help="shard identity (default: shard-0)")
    p_run.add_argument("--buckets", type=int, default=64,
                       help="word buckets per allocation (default: 64)")
    p_run.add_argument("--sample", type=int, default=None,
                       help="shadow-sampling stride (1-in-N words)")
    p_run.add_argument("--log-capacity", type=int, default=512,
                       help="event-log ring size before evict-to-disk "
                            "(default: 512)")
    p_run.add_argument("--watermark", type=int, default=16384,
                       help="buffered events forcing an early segment "
                            "flush (default: 16384)")
    p_run.add_argument("--footprint", action="store_true",
                       help="footprint-only allocations (no numpy backing)")
    p_run.add_argument("--no-why", action="store_true",
                       help="skip causal provenance on driver events")
    p_run.set_defaults(func=_cmd_run)

    p_split = sub.add_parser(
        "split", help="split a finished stream into K round-robin shards")
    p_split.add_argument("src", metavar="DIR", help="source stream directory")
    p_split.add_argument("--out", required=True, metavar="DIR",
                         help="base directory for shard-0..shard-(K-1)")
    p_split.add_argument("-k", type=int, default=2,
                         help="number of shards (default: 2)")
    p_split.set_defaults(func=_cmd_split)

    p_merge = sub.add_parser(
        "merge", help="merge N shard directories into one run bundle")
    p_merge.add_argument("dirs", nargs="+", metavar="DIR",
                         help="shard stream directories to merge")
    p_merge.add_argument("--out", required=True, metavar="DIR",
                         help="merged run directory to write")
    p_merge.add_argument("--strict", action="store_true",
                         help="treat truncated segments and shard "
                              "mismatches as fatal")
    p_merge.add_argument("--no-report", action="store_true",
                         help="skip rendering report.html")
    p_merge.add_argument("--no-why", action="store_true",
                         help="skip the causal rollup (causes.json)")
    p_merge.set_defaults(func=_cmd_merge)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

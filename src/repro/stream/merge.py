"""Deterministic merge algebra over N shard stream directories.

:func:`merge_shards` combines any number of shard directories written by
:class:`~repro.stream.spill.StreamSpiller` into one
:class:`~repro.stream.merge.MergedRun`: a reconstituted
:class:`~repro.heatmap.store.HeatStore`, one globally ordered driver
event stream, allocation-site provenance, and recomputed aggregate
counters -- everything the existing ``repro-report`` and ``repro-why``
renderers consume, unchanged.

The algebra:

* **Heat is additive.**  Allocations unify on ``(label, base, serial)``
  with geometry (size/words/buckets) required to agree; epoch matrices
  and per-site bucket vectors for the same epoch number sum
  element-wise; epochs order by number.
* **Events are a deterministic interleave.**  When the shards' event id
  sets are pairwise disjoint they share one recording sequence (a
  time-sharded split of a single run) and the merge orders by id,
  *preserving* the original ids -- a split-and-remerge round-trips
  byte-identically.  Overlapping ids mean independent processes: events
  order by ``(time, shard, arrival)``, ids are rebased onto one fresh
  sequence, and every ``cause.parent`` link is remapped through the same
  table so causal blame survives the merge.
* **Counters recompute from the merged events** (the spiller streams
  every event exactly once), so counts never double- or under-count no
  matter how the segments were distributed.

Truncated segments -- a shard that crashed mid-write -- are skipped with
a warning (strict mode raises) and never corrupt the surviving data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from .. import __version__
from ..heatmap.store import AllocationHeat, HeatStore
from ..telemetry.events_jsonl import SCHEMA_VERSION

from .segments import STREAM_VERSION, iter_shard_records, load_manifest
from .spill import decode_heat_epoch

__all__ = ["MergedRun", "merge_shards"]

#: ``EventLog.summary()``-shaped keys recomputed from merged events.
_SUMMARY_ZERO = {
    "fault_groups": 0, "migrated_pages": 0, "duplicated_pages": 0,
    "invalidations": 0, "evicted_pages": 0, "transfer_bytes": 0,
    "remote_accesses": 0, "memory_time": 0.0,
}


class MergedRun:
    """The result of merging shard streams (see :func:`merge_shards`)."""

    def __init__(self) -> None:
        self.workload = ""
        self.platform = ""
        self.shards: list[str] = []
        self.store = HeatStore(attribute=False)
        self.events: list[dict[str, Any]] = []
        self.allocs: list[dict[str, Any]] = []
        self.sampling: dict[str, Any] | None = None
        self.summary: dict[str, float] = dict(_SUMMARY_ZERO)
        self.events_dropped = 0
        self.warnings: list[str] = []
        self.ids_rebased = False

    # ------------------------------------------------------------------ #
    # derived views

    def causes_report(self) -> dict[str, Any]:
        """Causal blame rollup over the merged event stream."""
        from ..causes.graph import CausalGraph

        records: list[Mapping[str, Any]] = list(self.allocs)
        records.extend(self.events)
        return CausalGraph.from_records(records).report(
            workload=self.workload, platform=self.platform)

    def metrics_snapshot(self) -> dict[str, dict[str, float]]:
        """A recorder-shaped metrics snapshot rebuilt from the merge."""
        return self._registry().snapshot()

    def _registry(self):
        from ..telemetry.metrics import MetricsRegistry

        reg = MetricsRegistry("xplacer_")
        s = self.summary
        reg.counter("page_fault_groups_total",
                    "fault groups serviced").inc(s["fault_groups"])
        reg.counter("migrated_pages_total",
                    "pages migrated on demand or by prefetch"
                    ).inc(s["migrated_pages"])
        reg.counter("evicted_pages_total",
                    "pages evicted to host for capacity"
                    ).inc(s["evicted_pages"])
        reg.counter("transfer_bytes_total", "explicit cudaMemcpy bytes"
                    ).inc(s["transfer_bytes"])
        reg.counter("duplicated_pages_total", "read-mostly copies created"
                    ).inc(s["duplicated_pages"])
        reg.counter("invalidated_pages_total",
                    "duplicated copies dropped on write"
                    ).inc(s["invalidations"])
        counter = reg.counter("driver_events_total", "driver events by kind")
        by_kind: dict[tuple[str, str], int] = {}
        for ev in self.events:
            key = (ev["kind"], ev.get("proc", ""))
            by_kind[key] = by_kind.get(key, 0) + 1
        for (kind, proc), n in sorted(by_kind.items()):
            counter.inc(n, kind=kind, proc=proc)
        reg.counter("repro_events_dropped_total",
                    "driver events lost from retention (not spilled)",
                    absolute=True).inc(self.events_dropped)
        reg.gauge("merged_shards", "shard directories merged into this run"
                  ).set(len(self.shards))
        return reg

    # ------------------------------------------------------------------ #
    # artifact output

    def manifest(self) -> dict[str, Any]:
        """Stream-manifest-shaped summary of the merged run."""
        rollup: dict[str, Any] = {
            "summary": dict(self.summary),
            "events_dropped": self.events_dropped,
            "events": len(self.events),
            "epochs_closed": len(self.store.epochs_closed),
        }
        if self.sampling:
            rollup["sampling"] = dict(self.sampling)
        return {
            "type": "stream_manifest",
            "stream_version": STREAM_VERSION,
            "shard": "merged",
            "merged_from": list(self.shards),
            "ids_rebased": self.ids_rebased,
            "workload": self.workload,
            "platform": self.platform,
            "config": {},
            "seq": 0,
            "complete": True,
            "segments": [],
            "rollup": rollup,
            "warnings": list(self.warnings),
        }

    def signature(self):
        """Access-pattern signature of the merged heat (with phases).

        Heat merges by element-wise integer sum, so a K-shard merge signs
        byte-identically to the unsharded run it was split from -- the
        property the signature index relies on to recognize resharded
        reruns of a known pattern.
        """
        from ..signature import signature_from_store

        return signature_from_store(self.store, workload=self.workload,
                                    platform=self.platform)

    def write(self, out_dir: str | Path, *, report: bool = True,
              why: bool = True) -> dict[str, Path]:
        """Write the merged run directory.

        Always: ``manifest.json``, ``events.jsonl`` (manifest-led, schema
        v2 -- directly consumable by ``repro-why``), ``heat.csv``,
        ``heat.npz``, ``metrics.prom``, ``signature.json`` (the run's
        access-pattern signature + detected phases, ready for
        ``repro-sig compare/match``).  With ``why``: ``causes.json``.
        With ``report``: ``report.html`` through the standard renderer.
        """
        from .segments import write_manifest

        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        paths: dict[str, Path] = {}
        paths["manifest"] = write_manifest(out, self.manifest())

        stream_manifest = {
            "type": "manifest", "schema_version": SCHEMA_VERSION,
            "package": "repro", "version": __version__,
            "workload": self.workload,
            "config": {"merged_from": list(self.shards),
                       "ids_rebased": self.ids_rebased},
            "platform": {"name": self.platform},
        }
        events_path = out / "events.jsonl"
        with events_path.open("w", encoding="utf-8") as fh:
            for record in ([stream_manifest] + self.allocs + self.events):
                fh.write(json.dumps(record) + "\n")
        paths["events"] = events_path

        csv_path = out / "heat.csv"
        csv_path.write_text(self.store.to_csv())
        paths["heat_csv"] = csv_path
        paths["heat_npz"] = self.store.to_npz(out / "heat.npz")

        metrics_path = out / "metrics.prom"
        metrics_path.write_text(self._registry().to_prometheus())
        paths["metrics"] = metrics_path

        sig = self.signature()
        paths["signature"] = sig.save(out / "signature.json")

        causes = None
        if why:
            causes = self.causes_report()
            causes_path = out / "causes.json"
            causes_path.write_text(
                json.dumps(causes, indent=2, sort_keys=False) + "\n")
            paths["causes"] = causes_path

        if report:
            from ..heatmap.html import build_report

            html = build_report(
                workload=self.workload, platform=self.platform,
                store=self.store, metrics=self.metrics_snapshot(),
                causes=causes,
                stream={"merged_from": list(self.shards),
                        "events_dropped": self.events_dropped,
                        "warnings": list(self.warnings)},
                sampling=self.sampling,
                phases=sig.phases,
                artifacts=("events.jsonl", "heat.csv", "heat.npz",
                           "metrics.prom", "causes.json",
                           "signature.json"))
            report_path = out / "report.html"
            report_path.write_text(html)
            paths["report"] = report_path
        return paths


def merge_shards(shard_dirs, *, strict: bool = False,
                 on_warning: Callable[[str], None] | None = None) -> MergedRun:
    """Merge N shard stream directories into one :class:`MergedRun`.

    Deterministic: the result is a pure function of the shard contents,
    independent of the order ``shard_dirs`` was given in.
    """
    merged = MergedRun()

    def warn(message: str) -> None:
        merged.warnings.append(message)
        if on_warning is not None:
            on_warning(message)

    # Deterministic shard order: manifest shard id, then path.
    loaded: list[tuple[str, Path, dict]] = []
    for d in shard_dirs:
        path = Path(d)
        manifest = load_manifest(path)
        loaded.append((str(manifest.get("shard", path.name)), path, manifest))
    loaded.sort(key=lambda item: (item[0], str(item[1])))

    heat_meta: dict[tuple[str, int, int], dict] = {}
    heat_epochs: dict[tuple[str, int, int], dict[int, Any]] = {}
    epoch_markers: set[int] = set()
    alloc_records: dict[tuple[str, int], dict] = {}
    shard_events: list[list[dict]] = []
    samplings: list[dict] = []
    heat_records_total = 0

    for shard_name, path, manifest in loaded:
        merged.shards.append(shard_name)
        if not manifest.get("complete", False):
            warn(f"shard {shard_name} ({path}) is not marked complete; "
                 "merging what it wrote")
        if manifest.get("workload"):
            if merged.workload and merged.workload != manifest["workload"]:
                warn(f"shard {shard_name} workload {manifest['workload']!r} "
                     f"!= {merged.workload!r}")
            merged.workload = merged.workload or manifest["workload"]
        if manifest.get("platform"):
            if merged.platform and merged.platform != manifest["platform"]:
                warn(f"shard {shard_name} platform {manifest['platform']!r} "
                     f"!= {merged.platform!r}")
            merged.platform = merged.platform or manifest["platform"]
        rollup = manifest.get("rollup", {})
        merged.events_dropped += int(rollup.get("events_dropped", 0))
        heat_records_total += int(rollup.get("heat_records", 0))

        events: list[dict] = []
        for rec in iter_shard_records(path, strict=strict, warn=warn):
            rtype = rec.get("type")
            if rtype == "alloc_meta":
                key = (rec["label"], int(rec["base"]), int(rec["serial"]))
                known = heat_meta.get(key)
                if known is None:
                    heat_meta[key] = rec
                elif (known["size"] != rec["size"]
                      or known["nbuckets"] != rec["nbuckets"]):
                    warn(f"allocation {key[0]!r} geometry disagrees across "
                         f"shards ({known['size']}B/{known['nbuckets']}b vs "
                         f"{rec['size']}B/{rec['nbuckets']}b); keeping first")
            elif rtype == "heat_epoch":
                key = (rec["label"], int(rec["base"]), int(rec["serial"]))
                per_epoch = heat_epochs.setdefault(key, {})
                epoch = int(rec["epoch"])
                if epoch in per_epoch:
                    _add_heat(per_epoch[epoch], rec)
                else:
                    per_epoch[epoch] = {"counts": rec["counts"],
                                        "sites": list(rec.get("sites", ()))}
            elif rtype == "driver_event":
                events.append(rec)
            elif rtype == "alloc":
                alloc_records.setdefault(
                    (rec.get("label", ""), int(rec.get("base", 0))), rec)
            elif rtype == "epoch":
                epoch_markers.add(int(rec["epoch"]))
            elif rtype == "sampling":
                samplings.append(
                    {k: v for k, v in rec.items() if k != "type"})
        shard_events.append(events)

    _merge_events(merged, shard_events, warn)
    _merge_heat(merged, heat_meta, heat_epochs, epoch_markers, warn)
    merged.store.records = heat_records_total
    merged.allocs = [alloc_records[k] for k in sorted(alloc_records)]
    _merge_sampling(merged, samplings, warn)
    _recount(merged)
    return merged


def _add_heat(into: dict, rec: Mapping[str, Any]) -> None:
    """Element-wise sum of one heat_epoch record into an accumulator."""
    a = np.asarray(into["counts"], np.int64)
    b = np.asarray(rec["counts"], np.int64)
    into["counts"] = (a + b).tolist()
    sites: dict[tuple[str, int, str], np.ndarray] = {
        (f, int(l), fn): np.asarray(vec, np.int64)
        for f, l, fn, vec in into["sites"]}
    for f, l, fn, vec in rec.get("sites", ()):
        key = (f, int(l), fn)
        add = np.asarray(vec, np.int64)
        sites[key] = sites[key] + add if key in sites else add
    into["sites"] = [[f, l, fn, vec.tolist()]
                     for (f, l, fn), vec in sorted(sites.items())]


def _merge_heat(merged: MergedRun, heat_meta, heat_epochs, epoch_markers,
                warn) -> None:
    for key in sorted(heat_epochs):
        meta = heat_meta.get(key)
        if meta is None:
            warn(f"heat for {key[0]!r} has no alloc_meta in any shard; "
                 "skipping the allocation")
            continue
        heat = AllocationHeat.from_meta(
            meta["label"], int(meta["base"]), int(meta["serial"]),
            int(meta["size"]), nbuckets=int(meta["nbuckets"]))
        for epoch in sorted(heat_epochs[key]):
            acc = heat_epochs[key][epoch]
            rec = {"epoch": epoch, "counts": acc["counts"],
                   "sites": acc["sites"]}
            heat.epochs.append(decode_heat_epoch(rec, heat.nbuckets))
        merged.store.adopt(heat)
    merged.store.epochs_closed = sorted(epoch_markers)


def _merge_events(merged: MergedRun, shard_events: list[list[dict]],
                  warn) -> None:
    non_empty = [events for events in shard_events if events]
    if not non_empty:
        return
    seen: set[int] = set()
    disjoint = True
    for events in non_empty:
        ids = {int(ev.get("id", -1)) for ev in events}
        if ids & seen:
            disjoint = False
            break
        seen |= ids
    if disjoint and len(non_empty) > 1:
        # One recording sequence sliced across shards: id order IS the
        # original program order, and ids survive the round-trip.
        merged.events = sorted(
            (ev for events in non_empty for ev in events),
            key=lambda ev: int(ev.get("id", -1)))
        return
    if len(non_empty) == 1:
        merged.events = list(non_empty[0])
        return
    # Independent recording sequences: rebase onto one fresh id space.
    merged.ids_rebased = True
    warn("shard event ids overlap (independent runs); rebasing ids and "
         "cause links onto one merged sequence")
    tagged = []
    for shard_idx, events in enumerate(shard_events):
        for arrival, ev in enumerate(events):
            tagged.append((float(ev.get("t", 0.0)), shard_idx, arrival, ev))
    tagged.sort(key=lambda item: item[:3])
    remap: dict[tuple[int, int], int] = {}
    for new_id, (_, shard_idx, _, ev) in enumerate(tagged):
        remap[(shard_idx, int(ev.get("id", -1)))] = new_id
    out = []
    for new_id, (_, shard_idx, _, ev) in enumerate(tagged):
        ev = dict(ev)
        ev["id"] = new_id
        cause = ev.get("cause")
        if cause is not None:
            cause = dict(cause)
            parent = int(cause.get("parent", -1))
            if parent >= 0:
                cause["parent"] = remap.get((shard_idx, parent), -1)
            ev["cause"] = cause
        out.append(ev)
    merged.events = out


def _merge_sampling(merged: MergedRun, samplings: list[dict], warn) -> None:
    if not samplings:
        return
    distinct = {json.dumps(s, sort_keys=True) for s in samplings}
    if len(distinct) > 1:
        warn("shards used different sampling strides; reporting the "
             "coarsest (fidelity is bounded by the worst shard)")
        samplings.sort(key=lambda s: -int(s.get("sample", 1)))
    merged.sampling = samplings[0]


def _recount(merged: MergedRun) -> None:
    """Recompute ``EventLog.summary()``-shaped counters from the events."""
    s = dict(_SUMMARY_ZERO)
    for ev in merged.events:
        kind = ev.get("kind")
        pages = int(ev.get("pages", 0))
        s["memory_time"] += float(ev.get("cost", 0.0))
        if kind == "page_fault":
            s["fault_groups"] += 1
        elif kind == "migration":
            s["migrated_pages"] += pages
        elif kind == "duplication":
            s["duplicated_pages"] += pages
        elif kind == "invalidation":
            s["invalidations"] += 1
        elif kind == "eviction":
            s["evicted_pages"] += pages
        elif kind == "transfer":
            s["transfer_bytes"] += int(ev.get("bytes", 0))
        elif kind == "remote_access":
            s["remote_accesses"] += 1
    s["memory_time"] = round(s["memory_time"], 12)
    merged.summary = s

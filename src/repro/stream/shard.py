"""Streaming runs and time-shard splitting.

:func:`run_streaming` is the producer side of the spill-and-merge story:
one workload executed with a :class:`~repro.stream.spill.SpillingHeatStore`
and a ring-retained event log whose evictions land in an on-disk stream
directory instead of being dropped.  Memory stays bounded by the ring
capacity + one pending segment, no matter how long the run.

:func:`split_stream` redistributes a finished stream's segments
round-robin into K shard directories -- the controlled way to exercise
the merge algebra (and the golden tests' ground truth): because the
shards carry disjoint slices of one recording sequence,
:func:`~repro.stream.merge.merge_shards` must reproduce the unsharded
run exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from .segments import SegmentWriter, load_manifest, read_segment, segment_files
from .spill import SpillingHeatStore, StreamSpiller

__all__ = ["run_streaming", "split_stream"]

#: Record types every split shard needs a copy of to be self-contained
#: (geometry + provenance headers; the merge dedupes them).
_HEADER_TYPES = ("alloc_meta", "alloc", "sampling")


def run_streaming(
    workload: str,
    platform: str,
    out_dir: str | Path,
    *,
    shard: str = "shard-0",
    buckets: int = 64,
    attribute: bool = True,
    materialize: bool = True,
    why: bool = True,
    sample: int | str | None = None,
    phases: bool = True,
    log_capacity: int = 512,
    watermark_events: int = 16384,
) -> dict[str, Any]:
    """Run ``workload`` in streaming mode, writing one shard directory.

    :param shard: shard identity (must be unique across the directories
        that will later be merged together).
    :param why: record causal provenance so the merged run can feed
        ``repro-why`` (cause blocks on every driver event).
    :param sample: shadow-sampling stride passed to the tracer (an int,
        or ``"auto"`` for signature-guided adaptive sampling).
    :param phases: track access-pattern phases live and mark
        ``phase_begin``/``phase_end`` events in the stream (the manifest
        rollup carries the current phase for ``repro-top``).
    :param log_capacity: event-log ring size; evictions beyond it spill
        to disk (this is the memory watermark on the event side).
    :param watermark_events: spilled events that force a segment flush
        between epoch boundaries.

    Returns ``{"manifest": final stream manifest, "run": WorkloadRun,
    "sim_time": float}``.
    """
    from ..heatmap.cli import REPORT_RUNNERS
    from ..telemetry.cli import PLATFORM_ALIASES, WORKLOADS
    from ..workloads.base import make_session

    preset = PLATFORM_ALIASES.get(platform, platform)
    runner = REPORT_RUNNERS.get(workload, WORKLOADS[workload])

    heat = SpillingHeatStore(nbuckets=buckets, attribute=attribute)
    spiller = StreamSpiller(
        out_dir, shard=shard, workload=workload, platform=preset,
        config={"buckets": buckets, "materialize": materialize,
                "causes": why, "log_capacity": log_capacity,
                "sample": sample or 1},
        watermark_events=watermark_events)
    session = make_session(preset, trace=True, materialize=materialize,
                           sample=sample)
    if why:
        session.platform.um.track_causes = True
    session.platform.events.configure_retention(capacity=log_capacity,
                                                ring=True)
    tracker = None
    if phases:
        from ..signature.tracker import PhaseTracker

        # Attached before the spiller so each epoch's phase marker is
        # recorded before the spiller flushes that epoch's segment.
        tracker = PhaseTracker(
            log=session.platform.events,
            clock=lambda: session.platform.clock.now,
        ).attach(session.tracer, heat)
    spiller.attach(session, heat=heat)
    spiller.phase_source = tracker
    try:
        run = runner(session)
    finally:
        if tracker is not None:
            tracker.finish()  # phase_end lands before the final drain
        manifest = spiller.close()
    return {"manifest": manifest, "run": run,
            "sim_time": session.platform.clock.now}


def split_stream(src_dir: str | Path, out_base: str | Path,
                 k: int) -> list[Path]:
    """Split one complete stream into ``k`` round-robin shard directories.

    Segment ``i`` of the source lands in shard ``i % k``; the source's
    header records (``alloc_meta`` / ``alloc`` / ``sampling``, deduped)
    are prepended to each shard's first segment so every shard is
    self-contained.  The source's drop count is carried by shard 0 only
    (it is a property of the run, not of a slice).

    Returns the shard directory paths, in shard order.
    """
    if k < 1:
        raise ValueError(f"cannot split into {k} shards")
    src = Path(src_dir)
    manifest = load_manifest(src)
    rollup: Mapping[str, Any] = manifest.get("rollup", {})
    paths = segment_files(src)

    headers: list[dict[str, Any]] = []
    seen: set[str] = set()
    per_segment: list[list[dict[str, Any]]] = []
    for path in paths:
        records = read_segment(path)  # strict: the source must be complete
        per_segment.append(records)
        for rec in records:
            if rec.get("type") in _HEADER_TYPES:
                key = json.dumps(rec, sort_keys=True)
                if key not in seen:
                    seen.add(key)
                    headers.append(rec)

    out_base = Path(out_base)
    shard_dirs: list[Path] = []
    writers: list[SegmentWriter] = []
    counts = [{"events": 0, "heat": 0, "segments": 0} for _ in range(k)]
    for j in range(k):
        shard_dir = out_base / f"shard-{j}"
        shard_dirs.append(shard_dir)
        writers.append(SegmentWriter(
            shard_dir, shard=f"{manifest.get('shard', 'shard')}.{j}",
            workload=manifest.get("workload", ""),
            platform=manifest.get("platform", ""),
            config=dict(manifest.get("config", {}),
                        split_from=str(src), split_k=k)))
    first_written = [False] * k
    for i, records in enumerate(per_segment):
        j = i % k
        if not first_written[j]:
            first_written[j] = True
            extra = [h for h in headers if h not in records]
            records = extra + records
        writers[j].write_segment(records)
        counts[j]["segments"] += 1
        counts[j]["events"] += sum(
            1 for r in records if r.get("type") == "driver_event")
        counts[j]["heat"] += sum(
            1 for r in records if r.get("type") == "heat_epoch")
    for j, writer in enumerate(writers):
        if not first_written[j]:
            # More shards than segments: the shard still gets the headers.
            writer.write_segment(list(headers))
        shard_rollup: dict[str, Any] = {
            "events_spilled": counts[j]["events"],
            "heat_epochs_spilled": counts[j]["heat"],
            "segments": len(writer.segments),
            "events_dropped": int(rollup.get("events_dropped", 0))
            if j == 0 else 0,
            "heat_records": int(rollup.get("heat_records", 0))
            if j == 0 else 0,
        }
        if j == 0:
            # Whole-run properties live on one shard only (display-side;
            # the merge recomputes counters from the events themselves).
            for key in ("summary", "sim_time", "gpu_pages_in_use",
                        "epochs_closed", "phase"):
                if key in rollup:
                    shard_rollup[key] = rollup[key]
        if "sampling" in rollup:
            shard_rollup["sampling"] = dict(rollup["sampling"])
        writer.finalize(shard_rollup)
    return shard_dirs

"""Streaming observability: spill-and-merge trace stores.

The in-memory observability stores (:class:`~repro.heatmap.store.HeatStore`,
:class:`~repro.memsim.EventLog`) bound a run's footprint by *forgetting*;
this package bounds it by *spilling*: epoch-framed on-disk segments with
a versioned, atomically updated manifest per shard
(:mod:`~repro.stream.segments`), producers that turn ring eviction into
evict-to-disk (:mod:`~repro.stream.spill`), a deterministic merge algebra
recombining N shard directories into one run (:mod:`~repro.stream.merge`,
the ``repro-agg`` CLI), and a live terminal monitor tailing the manifests
(:mod:`~repro.stream.top`, ``repro-top``).
"""

from .merge import MergedRun, merge_shards
from .segments import (
    STREAM_VERSION,
    IncompatibleStreamError,
    SegmentWriter,
    TruncatedSegmentError,
    iter_shard_records,
    load_manifest,
    read_segment,
    segment_files,
    write_manifest,
)
from .shard import run_streaming, split_stream
from .spill import SpillingHeatStore, StreamSpiller

__all__ = [
    "STREAM_VERSION",
    "IncompatibleStreamError",
    "MergedRun",
    "SegmentWriter",
    "SpillingHeatStore",
    "StreamSpiller",
    "TruncatedSegmentError",
    "iter_shard_records",
    "load_manifest",
    "merge_shards",
    "read_segment",
    "run_streaming",
    "segment_files",
    "split_stream",
    "write_manifest",
]

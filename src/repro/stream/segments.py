"""On-disk epoch segments with a versioned, atomically updated manifest.

A **stream directory** is the durable form of one shard of a running
simulation::

    <dir>/
      manifest.json           # rewritten atomically after every segment
      segments/seg-00000.jsonl
      segments/seg-00001.jsonl
      ...

Each segment is a JSONL file framed for crash detection: the first line
is a ``segment_header`` record, the last a ``segment_trailer`` carrying
the payload record count and a CRC-32 over every preceding byte.  A file
whose trailer is missing or does not verify is *truncated* -- the writer
died mid-segment -- and readers skip it with a warning instead of
corrupting a merge.

Payload record types (all also JSON, one per line):

* ``alloc_meta`` -- geometry of one traced allocation (label, base,
  serial, size, words, buckets); written once per shard before any of
  its heat.
* ``heat_epoch`` -- one allocation's frozen epoch heat: the ``(4,
  nbuckets)`` channel counts plus per-site bucket vectors.
* ``driver_event`` -- one UM-driver event, same shape as the telemetry
  JSONL stream (:func:`repro.telemetry.events_jsonl.encode_driver_event`)
  so causal tooling reads both unchanged.
* ``alloc`` -- allocation-site provenance passthrough (feeds the causal
  blame tables).
* ``sampling`` -- the tracer's sampling stride and estimated fidelity.

The manifest is the tail-able summary: ``repro-top`` watches it for new
segments and rollup counters; ``repro-agg`` uses it for identity and
completeness.  It is always written to a temp file and renamed into
place, so a reader never observes a half-written manifest.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

__all__ = [
    "STREAM_VERSION",
    "SEGMENT_DIR",
    "MANIFEST_NAME",
    "TruncatedSegmentError",
    "IncompatibleStreamError",
    "SegmentWriter",
    "read_segment",
    "iter_shard_records",
    "load_manifest",
    "write_manifest",
    "segment_files",
]

#: Bumped whenever the segment/manifest shapes change incompatibly.
STREAM_VERSION = 1

SEGMENT_DIR = "segments"
MANIFEST_NAME = "manifest.json"


class TruncatedSegmentError(RuntimeError):
    """A segment file is incomplete (missing/failed trailer): crashed write."""


class IncompatibleStreamError(RuntimeError):
    """A stream directory's version cannot be read by this build."""


def _dumps(record: Mapping[str, Any]) -> str:
    # Compact separators keep segments small; sort_keys keeps them
    # byte-deterministic for a given record sequence.
    return json.dumps(record, separators=(",", ":"), sort_keys=True)


def write_manifest(dir_path: str | Path, manifest: Mapping[str, Any]) -> Path:
    """Atomically (re)write ``manifest.json`` in ``dir_path``."""
    dir_path = Path(dir_path)
    dir_path.mkdir(parents=True, exist_ok=True)
    target = dir_path / MANIFEST_NAME
    tmp = dir_path / (MANIFEST_NAME + ".tmp")
    tmp.write_text(json.dumps(manifest, indent=1, sort_keys=True) + "\n",
                   encoding="utf-8")
    os.replace(tmp, target)
    return target


def load_manifest(dir_path: str | Path) -> dict[str, Any]:
    """Load and version-check a stream directory's manifest."""
    path = Path(dir_path) / MANIFEST_NAME
    if not path.exists():
        raise FileNotFoundError(f"{dir_path} has no {MANIFEST_NAME} "
                                "(not a stream directory?)")
    manifest = json.loads(path.read_text(encoding="utf-8"))
    version = manifest.get("stream_version")
    if not isinstance(version, int) or version < 1 or version > STREAM_VERSION:
        raise IncompatibleStreamError(
            f"{path}: stream_version {version!r} is outside the supported "
            f"range [1, {STREAM_VERSION}]")
    return manifest


def segment_files(dir_path: str | Path) -> list[Path]:
    """Segment files actually on disk, in write order.

    Globbed rather than read from the manifest: a crash can leave a
    final, truncated segment that never made it into the manifest, and
    readers must still *detect* it (and warn) rather than silently skip.
    """
    seg_dir = Path(dir_path) / SEGMENT_DIR
    if not seg_dir.is_dir():
        return []
    return sorted(p for p in seg_dir.iterdir()
                  if p.name.startswith("seg-") and p.suffix == ".jsonl")


class SegmentWriter:
    """Appends framed segments to a stream directory, manifest in step.

    :param out_dir: stream directory (created if missing).
    :param shard: shard identity recorded in headers and the manifest.
    :param workload: workload name for the manifest.
    :param platform: platform preset name for the manifest.
    :param config: free-form run configuration block.
    """

    def __init__(self, out_dir: str | Path, *, shard: str = "shard-0",
                 workload: str = "", platform: str = "",
                 config: Mapping[str, Any] | None = None) -> None:
        self.dir = Path(out_dir)
        self.shard = shard
        self.workload = workload
        self.platform = platform
        self.config = dict(config or {})
        self.segments: list[dict[str, Any]] = []
        self.rollup: dict[str, Any] = {}
        self.complete = False
        (self.dir / SEGMENT_DIR).mkdir(parents=True, exist_ok=True)
        self._sync_manifest()

    # ------------------------------------------------------------------ #
    # writing

    def write_segment(self, records: list[Mapping[str, Any]], *,
                      rollup: Mapping[str, Any] | None = None) -> Path:
        """Write one framed segment and fold it into the manifest.

        :param records: payload records (each needs a ``type`` field).
        :param rollup: live run summary to publish in the manifest
            (counters, residency, epoch cursor) for tailing monitors.
        """
        index = len(self.segments)
        name = f"seg-{index:05d}.jsonl"
        path = self.dir / SEGMENT_DIR / name
        header = {"type": "segment_header", "segment": index,
                  "shard": self.shard, "stream_version": STREAM_VERSION}
        lines = [_dumps(header)]
        epochs: list[int] = []
        n_events = n_heat = 0
        for rec in records:
            rtype = rec.get("type")
            if rtype is None:
                raise ValueError("every segment record needs a 'type' field")
            if rtype == "heat_epoch":
                n_heat += 1
                epochs.append(int(rec["epoch"]))
            elif rtype == "driver_event":
                n_events += 1
            lines.append(_dumps(rec))
        payload = "".join(line + "\n" for line in lines)
        trailer = {"type": "segment_trailer", "records": len(records),
                   "crc32": zlib.crc32(payload.encode("utf-8"))}
        path.write_text(payload + _dumps(trailer) + "\n", encoding="utf-8")
        entry = {"file": f"{SEGMENT_DIR}/{name}", "records": len(records),
                 "events": n_events, "heat_epochs": n_heat}
        if epochs:
            entry["epoch_lo"] = min(epochs)
            entry["epoch_hi"] = max(epochs)
        self.segments.append(entry)
        if rollup is not None:
            self.rollup = dict(rollup)
        self._sync_manifest()
        return path

    def publish_rollup(self, rollup: Mapping[str, Any]) -> Path:
        """Update the manifest rollup without writing a segment."""
        self.rollup = dict(rollup)
        return self._sync_manifest()

    def finalize(self, rollup: Mapping[str, Any] | None = None) -> Path:
        """Mark the stream complete (no more segments will follow)."""
        if rollup is not None:
            self.rollup = dict(rollup)
        self.complete = True
        return self._sync_manifest()

    def _sync_manifest(self) -> Path:
        return write_manifest(self.dir, self.manifest())

    def manifest(self) -> dict[str, Any]:
        """The manifest dict as it would be written right now."""
        return {
            "type": "stream_manifest",
            "stream_version": STREAM_VERSION,
            "shard": self.shard,
            "workload": self.workload,
            "platform": self.platform,
            "config": self.config,
            "seq": len(self.segments),
            "complete": self.complete,
            "segments": list(self.segments),
            "rollup": dict(self.rollup),
        }


# ---------------------------------------------------------------------- #
# reading

def read_segment(path: str | Path) -> list[dict[str, Any]]:
    """Parse one segment's payload records, verifying the frame.

    Raises :class:`TruncatedSegmentError` when the trailer is missing,
    the CRC does not match, or the record count disagrees -- the three
    signatures of a writer that died mid-segment.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if not text.endswith("\n"):
        raise TruncatedSegmentError(f"{path}: unterminated final line")
    lines = text.splitlines()
    if len(lines) < 2:
        raise TruncatedSegmentError(f"{path}: no trailer record")
    try:
        trailer = json.loads(lines[-1])
    except ValueError as exc:
        raise TruncatedSegmentError(f"{path}: unparseable trailer: {exc}")
    if trailer.get("type") != "segment_trailer":
        raise TruncatedSegmentError(f"{path}: last record is not a trailer")
    payload = "".join(line + "\n" for line in lines[:-1])
    crc = zlib.crc32(payload.encode("utf-8"))
    if crc != trailer.get("crc32"):
        raise TruncatedSegmentError(
            f"{path}: checksum mismatch (crc32 {crc} != recorded "
            f"{trailer.get('crc32')})")
    try:
        records = [json.loads(line) for line in lines[1:-1]]
    except ValueError as exc:
        raise TruncatedSegmentError(f"{path}: corrupt payload record: {exc}")
    header = json.loads(lines[0]) if lines else {}
    if header.get("type") != "segment_header":
        raise TruncatedSegmentError(f"{path}: missing segment header")
    if len(records) != trailer.get("records"):
        raise TruncatedSegmentError(
            f"{path}: {len(records)} payload records != trailer count "
            f"{trailer.get('records')}")
    return records


def iter_shard_records(
    dir_path: str | Path, *,
    strict: bool = False,
    warn: Callable[[str], None] | None = None,
) -> Iterator[dict[str, Any]]:
    """Yield every payload record of a shard directory, in segment order.

    Truncated segments (crashed writes) raise in ``strict`` mode;
    otherwise they are skipped after calling ``warn`` with a message, so
    a merge survives a shard that died mid-run with only the final
    partial segment lost.
    """
    for path in segment_files(dir_path):
        try:
            records = read_segment(path)
        except TruncatedSegmentError as exc:
            if strict:
                raise
            if warn is not None:
                warn(f"skipping truncated segment: {exc}")
            continue
        yield from records

"""Shadow-memory bit flags (paper Fig 3 and §III-C).

XPlacer stores **seven bits of information per 32-bit word** of traced
memory, in one shadow byte:

* which processors ever wrote the word this epoch (two bits),
* which processor wrote it *last* (one bit, and the only state that
  survives a diagnostic reset -- "the preceding write is the last write to
  that address regardless if it occurred in the same iteration or
  earlier"),
* four read bits classified by ``origin > reader``: ``C>C``, ``C>G``,
  ``G>C``, ``G>G``, where the origin is the processor that performed the
  preceding write.  A word never written counts as CPU-origin (allocations
  are initialized host-side).
"""

from __future__ import annotations

import numpy as np

from ..memsim import Processor

__all__ = [
    "WORD_SIZE",
    "CPU_WROTE",
    "GPU_WROTE",
    "LAST_WRITE_GPU",
    "READ_CC",
    "READ_CG",
    "READ_GC",
    "READ_GG",
    "ALL_READS",
    "EPOCH_MASK",
    "write_bit",
    "read_bit_for",
    "describe",
]

#: Bytes of traced memory covered by one shadow byte ("a character for
#: each allocated 32-bit word -- roughly a 25% memory overhead").
WORD_SIZE = 4

CPU_WROTE = np.uint8(1 << 0)
GPU_WROTE = np.uint8(1 << 1)
LAST_WRITE_GPU = np.uint8(1 << 2)
READ_CC = np.uint8(1 << 3)  #: CPU read a CPU-origin value
READ_CG = np.uint8(1 << 4)  #: GPU read a CPU-origin value
READ_GC = np.uint8(1 << 5)  #: CPU read a GPU-origin value
READ_GG = np.uint8(1 << 6)  #: GPU read a GPU-origin value

ALL_READS = np.uint8(READ_CC | READ_CG | READ_GC | READ_GG)

#: Bits cleared by a diagnostic reset: everything except the last-writer
#: bit, which must survive so later reads still know their value's origin.
EPOCH_MASK = np.uint8(CPU_WROTE | GPU_WROTE | ALL_READS)


def write_bit(proc: Processor) -> np.uint8:
    """The 'wrote this epoch' bit for ``proc``."""
    return CPU_WROTE if proc is Processor.CPU else GPU_WROTE


def read_bit_for(reader: Processor, origin_is_gpu: bool) -> np.uint8:
    """The read-classification bit for ``reader`` given the value origin."""
    if reader is Processor.CPU:
        return READ_GC if origin_is_gpu else READ_CC
    return READ_GG if origin_is_gpu else READ_CG


def describe(byte: int) -> str:
    """Human-readable decoding of one shadow byte (debugging aid)."""
    names = [
        (CPU_WROTE, "Cw"), (GPU_WROTE, "Gw"), (LAST_WRITE_GPU, "last=G"),
        (READ_CC, "C>C"), (READ_CG, "C>G"), (READ_GC, "G>C"), (READ_GG, "G>G"),
    ]
    parts = [n for bit, n in names if byte & int(bit)]
    return "|".join(parts) if parts else "untouched"

"""Textual and CSV renderings of diagnostic results.

:func:`format_text` reproduces the layout of the paper's Fig 4:

.. code-block:: text

    *** checking 50 named allocations
    dom
    write counts                    write>read counts
         C        G        C>C      C>G      G>C      G>G
        27        0        680        4        0        0
    access density (in %): 9
    18 elements with alternating accesses

:func:`format_csv` emits "raw comma-separated files for further
processing", the paper's second output form.
"""

from __future__ import annotations

import io

from .diagnostics import AllocationReport, DiagnosticResult

__all__ = ["format_text", "format_csv"]

_COLS = ("C", "G", "C>C", "C>G", "G>C", "G>G")


def _count_row(r: AllocationReport) -> tuple[int, int, int, int, int, int]:
    c = r.counts
    return (c.cpu_written, c.gpu_written, c.read_cc, c.read_cg, c.read_gc, c.read_gg)


def format_text(result: DiagnosticResult) -> str:
    """Fig 4-style report for every allocation in ``result``."""
    out = io.StringIO()
    out.write(f"*** checking {len(result.reports)} named allocations\n")
    for r in result.reports:
        name = r.name + (" (freed)" if r.freed else "")
        out.write(f"{name}\n")
        out.write("write counts                    write>read counts\n")
        out.write("".join(f"{c:>9}" for c in _COLS) + "\n")
        out.write("".join(f"{v:>9}" for v in _count_row(r)) + "\n")
        out.write(f"access density (in %): {r.density_pct}\n")
        out.write(f"{r.alternating} elements with alternating accesses\n")
        if r.hot_sites:
            sites = ", ".join(f"{label} x{n}" for label, n in r.hot_sites)
            out.write(f"hot sites: {sites}\n")
        out.write("\n")
    return out.getvalue()


def format_csv(result: DiagnosticResult) -> str:
    """One row per allocation: counters plus density and alternating."""
    out = io.StringIO()
    out.write("epoch,name,size,kind,freed,"
              "cpu_writes,gpu_writes,read_cc,read_cg,read_gc,read_gg,"
              "accessed_words,total_words,density_pct,alternating\n")
    for r in result.reports:
        c = r.counts
        out.write(
            f"{result.epoch},{r.name},{r.alloc.size},{r.alloc.kind.value},"
            f"{int(r.freed)},{c.cpu_written},{c.gpu_written},"
            f"{c.read_cc},{c.read_cg},{c.read_gc},{c.read_gg},"
            f"{c.accessed_words},{c.total_words},{r.density_pct},{r.alternating}\n"
        )
    return out.getvalue()

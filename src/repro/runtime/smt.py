"""The shadow memory table (SMT, paper Fig 3 and §IV-D).

A sorted table mapping address ranges to :class:`ShadowBlock` entries.
Per the paper's overhead discussion, lookup "uses linear search when the
number of allocations is less than 64, and binary search otherwise"; we
implement exactly that policy (and test both regimes).

Freed allocations keep their shadow parked in a graveyard "until the next
diagnostic output has been computed" -- so a buffer that is allocated,
used and freed between two diagnostics still shows up in the report
(LULESH's per-timestep temporaries depend on this).
"""

from __future__ import annotations

import bisect

from ..memsim import Allocation

from .shadow import ShadowBlock

__all__ = ["ShadowMemoryTable", "LINEAR_SEARCH_LIMIT"]

#: Below this many live entries the table scans linearly (paper §IV-D).
LINEAR_SEARCH_LIMIT = 64


class ShadowMemoryTable:
    """Sorted map from address ranges to shadow blocks."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._blocks: list[ShadowBlock] = []
        self.graveyard: list[ShadowBlock] = []
        self.lookups = 0
        self.linear_lookups = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def insert(self, alloc: Allocation, epoch: int = 0) -> ShadowBlock:
        """Register ``alloc`` and create its shadow block (an O(N) insert
        into the sorted array, as the paper notes)."""
        idx = bisect.bisect_right(self._starts, alloc.base)
        if idx > 0 and self._blocks[idx - 1].alloc.end > alloc.base:
            raise ValueError(f"allocation at {alloc.base:#x} overlaps an existing entry")
        self._starts.insert(idx, alloc.base)
        self._blocks.insert(idx, ShadowBlock(alloc, epoch))
        return self._blocks[idx]

    def remove(self, base: int, epoch: int) -> ShadowBlock | None:
        """Unlink the entry at ``base``; park its shadow in the graveyard."""
        idx = bisect.bisect_right(self._starts, base) - 1
        if idx < 0 or self._starts[idx] != base:
            return None
        block = self._blocks.pop(idx)
        self._starts.pop(idx)
        block.freed_epoch = epoch
        self.graveyard.append(block)
        return block

    def lookup(self, addr: int) -> ShadowBlock | None:
        """Find the block containing ``addr`` (``None`` = untracked, and
        the memory operation is ignored, per the paper)."""
        self.lookups += 1
        if len(self._blocks) < LINEAR_SEARCH_LIMIT:
            self.linear_lookups += 1
            for block in self._blocks:
                if block.alloc.base <= addr:
                    if addr < block.alloc.end:
                        return block
                else:
                    break  # sorted: no later entry can contain addr
            return None
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        block = self._blocks[idx]
        return block if addr < block.alloc.end else None

    def live_and_dead(self) -> list[ShadowBlock]:
        """All blocks a diagnostic should report: live + graveyard."""
        return list(self._blocks) + list(self.graveyard)

    def flush_graveyard(self) -> list[ShadowBlock]:
        """Drop parked shadows (called after each diagnostic)."""
        dead, self.graveyard = self.graveyard, []
        return dead

    def reset_all(self) -> None:
        """Epoch-reset every live shadow block."""
        for block in self._blocks:
            block.reset()

"""The diagnostic pass: ``tracePrint`` (paper §III-C/D and Fig 4).

Invoked wherever the user placed ``#pragma xpl diagnostic`` (Python
workloads just call :func:`trace_print`).  It walks the shadow memory
table (live blocks plus the graveyard of allocations freed since the last
diagnostic), extracts the Fig 4 counters for each named allocation, runs
the anti-pattern analyses, optionally snapshots access maps for figures,
then resets the epoch.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import IO, Sequence

from ..memsim import Allocation, MemoryKind

from .access_map import AccessMap
from .alloc_data import XplAllocData
from .shadow import AccessCounts, ShadowBlock
from .tracer import Tracer

__all__ = ["AllocationReport", "DiagnosticResult", "trace_print"]

#: Default low-access-density threshold (paper: "e.g., 50%").
DENSITY_THRESHOLD = 0.5


@dataclass(frozen=True)
class AllocationReport:
    """Per-allocation diagnostic record (one Fig 4 table block)."""

    name: str
    alloc: Allocation
    counts: AccessCounts
    alternating: int
    freed: bool
    maps: dict[str, AccessMap] = field(default_factory=dict)
    #: Top ``(site label, word-access count)`` pairs for this epoch, when
    #: the tracer carries a heat store (empty otherwise).
    hot_sites: tuple[tuple[str, int], ...] = ()

    @property
    def density_pct(self) -> int:
        """Access density in percent, floored like the paper's output."""
        return int(self.counts.density * 100)

    @property
    def touched(self) -> bool:
        """Whether anything accessed this allocation during the epoch."""
        return self.counts.accessed_words > 0


@dataclass
class DiagnosticResult:
    """Everything one diagnostic call produced."""

    epoch: int
    reports: list[AllocationReport]

    def __iter__(self):
        return iter(self.reports)

    def named(self, name: str) -> AllocationReport:
        """Report for allocation ``name`` (exact match)."""
        for r in self.reports:
            if r.name == name:
                return r
        raise KeyError(name)

    @property
    def total_alternating(self) -> int:
        """Sum of alternating-access words across allocations."""
        return sum(r.alternating for r in self.reports)


def _scale_counts(counts: AccessCounts, alternating: int,
                  sample: int) -> tuple[AccessCounts, int]:
    """Scale sampled counters back up (``Tracer(sample=N)`` estimates).

    Each recorded word stands for ~``sample`` words, so every counter is
    multiplied by the sampling factor and clamped to the block size.
    """
    total = counts.total_words
    scale = lambda n: min(total, n * sample)  # noqa: E731
    return AccessCounts(
        cpu_written=scale(counts.cpu_written),
        gpu_written=scale(counts.gpu_written),
        read_cc=scale(counts.read_cc),
        read_cg=scale(counts.read_cg),
        read_gc=scale(counts.read_gc),
        read_gg=scale(counts.read_gg),
        accessed_words=scale(counts.accessed_words),
        total_words=total,
    ), scale(alternating)


def _report_block(block: ShadowBlock, name: str, *, include_maps: bool,
                  heat=None, sample: int = 1) -> AllocationReport:
    maps: dict[str, AccessMap] = {}
    if include_maps:
        maps = {
            cat: AccessMap(name, cat, mask)
            for cat, mask in block.category_masks().items()
        }
    hot_sites: tuple[tuple[str, int], ...] = ()
    if heat is not None:
        alloc_heat = heat.peek(block.alloc)
        if alloc_heat is not None:
            hot_sites = tuple((site.label, n) for site, n
                              in alloc_heat.current_top_sites(3))
    counts = block.counts()
    alternating = block.alternating_words()
    if sample > 1:
        counts, alternating = _scale_counts(counts, alternating, sample)
    return AllocationReport(
        name=name,
        alloc=block.alloc,
        counts=counts,
        alternating=alternating,
        freed=block.freed_epoch is not None,
        maps=maps,
        hot_sites=hot_sites,
    )


def trace_print(
    tracer: Tracer,
    descriptors: Sequence[XplAllocData] | None = None,
    out: IO[str] | None = None,
    *,
    include_maps: bool = False,
    include_unnamed: bool = False,
    reset: bool = True,
) -> DiagnosticResult:
    """Analyze recorded accesses and (optionally) print a Fig 4-style report.

    :param descriptors: ``XplAllocData`` records naming allocations (from
        :func:`~repro.runtime.alloc_data.expand_object`); ``None`` reports
        every traced allocation under its label.
    :param out: stream for the textual report; ``None`` suppresses output
        (the structured :class:`DiagnosticResult` is always returned).
    :param include_maps: snapshot per-category access maps before reset.
    :param include_unnamed: with descriptors, also report allocations that
        no descriptor names.
    :param reset: close the epoch afterwards (paper behaviour).  Figures
        that need cumulative maps pass ``False``.
    """
    from .report import format_text  # local import to avoid a cycle

    tracer.flush_trace()  # apply any pending coalesced interval first
    blocks = tracer.smt.live_and_dead()
    by_base = {b.alloc.base: b for b in blocks}

    reports: list[AllocationReport] = []
    claimed: set[int] = set()
    if descriptors is not None:
        for desc in descriptors:
            block = by_base.get(desc.alloc.base if desc.alloc else desc.addr)
            if block is None:
                block = tracer.smt.lookup(desc.addr)
            if block is None:
                continue
            reports.append(_report_block(block, desc.name,
                                         include_maps=include_maps,
                                         heat=tracer.heat,
                                         sample=tracer.sample))
            claimed.add(block.alloc.base)
    if descriptors is None or include_unnamed:
        for block in blocks:
            if block.alloc.base in claimed:
                continue
            label = block.alloc.label or f"alloc@{block.alloc.base:#x}"
            reports.append(_report_block(block, label,
                                         include_maps=include_maps,
                                         heat=tracer.heat,
                                         sample=tracer.sample))

    result = DiagnosticResult(epoch=tracer.epoch, reports=reports)
    for hook in tuple(tracer.diagnostic_hooks):
        hook(result)
    if out is not None:
        out.write(format_text(result))
    if reset:
        tracer.advance_epoch()
    return result

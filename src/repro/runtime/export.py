"""Raw-data exports: CSV series and SVG access maps.

The paper: "XPlacer can produce output in the form of a textual summary
or in form of raw comma-separated files for further processing (e.g., to
produce a graphical output)."  This module provides both halves: CSV
exports of multi-epoch diagnostics, transfers and kernel launches, and a
dependency-free SVG renderer for access maps (the graphical form of the
paper's Figs 5, 7, 8 and 10).
"""

from __future__ import annotations

import io
from typing import Sequence

from .access_map import AccessMap
from .diagnostics import DiagnosticResult
from .tracer import Tracer

__all__ = [
    "epochs_to_csv",
    "transfers_to_csv",
    "kernels_to_csv",
    "access_maps_to_svg",
]


def epochs_to_csv(results: Sequence[DiagnosticResult]) -> str:
    """Multi-epoch diagnostic series, one row per (epoch, allocation)."""
    out = io.StringIO()
    out.write("epoch,name,size_bytes,kind,freed,"
              "cpu_writes,gpu_writes,read_cc,read_cg,read_gc,read_gg,"
              "accessed_words,total_words,density_pct,alternating\n")
    for result in results:
        for r in result.reports:
            c = r.counts
            out.write(
                f"{result.epoch},{r.name},{r.alloc.size},{r.alloc.kind.value},"
                f"{int(r.freed)},{c.cpu_written},{c.gpu_written},"
                f"{c.read_cc},{c.read_cg},{c.read_gc},{c.read_gg},"
                f"{c.accessed_words},{c.total_words},{r.density_pct},"
                f"{r.alternating}\n"
            )
    return out.getvalue()


def transfers_to_csv(tracer: Tracer) -> str:
    """Explicit-transfer log: one row per recorded ``cudaMemcpy`` leg."""
    out = io.StringIO()
    out.write("epoch,allocation,offset,bytes,direction\n")
    for t in tracer.transfers:
        out.write(f"{t.epoch},{t.alloc.label or hex(t.alloc.base)},"
                  f"{t.offset},{t.nbytes},{t.direction}\n")
    return out.getvalue()


def kernels_to_csv(tracer: Tracer) -> str:
    """Kernel-launch log: one row per launch."""
    out = io.StringIO()
    out.write("epoch,kernel,grid,block\n")
    for k in tracer.kernels:
        out.write(f"{k.epoch},{k.name},{k.grid},{k.block}\n")
    return out.getvalue()


#: Fill colours per map category (accessible, colour-blind-safe-ish).
_CATEGORY_COLORS = {
    "cpu_write": "#1f77b4",
    "gpu_write": "#d62728",
    "cpu_read": "#17becf",
    "gpu_read": "#ff7f0e",
    "gpu_read_cpu_origin": "#9467bd",
    "gpu_read_gpu_origin": "#8c564b",
    "cpu_read_gpu_origin": "#2ca02c",
    "accessed": "#444444",
}


def access_maps_to_svg(
    maps: Sequence[AccessMap],
    *,
    width: int = 64,
    cell: int = 6,
    gap: int = 24,
) -> str:
    """Render access maps as a standalone SVG document.

    Each map becomes a labelled grid panel (one cell per traced word,
    Fig 5/7/8/10 style); untouched words are light grey.

    :param width: words per grid row.
    :param cell: cell edge in pixels.
    :param gap: vertical gap between panels.
    """
    if width <= 0 or cell <= 0:
        raise ValueError("width and cell must be positive")
    panels = []
    y = gap
    max_w = 0
    for amap in maps:
        grid = amap.as_grid(width)
        rows, cols = grid.shape
        color = _CATEGORY_COLORS.get(amap.category, "#333333")
        label = (f"{amap.name} — {amap.category} "
                 f"({amap.touched}/{amap.words} words)")
        body = [f'<text x="0" y="{y - 6}" font-family="monospace" '
                f'font-size="12">{label}</text>']
        # Emit one rect per contiguous run per row (compact output).
        for r in range(rows):
            row = grid[r]
            c = 0
            while c < cols:
                if row[c]:
                    start = c
                    while c < cols and row[c]:
                        c += 1
                    body.append(
                        f'<rect x="{start * cell}" y="{y + r * cell}" '
                        f'width="{(c - start) * cell}" height="{cell}" '
                        f'fill="{color}"/>'
                    )
                else:
                    c += 1
        body.insert(1, f'<rect x="0" y="{y}" width="{cols * cell}" '
                       f'height="{rows * cell}" fill="#eeeeee" '
                       f'stroke="#999999" stroke-width="0.5"/>')
        # Keep background behind the runs: background first, runs after.
        background = body.pop(1)
        panels.append(body[0] + background + "".join(body[1:]))
        y += rows * cell + gap
        max_w = max(max_w, cols * cell)
    svg = io.StringIO()
    svg.write(f'<svg xmlns="http://www.w3.org/2000/svg" '
              f'width="{max_w + 2}" height="{y}">')
    for p in panels:
        svg.write(p)
    svg.write("</svg>")
    return svg.getvalue()

"""Access maps: per-word spatial views of shadow state (Figs 5, 7, 8, 10).

An :class:`AccessMap` freezes one category mask ("CPU writes", "GPU reads
of CPU-origin values", ...) of one allocation at diagnostic time.  Maps can
be reshaped to a matrix geometry, rendered as ASCII art (how the harness
regenerates the paper's map figures in a terminal) or exported as CSV.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AccessMap", "overlap"]


@dataclass(frozen=True)
class AccessMap:
    """One boolean per traced 32-bit word of an allocation."""

    name: str
    category: str
    mask: np.ndarray  # bool, one entry per word

    @property
    def words(self) -> int:
        """Number of words covered."""
        return len(self.mask)

    @property
    def touched(self) -> int:
        """Words set in this map."""
        return int(self.mask.sum())

    @property
    def density(self) -> float:
        """Fraction of words set."""
        return self.touched / self.words if self.words else 0.0

    def as_grid(self, width: int) -> np.ndarray:
        """Reshape to rows of ``width`` words (last row zero-padded)."""
        if width <= 0:
            raise ValueError("width must be positive")
        rows = -(-self.words // width)
        grid = np.zeros(rows * width, dtype=bool)
        grid[: self.words] = self.mask
        return grid.reshape(rows, width)

    def to_ascii(self, width: int = 64, *, on: str = "#", off: str = ".") -> str:
        """Render as ASCII art, one character per word.

        Vectorized like :meth:`to_csv`: ``np.where`` picks the glyph per
        word and each row joins in one call, instead of a Python loop over
        every character of a potentially megabyte-scale map.
        """
        grid = self.as_grid(width)
        chars = np.where(grid, on, off)
        return "\n".join("".join(row) for row in chars.tolist())

    def to_csv(self) -> str:
        """``word_index,accessed`` rows for external plotting."""
        if self.words == 0:
            return "word,accessed"
        # Vectorized row assembly: megabyte allocations have hundreds of
        # thousands of words, so build the rows with numpy, not a Python
        # loop over every word.
        idx = np.arange(self.words).astype("U10")
        vals = np.where(self.mask, ",1", ",0")
        return "word,accessed\n" + "\n".join(np.char.add(idx, vals))

    def runs(self) -> list[tuple[int, int]]:
        """Half-open ``(start, stop)`` runs of set words."""
        idx = np.flatnonzero(self.mask)
        if len(idx) == 0:
            return []
        breaks = np.flatnonzero(np.diff(idx) != 1)
        starts = np.concatenate(([0], breaks + 1))
        stops = np.concatenate((breaks + 1, [len(idx)]))
        return [(int(idx[a]), int(idx[b - 1]) + 1) for a, b in zip(starts, stops)]


def overlap(a: AccessMap, b: AccessMap, category: str | None = None) -> AccessMap:
    """Words set in both maps (e.g. Fig 5e/5f: GPU reads over CPU writes)."""
    if a.words != b.words:
        raise ValueError("maps cover different allocations")
    return AccessMap(
        name=a.name,
        category=category or f"{a.category}&{b.category}",
        mask=a.mask & b.mask,
    )

"""``XplAllocData`` and recursive pointer expansion (paper §III-B).

The ``#pragma xpl diagnostic`` pragma lets users pass pointers to objects
of interest; the instrumentation expands each pointer into records naming
the object and -- recursively, guarding against type repetition -- every
pointer member reachable from it.  These records only *name* allocations
("the tracing and pattern computation would work without them, but the
messages would be harder to interpret").

In the Python workloads the same expansion walks object attributes looking
for :class:`~repro.cudart.DevicePtr` / :class:`~repro.cudart.ArrayView`
values; an object may also implement ``xpl_pointers()`` to control the
order and naming, like LULESH's ``Domain`` does.  The mini-CUDA
instrumenter performs the struct-type-driven expansion at transform time
(see :mod:`repro.instrument.transform`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, is_dataclass
from typing import Any, Iterable

from ..cudart.memory import ArrayView, DevicePtr
from ..memsim import Allocation

__all__ = ["XplAllocData", "expand_object"]


@dataclass(frozen=True)
class XplAllocData:
    """One named allocation record passed to a diagnostic function."""

    addr: int
    name: str
    elem_size: int
    alloc: Allocation | None = None


def _pointer_record(value: Any, name: str) -> XplAllocData | None:
    if isinstance(value, DevicePtr):
        return XplAllocData(value.addr, name, 4, value.alloc)
    if isinstance(value, ArrayView):
        return XplAllocData(value.addr, name, value.itemsize, value.alloc)
    return None


def _attributes(obj: Any) -> Iterable[tuple[str, Any]]:
    if is_dataclass(obj) and not isinstance(obj, type):
        return [(f.name, getattr(obj, f.name)) for f in fields(obj)]
    if hasattr(obj, "__dict__"):
        return list(vars(obj).items())
    return []


def expand_object(obj: Any, name: str) -> list[XplAllocData]:
    """Expand ``obj`` into allocation records, paper-style.

    * a pointer/view expands to a single record;
    * an object with ``xpl_pointers() -> [(suffix, value), ...]`` expands
      to its own record (when it has a ``self_ptr``) plus one per entry,
      named ``(name)->suffix``;
    * any other object is scanned attribute by attribute;
    * recursion stops on type repetition (linked-list guard).
    """
    records: list[XplAllocData] = []
    seen_types: set[type] = set()

    def walk(value: Any, label: str) -> None:
        rec = _pointer_record(value, label)
        if rec is not None:
            records.append(rec)
            return
        if value is None or isinstance(value, (int, float, str, bytes, bool)):
            return
        t = type(value)
        if t in seen_types:
            return
        seen_types.add(t)
        self_ptr = getattr(value, "self_ptr", None)
        if self_ptr is not None:
            rec = _pointer_record(self_ptr, label)
            if rec is not None:
                records.append(rec)
        if hasattr(value, "xpl_pointers"):
            for suffix, member in value.xpl_pointers():
                walk(member, f"({label})->{suffix}")
        else:
            for attr, member in _attributes(value):
                if attr == "self_ptr":
                    continue
                if _pointer_record(member, attr) is not None or hasattr(member, "__dict__") \
                        or is_dataclass(member):
                    walk(member, f"({label})->{attr}")
        seen_types.discard(t)

    walk(obj, name)
    return records

"""The XPlacer runtime library (paper §III-C).

Shadow memory, the shadow memory table, the Table I tracing API, the
``#pragma xpl diagnostic`` analysis pass, and access-map extraction.
"""

from .access_map import AccessMap, overlap
from .alloc_data import XplAllocData, expand_object
from .diagnostics import (
    DENSITY_THRESHOLD,
    AllocationReport,
    DiagnosticResult,
    trace_print,
)
from .export import (
    access_maps_to_svg,
    epochs_to_csv,
    kernels_to_csv,
    transfers_to_csv,
)
from .flags import WORD_SIZE
from .report import format_csv, format_text
from .shadow import AccessCounts, ShadowBlock
from .smt import LINEAR_SEARCH_LIMIT, ShadowMemoryTable
from .tracer import AdviceRecord, KernelRecord, Tracer, TransferRecord

__all__ = [
    "AccessMap",
    "overlap",
    "XplAllocData",
    "expand_object",
    "DENSITY_THRESHOLD",
    "AllocationReport",
    "DiagnosticResult",
    "trace_print",
    "WORD_SIZE",
    "access_maps_to_svg",
    "epochs_to_csv",
    "kernels_to_csv",
    "transfers_to_csv",
    "format_csv",
    "format_text",
    "AccessCounts",
    "ShadowBlock",
    "LINEAR_SEARCH_LIMIT",
    "ShadowMemoryTable",
    "AdviceRecord",
    "KernelRecord",
    "Tracer",
    "TransferRecord",
]

"""Trace batching: coalesce runs of accesses into one shadow update.

The instrumented-source path produces a *storm* of tiny trace calls -- one
``traceR``/``traceW`` per element as each simulated GPU thread walks its
slice of an array.  Consecutive calls overwhelmingly hit the same
allocation with the same processor and access kind on adjacent words, so
instead of paying a vectorized-numpy update per word, the tracer parks the
running ``(block, proc, kind)`` word interval here and applies it as one
``record_*`` call when the run ends.

Correctness rests on three properties of the shadow update rules
(:mod:`repro.runtime.shadow`):

* **reads and writes are idempotent** per word (sticky OR of classification
  bits), so union-merging overlapping or adjacent intervals of the same
  kind is exact;
* **read-modify-writes are not** (a second RMW of a word reads its *own*
  write's origin), so RMW intervals merge only when disjoint-adjacent and
  any overlap flushes first;
* read classification depends on the last-writer bit, so any access that
  does not merge -- different allocation, processor or kind -- flushes the
  pending interval *before* being processed, preserving program order
  exactly.

Only one interval is ever pending, which makes the order argument local:
between the first and last merged call there is, by construction, no
intervening shadow access anywhere.  The tracer flushes explicitly at every
point where shadow state becomes observable: kernel boundaries, memcpys,
advice, frees, epoch advances and diagnostic queries.

Heat counts (:mod:`repro.heatmap`) are additive rather than idempotent, so
they are *not* coalesced -- the tracer forwards them per call and batching
changes no count.
"""

from __future__ import annotations

from typing import Callable

from ..memsim import Processor

__all__ = ["TraceBatcher", "KIND_READ", "KIND_WRITE", "KIND_RMW"]

#: Access kinds carried through the batcher (and its sink signature).
KIND_READ = 0
KIND_WRITE = 1
KIND_RMW = 2

#: ``sink(block, proc, kind, lo, hi)`` applies one coalesced word interval.
Sink = Callable[[object, Processor, int, int, int], None]


class TraceBatcher:
    """Coalesces consecutive same-``(block, proc, kind)`` word intervals.

    :param sink: callback receiving each flushed interval; the tracer
        passes its (possibly sampled) shadow-apply routine.
    """

    __slots__ = ("sink", "block", "proc", "kind", "lo", "hi",
                 "merged", "flushed")

    def __init__(self, sink: Sink) -> None:
        self.sink = sink
        self.block: object | None = None
        self.proc: Processor = Processor.CPU
        self.kind: int = KIND_READ
        self.lo = 0
        self.hi = 0
        #: Accesses absorbed into a pending interval (introspection/bench).
        self.merged = 0
        #: Intervals delivered to the sink.
        self.flushed = 0

    def add(self, block: object, proc: Processor, kind: int,
            lo: int, hi: int) -> None:
        """Record words ``[lo, hi)`` of ``block``, merging when safe."""
        if block is self.block and proc is self.proc and kind == self.kind:
            if kind != KIND_RMW:
                # Idempotent kinds: merge any overlapping/adjacent interval.
                if lo <= self.hi and hi >= self.lo:
                    if lo < self.lo:
                        self.lo = lo
                    if hi > self.hi:
                        self.hi = hi
                    self.merged += 1
                    return
            else:
                # RMW merges only by extension; overlap must flush so the
                # second RMW reads the first one's write.
                if lo == self.hi:
                    self.hi = hi
                    self.merged += 1
                    return
                if hi == self.lo:
                    self.lo = lo
                    self.merged += 1
                    return
        if self.block is not None:
            self.sink(self.block, self.proc, self.kind, self.lo, self.hi)
            self.flushed += 1
        self.block = block
        self.proc = proc
        self.kind = kind
        self.lo = lo
        self.hi = hi

    def flush(self) -> None:
        """Apply and clear the pending interval, if any."""
        if self.block is not None:
            self.sink(self.block, self.proc, self.kind, self.lo, self.hi)
            self.flushed += 1
            self.block = None

"""The XPlacer tracer: the runtime half of the instrumentation API.

Two entry paths feed the same shadow memory:

* **Observer path** -- the tracer subscribes to a simulated
  :class:`~repro.cudart.CudaRuntime`, which publishes every view access,
  CUDA call and kernel launch (how the Python workloads are traced).
* **Direct path** -- the paper's Table I API (:meth:`Tracer.traceR`,
  :meth:`Tracer.traceW`, :meth:`Tracer.traceRW`, and the ``trc*`` wrappers)
  used by instrumented mini-CUDA programs, where *every* call performs an
  SMT address lookup exactly as the paper describes.

Besides shadow updates, the tracer records explicit transfers (for the
unnecessary-transfer analysis), applied advice (so detectors can check
"existing hints do not match access characteristics"), and kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..cudart.advice import cudaMemcpyKind, cudaMemoryAdvise
from ..cudart.observer import ObserverBase
from ..memsim import Allocation, MemoryKind, Processor

from .batch import KIND_READ, KIND_RMW, KIND_WRITE, TraceBatcher
from .shadow import ShadowBlock
from .smt import ShadowMemoryTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cudart.api import CudaRuntime
    from ..heatmap.store import HeatStore, SourceSite

__all__ = ["Tracer", "TransferRecord", "AdviceRecord", "KernelRecord"]

#: Unset-advice -> the set-advice it cancels (advice-state folding).
_UNSET_OF = {
    cudaMemoryAdvise.cudaMemAdviseUnsetReadMostly:
        cudaMemoryAdvise.cudaMemAdviseSetReadMostly,
    cudaMemoryAdvise.cudaMemAdviseUnsetPreferredLocation:
        cudaMemoryAdvise.cudaMemAdviseSetPreferredLocation,
    cudaMemoryAdvise.cudaMemAdviseUnsetAccessedBy:
        cudaMemoryAdvise.cudaMemAdviseSetAccessedBy,
}


@dataclass(frozen=True)
class TransferRecord:
    """One explicit ``cudaMemcpy`` leg touching traced memory."""

    alloc: Allocation
    offset: int
    nbytes: int
    direction: str  #: ``"H2D"`` or ``"D2H"``
    epoch: int


@dataclass(frozen=True)
class AdviceRecord:
    """One ``cudaMemAdvise`` application."""

    alloc: Allocation
    advice: cudaMemoryAdvise
    offset: int
    nbytes: int
    device_id: int
    epoch: int


@dataclass(frozen=True)
class KernelRecord:
    """One kernel launch."""

    name: str
    grid: int
    block: int
    epoch: int


class Tracer(ObserverBase):
    """Records heap accesses into shadow memory (paper §III-C)."""

    def __init__(self, *, enabled: bool = True,
                 heat: "HeatStore | None" = None,
                 batch: bool = True,
                 sample: "int | str | None" = None,
                 auto_stride: int = 8,
                 auto_hot: int = 2,
                 phase_threshold: float | None = None) -> None:
        self.smt = ShadowMemoryTable()
        self.enabled = enabled
        #: Optional access-count heat recorder (off by default; the shadow
        #: memory itself only keeps boolean per-word masks per epoch).
        self.heat = heat
        self.epoch = 0
        self.transfers: list[TransferRecord] = []
        self.advice: list[AdviceRecord] = []
        self.kernels: list[KernelRecord] = []
        #: Called with the number of the epoch that just closed whenever
        #: :meth:`advance_epoch` runs (telemetry epoch markers).
        self.epoch_hooks: list = []
        #: Called with each :class:`~repro.runtime.diagnostics.DiagnosticResult`
        #: *before* the diagnostic resets the epoch -- live state (shadow,
        #: open heat accumulators) is still inspectable.  The interactive
        #: debugger hangs anti-pattern breakpoints here.
        self.diagnostic_hooks: list = []
        #: Sampled shadow mode: record 1-in-N words (strided over spans,
        #: 1-in-N calls for sub-stride accesses).  Diagnostics scale the
        #: counts back up; results are *estimates* -- see EXPERIMENTS.md.
        #:
        #: ``sample="auto"`` is the signature-guided adaptive mode: the
        #: stride starts at 1 (full rate), and at each epoch boundary an
        #: online :class:`~repro.signature.phases.PhaseDetector` over the
        #: open heat accumulators (heat records full-rate regardless of
        #: shadow sampling, so the signal never degrades) decides the
        #: *next* epoch's stride -- full rate for ``auto_hot`` epochs after
        #: every detected phase change, ``auto_stride`` in steady state.
        #: Requires a heat store; without one the tracer stays full-rate.
        if sample == "auto":
            self.sample = 1
            self.sample_mode = "auto"
        elif sample and int(sample) > 1:
            self.sample = int(sample)
            self.sample_mode = "fixed"
        else:
            self.sample = 1
            self.sample_mode = "off"
        #: Steady-state stride of ``sample="auto"``.
        self.auto_stride = max(2, int(auto_stride))
        #: Full-rate epochs traced after each detected phase change.
        self.auto_hot = max(1, int(auto_hot))
        #: Phase changes the adaptive sampler has reacted to.
        self.auto_changes = 0
        self._phase_threshold = phase_threshold
        self._auto_detector = None
        self._auto_hot_left = 0
        self._sample_tick = 0
        #: Shadow words seen / actually recorded across closed epochs
        #: (the open epoch's tallies live in the ``_epoch_*`` pair until
        #: :meth:`advance_epoch` folds them in).  ``recorded < seen`` only
        #: under sampling; the ratio is the *measured* sampling rate that
        #: report and telemetry headers surface via :meth:`sampling_info`.
        self.words_seen = 0
        self.words_recorded = 0
        self._epoch_seen = 0
        self._epoch_recorded = 0
        #: Per-epoch ``{"epoch", "seen", "recorded", "sample"}`` records
        #: (the stride in effect while that epoch was traced).
        self.epoch_rates: list[dict] = []
        #: Coalesces consecutive same-(alloc, proc, kind) accesses into one
        #: vectorized shadow update (see :mod:`repro.runtime.batch`).
        #: ``Tracer(batch=False)`` restores the one-update-per-call path
        #: (differential testing); diagnostics are identical either way.
        self.batcher: TraceBatcher | None = \
            TraceBatcher(self._apply_range) if batch else None
        #: Folded per-allocation advice state (see :meth:`advice_for`).
        self._advice_state: dict[int, set[cudaMemoryAdvise]] = {}
        self._runtime: "CudaRuntime | None" = None
        #: Requested execution backend (set by the interpreter): one of
        #: ``interp``/``codegen``/``codegen-vec``/``auto``.  Reports and
        #: JSONL headers surface it via :meth:`backend_info` so fidelity
        #: numbers are attributable to the backend that produced them.
        self.backend = "interp"
        #: Launch counts by the backend that actually executed them.
        self.backend_launches: dict[str, int] = {}
        #: Total tiers dropped across launches (vec -> codegen -> interp).
        self.backend_fallbacks = 0

    # ------------------------------------------------------------------ #
    # wiring

    def attach(self, runtime: "CudaRuntime") -> "Tracer":
        """Subscribe to ``runtime`` (idempotent); returns self."""
        runtime.subscribe(self)
        self._runtime = runtime
        return self

    def bind(self, runtime: "CudaRuntime") -> "Tracer":
        """Bind to ``runtime`` for processor context *without* subscribing.

        Used by the mini-CUDA pipeline, where only the instrumented
        ``trace*`` calls feed the tracer (as in the paper's compiled
        workflow) but device/host attribution still follows the runtime's
        execution context.
        """
        self._runtime = runtime
        return self

    def detach(self) -> None:
        """Unsubscribe from the runtime."""
        if self._runtime is not None:
            self._runtime.unsubscribe(self)
            self._runtime = None

    @property
    def current_proc(self) -> Processor:
        """Processor executing right now (CPU unless inside a kernel)."""
        return self._runtime.current_proc if self._runtime else Processor.CPU

    # ------------------------------------------------------------------ #
    # shadow application (batch sink; sampling lives here)

    def _apply_range(self, block: ShadowBlock, proc: Processor, kind: int,
                     lo: int, hi: int) -> None:
        """Apply one (possibly coalesced) word interval to the shadow.

        With ``sample=N`` spans of at least N words record every N-th word,
        strided on the block's own word grid (multiples of N) so that
        overlapping accesses mark the *same* representative words and the
        scaled-up estimate stays faithful under overlap; narrower accesses
        record fully on every N-th call.
        """
        n = self.sample
        step = 1
        seen = hi - lo
        if n > 1:
            if seen >= n:
                step = n
                lo = -(-lo // n) * n  # first grid word inside the span
            else:
                self._sample_tick += 1
                if self._sample_tick % n:
                    self._epoch_seen += seen
                    return
        self._epoch_seen += seen
        self._epoch_recorded += (hi - lo + step - 1) // step \
            if lo < hi else 0
        if kind == KIND_READ:
            block.record_read(proc, lo, hi, step=step)
        elif kind == KIND_WRITE:
            block.record_write(proc, lo, hi, step=step)
        else:
            block.record_rmw(proc, lo, hi, step=step)

    def _trace_span(self, block: ShadowBlock, proc: Processor, kind: int,
                    lo: int, hi: int) -> None:
        """Route one span access through the batcher (or apply directly)."""
        b = self.batcher
        if b is not None:
            b.add(block, proc, kind, lo, hi)
        else:
            self._apply_range(block, proc, kind, lo, hi)

    def flush_trace(self) -> None:
        """Apply any pending coalesced interval (diagnostic-safe point)."""
        if self.batcher is not None:
            self.batcher.flush()

    def _apply_words(self, block: ShadowBlock, proc: Processor, kind: int,
                     idx, count: int | None = None) -> None:
        """Apply one batched per-word update (vectorized backend sink).

        ``idx`` is an int array of shadow word indices, one entry per
        traced word per lane (duplicates legal: the shadow ORs bits, and
        heat counts each entry, exactly like the per-thread calls the
        batch replaces).  Only valid at full rate (the vectorized backend
        requires ``sample_mode == "off"``), so every counted word is both
        seen and recorded.  ``count`` overrides the ``len(idx)`` tally
        (pass 0 when the launch accounts its words once via
        :meth:`note_words` instead of per update).
        """
        n = len(idx) if count is None else count
        self._epoch_seen += n
        self._epoch_recorded += n
        if kind == KIND_READ:
            block.record_read(proc, 0, 0, idx=idx)
        elif kind == KIND_WRITE:
            block.record_write(proc, 0, 0, idx=idx)
        else:
            block.record_rmw(proc, 0, 0, idx=idx)

    def note_words(self, n: int) -> None:
        """Account ``n`` logical shadow words for a batched launch.

        The interpreter's :class:`~repro.runtime.batch.TraceBatcher`
        tallies *post-merge interval widths*, not trace calls, so a
        vectorized launch computes the identical figure up front
        (:meth:`repro.codegen.gridexec.VecRun._batcher_seen`) and books
        it here in one step.
        """
        self._epoch_seen += n
        self._epoch_recorded += n

    def note_launch(self, used: str, fallbacks: int = 0) -> None:
        """Record which backend executed a kernel launch (and how many
        tiers it fell through to get there)."""
        self.backend_launches[used] = self.backend_launches.get(used, 0) + 1
        self.backend_fallbacks += fallbacks

    def backend_info(self) -> dict | None:
        """Backend attribution for report/JSONL headers, or ``None``.

        ``None`` when running the plain interpreter (the historical
        default, so existing artifacts are byte-identical); otherwise the
        requested backend, per-backend launch counts, and the total
        number of per-launch fallbacks.
        """
        if self.backend == "interp":
            return None
        return {
            "backend": self.backend,
            "launches": {k: self.backend_launches[k]
                         for k in sorted(self.backend_launches)},
            "fallbacks": self.backend_fallbacks,
        }

    # ------------------------------------------------------------------ #
    # direct tracing API (paper Table I)

    def traceR(self, addr: int, size: int = 4,
               site: "SourceSite | None" = None) -> int:
        """``const T& traceR(const T&)``: record a read, return the address."""
        if self.enabled:
            block = self.smt.lookup(addr)
            if block is not None:
                lo, hi = block.word_range(addr - block.alloc.base, size)
                self._trace_span(block, self.current_proc, KIND_READ, lo, hi)
                if self.heat is not None:
                    self.heat.record(block.alloc, self.current_proc,
                                     is_write=False, lo=lo, hi=hi, site=site)
        return addr

    def traceW(self, addr: int, size: int = 4,
               site: "SourceSite | None" = None) -> int:
        """``T& traceW(T&)``: record a write, return the address."""
        if self.enabled:
            block = self.smt.lookup(addr)
            if block is not None:
                lo, hi = block.word_range(addr - block.alloc.base, size)
                self._trace_span(block, self.current_proc, KIND_WRITE, lo, hi)
                if self.heat is not None:
                    self.heat.record(block.alloc, self.current_proc,
                                     is_write=True, lo=lo, hi=hi, site=site)
        return addr

    def traceRW(self, addr: int, size: int = 4,
                site: "SourceSite | None" = None) -> int:
        """``T& traceRW(T&)``: record a read-modify-write, return the address."""
        if self.enabled:
            block = self.smt.lookup(addr)
            if block is not None:
                lo, hi = block.word_range(addr - block.alloc.base, size)
                self._trace_span(block, self.current_proc, KIND_RMW, lo, hi)
                if self.heat is not None:
                    proc = self.current_proc
                    self.heat.record(block.alloc, proc, is_write=False,
                                     lo=lo, hi=hi, site=site)
                    self.heat.record(block.alloc, proc, is_write=True,
                                     lo=lo, hi=hi, site=site)
        return addr

    # ------------------------------------------------------------------ #
    # allocation wrappers (``#pragma xpl replace`` targets)

    def trc_register(self, alloc: Allocation) -> ShadowBlock:
        """``trcMalloc``/``trcMallocManaged`` bookkeeping for ``alloc``."""
        return self.smt.insert(alloc, self.epoch)

    def trc_free(self, alloc: Allocation) -> None:
        """``trcFree``: payload goes now, shadow parks until next diagnostic."""
        self.flush_trace()
        self.smt.remove(alloc.base, self.epoch)

    # ------------------------------------------------------------------ #
    # observer callbacks (the Python-workload path)

    def on_alloc(self, alloc: Allocation) -> None:  # noqa: D102
        if self.enabled:
            self.trc_register(alloc)

    def on_free(self, alloc: Allocation) -> None:  # noqa: D102
        if self.enabled:
            self.trc_free(alloc)

    def on_access(self, proc, alloc, byte_offset, elem_size, count,
                  is_write, indices, is_rmw) -> None:  # noqa: D102
        if not self.enabled:
            return
        block = self.smt.lookup(alloc.base)
        if block is None:
            return
        if indices is None:
            lo, hi = block.word_range(byte_offset, count * elem_size)
            idx = None
            kind = KIND_RMW if is_rmw else (KIND_WRITE if is_write else KIND_READ)
            self._trace_span(block, proc, kind, lo, hi)
        else:
            lo = hi = 0
            idx = block.word_indices(byte_offset, elem_size, indices)
            # Scattered accesses bypass the batcher but must still respect
            # program order against any pending interval.
            self.flush_trace()
            self._epoch_seen += len(idx)
            self._epoch_recorded += len(idx)
            if is_rmw:
                block.record_rmw(proc, lo, hi, idx)
            elif is_write:
                block.record_write(proc, lo, hi, idx)
            else:
                block.record_read(proc, lo, hi, idx)
        if self.heat is not None:
            if is_rmw:
                self.heat.record(alloc, proc, is_write=False,
                                 lo=lo, hi=hi, idx=idx)
                self.heat.record(alloc, proc, is_write=True,
                                 lo=lo, hi=hi, idx=idx)
            else:
                self.heat.record(alloc, proc, is_write=is_write,
                                 lo=lo, hi=hi, idx=idx)

    def on_memcpy(self, dst, dst_off, src, src_off, nbytes, kind) -> None:  # noqa: D102
        if not self.enabled:
            return
        self.flush_trace()
        # Paper §III-C: H2D transfers are recorded as CPU writes of the
        # destination; D2H transfers as CPU reads of the source.
        if dst is not None:
            block = self.smt.lookup(dst.base)
            if block is not None:
                lo, hi = block.word_range(dst_off, nbytes)
                block.record_write(Processor.CPU, lo, hi)
                self._epoch_seen += hi - lo
                self._epoch_recorded += hi - lo
                if self.heat is not None:
                    self.heat.record(dst, Processor.CPU, is_write=True,
                                     lo=lo, hi=hi)
                if dst.kind is MemoryKind.DEVICE:
                    self.transfers.append(TransferRecord(
                        dst, dst_off, nbytes, "H2D", self.epoch))
        if src is not None:
            block = self.smt.lookup(src.base)
            if block is not None:
                lo, hi = block.word_range(src_off, nbytes)
                block.record_read(Processor.CPU, lo, hi)
                self._epoch_seen += hi - lo
                self._epoch_recorded += hi - lo
                if self.heat is not None:
                    self.heat.record(src, Processor.CPU, is_write=False,
                                     lo=lo, hi=hi)
                if src.kind is MemoryKind.DEVICE:
                    self.transfers.append(TransferRecord(
                        src, src_off, nbytes, "D2H", self.epoch))

    def on_kernel_launch(self, name: str, grid: int, block: int) -> None:  # noqa: D102
        if self.enabled:
            self.flush_trace()
            self.kernels.append(KernelRecord(name, grid, block, self.epoch))

    def on_kernel_complete(self, name: str, grid: int, block: int,
                           duration: float) -> None:  # noqa: D102
        if self.enabled:
            self.flush_trace()

    def on_advice(self, alloc, advice, byte_offset, nbytes, device_id) -> None:  # noqa: D102
        if self.enabled:
            self.flush_trace()
            self.advice.append(AdviceRecord(
                alloc, advice, byte_offset, nbytes, device_id, self.epoch))
            state = self._advice_state.setdefault(alloc.base, set())
            unset = _UNSET_OF.get(advice)
            if unset is not None:
                state.discard(unset)
            else:
                state.add(advice)

    # ------------------------------------------------------------------ #
    # epoch management (driven by diagnostics)

    def advance_epoch(self) -> int:
        """Close the current epoch: reset live shadows, drop parked ones."""
        self.flush_trace()
        self.smt.reset_all()
        self.smt.flush_graveyard()
        closed = self.epoch
        self.epoch += 1
        self.words_seen += self._epoch_seen
        self.words_recorded += self._epoch_recorded
        self.epoch_rates.append({"epoch": closed,
                                 "seen": self._epoch_seen,
                                 "recorded": self._epoch_recorded,
                                 "sample": self.sample})
        self._epoch_seen = 0
        self._epoch_recorded = 0
        if self.sample_mode == "auto" and self.heat is not None:
            # Decide the *next* epoch's stride from the epoch that just
            # closed, before the heat store freezes (and, when streaming,
            # releases) its open accumulators.
            self._auto_update(closed)
        if self.heat is not None:
            self.heat.advance_epoch(closed)
        for hook in tuple(self.epoch_hooks):
            hook(closed)
        return self.epoch

    def _auto_update(self, closed: int) -> None:
        """Adaptive-sampling step: phase-detect, then pick the next stride.

        Full rate while the detector sees a phase transition (and for
        ``auto_hot`` epochs after it), ``auto_stride`` once the pattern is
        steady.  The heat store records every word regardless of shadow
        sampling, so the detector's signal is full-fidelity even while
        the shadow is strided.
        """
        from ..signature.phases import PhaseDetector
        from ..signature.vector import combine_vectors, epoch_vector

        det = self._auto_detector
        if det is None:
            det = self._auto_detector = PhaseDetector(
                *(() if self._phase_threshold is None
                  else (self._phase_threshold,)))
        pairs = []
        for heat in self.heat._allocs.values():
            total = int(heat._counts.sum())
            if total:
                pairs.append((epoch_vector(heat._counts), total))
        vec, weight = combine_vectors(pairs)
        if weight <= 0:
            return
        first = not det.started
        _, changed = det.update(closed, vec, weight)
        if first or changed:
            if changed:
                self.auto_changes += 1
            self._auto_hot_left = self.auto_hot
            self.sample = 1
        else:
            if self._auto_hot_left > 0:
                self._auto_hot_left -= 1
            self.sample = 1 if self._auto_hot_left > 0 else self.auto_stride

    def describe(self) -> dict:
        """Live description of the tracer: mode, strides, true rates.

        Unlike :attr:`sample` (the *configured* stride), the word counters
        report what actually happened: ``words_seen`` is every shadow word
        the instrumented program presented, ``words_recorded`` how many
        the shadow actually kept, and ``measured_rate`` their ratio --
        the effective sampling rate even under ``sample="auto"``, where
        the stride varies per epoch (see :attr:`epoch_rates`).
        """
        seen = self.words_seen + self._epoch_seen
        recorded = self.words_recorded + self._epoch_recorded
        return {
            "enabled": self.enabled,
            "epoch": self.epoch,
            "mode": self.sample_mode,
            "sample": self.sample,
            "auto_stride": self.auto_stride,
            "phase_changes": self.auto_changes,
            "words_seen": seen,
            "words_recorded": recorded,
            "measured_rate": round(recorded / seen, 6) if seen else 1.0,
            "kernels": len(self.kernels),
            "transfers": len(self.transfers),
            "epochs": [dict(r) for r in self.epoch_rates],
            "backend": self.backend,
            "backend_launches": {k: self.backend_launches[k]
                                 for k in sorted(self.backend_launches)},
            "backend_fallbacks": self.backend_fallbacks,
        }

    def sampling_info(self) -> dict | None:
        """Effective sampling rate + estimated fidelity, or ``None``.

        ``None`` for full-rate tracers (every word recorded); otherwise a
        dict telemetry and report headers embed verbatim so sampled runs
        are visibly labeled as sampled:

        * ``sample`` -- the stride N (1-in-N words; the steady-state
          stride in adaptive mode);
        * ``mode`` -- ``"fixed"`` or ``"auto"``;
        * ``effective_rate`` -- fraction of words recorded: ``1/N`` for a
          fixed stride, the measured ratio under ``auto``;
        * ``measured_rate`` -- recorded/seen words so far (the *true*
          rate; absent until anything was traced);
        * ``estimated_fidelity`` -- conservative estimate of how closely
          scaled-up counts track a full trace.  Dense full-span patterns
          are exact (the fidelity suite pins this); the estimate decays
          with the effective stride to cover partial-coverage patterns,
          matching the relative-error bounds measured in
          ``tests/perf/test_sampled_fidelity.py``.
        """
        if self.sample_mode == "off":
            return None
        import math
        seen = self.words_seen + self._epoch_seen
        recorded = self.words_recorded + self._epoch_recorded
        measured = round(recorded / seen, 6) if seen else None
        if self.sample_mode == "auto":
            stride = (seen / recorded) if seen and recorded else 1.0
            info = {"sample": self.auto_stride,
                    "mode": "auto",
                    "effective_rate": measured if measured is not None
                    else 1.0,
                    "estimated_fidelity": round(
                        max(0.5, 1.0 - 0.05 * math.log2(max(1.0, stride))),
                        3),
                    "phase_changes": self.auto_changes}
        else:
            n = self.sample
            info = {"sample": n,
                    "mode": "fixed",
                    "effective_rate": round(1.0 / n, 6),
                    "estimated_fidelity": round(
                        max(0.5, 1.0 - 0.05 * math.log2(n)), 3)}
        if measured is not None:
            info["measured_rate"] = measured
        return info

    def advice_for(self, alloc: Allocation) -> set[cudaMemoryAdvise]:
        """Advice currently applied to ``alloc`` (set/unset pairs folded).

        Folded incrementally in :meth:`on_advice` -- O(1) per query instead
        of rescanning the whole advice history (which the anti-pattern
        detectors query once per allocation per diagnostic).  The record
        list itself is untouched and still exported verbatim.
        """
        state = self._advice_state.get(alloc.base)
        return set(state) if state else set()

"""The XPlacer tracer: the runtime half of the instrumentation API.

Two entry paths feed the same shadow memory:

* **Observer path** -- the tracer subscribes to a simulated
  :class:`~repro.cudart.CudaRuntime`, which publishes every view access,
  CUDA call and kernel launch (how the Python workloads are traced).
* **Direct path** -- the paper's Table I API (:meth:`Tracer.traceR`,
  :meth:`Tracer.traceW`, :meth:`Tracer.traceRW`, and the ``trc*`` wrappers)
  used by instrumented mini-CUDA programs, where *every* call performs an
  SMT address lookup exactly as the paper describes.

Besides shadow updates, the tracer records explicit transfers (for the
unnecessary-transfer analysis), applied advice (so detectors can check
"existing hints do not match access characteristics"), and kernel launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..cudart.advice import cudaMemcpyKind, cudaMemoryAdvise
from ..cudart.observer import ObserverBase
from ..memsim import Allocation, MemoryKind, Processor

from .batch import KIND_READ, KIND_RMW, KIND_WRITE, TraceBatcher
from .shadow import ShadowBlock
from .smt import ShadowMemoryTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..cudart.api import CudaRuntime
    from ..heatmap.store import HeatStore, SourceSite

__all__ = ["Tracer", "TransferRecord", "AdviceRecord", "KernelRecord"]

#: Unset-advice -> the set-advice it cancels (advice-state folding).
_UNSET_OF = {
    cudaMemoryAdvise.cudaMemAdviseUnsetReadMostly:
        cudaMemoryAdvise.cudaMemAdviseSetReadMostly,
    cudaMemoryAdvise.cudaMemAdviseUnsetPreferredLocation:
        cudaMemoryAdvise.cudaMemAdviseSetPreferredLocation,
    cudaMemoryAdvise.cudaMemAdviseUnsetAccessedBy:
        cudaMemoryAdvise.cudaMemAdviseSetAccessedBy,
}


@dataclass(frozen=True)
class TransferRecord:
    """One explicit ``cudaMemcpy`` leg touching traced memory."""

    alloc: Allocation
    offset: int
    nbytes: int
    direction: str  #: ``"H2D"`` or ``"D2H"``
    epoch: int


@dataclass(frozen=True)
class AdviceRecord:
    """One ``cudaMemAdvise`` application."""

    alloc: Allocation
    advice: cudaMemoryAdvise
    offset: int
    nbytes: int
    device_id: int
    epoch: int


@dataclass(frozen=True)
class KernelRecord:
    """One kernel launch."""

    name: str
    grid: int
    block: int
    epoch: int


class Tracer(ObserverBase):
    """Records heap accesses into shadow memory (paper §III-C)."""

    def __init__(self, *, enabled: bool = True,
                 heat: "HeatStore | None" = None,
                 batch: bool = True,
                 sample: int | None = None) -> None:
        self.smt = ShadowMemoryTable()
        self.enabled = enabled
        #: Optional access-count heat recorder (off by default; the shadow
        #: memory itself only keeps boolean per-word masks per epoch).
        self.heat = heat
        self.epoch = 0
        self.transfers: list[TransferRecord] = []
        self.advice: list[AdviceRecord] = []
        self.kernels: list[KernelRecord] = []
        #: Called with the number of the epoch that just closed whenever
        #: :meth:`advance_epoch` runs (telemetry epoch markers).
        self.epoch_hooks: list = []
        #: Called with each :class:`~repro.runtime.diagnostics.DiagnosticResult`
        #: *before* the diagnostic resets the epoch -- live state (shadow,
        #: open heat accumulators) is still inspectable.  The interactive
        #: debugger hangs anti-pattern breakpoints here.
        self.diagnostic_hooks: list = []
        #: Sampled shadow mode: record 1-in-N words (strided over spans,
        #: 1-in-N calls for sub-stride accesses).  Diagnostics scale the
        #: counts back up; results are *estimates* -- see EXPERIMENTS.md.
        self.sample = max(1, int(sample)) if sample else 1
        self._sample_tick = 0
        #: Coalesces consecutive same-(alloc, proc, kind) accesses into one
        #: vectorized shadow update (see :mod:`repro.runtime.batch`).
        #: ``Tracer(batch=False)`` restores the one-update-per-call path
        #: (differential testing); diagnostics are identical either way.
        self.batcher: TraceBatcher | None = \
            TraceBatcher(self._apply_range) if batch else None
        #: Folded per-allocation advice state (see :meth:`advice_for`).
        self._advice_state: dict[int, set[cudaMemoryAdvise]] = {}
        self._runtime: "CudaRuntime | None" = None

    # ------------------------------------------------------------------ #
    # wiring

    def attach(self, runtime: "CudaRuntime") -> "Tracer":
        """Subscribe to ``runtime`` (idempotent); returns self."""
        runtime.subscribe(self)
        self._runtime = runtime
        return self

    def bind(self, runtime: "CudaRuntime") -> "Tracer":
        """Bind to ``runtime`` for processor context *without* subscribing.

        Used by the mini-CUDA pipeline, where only the instrumented
        ``trace*`` calls feed the tracer (as in the paper's compiled
        workflow) but device/host attribution still follows the runtime's
        execution context.
        """
        self._runtime = runtime
        return self

    def detach(self) -> None:
        """Unsubscribe from the runtime."""
        if self._runtime is not None:
            self._runtime.unsubscribe(self)
            self._runtime = None

    @property
    def current_proc(self) -> Processor:
        """Processor executing right now (CPU unless inside a kernel)."""
        return self._runtime.current_proc if self._runtime else Processor.CPU

    # ------------------------------------------------------------------ #
    # shadow application (batch sink; sampling lives here)

    def _apply_range(self, block: ShadowBlock, proc: Processor, kind: int,
                     lo: int, hi: int) -> None:
        """Apply one (possibly coalesced) word interval to the shadow.

        With ``sample=N`` spans of at least N words record every N-th word,
        strided on the block's own word grid (multiples of N) so that
        overlapping accesses mark the *same* representative words and the
        scaled-up estimate stays faithful under overlap; narrower accesses
        record fully on every N-th call.
        """
        n = self.sample
        step = 1
        if n > 1:
            if hi - lo >= n:
                step = n
                lo = -(-lo // n) * n  # first grid word inside the span
            else:
                self._sample_tick += 1
                if self._sample_tick % n:
                    return
        if kind == KIND_READ:
            block.record_read(proc, lo, hi, step=step)
        elif kind == KIND_WRITE:
            block.record_write(proc, lo, hi, step=step)
        else:
            block.record_rmw(proc, lo, hi, step=step)

    def _trace_span(self, block: ShadowBlock, proc: Processor, kind: int,
                    lo: int, hi: int) -> None:
        """Route one span access through the batcher (or apply directly)."""
        b = self.batcher
        if b is not None:
            b.add(block, proc, kind, lo, hi)
        else:
            self._apply_range(block, proc, kind, lo, hi)

    def flush_trace(self) -> None:
        """Apply any pending coalesced interval (diagnostic-safe point)."""
        if self.batcher is not None:
            self.batcher.flush()

    # ------------------------------------------------------------------ #
    # direct tracing API (paper Table I)

    def traceR(self, addr: int, size: int = 4,
               site: "SourceSite | None" = None) -> int:
        """``const T& traceR(const T&)``: record a read, return the address."""
        if self.enabled:
            block = self.smt.lookup(addr)
            if block is not None:
                lo, hi = block.word_range(addr - block.alloc.base, size)
                self._trace_span(block, self.current_proc, KIND_READ, lo, hi)
                if self.heat is not None:
                    self.heat.record(block.alloc, self.current_proc,
                                     is_write=False, lo=lo, hi=hi, site=site)
        return addr

    def traceW(self, addr: int, size: int = 4,
               site: "SourceSite | None" = None) -> int:
        """``T& traceW(T&)``: record a write, return the address."""
        if self.enabled:
            block = self.smt.lookup(addr)
            if block is not None:
                lo, hi = block.word_range(addr - block.alloc.base, size)
                self._trace_span(block, self.current_proc, KIND_WRITE, lo, hi)
                if self.heat is not None:
                    self.heat.record(block.alloc, self.current_proc,
                                     is_write=True, lo=lo, hi=hi, site=site)
        return addr

    def traceRW(self, addr: int, size: int = 4,
                site: "SourceSite | None" = None) -> int:
        """``T& traceRW(T&)``: record a read-modify-write, return the address."""
        if self.enabled:
            block = self.smt.lookup(addr)
            if block is not None:
                lo, hi = block.word_range(addr - block.alloc.base, size)
                self._trace_span(block, self.current_proc, KIND_RMW, lo, hi)
                if self.heat is not None:
                    proc = self.current_proc
                    self.heat.record(block.alloc, proc, is_write=False,
                                     lo=lo, hi=hi, site=site)
                    self.heat.record(block.alloc, proc, is_write=True,
                                     lo=lo, hi=hi, site=site)
        return addr

    # ------------------------------------------------------------------ #
    # allocation wrappers (``#pragma xpl replace`` targets)

    def trc_register(self, alloc: Allocation) -> ShadowBlock:
        """``trcMalloc``/``trcMallocManaged`` bookkeeping for ``alloc``."""
        return self.smt.insert(alloc, self.epoch)

    def trc_free(self, alloc: Allocation) -> None:
        """``trcFree``: payload goes now, shadow parks until next diagnostic."""
        self.flush_trace()
        self.smt.remove(alloc.base, self.epoch)

    # ------------------------------------------------------------------ #
    # observer callbacks (the Python-workload path)

    def on_alloc(self, alloc: Allocation) -> None:  # noqa: D102
        if self.enabled:
            self.trc_register(alloc)

    def on_free(self, alloc: Allocation) -> None:  # noqa: D102
        if self.enabled:
            self.trc_free(alloc)

    def on_access(self, proc, alloc, byte_offset, elem_size, count,
                  is_write, indices, is_rmw) -> None:  # noqa: D102
        if not self.enabled:
            return
        block = self.smt.lookup(alloc.base)
        if block is None:
            return
        if indices is None:
            lo, hi = block.word_range(byte_offset, count * elem_size)
            idx = None
            kind = KIND_RMW if is_rmw else (KIND_WRITE if is_write else KIND_READ)
            self._trace_span(block, proc, kind, lo, hi)
        else:
            lo = hi = 0
            idx = block.word_indices(byte_offset, elem_size, indices)
            # Scattered accesses bypass the batcher but must still respect
            # program order against any pending interval.
            self.flush_trace()
            if is_rmw:
                block.record_rmw(proc, lo, hi, idx)
            elif is_write:
                block.record_write(proc, lo, hi, idx)
            else:
                block.record_read(proc, lo, hi, idx)
        if self.heat is not None:
            if is_rmw:
                self.heat.record(alloc, proc, is_write=False,
                                 lo=lo, hi=hi, idx=idx)
                self.heat.record(alloc, proc, is_write=True,
                                 lo=lo, hi=hi, idx=idx)
            else:
                self.heat.record(alloc, proc, is_write=is_write,
                                 lo=lo, hi=hi, idx=idx)

    def on_memcpy(self, dst, dst_off, src, src_off, nbytes, kind) -> None:  # noqa: D102
        if not self.enabled:
            return
        self.flush_trace()
        # Paper §III-C: H2D transfers are recorded as CPU writes of the
        # destination; D2H transfers as CPU reads of the source.
        if dst is not None:
            block = self.smt.lookup(dst.base)
            if block is not None:
                lo, hi = block.word_range(dst_off, nbytes)
                block.record_write(Processor.CPU, lo, hi)
                if self.heat is not None:
                    self.heat.record(dst, Processor.CPU, is_write=True,
                                     lo=lo, hi=hi)
                if dst.kind is MemoryKind.DEVICE:
                    self.transfers.append(TransferRecord(
                        dst, dst_off, nbytes, "H2D", self.epoch))
        if src is not None:
            block = self.smt.lookup(src.base)
            if block is not None:
                lo, hi = block.word_range(src_off, nbytes)
                block.record_read(Processor.CPU, lo, hi)
                if self.heat is not None:
                    self.heat.record(src, Processor.CPU, is_write=False,
                                     lo=lo, hi=hi)
                if src.kind is MemoryKind.DEVICE:
                    self.transfers.append(TransferRecord(
                        src, src_off, nbytes, "D2H", self.epoch))

    def on_kernel_launch(self, name: str, grid: int, block: int) -> None:  # noqa: D102
        if self.enabled:
            self.flush_trace()
            self.kernels.append(KernelRecord(name, grid, block, self.epoch))

    def on_kernel_complete(self, name: str, grid: int, block: int,
                           duration: float) -> None:  # noqa: D102
        if self.enabled:
            self.flush_trace()

    def on_advice(self, alloc, advice, byte_offset, nbytes, device_id) -> None:  # noqa: D102
        if self.enabled:
            self.flush_trace()
            self.advice.append(AdviceRecord(
                alloc, advice, byte_offset, nbytes, device_id, self.epoch))
            state = self._advice_state.setdefault(alloc.base, set())
            unset = _UNSET_OF.get(advice)
            if unset is not None:
                state.discard(unset)
            else:
                state.add(advice)

    # ------------------------------------------------------------------ #
    # epoch management (driven by diagnostics)

    def advance_epoch(self) -> int:
        """Close the current epoch: reset live shadows, drop parked ones."""
        self.flush_trace()
        self.smt.reset_all()
        self.smt.flush_graveyard()
        closed = self.epoch
        self.epoch += 1
        if self.heat is not None:
            self.heat.advance_epoch(closed)
        for hook in tuple(self.epoch_hooks):
            hook(closed)
        return self.epoch

    def sampling_info(self) -> dict | None:
        """Effective sampling rate + estimated fidelity, or ``None``.

        ``None`` for full-rate tracers (every word recorded); otherwise a
        dict telemetry and report headers embed verbatim so sampled runs
        are visibly labeled as sampled:

        * ``sample`` -- the configured stride N (1-in-N words recorded);
        * ``effective_rate`` -- fraction of words recorded (``1/N``);
        * ``estimated_fidelity`` -- conservative estimate of how closely
          scaled-up counts track a full trace.  Dense full-span patterns
          are exact (the fidelity suite pins this); the estimate decays
          with the stride to cover partial-coverage patterns, matching
          the relative-error bounds measured in
          ``tests/perf/test_sampled_fidelity.py``.
        """
        n = self.sample
        if n <= 1:
            return None
        import math
        fidelity = max(0.5, 1.0 - 0.05 * math.log2(n))
        return {"sample": n,
                "effective_rate": round(1.0 / n, 6),
                "estimated_fidelity": round(fidelity, 3)}

    def advice_for(self, alloc: Allocation) -> set[cudaMemoryAdvise]:
        """Advice currently applied to ``alloc`` (set/unset pairs folded).

        Folded incrementally in :meth:`on_advice` -- O(1) per query instead
        of rescanning the whole advice history (which the anti-pattern
        detectors query once per allocation per diagnostic).  The record
        list itself is untouched and still exported verbatim.
        """
        state = self._advice_state.get(alloc.base)
        return set(state) if state else set()

"""Shadow memory blocks (paper Fig 3).

For every traced allocation, XPlacer keeps one shadow byte per 32-bit word
of payload.  :class:`ShadowBlock` holds that byte array (numpy ``uint8``)
and implements the vectorized update rules for reads, writes and
read-modify-writes.  All updates are mask operations over word ranges or
index arrays -- there is no per-element Python loop even when a kernel
touches a megabyte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..memsim import Allocation, Processor
from . import flags as F

__all__ = ["ShadowBlock", "AccessCounts", "nwords_for"]


def nwords_for(size: int) -> int:
    """Traced 32-bit words covering ``size`` payload bytes (ceil division)."""
    return -(-size // F.WORD_SIZE)


@dataclass(frozen=True)
class AccessCounts:
    """Aggregate counters extracted from one shadow block.

    Matches the columns of the paper's Fig 4 diagnostic table: write counts
    per processor (each address counted once), and read counts per
    ``origin > reader`` category (each address counted at most once per
    category).
    """

    cpu_written: int
    gpu_written: int
    read_cc: int
    read_cg: int
    read_gc: int
    read_gg: int
    accessed_words: int
    total_words: int

    @property
    def density(self) -> float:
        """Fraction of words accessed at least once this epoch."""
        return self.accessed_words / self.total_words if self.total_words else 0.0

    @property
    def alternating(self) -> int:
        """This is filled in by :meth:`ShadowBlock.counts` callers via
        :meth:`ShadowBlock.alternating_words`; kept here for symmetry."""
        raise AttributeError("use ShadowBlock.alternating_words()")


class ShadowBlock:
    """Shadow state for one allocation."""

    __slots__ = ("alloc", "shadow", "epoch_created", "freed_epoch")

    def __init__(self, alloc: Allocation, epoch: int = 0) -> None:
        self.alloc = alloc
        self.shadow = np.zeros(nwords_for(alloc.size), dtype=np.uint8)
        self.epoch_created = epoch
        self.freed_epoch: int | None = None

    @property
    def nwords(self) -> int:
        """Number of traced 32-bit words."""
        return len(self.shadow)

    # ------------------------------------------------------------------ #
    # address helpers

    def word_range(self, byte_offset: int, nbytes: int) -> tuple[int, int]:
        """Word-index range covering bytes ``[byte_offset, byte_offset+nbytes)``."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        lo = byte_offset // F.WORD_SIZE
        hi = (byte_offset + nbytes - 1) // F.WORD_SIZE + 1
        if hi > self.nwords:
            raise ValueError("access beyond end of shadowed allocation")
        return lo, hi

    def word_indices(self, byte_offset: int, elem_size: int,
                     indices: np.ndarray) -> np.ndarray:
        """Unique word indices for a gather/scatter access."""
        starts = byte_offset + indices * elem_size
        if elem_size <= F.WORD_SIZE:
            words = starts // F.WORD_SIZE
        else:
            # Wide elements span several words.
            span = -(-elem_size // F.WORD_SIZE)
            words = (starts[:, None] // F.WORD_SIZE) + np.arange(span)[None, :]
            words = words.ravel()
        return np.unique(words)

    # ------------------------------------------------------------------ #
    # update rules

    def record_write(self, proc: Processor, lo: int, hi: int,
                     idx: np.ndarray | None = None, step: int = 1) -> None:
        """Mark words written by ``proc`` and update the last-writer bit.

        ``step`` > 1 records only every ``step``-th word of the range --
        the sampled shadow mode (``Tracer(sample=N)``); diagnostics scale
        the resulting counts back up.
        """
        wbit = F.write_bit(proc)
        target = self.shadow[lo:hi:step] if idx is None else self.shadow
        if idx is None:
            target |= wbit
            if proc is Processor.GPU:
                target |= F.LAST_WRITE_GPU
            else:
                target &= np.uint8(~F.LAST_WRITE_GPU & 0xFF)
        else:
            self.shadow[idx] |= wbit
            if proc is Processor.GPU:
                self.shadow[idx] |= F.LAST_WRITE_GPU
            else:
                self.shadow[idx] &= np.uint8(~F.LAST_WRITE_GPU & 0xFF)

    def record_read(self, proc: Processor, lo: int, hi: int,
                    idx: np.ndarray | None = None, step: int = 1) -> None:
        """Mark words read by ``proc``, classified by value origin."""
        if idx is None:
            window = self.shadow[lo:hi:step]
            origin_gpu = (window & F.LAST_WRITE_GPU) != 0
            gpu_origin_bit = F.read_bit_for(proc, True)
            cpu_origin_bit = F.read_bit_for(proc, False)
            window[origin_gpu] |= gpu_origin_bit
            window[~origin_gpu] |= cpu_origin_bit
        else:
            window = self.shadow[idx]
            origin_gpu = (window & F.LAST_WRITE_GPU) != 0
            window[origin_gpu] |= F.read_bit_for(proc, True)
            window[~origin_gpu] |= F.read_bit_for(proc, False)
            self.shadow[idx] = window

    def record_rmw(self, proc: Processor, lo: int, hi: int,
                   idx: np.ndarray | None = None, step: int = 1) -> None:
        """A read-modify-write: the read observes the *old* origin, then
        the write updates ownership -- order matters."""
        self.record_read(proc, lo, hi, idx, step)
        self.record_write(proc, lo, hi, idx, step)

    # ------------------------------------------------------------------ #
    # analysis extraction

    def counts(self) -> AccessCounts:
        """Aggregate Fig 4-style counters for the current epoch."""
        s = self.shadow
        accessed = (s & F.EPOCH_MASK) != 0
        return AccessCounts(
            cpu_written=int(((s & F.CPU_WROTE) != 0).sum()),
            gpu_written=int(((s & F.GPU_WROTE) != 0).sum()),
            read_cc=int(((s & F.READ_CC) != 0).sum()),
            read_cg=int(((s & F.READ_CG) != 0).sum()),
            read_gc=int(((s & F.READ_GC) != 0).sum()),
            read_gg=int(((s & F.READ_GG) != 0).sum()),
            accessed_words=int(accessed.sum()),
            total_words=self.nwords,
        )

    def cpu_accessed(self) -> np.ndarray:
        """Mask of words the CPU touched this epoch."""
        return (self.shadow & (F.CPU_WROTE | F.READ_CC | F.READ_GC)) != 0

    def gpu_accessed(self) -> np.ndarray:
        """Mask of words the GPU touched this epoch."""
        return (self.shadow & (F.GPU_WROTE | F.READ_CG | F.READ_GG)) != 0

    def written(self) -> np.ndarray:
        """Mask of words written this epoch (by either processor)."""
        return (self.shadow & (F.CPU_WROTE | F.GPU_WROTE)) != 0

    def alternating_words(self) -> int:
        """Words accessed by *both* processors with at least one write --
        the paper's alternating-access criterion."""
        return int((self.cpu_accessed() & self.gpu_accessed() & self.written()).sum())

    def category_masks(self) -> dict[str, np.ndarray]:
        """Per-word boolean masks for access-map figures (Fig 5/7/8/10)."""
        s = self.shadow
        return {
            "cpu_write": (s & F.CPU_WROTE) != 0,
            "gpu_write": (s & F.GPU_WROTE) != 0,
            "cpu_read": (s & (F.READ_CC | F.READ_GC)) != 0,
            "gpu_read": (s & (F.READ_CG | F.READ_GG)) != 0,
            "gpu_read_cpu_origin": (s & F.READ_CG) != 0,
            "gpu_read_gpu_origin": (s & F.READ_GG) != 0,
            "cpu_read_gpu_origin": (s & F.READ_GC) != 0,
            "accessed": (s & F.EPOCH_MASK) != 0,
        }

    def reset(self) -> None:
        """Epoch reset: clear access bits, keep the last-writer bit."""
        self.shadow &= np.uint8(~F.EPOCH_MASK & 0xFF)

"""Whole-grid vectorization: lower one kernel to a single numpy pass.

Two stages:

1. A *varying analysis* fixpoint (:func:`analyze_kernel`) marks every
   kernel local whose value can differ between threads (seeded by
   ``threadIdx``/``blockIdx`` uses, propagated through assignments and
   enclosing varying conditions).  Kernels with divergent loops
   (lane-dependent trip counts), divergent ``break``/``continue``, or
   value-returning ``return`` bail -- those need per-thread control flow.

2. :class:`VecEmitter` reuses the scalar emitter's statement lowering but
   emits *lane arrays* for varying values: thread indices are int64
   arrays, guard predicates become boolean masks threaded through every
   heap access and local update, and traced accesses call the
   :class:`repro.codegen.gridexec.VecRun` runtime (``_VR``), which
   records batched shadow/heat plans instead of per-thread trace calls.

Uniform expressions (provably equal across lanes) keep the scalar
lowering -- uniform implies no heap access, because every heap access is
"varying" by definition, so the scalar paths stay side-effect-free.

Compilation is memoized by AST digest alone: heat sites travel as
indices into ``CompiledVecKernel.sites`` and are resolved when the
kernel is bound to an interpreter, so one compilation serves both
heat-on and heat-off runs.
"""

from __future__ import annotations

from ..instrument import ast_nodes as A
from ..instrument.typesys import Pointer, Primitive
from .emitter import (
    _TRACE_NAMES,
    CodegenBail,
    ScalarEmitter,
    _has_trace_call,
    kernel_digest,
    resolve_kernel,
)

__all__ = ["CompiledVecKernel", "analyze_kernel", "compile_vec"]

_DIM_BASES = ("threadIdx", "blockIdx", "blockDim", "gridDim")
_VARYING_DIMS = ("threadIdx", "blockIdx")

#: dtype keys a *varying local* may hold (int64/float64 lane carriers
#: reproduce C semantics exactly for these; others fall back).
_VEC_KEYS = frozenset({"i4", "u4", "f4", "f8"})


def _expr_varying(res):
    """Predicate factory: does this expression's value differ by lane?

    Consistent only once the marking fixpoint has converged (symbols'
    ``varying`` flags are read through ``res``).
    """

    def ev(e) -> bool:
        if e is None:
            return False
        t = type(e)
        if t is A.Ident:
            sym = res.map.get(id(e))
            return sym.varying if sym is not None else False
        if t is A.Member:
            if (not e.arrow and isinstance(e.base, A.Ident)
                    and e.base.name in _DIM_BASES):
                return e.base.name in _VARYING_DIMS
            return True  # struct member: the emitter bails anyway
        if t is A.Index:
            return True  # heap access: per-lane by definition
        if t is A.Unary:
            if e.op == "*":
                return True
            return ev(e.operand)
        if t is A.Call:
            return True  # trace wrapper (per-lane) or unsupported call
        if t is A.Assign:
            if isinstance(e.target, A.Ident):
                sym = res.map.get(id(e.target))
                sv = sym.varying if sym is not None else False
                if e.op == "=":
                    return ev(e.value)
                return sv or ev(e.value)
            if e.op == "=":
                return ev(e.value)
            return True  # heap compound: old value loaded per lane
        if t is A.Ternary:
            return ev(e.cond) or ev(e.then) or ev(e.other)
        if t is A.Binary:
            return ev(e.left) or ev(e.right)
        if t is A.Cast:
            return ev(e.operand)
        return False  # literals, sizeof

    return ev


def analyze_kernel(fn: A.FunctionDef, res) -> bool:
    """Run the varying-marking fixpoint; returns ``has_live`` (whether the
    kernel needs a ``_live`` lane mask for masked early returns).

    ``ctx`` counts the *enclosing varying conditions* at each point.  A
    write makes a symbol varying only when its value is varying or the
    write sits under **more** varying conditions than the declaration did
    (some lanes write, some keep the old value).  Depth comparison is
    exact here: within the declaration's C scope you cannot leave an
    enclosing branch, so equal depth means the identical condition set.
    This keeps the canonical guarded-loop pattern vectorizable --
    ``if (i < n) { for (int k = 0; k < 4; k++) ... }`` has a uniform
    trip count for every *active* lane even though ``k`` lives under a
    varying guard.

    Raises :class:`CodegenBail` (on the final pass only, after the
    fixpoint converged) for control flow the vectorizer cannot mask:
    divergent loops, divergent break/continue, value returns.
    """
    ev = _expr_varying(res)
    state = {"changed": False, "live": False}
    #: id(sym) -> varying depth at declaration (parameters default to 0).
    decl_depth: dict[int, int] = {}

    def mark(sym) -> None:
        if sym is not None and not sym.varying:
            sym.varying = True
            state["changed"] = True

    def written(sym, ctx: int, value_varying: bool) -> None:
        if sym is None:
            return
        if value_varying or ctx > decl_depth.get(id(sym), 0):
            mark(sym)

    def wexpr(e, ctx: int) -> None:
        if e is None:
            return
        t = type(e)
        if t is A.Assign:
            wexpr(e.value, ctx)
            if isinstance(e.target, A.Ident):
                sym = res.map.get(id(e.target))
                vv = ev(e.value) or (e.op != "=" and sym is not None
                                     and sym.varying)
                written(sym, ctx, vv)
            else:
                wexpr(e.target, ctx)
        elif t is A.Unary:
            if e.op in ("++", "--") and isinstance(e.operand, A.Ident):
                sym = res.map.get(id(e.operand))
                written(sym, ctx, sym is not None and sym.varying)
            else:
                wexpr(e.operand, ctx)
        elif t is A.Binary:
            if e.op in ("&&", "||"):
                wexpr(e.left, ctx)
                wexpr(e.right, ctx + (1 if ev(e.left) else 0))
            else:
                wexpr(e.left, ctx)
                wexpr(e.right, ctx)
        elif t is A.Ternary:
            wexpr(e.cond, ctx)
            inner = ctx + (1 if ev(e.cond) else 0)
            wexpr(e.then, inner)
            wexpr(e.other, inner)
        elif t is A.Index:
            wexpr(e.base, ctx)
            wexpr(e.index, ctx)
        elif t is A.Call:
            for a in e.args:
                wexpr(a, ctx)
        elif t is A.Cast:
            wexpr(e.operand, ctx)

    def wstmt(s, ctx: int, loopv, final: bool) -> None:
        # ``loopv``: None outside any loop, else whether a varying
        # condition encloses this point *since the nearest loop entry*
        # (break/continue under one would be divergent).
        if s is None:
            return
        t = type(s)
        if t is A.Block:
            for x in s.stmts:
                wstmt(x, ctx, loopv, final)
        elif t is A.DeclStmt:
            for d in s.decls:
                sym = res.map.get(id(d))
                if sym is not None:
                    decl_depth[id(sym)] = ctx
                if d.init is not None:
                    wexpr(d.init, ctx)
                    if ev(d.init):
                        mark(sym)
        elif t is A.ExprStmt:
            wexpr(s.expr, ctx)
        elif t is A.If:
            wexpr(s.cond, ctx)
            cv = ev(s.cond)
            inner = ctx + (1 if cv else 0)
            lv = None if loopv is None else (loopv or cv)
            wstmt(s.then, inner, lv, final)
            wstmt(s.other, inner, lv, final)
        elif t in (A.While, A.DoWhile):
            wexpr(s.cond, ctx)
            if final and ev(s.cond):
                raise CodegenBail("divergent loop condition")
            wstmt(s.body, ctx, False, final)
        elif t is A.For:
            wstmt(s.init, ctx, loopv, final)
            wexpr(s.cond, ctx)
            if final and s.cond is not None and ev(s.cond):
                raise CodegenBail("divergent loop condition")
            wstmt(s.body, ctx, False, final)
            wexpr(s.step, ctx)
        elif t is A.Return:
            if s.value is not None:
                wexpr(s.value, ctx)
                if final:
                    raise CodegenBail("return with a value")
            if ctx:
                state["live"] = True
        elif t in (A.Break, A.Continue):
            if final:
                if loopv is None:
                    raise CodegenBail("break/continue outside loop")
                if loopv:
                    raise CodegenBail("divergent break/continue")
        # Pragma/Directive: nothing

    while True:
        state["changed"] = False
        state["live"] = False
        decl_depth.clear()
        wstmt(fn.body, 0, None, False)
        if not state["changed"]:
            break
    state["live"] = False
    decl_depth.clear()
    wstmt(fn.body, 0, None, True)
    return state["live"]


class CompiledVecKernel:
    """A vectorized kernel lowering (heat sites resolved at bind time)."""

    __slots__ = ("name", "digest", "source", "code", "sites", "param_keys",
                 "loop_trace")

    def __init__(self, name: str, digest: str, source: str,
                 sites: tuple[int, ...], param_keys: tuple[str, ...],
                 loop_trace: bool) -> None:
        self.name = name
        self.digest = digest
        self.source = source
        self.sites = sites
        self.param_keys = param_keys
        #: A trace call sits in a loop condition/step: its heat site line
        #: is iteration-dependent, so heat-on runs must not use this
        #: compilation (the backend falls back to scalar there).
        self.loop_trace = loop_trace
        self.code = compile(source, f"<codegen-vec:{name}>", "exec")


class VecEmitter(ScalarEmitter):
    """Scalar emitter specialized to lane arrays + masks for varying
    values; uniform subtrees fall through to the scalar lowering."""

    def __init__(self, fn: A.FunctionDef, res, has_live: bool) -> None:
        super().__init__(fn, res, heat_on=False)
        self.has_live = has_live
        self.loop_trace = False
        self.conds: list[str] = []
        self._mask_cache: str | None = None
        self._ev = _expr_varying(res)

    # -- masks ----------------------------------------------------------- #

    def push_cond(self, term: str) -> None:
        self.conds.append(term)
        self._mask_cache = None

    def pop_cond(self) -> None:
        self.conds.pop()
        self._mask_cache = None

    def mask(self) -> str:
        if self._mask_cache is not None:
            return self._mask_cache
        parts = (["_live"] if self.has_live else []) + self.conds
        if not parts:
            m = "None"
        elif len(parts) == 1:
            m = parts[0]
        else:
            m = self.tmp()
            self.w(f"{m} = {' & '.join(parts)}")
        self._mask_cache = m
        return m

    # -- overridden infrastructure ---------------------------------------- #

    def _site(self) -> int:
        # Sites are indices resolved at bind time; line-0 sites are
        # legal here (the backend refuses them only when heat is on).
        i = len(self.sites)
        self.sites.append(self.cur_line)
        return i

    def _check_loop_expr(self, e) -> None:
        if e is not None and _has_trace_call(e):
            self.loop_trace = True

    def _vkey(self, ctype) -> str:
        key = self._key(ctype)
        if key in _VEC_KEYS or (key == "u8" and isinstance(ctype, Pointer)):
            return key
        return self.bail(f"varying local of type {ctype.spell()}")

    def emit(self) -> CompiledVecKernel:
        fn = self.fn
        param_keys = tuple(self._key(s.ctype) for s in self.res.params)
        if self.has_live:
            self.w("_live = _VR.ones()")
        self.stmt(fn.body)
        if not self.lines:
            self.w("pass")
        params = "".join(f", {s.pyname}" for s in self.res.params)
        header = f"def _kernel(_VR, _bx, _tx, _bd, _gd{params}):"
        source = header + "\n" + "\n".join(self.lines) + "\n"
        return CompiledVecKernel(fn.name, kernel_digest(fn), source,
                                 tuple(self.sites), param_keys,
                                 self.loop_trace)

    # -- statements -------------------------------------------------------- #

    def stmt(self, s: A.Stmt) -> None:
        self._mask_cache = None  # temps from an earlier statement may be
        #                          out of scope (loop bodies, branches)
        if type(s) is A.Return:
            if s.line:
                self.cur_line = s.line
            if s.value is not None:
                self.bail("return with a value")
            if not self.conds:
                self.w("return")
            else:
                m = self.mask()
                self.w(f"_live = _live & ~{m}")
                self._mask_cache = None
            return
        super().stmt(s)

    def decl(self, s: A.DeclStmt) -> None:
        from ..instrument.typesys import Array, StructType
        for d in s.decls:
            sym = self.res.map.get(id(d))
            if sym is None:
                self.bail(f"unresolved declaration {d.name!r}")
            if isinstance(d.ctype, (StructType, Array)):
                self.bail("aggregate local variable")
            key = self._key(d.ctype)
            if sym.varying:
                key = self._vkey(d.ctype)
            if d.init is None:
                self.w(f"{sym.pyname} = "
                       + ("0.0" if key[0] == "f" else "0"))
                continue
            code, _ = self.expr(d.init)
            # Unconditional even under a mask: C scoping means the
            # variable is only observable inside the masked region.
            if self._ev(d.init):
                self.w(f"{sym.pyname} = _VR.w_{key}({code})")
            else:
                self.w(f"{sym.pyname} = _w_{key}({code})")

    def stmt_if(self, s: A.If) -> None:
        if not self._ev(s.cond):
            super().stmt_if(s)  # branch bodies re-derive masks per stmt
            return
        cc, _ = self.expr(s.cond)
        tc = self.tmp()
        self.w(f"{tc} = _VR.truthy({cc})")
        self.push_cond(tc)
        self.stmt(s.then)
        self.pop_cond()
        if s.other is not None:
            self.push_cond(f"~{tc}")
            self.stmt(s.other)
            self.pop_cond()

    # -- expressions -------------------------------------------------------- #

    def _vbinop(self, op: str, a: str, b: str) -> str:
        if op in ("+", "-", "*"):
            return f"({a} {op} {b})"
        if op == "/":
            return f"_VR.div({a}, {b}, {self.mask()})"
        if op == "%":
            return f"_VR.mod({a}, {b}, {self.mask()})"
        if op in self._CMP_OPS:
            return f"({a} {op} {b})"
        if op in self._BIT_OPS:
            return f"(_VR.asint({a}) {op} _VR.asint({b}))"
        return self.bail(f"binary operator {op!r}")

    def e_unary(self, e: A.Unary):
        op = e.op
        if op == "&":
            return self.bail("address-of")
        if op == "*":
            return self.e_place(e)
        if op in ("++", "--"):
            return self.e_incdec(e)
        if not self._ev(e.operand):
            return super().e_unary(e)
        code, ct = self.expr(e.operand)
        if op == "-":
            return f"(-{code})", ct
        if op == "+":
            return code, ct
        if op == "!":
            return f"_VR.lnot({code})", None
        if op == "~":
            return f"(~_VR.asint({code}))", ct
        return self.bail(f"unary operator {op!r}")

    def e_binary(self, e: A.Binary):
        op = e.op
        if op == ",":
            self.expr(e.left)
            return self.expr(e.right)
        lvar = self._ev(e.left)
        rvar = self._ev(e.right)
        if op in ("&&", "||"):
            if not lvar and not rvar:
                return super().e_binary(e)
            if not lvar:
                return self._uniform_guard(op, e)
            lc, _ = self.expr(e.left)
            tl = self.tmp()
            self.w(f"{tl} = _VR.truthy({lc})")
            self.push_cond(tl if op == "&&" else f"~{tl}")
            rc, _ = self.expr(e.right)
            self.pop_cond()
            t = self.tmp()
            joiner = "&" if op == "&&" else "|"
            self.w(f"{t} = ({tl} {joiner} _VR.truthy({rc}))")
            return t, None
        if not (lvar or rvar):
            return super().e_binary(e)
        lc, lt = self.expr(e.left)
        rc, rt = self.expr(e.right)
        ltp = isinstance(lt, Pointer)
        rtp = isinstance(rt, Pointer)
        if ltp and op in ("+", "-") and not rtp:
            return f"({lc} {op} {rc} * {lt.target.size})", lt
        if rtp and op == "+":
            return f"({rc} + {lc} * {rt.target.size})", rt
        if ltp and rtp and op == "-":
            return f"(({lc} - {rc}) // {lt.target.size})", None
        code = self._vbinop(op, lc, rc)
        return code, (lt if ltp else (lt if lt is not None else rt))

    def _uniform_guard(self, op: str, e: A.Binary):
        """``uniform && varying`` / ``uniform || varying``: a Python
        ``if`` on the uniform side guards the varying side."""
        lc, _ = self.expr(e.left)
        t = self.tmp()
        taken = "if" if op == "&&" else "else"
        self.w(f"if {lc}:")
        self.depth += 1
        self._mask_cache = None
        if taken == "if":
            rc, _ = self.expr(e.right)
            self.w(f"{t} = _VR.asint(_VR.truthy({rc}))")
        else:
            self.w(f"{t} = 1")
        self.depth -= 1
        self.w("else:")
        self.depth += 1
        self._mask_cache = None
        if taken == "if":
            self.w(f"{t} = 0")
        else:
            rc, _ = self.expr(e.right)
            self.w(f"{t} = _VR.asint(_VR.truthy({rc}))")
        self.depth -= 1
        self._mask_cache = None
        return t, None

    def e_ternary(self, e: A.Ternary):
        if not self._ev(e.cond):
            # Uniform condition: a real Python branch; the untaken side
            # is never evaluated (matches the interpreter).
            cc, _ = self.expr(e.cond)
            t = self.tmp()
            self.w(f"if {cc}:")
            self.depth += 1
            self._mask_cache = None
            tc, tt = self.expr(e.then)
            self.w(f"{t} = {tc}")
            self.depth -= 1
            self.w("else:")
            self.depth += 1
            self._mask_cache = None
            oc, ot = self.expr(e.other)
            self.w(f"{t} = {oc}")
            self.depth -= 1
            self._mask_cache = None
            return t, self._join_ternary(tt, ot)
        cc, _ = self.expr(e.cond)
        tc = self.tmp()
        self.w(f"{tc} = _VR.truthy({cc})")
        self.push_cond(tc)
        tcode, tt = self.expr(e.then)
        self.pop_cond()
        self.push_cond(f"~{tc}")
        ocode, ot = self.expr(e.other)
        self.pop_cond()
        t = self.tmp()
        self.w(f"{t} = _VR.where({tc}, {tcode}, {ocode})")
        return t, self._join_ternary(tt, ot)

    def _join_ternary(self, tt, ot):
        ttp = isinstance(tt, Pointer)
        otp = isinstance(ot, Pointer)
        if ttp != otp:
            self.bail("ternary mixing pointer and non-pointer")
        if ttp and tt.target.size != ot.target.size:
            self.bail("ternary mixing pointer target sizes")
        return tt if tt is not None else ot

    def e_cast(self, e: A.Cast):
        if not self._ev(e.operand):
            return super().e_cast(e)
        code, _ = self.expr(e.operand)
        if isinstance(e.ctype, Pointer) or (
                isinstance(e.ctype, Primitive) and not e.ctype.is_float):
            return f"_VR.asint({code})", e.ctype
        return f"_VR.w_f8({code})", e.ctype

    def e_place(self, e: A.Expr):
        addr, ct = self.vec_addr(e)
        key = self._key(ct)
        t = self.tmp()
        self.w(f"{t} = _VR.ld('{key}', {addr}, {self.mask()})")
        return t, ct

    def e_incdec(self, e: A.Unary):
        sign = "+" if e.op == "++" else "-"
        target = e.operand
        if isinstance(target, A.Ident):
            sym = self.res.map.get(id(target))
            if sym is None:
                self.bail(f"unresolved identifier {target.name!r}")
            if not sym.varying:
                return super().e_incdec(e)
            ct = sym.ctype
            key = self._vkey(ct)
            step = ct.target.size if isinstance(ct, Pointer) else 1
            old = None
            if not e.prefix:
                old = self.tmp()
                self.w(f"{old} = {sym.pyname}")
            new = self.tmp()
            self.w(f"{new} = {sym.pyname} {sign} {step}")
            m = self.mask()
            wrap = f"_VR.w_{key}({new})"
            if m == "None":
                self.w(f"{sym.pyname} = {wrap}")
            else:
                self.w(f"{sym.pyname} = _VR.sel({m}, {wrap}, {sym.pyname})")
            return (new if e.prefix else old), ct
        name = None
        tnode = target
        if isinstance(target, A.Call):
            if not (isinstance(target.callee, A.Ident)
                    and target.callee.name in _TRACE_NAMES):
                self.bail("call is not an l-value")
            name = target.callee.name
            tnode = target.args[0]
        addr, ct = self.vec_addr(tnode)
        key = self._key(ct)
        step = ct.target.size if isinstance(ct, Pointer) else 1
        ta = self.tmp()
        self.w(f"{ta} = {addr}")
        m = self.mask()
        old = self.tmp()
        res = None
        if name == "traceRW":
            res = self.tmp()
            self.w(f"{res}, {old} = _VR.rmw('{key}', {self._site()}, "
                   f"{ta}, {m})")
        elif name == "traceR":
            self.w(f"{old} = _VR.rd('{key}', {self._site()}, {ta}, {m})")
        else:  # traceW or untraced: raw load of the old value
            self.w(f"{old} = _VR.ld('{key}', {ta}, {m})")
        new = self.tmp()
        self.w(f"{new} = {old} {sign} {step}")
        if name == "traceRW":
            self.w(f"_VR.commit({res}, {m}, {new})")
        elif name == "traceW":
            self.w(f"_VR.wr('{key}', {self._site()}, {ta}, {m}, {new})")
        else:
            self.w(f"_VR.st('{key}', {ta}, {m}, {new})")
        return (new if e.prefix else old), ct

    def e_assign(self, e: A.Assign):
        target = e.target
        if isinstance(target, A.Ident):
            sym = self.res.map.get(id(target))
            if sym is None:
                self.bail(f"unresolved identifier {target.name!r}")
            ct = sym.ctype
            vc, _ = self.expr(e.value)
            tv = self.tmp()
            self.w(f"{tv} = {vc}")
            if not sym.varying:
                # Fixpoint guarantees: uniform target => uniform value
                # and uniform enclosing control flow.
                key = self._key(ct)
                if e.op == "=":
                    new = tv
                else:
                    op = e.op[:-1]
                    val = tv
                    if isinstance(ct, Pointer) and op in ("+", "-"):
                        val = f"({tv} * {ct.target.size})"
                    new = self.tmp()
                    self.w(f"{new} = {self._binop(op, sym.pyname, val)}")
                self.w(f"{sym.pyname} = _w_{key}({new})")
                return new, ct
            key = self._vkey(ct)
            nvar = self._ev(e.value)
            if e.op == "=":
                new = tv
            else:
                op = e.op[:-1]
                val = tv
                if isinstance(ct, Pointer) and op in ("+", "-"):
                    val = f"({tv} * {ct.target.size})"
                new = self.tmp()
                self.w(f"{new} = {self._vbinop(op, sym.pyname, val)}")
                nvar = True
            wrap = (f"_VR.w_{key}({new})" if nvar else f"_w_{key}({new})")
            m = self.mask()
            if m == "None":
                self.w(f"{sym.pyname} = {wrap}")
            else:
                self.w(f"{sym.pyname} = _VR.sel({m}, {wrap}, {sym.pyname})")
            return new, ct
        # Heap target (possibly behind a trace wrapper).
        vc, _ = self.expr(e.value)
        tv = self.tmp()
        self.w(f"{tv} = {vc}")
        name = None
        tnode = target
        if isinstance(target, A.Call):
            if not (isinstance(target.callee, A.Ident)
                    and target.callee.name in _TRACE_NAMES):
                self.bail("call is not an l-value")
            name = target.callee.name
            tnode = target.args[0]
        addr, ct = self.vec_addr(tnode)
        key = self._key(ct)
        ta = self.tmp()
        self.w(f"{ta} = {addr}")
        m = self.mask()
        if e.op == "=":
            if name is None:
                self.w(f"_VR.st('{key}', {ta}, {m}, {tv})")
            elif name == "traceW":
                self.w(f"_VR.wr('{key}', {self._site()}, {ta}, {m}, {tv})")
            elif name == "traceR":
                self.w(f"_VR.rd('{key}', {self._site()}, {ta}, {m})")
                self.w(f"_VR.st('{key}', {ta}, {m}, {tv})")
            else:  # traceRW
                r = self.tmp()
                self.w(f"{r}, _ = _VR.rmw('{key}', {self._site()}, "
                       f"{ta}, {m})")
                self.w(f"_VR.commit({r}, {m}, {tv})")
            return tv, ct
        op = e.op[:-1]
        old = self.tmp()
        res = None
        if name == "traceRW":
            res = self.tmp()
            self.w(f"{res}, {old} = _VR.rmw('{key}', {self._site()}, "
                   f"{ta}, {m})")
        elif name == "traceR":
            self.w(f"{old} = _VR.rd('{key}', {self._site()}, {ta}, {m})")
        else:  # traceW or untraced: raw load
            self.w(f"{old} = _VR.ld('{key}', {ta}, {m})")
        val = tv
        if isinstance(ct, Pointer) and op in ("+", "-"):
            val = f"({tv} * {ct.target.size})"
        new = self.tmp()
        self.w(f"{new} = {self._vbinop(op, old, val)}")
        if name == "traceRW":
            self.w(f"_VR.commit({res}, {m}, {new})")
        elif name == "traceW":
            self.w(f"_VR.wr('{key}', {self._site()}, {ta}, {m}, {new})")
        else:
            self.w(f"_VR.st('{key}', {ta}, {m}, {new})")
        return new, ct

    def e_call(self, e: A.Call):
        if not isinstance(e.callee, A.Ident):
            return self.bail("indirect call")
        name = e.callee.name
        if name in _TRACE_NAMES:
            addr, ct = self.vec_addr(e.args[0])
            key = self._key(ct)
            ta = self.tmp()
            self.w(f"{ta} = {addr}")
            m = self.mask()
            t = self.tmp()
            if name == "traceR":
                self.w(f"{t} = _VR.rd('{key}', {self._site()}, {ta}, {m})")
            elif name == "traceRW":
                # RMW event; the value is unchanged, so no commit.
                self.w(f"_, {t} = _VR.rmw('{key}', {self._site()}, "
                       f"{ta}, {m})")
            else:  # traceW as an r-value: W event, raw load of the value
                self.w(f"{t} = _VR.ld('{key}', {ta}, {m})")
                self.w(f"_VR.wr('{key}', {self._site()}, {ta}, {m}, {t})")
            return t, ct
        if name == "printf":
            return self.bail("printf in vectorized kernel")
        return self.bail(f"call to {name!r} inside kernel")

    # -- addresses (no trace firing; callers peel trace wrappers) ---------- #

    def vec_addr(self, e: A.Expr):
        t = type(e)
        if t is A.Index:
            bc, bt = self.expr(e.base)
            ic, _ = self.expr(e.index)
            if not isinstance(bt, Pointer):
                self.bail("indexing a non-pointer value")
            if self._ev(e.base) or self._ev(e.index):
                return (f"(_VR.asint({bc}) + _VR.asint({ic}) "
                        f"* {bt.target.size})"), bt.target
            return (f"(int({bc}) + int({ic}) * {bt.target.size})",
                    bt.target)
        if t is A.Unary and e.op == "*":
            oc, ot = self.expr(e.operand)
            if not isinstance(ot, Pointer):
                self.bail("dereference of statically non-pointer value")
            if self._ev(e.operand):
                return f"_VR.asint({oc})", ot.target
            return f"int({oc})", ot.target
        if t is A.Cast:
            return self.vec_addr(e.operand)
        if t is A.Call:
            return self.bail("nested trace l-value")
        return self.bail(f"unsupported l-value {t.__name__}")

    def addr_of(self, e: A.Expr):  # pragma: no cover - must not be used
        raise AssertionError("VecEmitter lowers l-values via vec_addr")


# --------------------------------------------------------------------- #
# memoized compilation (digest only: sites travel as indices)

_VEC_CACHE: dict[str, CompiledVecKernel | CodegenBail] = {}


def compile_vec(fn: A.FunctionDef) -> CompiledVecKernel:
    """Compile (or fetch) the vectorized lowering of ``fn``; raises
    :class:`CodegenBail` (cached) when it cannot be proven safe."""
    key = kernel_digest(fn)
    hit = _VEC_CACHE.get(key)
    if hit is not None:
        if isinstance(hit, CodegenBail):
            raise hit
        return hit
    try:
        if fn.body is None:
            raise CodegenBail("kernel without a body")
        res = resolve_kernel(fn)
        has_live = analyze_kernel(fn, res)
        compiled = VecEmitter(fn, res, has_live).emit()
    except CodegenBail as bail:
        _VEC_CACHE[key] = bail
        raise
    _VEC_CACHE[key] = compiled
    return compiled

"""Scalar (per-thread) Python code generation for mini-CUDA kernels.

Lowers one instrumented kernel :class:`~repro.instrument.ast_nodes.FunctionDef`
to Python source that replicates the tree-walking interpreter's observable
behaviour *exactly* -- same trace-call sequence (addresses, sizes, heat
sites), same value semantics (C wraparound on stores, truncating division),
same ``printf`` output -- while paying none of the per-node dispatch cost.

The lowering is temp-based: every side-effecting subexpression (trace
calls, heap loads/stores, assignments, ``++``/``--``, short-circuit
operands, ternaries) becomes a statement assigning a ``_tN`` temporary, so
evaluation order is pinned to the interpreter's.  Locals become Python
variables holding *wrapped* values (the value a re-load of the backing
cell would produce), which keeps heap-trip semantics without memory-backed
cells.  Kernels the emitter cannot prove equivalent raise
:class:`CodegenBail` and the launch falls back to the interpreter.

Compilation is memoized module-wide by a structural AST digest (lines
included -- heat sites depend on them), including *negative* entries so a
bailing kernel is analyzed once, not once per launch.
"""

from __future__ import annotations

import hashlib
from dataclasses import fields as _dataclass_fields

import numpy as np

from ..instrument import ast_nodes as A
from ..instrument.transform import TRACE_FNS
from ..instrument.typesys import (
    Array,
    CType,
    Pointer,
    Primitive,
    StructType,
)
from ..interp.values import InterpError, numpy_dtype

__all__ = [
    "CodegenBail",
    "CompiledKernel",
    "Symbol",
    "compile_scalar",
    "kernel_digest",
    "resolve_kernel",
]

_TRACE_NAMES = set(TRACE_FNS.values())

#: Emitted-code name for each bound trace method.
TRACE_PY = {"traceR": "_TRR", "traceW": "_TRW", "traceRW": "_TRX"}

#: Batch kinds for the vectorized executor (matches repro.runtime.batch).
TRACE_KIND = {"traceR": 0, "traceW": 1, "traceRW": 2}

_DIM_BASES = ("threadIdx", "blockIdx", "blockDim", "gridDim")

#: threadIdx.x-style builtins -> emitted parameter name.
DIM_PY = {
    "blockIdx_x": "_bx",
    "threadIdx_x": "_tx",
    "blockDim_x": "_bd",
    "gridDim_x": "_gd",
}


class CodegenBail(Exception):
    """The kernel cannot be compiled by this backend; fall back."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------- #
# structural digest (memoization key)

_CTYPES = (Primitive, Pointer, Array, StructType)


def _serialize(obj, out: list) -> None:
    if obj is None:
        out.append("~")
    elif isinstance(obj, A.Node):
        out.append(type(obj).__name__)
        out.append(str(getattr(obj, "line", 0)))
        for f in _dataclass_fields(obj):
            _serialize(getattr(obj, f.name), out)
    elif isinstance(obj, _CTYPES):
        out.append(f"T{obj.spell()}:{obj.size}")
    elif isinstance(obj, (list, tuple)):
        out.append(f"L{len(obj)}")
        for x in obj:
            _serialize(x, out)
    elif isinstance(obj, (set, frozenset)):
        out.append("S" + ",".join(sorted(str(x) for x in obj)))
    else:
        out.append(repr(obj))


def kernel_digest(fn: A.FunctionDef) -> str:
    """Stable structural hash of a kernel (source lines included)."""
    out: list[str] = []
    _serialize(fn, out)
    return hashlib.sha1("\x1f".join(out).encode()).hexdigest()


# --------------------------------------------------------------------- #
# symbol resolution (shared by the scalar and vector emitters)


class Symbol:
    """One kernel-local variable (parameter or declaration)."""

    __slots__ = ("name", "pyname", "ctype", "is_param", "varying")

    def __init__(self, name: str, pyname: str, ctype: CType,
                 is_param: bool = False) -> None:
        self.name = name
        self.pyname = pyname
        self.ctype = ctype
        self.is_param = is_param
        #: Set by the vectorizer's fixpoint: does the value differ by lane?
        self.varying = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Symbol({self.name!r} as {self.pyname}, varying={self.varying})"


class Resolution:
    """Scope-resolved view of one kernel.

    ``map`` keys ``id(node)`` for every :class:`~ast_nodes.Ident` use and
    :class:`~ast_nodes.VarDecl`/:class:`~ast_nodes.Param` declaration the
    resolver could bind; unresolved identifiers (globals, function names)
    stay unmapped and make the emitters bail.
    """

    __slots__ = ("map", "symbols", "params")

    def __init__(self) -> None:
        self.map: dict[int, Symbol] = {}
        self.symbols: list[Symbol] = []
        self.params: list[Symbol] = []


def resolve_kernel(fn: A.FunctionDef) -> Resolution:
    """Bind identifier uses to symbols, mirroring the interpreter's
    environment chain (params scope -> block child scopes; ``for`` gets
    its own init scope; declarations bind before their initializer)."""
    res = Resolution()
    used: dict[str, int] = {}
    scopes: list[dict[str, Symbol]] = [{}]

    def mkname(name: str) -> str:
        n = used.get(name, 0) + 1
        used[name] = n
        return f"v_{name}" if n == 1 else f"v_{name}__{n}"

    def declare(name: str, ctype: CType, node, is_param: bool = False) -> Symbol:
        sym = Symbol(name, mkname(name), ctype, is_param)
        scopes[-1][name] = sym
        res.symbols.append(sym)
        res.map[id(node)] = sym
        return sym

    def look(name: str) -> Symbol | None:
        for sc in reversed(scopes):
            sym = sc.get(name)
            if sym is not None:
                return sym
        return None

    def expr(e) -> None:
        if e is None:
            return
        t = type(e)
        if t is A.Ident:
            sym = look(e.name)
            if sym is not None:
                res.map[id(e)] = sym
        elif t is A.Member:
            if not (not e.arrow and isinstance(e.base, A.Ident)
                    and e.base.name in _DIM_BASES):
                expr(e.base)
        elif t is A.Call:
            if not isinstance(e.callee, A.Ident):
                expr(e.callee)
            for a in e.args:
                expr(a)
        elif t is A.Unary:
            expr(e.operand)
        elif t is A.Binary:
            expr(e.left)
            expr(e.right)
        elif t is A.Assign:
            expr(e.value)
            expr(e.target)
        elif t is A.Ternary:
            expr(e.cond)
            expr(e.then)
            expr(e.other)
        elif t is A.Index:
            expr(e.base)
            expr(e.index)
        elif t is A.Cast:
            expr(e.operand)
        elif t is A.SizeofExpr:
            expr(e.operand)
        elif t is A.KernelLaunch:
            expr(e.grid)
            expr(e.block)
            for a in e.args:
                expr(a)
        elif t is A.NewExpr:
            expr(e.count)
            expr(e.init)

    def stmt(s) -> None:
        if s is None:
            return
        t = type(s)
        if t is A.Block:
            scopes.append({})
            for x in s.stmts:
                stmt(x)
            scopes.pop()
        elif t is A.DeclStmt:
            for d in s.decls:
                declare(d.name, d.ctype, d)
                if d.init is not None:
                    expr(d.init)
        elif t is A.ExprStmt:
            expr(s.expr)
        elif t is A.If:
            expr(s.cond)
            stmt(s.then)
            stmt(s.other)
        elif t is A.While:
            expr(s.cond)
            stmt(s.body)
        elif t is A.DoWhile:
            stmt(s.body)
            expr(s.cond)
        elif t is A.For:
            scopes.append({})
            stmt(s.init)
            expr(s.cond)
            stmt(s.body)
            expr(s.step)
            scopes.pop()
        elif t is A.Return:
            expr(s.value)
        # Break/Continue/Pragma/Directive: nothing to resolve

    for p in fn.params:
        res.params.append(declare(p.name, p.ctype, p, is_param=True))
    stmt(fn.body)
    return res


def dtype_key(ctype: CType) -> str:
    """``i4``/``u8``/``f4``-style key for a scalar ctype (pointers are
    ``u8``); raises :class:`CodegenBail` for aggregates."""
    try:
        dt = numpy_dtype(ctype)
    except InterpError:
        raise CodegenBail(f"unsupported value type {ctype.spell()}") from None
    return dt.kind + str(dt.itemsize)


#: dtype key -> numpy dtype (every key the emitters can produce).
DTYPES: dict[str, np.dtype] = {
    "i1": np.dtype(np.int8), "u1": np.dtype(np.uint8),
    "i2": np.dtype(np.int16),
    "i4": np.dtype(np.int32), "u4": np.dtype(np.uint32),
    "i8": np.dtype(np.int64), "u8": np.dtype(np.uint64),
    "f4": np.dtype(np.float32), "f8": np.dtype(np.float64),
}


def _int_wrap(bits: int, signed: bool):
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    full = 1 << bits

    def wrap(v):
        iv = int(v) & mask
        if signed and iv >= half:
            iv -= full
        return iv

    return wrap


def _wrap_f4(v) -> float:
    return float(np.float32(v))


#: dtype key -> scalar store-wrap (the value a reload of a memory cell of
#: that dtype would produce after ``repro.interp.values.store``).
WRAPS = {
    "i1": _int_wrap(8, True), "u1": _int_wrap(8, False),
    "i2": _int_wrap(16, True),
    "i4": _int_wrap(32, True), "u4": _int_wrap(32, False),
    "i8": _int_wrap(64, True), "u8": _int_wrap(64, False),
    "f4": _wrap_f4, "f8": float,
}


# --------------------------------------------------------------------- #
# scalar emitter


class CompiledKernel:
    """A kernel lowered to Python, ready to bind per interpreter."""

    __slots__ = ("name", "digest", "heat_on", "source", "code", "sites",
                 "param_keys")

    def __init__(self, name: str, digest: str, heat_on: bool, source: str,
                 sites: tuple[int, ...], param_keys: tuple[str, ...]) -> None:
        self.name = name
        self.digest = digest
        self.heat_on = heat_on
        self.source = source
        self.sites = sites
        self.param_keys = param_keys
        self.code = compile(source, f"<codegen:{name}>", "exec")


class ScalarEmitter:
    """Emits the per-thread Python function for one kernel."""

    def __init__(self, fn: A.FunctionDef, res: Resolution,
                 heat_on: bool) -> None:
        self.fn = fn
        self.res = res
        self.heat_on = heat_on
        self.lines: list[str] = []
        self.depth = 1
        self.ntmp = 0
        self.sites: list[int] = []
        self.cur_line = 0
        self.loop_stack: list[dict] = []

    # -- writer helpers ------------------------------------------------- #

    def w(self, text: str) -> None:
        self.lines.append("    " * self.depth + text)

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def bail(self, why: str):
        raise CodegenBail(why)

    def _key(self, ctype: CType) -> str:
        return dtype_key(ctype)

    def _site(self) -> int:
        if self.heat_on and not self.cur_line:
            self.bail("trace without source line (heat attribution)")
        i = len(self.sites)
        self.sites.append(self.cur_line)
        return i

    # -- entry ----------------------------------------------------------- #

    def emit(self) -> CompiledKernel:
        fn = self.fn
        param_keys = []
        for sym in self.res.params:
            param_keys.append(self._key(sym.ctype))
        self.stmt(fn.body)
        if not self.lines:
            self.w("pass")
        params = "".join(f", {s.pyname}" for s in self.res.params)
        header = f"def _kernel(_bx, _tx, _bd, _gd{params}):"
        source = header + "\n" + "\n".join(self.lines) + "\n"
        return CompiledKernel(fn.name, kernel_digest(fn), self.heat_on,
                              source, tuple(self.sites), tuple(param_keys))

    # -- statements ------------------------------------------------------ #

    def stmt(self, s: A.Stmt) -> None:
        if s.line:
            self.cur_line = s.line
        t = type(s)
        if t is A.Block:
            for x in s.stmts:
                self.stmt(x)
        elif t is A.ExprStmt:
            self.expr(s.expr)
        elif t is A.DeclStmt:
            self.decl(s)
        elif t is A.If:
            self.stmt_if(s)
        elif t is A.While:
            self.stmt_while(s)
        elif t is A.DoWhile:
            self.stmt_do_while(s)
        elif t is A.For:
            self.stmt_for(s)
        elif t is A.Return:
            if s.value is not None:
                self.expr(s.value)
            self.w("return")
        elif t is A.Break:
            self.emit_break()
        elif t is A.Continue:
            self.emit_continue()
        elif t in (A.Pragma, A.Directive):
            pass
        else:
            self.bail(f"cannot compile {t.__name__}")

    def decl(self, s: A.DeclStmt) -> None:
        for d in s.decls:
            sym = self.res.map.get(id(d))
            if sym is None:
                self.bail(f"unresolved declaration {d.name!r}")
            if isinstance(d.ctype, (StructType, Array)):
                self.bail("aggregate local variable")
            key = self._key(d.ctype)
            if d.init is not None:
                code, _ = self.expr(d.init)
                self.w(f"{sym.pyname} = _w_{key}({code})")
            else:
                self.w(f"{sym.pyname} = " + ("0.0" if key[0] == "f" else "0"))

    def _indented(self, body_fn) -> None:
        self.depth += 1
        mark = len(self.lines)
        body_fn()
        if len(self.lines) == mark:
            self.w("pass")
        self.depth -= 1

    def stmt_if(self, s: A.If) -> None:
        cond, _ = self.expr(s.cond)
        self.w(f"if {cond}:")
        self._indented(lambda: self.stmt(s.then))
        if s.other is not None:
            self.w("else:")
            self._indented(lambda: self.stmt(s.other))

    def _check_loop_expr(self, e) -> None:
        """Heat sites are compile-time line constants; the interpreter's
        line at loop-condition/step evaluation is the *last executed body
        statement's* line, which is iteration-dependent.  Bail rather than
        mis-attribute."""
        if self.heat_on and e is not None and _has_trace_call(e):
            self.bail("traced access in loop condition/step")

    def stmt_while(self, s: A.While) -> None:
        self._check_loop_expr(s.cond)
        self.w("while True:")
        self.depth += 1
        cond, _ = self.expr(s.cond)
        self.w(f"if not {cond}:")
        self.depth += 1
        self.w("break")
        self.depth -= 1
        self.loop_stack.append({"break": "break", "continue": "continue"})
        self.stmt(s.body)
        self.loop_stack.pop()
        self.depth -= 1

    def stmt_do_while(self, s: A.DoWhile) -> None:
        self._check_loop_expr(s.cond)
        self.w("while True:")
        self.depth += 1
        self._tail_loop_body(s.body)
        cond, _ = self.expr(s.cond)
        self.w(f"if not {cond}:")
        self.depth += 1
        self.w("break")
        self.depth -= 1
        self.depth -= 1

    def stmt_for(self, s: A.For) -> None:
        self._check_loop_expr(s.cond)
        self._check_loop_expr(s.step)
        if s.init is not None:
            self.stmt(s.init)
        self.w("while True:")
        self.depth += 1
        if s.cond is not None:
            cond, _ = self.expr(s.cond)
            self.w(f"if not {cond}:")
            self.depth += 1
            self.w("break")
            self.depth -= 1
        self._tail_loop_body(s.body)
        if s.step is not None:
            self.expr(s.step)
        self.depth -= 1

    def _tail_loop_body(self, body: A.Stmt) -> None:
        """Loop body whose ``continue`` must fall through to trailing
        statements (the ``for`` step / ``do-while`` condition): wrap in a
        run-once inner loop so ``continue`` lowers to ``break``."""
        has_break, has_continue = _scan_break_continue(body)
        if not has_continue:
            self.loop_stack.append({"break": "break", "continue": None})
            self.stmt(body)
            self.loop_stack.pop()
            return
        flag = self.tmp() if has_break else None
        if flag is not None:
            self.w(f"{flag} = 0")
        once = self.tmp()
        self.w(f"for {once} in (0,):")
        self.depth += 1
        mark = len(self.lines)
        self.loop_stack.append({"break": flag or "break", "continue": "break"})
        self.stmt(body)
        self.loop_stack.pop()
        if len(self.lines) == mark:
            self.w("pass")
        self.depth -= 1
        if flag is not None:
            self.w(f"if {flag}:")
            self.depth += 1
            self.w("break")
            self.depth -= 1

    def emit_break(self) -> None:
        if not self.loop_stack:
            self.bail("break outside loop")
        kind = self.loop_stack[-1]["break"]
        if kind == "break":
            self.w("break")
        else:  # flag variable: exit the run-once wrapper, then the loop
            self.w(f"{kind} = 1")
            self.w("break")

    def emit_continue(self) -> None:
        if not self.loop_stack:
            self.bail("continue outside loop")
        kind = self.loop_stack[-1]["continue"]
        if kind is None:
            self.bail("continue outside loop")
        self.w(kind)

    # -- expressions ----------------------------------------------------- #

    def expr(self, e: A.Expr) -> tuple[str, CType | None]:
        t = type(e)
        if t is A.IntLit:
            return repr(e.value), None
        if t is A.FloatLit:
            return repr(e.value), None
        if t is A.BoolLit:
            return str(int(e.value)), None
        if t is A.NullLit:
            return "0", None
        if t is A.CharLit:
            body = e.text[1:-1].encode().decode("unicode_escape")
            return str(ord(body)), None
        if t is A.StringLit:
            return repr(e.text[1:-1]), None
        if t is A.Ident:
            return self.e_ident(e)
        if t is A.Member:
            return self.e_member(e)
        if t is A.Index:
            return self.e_place(e)
        if t is A.Unary:
            return self.e_unary(e)
        if t is A.Binary:
            return self.e_binary(e)
        if t is A.Assign:
            return self.e_assign(e)
        if t is A.Ternary:
            return self.e_ternary(e)
        if t is A.Call:
            return self.e_call(e)
        if t is A.Cast:
            return self.e_cast(e)
        if t is A.SizeofType:
            return str(e.ctype.size), None
        return self.bail(f"cannot compile {t.__name__} expression")

    def e_ident(self, e: A.Ident) -> tuple[str, CType | None]:
        sym = self.res.map.get(id(e))
        if sym is None:
            self.bail(f"unresolved identifier {e.name!r}")
        if isinstance(sym.ctype, (StructType, Array)):
            self.bail("aggregate-typed identifier")
        return sym.pyname, sym.ctype

    def e_member(self, e: A.Member) -> tuple[str, CType | None]:
        if not e.arrow and isinstance(e.base, A.Ident) \
                and e.base.name in _DIM_BASES:
            py = DIM_PY.get(f"{e.base.name}_{e.name}")
            if py is None:
                self.bail(f"{e.base.name}.{e.name} (only .x is modeled)")
            return py, None
        return self.bail("struct member access")

    def e_place(self, e: A.Expr) -> tuple[str, CType | None]:
        """Untraced heap read (``a[i]`` / ``*p`` outside instrumentation)."""
        addr, ct = self.addr_of(e)
        key = self._key(ct)
        t = self.tmp()
        self.w(f"{t} = _ld_{key}({addr})")
        return t, ct

    def e_unary(self, e: A.Unary) -> tuple[str, CType | None]:
        op = e.op
        if op == "&":
            return self.bail("address-of")
        if op == "*":
            return self.e_place(e)
        if op in ("++", "--"):
            return self.e_incdec(e)
        code, ct = self.expr(e.operand)
        if op == "-":
            return f"(-{code})", ct
        if op == "+":
            return code, ct
        if op == "!":
            return f"int(not {code})", None
        if op == "~":
            return f"(~int({code}))", ct
        return self.bail(f"unary operator {op!r}")

    def e_incdec(self, e: A.Unary) -> tuple[str, CType | None]:
        sign = "+" if e.op == "++" else "-"
        target = e.operand
        if isinstance(target, A.Ident):
            sym = self.res.map.get(id(target))
            if sym is None:
                self.bail(f"unresolved identifier {target.name!r}")
            ct = sym.ctype
            key = self._key(ct)
            step = ct.target.size if isinstance(ct, Pointer) else 1
            old = None
            if not e.prefix:
                old = self.tmp()
                self.w(f"{old} = {sym.pyname}")
            new = self.tmp()
            self.w(f"{new} = {sym.pyname} {sign} {step}")
            self.w(f"{sym.pyname} = _w_{key}({new})")
            return (new if e.prefix else old), ct
        addr, ct = self.addr_of(target)
        key = self._key(ct)
        step = ct.target.size if isinstance(ct, Pointer) else 1
        old = self.tmp()
        self.w(f"{old} = _ld_{key}({addr})")
        new = self.tmp()
        self.w(f"{new} = {old} {sign} {step}")
        self.w(f"_st_{key}({addr}, {new})")
        return (new if e.prefix else old), ct

    def e_binary(self, e: A.Binary) -> tuple[str, CType | None]:
        op = e.op
        if op == ",":
            self.expr(e.left)
            return self.expr(e.right)
        if op == "&&":
            lc, _ = self.expr(e.left)
            t = self.tmp()
            self.w(f"if {lc}:")
            self.depth += 1
            rc, _ = self.expr(e.right)
            self.w(f"{t} = int(bool({rc}))")
            self.depth -= 1
            self.w("else:")
            self.depth += 1
            self.w(f"{t} = 0")
            self.depth -= 1
            return t, None
        if op == "||":
            lc, _ = self.expr(e.left)
            t = self.tmp()
            self.w(f"if {lc}:")
            self.depth += 1
            self.w(f"{t} = 1")
            self.depth -= 1
            self.w("else:")
            self.depth += 1
            rc, _ = self.expr(e.right)
            self.w(f"{t} = int(bool({rc}))")
            self.depth -= 1
            return t, None
        lc, lt = self.expr(e.left)
        rc, rt = self.expr(e.right)
        ltp = isinstance(lt, Pointer)
        rtp = isinstance(rt, Pointer)
        if ltp and op in ("+", "-") and not rtp:
            return f"({lc} {op} {rc} * {lt.target.size})", lt
        if rtp and op == "+":
            return f"({rc} + {lc} * {rt.target.size})", rt
        if ltp and rtp and op == "-":
            return f"(({lc} - {rc}) // {lt.target.size})", None
        code = self._binop(op, lc, rc)
        return code, (lt if ltp else (lt if lt is not None else rt))

    _CMP_OPS = ("==", "!=", "<", ">", "<=", ">=")
    _BIT_OPS = ("&", "|", "^", "<<", ">>")

    def _binop(self, op: str, a: str, b: str) -> str:
        if op in ("+", "-", "*"):
            return f"({a} {op} {b})"
        if op == "/":
            return f"_cdiv({a}, {b})"
        if op == "%":
            return f"_cmod({a}, {b})"
        if op in self._CMP_OPS:
            return f"int({a} {op} {b})"
        if op in self._BIT_OPS:
            return f"(int({a}) {op} int({b}))"
        return self.bail(f"binary operator {op!r}")

    def e_assign(self, e: A.Assign) -> tuple[str, CType | None]:
        vc, _ = self.expr(e.value)
        tv = self.tmp()
        self.w(f"{tv} = {vc}")
        target = e.target
        if isinstance(target, A.Ident):
            sym = self.res.map.get(id(target))
            if sym is None:
                self.bail(f"unresolved identifier {target.name!r}")
            ct = sym.ctype
            key = self._key(ct)
            if e.op == "=":
                new = tv
            else:
                op = e.op[:-1]
                val = tv
                if isinstance(ct, Pointer) and op in ("+", "-"):
                    val = f"({tv} * {ct.target.size})"
                new = self.tmp()
                self.w(f"{new} = {self._binop(op, sym.pyname, val)}")
            self.w(f"{sym.pyname} = _w_{key}({new})")
            return new, ct
        addr, ct = self.addr_of(target)
        key = self._key(ct)
        if e.op == "=":
            new = tv
        else:
            op = e.op[:-1]
            old = self.tmp()
            self.w(f"{old} = _ld_{key}({addr})")
            val = tv
            if isinstance(ct, Pointer) and op in ("+", "-"):
                val = f"({tv} * {ct.target.size})"
            new = self.tmp()
            self.w(f"{new} = {self._binop(op, old, val)}")
        self.w(f"_st_{key}({addr}, {new})")
        return new, ct

    def e_ternary(self, e: A.Ternary) -> tuple[str, CType | None]:
        cc, _ = self.expr(e.cond)
        t = self.tmp()
        self.w(f"if {cc}:")
        self.depth += 1
        tc, tt = self.expr(e.then)
        self.w(f"{t} = {tc}")
        self.depth -= 1
        self.w("else:")
        self.depth += 1
        oc, ot = self.expr(e.other)
        self.w(f"{t} = {oc}")
        self.depth -= 1
        ttp = isinstance(tt, Pointer)
        otp = isinstance(ot, Pointer)
        if ttp != otp:
            self.bail("ternary mixing pointer and non-pointer")
        if ttp and tt.target.size != ot.target.size:
            self.bail("ternary mixing pointer target sizes")
        return t, (tt if tt is not None else ot)

    def e_cast(self, e: A.Cast) -> tuple[str, CType | None]:
        code, _ = self.expr(e.operand)
        if isinstance(e.ctype, Pointer):
            return f"int({code})", e.ctype
        if isinstance(e.ctype, Primitive) and not e.ctype.is_float:
            return f"int({code})", e.ctype
        return f"float({code})", e.ctype

    def e_call(self, e: A.Call) -> tuple[str, CType | None]:
        if not isinstance(e.callee, A.Ident):
            return self.bail("indirect call")
        name = e.callee.name
        if name in _TRACE_NAMES:
            addr, ct = self.addr_of(e)
            key = self._key(ct)
            t = self.tmp()
            self.w(f"{t} = _ld_{key}({addr})")
            return t, ct
        if name == "printf":
            args = [self.expr(a)[0] for a in e.args]
            self.w(f"_printf({', '.join(args)})")
            return "0", None
        return self.bail(f"call to {name!r} inside kernel")

    # -- lvalue addresses ------------------------------------------------ #

    def addr_of(self, e: A.Expr) -> tuple[str, CType]:
        """Lower an lvalue to its address code, firing any trace wrapper
        exactly where the interpreter's ``lvalue()`` would."""
        t = type(e)
        if t is A.Call:
            if not (isinstance(e.callee, A.Ident)
                    and e.callee.name in _TRACE_NAMES):
                self.bail("call is not an l-value")
            addr, ct = self.addr_of(e.args[0])
            ta = self.tmp()
            self.w(f"{ta} = {addr}")
            size = max(1, ct.size)
            trace = TRACE_PY[e.callee.name]
            if self.heat_on:
                self.w(f"{trace}({ta}, {size}, _S{self._site()})")
            else:
                self.w(f"{trace}({ta}, {size})")
            return ta, ct
        if t is A.Index:
            bc, bt = self.expr(e.base)
            ic, _ = self.expr(e.index)
            if not isinstance(bt, Pointer):
                self.bail("indexing a non-pointer value")
            return f"(int({bc}) + int({ic}) * {bt.target.size})", bt.target
        if t is A.Unary and e.op == "*":
            oc, ot = self.expr(e.operand)
            if not isinstance(ot, Pointer):
                self.bail("dereference of statically non-pointer value")
            return f"int({oc})", ot.target
        if t is A.Cast:
            return self.addr_of(e.operand)
        return self.bail(f"unsupported l-value {t.__name__}")


def _has_trace_call(e) -> bool:
    """Does this expression contain an instrumented trace wrapper?"""
    t = type(e)
    if t is A.Call:
        if isinstance(e.callee, A.Ident) and e.callee.name in _TRACE_NAMES:
            return True
        return any(_has_trace_call(a) for a in e.args)
    if t is A.Unary:
        return _has_trace_call(e.operand)
    if t is A.Binary:
        return _has_trace_call(e.left) or _has_trace_call(e.right)
    if t is A.Assign:
        return _has_trace_call(e.target) or _has_trace_call(e.value)
    if t is A.Ternary:
        return (_has_trace_call(e.cond) or _has_trace_call(e.then)
                or _has_trace_call(e.other))
    if t is A.Index:
        return _has_trace_call(e.base) or _has_trace_call(e.index)
    if t is A.Cast:
        return _has_trace_call(e.operand)
    return False


def _scan_break_continue(s) -> tuple[bool, bool]:
    """(has_break, has_continue) at this loop's own level (nested loops
    consume their own break/continue)."""
    t = type(s)
    if t in (A.While, A.DoWhile, A.For):
        return False, False
    if t is A.Break:
        return True, False
    if t is A.Continue:
        return False, True
    if t is A.Block:
        hb = hc = False
        for x in s.stmts:
            b, c = _scan_break_continue(x)
            hb |= b
            hc |= c
        return hb, hc
    if t is A.If:
        hb, hc = _scan_break_continue(s.then)
        if s.other is not None:
            b, c = _scan_break_continue(s.other)
            hb |= b
            hc |= c
        return hb, hc
    return False, False


# --------------------------------------------------------------------- #
# memoized compilation

#: (digest, heat_on) -> CompiledKernel or the CodegenBail that stopped it.
_SCALAR_CACHE: dict[tuple[str, bool], CompiledKernel | CodegenBail] = {}


def compile_scalar(fn: A.FunctionDef, heat_on: bool) -> CompiledKernel:
    """Compile (or fetch) the scalar lowering of ``fn``.

    Raises :class:`CodegenBail` (cached, so repeated launches of an
    uncompilable kernel pay one analysis, not one per launch).
    """
    key = (kernel_digest(fn), bool(heat_on))
    hit = _SCALAR_CACHE.get(key)
    if hit is not None:
        if isinstance(hit, CodegenBail):
            raise hit
        return hit
    try:
        if fn.body is None:
            raise CodegenBail("kernel without a body")
        res = resolve_kernel(fn)
        compiled = ScalarEmitter(fn, res, bool(heat_on)).emit()
    except CodegenBail as bail:
        _SCALAR_CACHE[key] = bail
        raise
    _SCALAR_CACHE[key] = compiled
    return compiled

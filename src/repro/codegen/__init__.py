"""Codegen backends for mini-CUDA kernels.

Lowers instrumented kernel ASTs to native Python once per kernel
(:mod:`repro.codegen.emitter`), optionally vectorizing the whole thread
grid into numpy array operations (:mod:`repro.codegen.vectorize` +
:mod:`repro.codegen.gridexec`).  Backend selection and the per-launch
fallback ladder live in :mod:`repro.codegen.backend`; the tree-walking
interpreter remains the differential oracle every compiled backend must
byte-match.
"""

from .backend import (
    BACKENDS,
    default_backend,
    run_compiled,
    set_default_backend,
)
from .emitter import CodegenBail, compile_scalar, kernel_digest

__all__ = [
    "BACKENDS",
    "CodegenBail",
    "compile_scalar",
    "default_backend",
    "kernel_digest",
    "run_compiled",
    "set_default_backend",
]

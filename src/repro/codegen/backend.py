"""Backend selection and per-launch drivers for compiled kernels.

The interpreter calls :func:`run_compiled` from inside
``runtime.launch`` (so launch events fire exactly once regardless of
which tier ends up executing).  The ladder, most- to least-optimized:

``codegen-vec``
    One numpy pass over the whole grid (:mod:`.vectorize` +
    :mod:`.gridexec`); requires sampling off and a provably
    data-parallel kernel.  Bails fall to the scalar tier after
    restoring any half-written values.
``codegen``
    The per-thread compiled function (:mod:`.emitter`), looping
    ``grid x block`` in Python but with zero AST dispatch.
``interp``
    The tree-walking oracle; always available.

Every dropped tier counts as one *fallback* on the tracer
(:meth:`Tracer.note_launch`), so reports can attribute fidelity numbers
to the backend that actually produced them.  Custom tracer subclasses
that override the ``trace*`` methods disable the compiled tiers
entirely -- the emitted code binds the base implementations, and
silently skipping an override would change observable behaviour.
"""

from __future__ import annotations

from ..heatmap.store import SourceSite
from ..interp.interpreter import _cdiv, _cmod
from ..interp.values import InterpError, _reject, _typed_view
from ..runtime.tracer import Tracer
from .emitter import DTYPES, WRAPS, CodegenBail, compile_scalar
from .gridexec import VecBail, VecRun
from .vectorize import compile_vec

__all__ = [
    "BACKENDS",
    "default_backend",
    "run_compiled",
    "set_default_backend",
]

#: Selectable backends (``auto`` = vectorize when provable, else
#: codegen, else interp).
BACKENDS = ("auto", "interp", "codegen", "codegen-vec")

_DEFAULT = "interp"


def default_backend() -> str:
    """The library-wide default backend for new interpreters."""
    return _DEFAULT


def set_default_backend(name: str) -> None:
    """Set the default backend (CLIs pass their ``--backend`` here)."""
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; choose from {', '.join(BACKENDS)}")
    global _DEFAULT
    _DEFAULT = name


# --------------------------------------------------------------------- #
# binding: emitted code -> a function closed over one interpreter


def _make_ld(space, dt):
    isize = dt.itemsize
    int_kind = dt.kind in "iu"

    def ld(addr):
        alloc = space.find(addr)
        if alloc is None or alloc.data is None:
            _reject(space, addr)
        idx, rem = divmod(addr - alloc.base, isize)
        if rem == 0:
            return _typed_view(alloc, dt).item(idx)
        raw = alloc.view(dt, offset=addr - alloc.base, count=1)[0]
        return int(raw) if int_kind else float(raw)

    return ld


def _make_st(space, dt):
    isize = dt.itemsize
    int_kind = dt.kind in "iu"
    bits = isize * 8
    mask = (1 << bits) - 1
    half = 1 << (bits - 1)
    full = 1 << bits
    signed = dt.kind == "i"

    def st(addr, value):
        alloc = space.find(addr)
        if alloc is None or alloc.data is None:
            _reject(space, addr)
        idx, rem = divmod(addr - alloc.base, isize)
        if rem == 0:
            view = _typed_view(alloc, dt)
        else:
            view = alloc.view(dt, offset=addr - alloc.base, count=1)
            idx = 0
        if int_kind:
            iv = int(value) & mask
            if signed and iv >= half:
                iv -= full
            view[idx] = iv
        else:
            view[idx] = value

    return st


def _make_printf(out):
    def _printf(*args):
        fmt = str(args[0]).replace("\\n", "\n").replace("\\t", "\t")
        fmt = fmt.replace("%d", "{}").replace("%f", "{}").replace("%s", "{}")
        fmt = fmt.replace("%lu", "{}").replace("%g", "{}").replace(
            "%p", "{:#x}")
        out.write(fmt.format(*args[1:]))
        return 0

    return _printf


def _base_globals(interp) -> dict:
    g = {"__builtins__": {}, "int": int, "float": float, "bool": bool}
    fns = interp._trace_fns
    g["_TRR"] = fns["traceR"]
    g["_TRW"] = fns["traceW"]
    g["_TRX"] = fns["traceRW"]
    g["_cdiv"] = _cdiv
    g["_cmod"] = _cmod
    g["_printf"] = _make_printf(interp.out)
    space = interp._space
    for key, dt in DTYPES.items():
        g[f"_w_{key}"] = WRAPS[key]
        g[f"_ld_{key}"] = _make_ld(space, dt)
        g[f"_st_{key}"] = _make_st(space, dt)
    return g


def _bind(interp, ck, kind: str):
    """``exec`` a compiled kernel into interpreter-bound globals once;
    repeated launches reuse the bound function."""
    cache = interp.__dict__.setdefault("_codegen_bound", {})
    key = (ck.digest, kind)
    hit = cache.get(key)
    if hit is not None:
        return hit
    g = _base_globals(interp)
    if kind == "scalar-heat":
        for i, line in enumerate(ck.sites):
            g[f"_S{i}"] = SourceSite(interp.source_name, line)
    exec(ck.code, g)
    fn = cache[key] = g["_kernel"]
    return fn


# --------------------------------------------------------------------- #
# per-launch drivers


def _check_args(interp, fn, args) -> None:
    if len(args) != len(fn.params):
        raise InterpError(
            f"{fn.name} expects {len(fn.params)} arguments, got {len(args)}")


def _run_scalar(interp, fn, grid, block, args, heat_on) -> None:
    ck = compile_scalar(fn, heat_on)  # CodegenBail propagates to the ladder
    kfn = _bind(interp, ck, "scalar-heat" if heat_on else "scalar")
    _check_args(interp, fn, args)
    wargs = [WRAPS[k](v) for k, v in zip(ck.param_keys, args)]
    thread = {"blockIdx_x": 0, "threadIdx_x": 0,
              "blockDim_x": block, "gridDim_x": grid}
    interp.call_stack.append((fn.name, interp._line))
    interp._thread = thread
    try:
        for b in range(grid):
            thread["blockIdx_x"] = b
            for t in range(block):
                thread["threadIdx_x"] = t
                kfn(b, t, block, grid, *wargs)
    except InterpError as exc:
        interp._decorate_error(exc)
        raise
    finally:
        interp.call_stack.pop()
        interp._thread = {}


def _run_vec(interp, fn, grid, block, args, heat_on) -> bool:
    """One vectorized launch; ``False`` means bail (values restored)."""
    ck = compile_vec(fn)  # CodegenBail propagates to the ladder
    if heat_on and (ck.loop_trace or 0 in ck.sites):
        raise CodegenBail("heat attribution needs per-statement lines")
    _check_args(interp, fn, args)
    wargs = [WRAPS[k](v) for k, v in zip(ck.param_keys, args)]
    kfn = _bind(interp, ck, "vec")
    sites = None
    if heat_on:
        sites = tuple(SourceSite(interp.source_name, ln) for ln in ck.sites)
    vr = VecRun(interp, grid, block, sites)
    try:
        kfn(vr, vr.bx, vr.tx, block, grid, *wargs)
        vr.finish()
    except Exception:
        # VecBail, or a numpy-level error the interpreter would raise
        # per-thread (division by zero, invalid address): restore values
        # and let a per-thread tier reproduce it authentically.
        vr.restore()
        return False
    return True


def _tracer_eligible(tracer) -> bool:
    t = type(tracer)
    return (t.traceR is Tracer.traceR
            and t.traceW is Tracer.traceW
            and t.traceRW is Tracer.traceRW)


def run_compiled(interp, fn, grid: int, block: int, args,
                 interp_body) -> None:
    """Execute one kernel launch via the best available backend.

    ``interp_body`` is a zero-argument callable running the tree-walking
    grid loop (the final fallback).  Must be called *inside* the
    runtime's ``launch`` context.
    """
    mode = interp.backend
    tracer = interp.tracer
    eligible = _tracer_eligible(tracer)
    heat_on = tracer.heat is not None
    fallbacks = 0
    if mode in ("auto", "codegen-vec"):
        if eligible and tracer.sample_mode == "off":
            try:
                if _run_vec(interp, fn, grid, block, args, heat_on):
                    tracer.note_launch("codegen-vec", fallbacks)
                    return
                fallbacks += 1
            except (CodegenBail, VecBail):
                fallbacks += 1
        elif mode == "codegen-vec":
            # Explicitly requested but unavailable (sampling on, or a
            # tracer subclass): record the drop.
            fallbacks += 1
    if eligible:
        try:
            _run_scalar(interp, fn, grid, block, args, heat_on)
            tracer.note_launch("codegen", fallbacks)
            return
        except CodegenBail:
            fallbacks += 1
    else:
        fallbacks += 1
    interp_body()
    tracer.note_launch("interp", fallbacks)
